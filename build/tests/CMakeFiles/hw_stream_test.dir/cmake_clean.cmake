file(REMOVE_RECURSE
  "CMakeFiles/hw_stream_test.dir/hw_stream_test.cc.o"
  "CMakeFiles/hw_stream_test.dir/hw_stream_test.cc.o.d"
  "hw_stream_test"
  "hw_stream_test.pdb"
  "hw_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
