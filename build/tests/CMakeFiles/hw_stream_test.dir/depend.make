# Empty dependencies file for hw_stream_test.
# This may be replaced when dependencies are built.
