file(REMOVE_RECURSE
  "CMakeFiles/exec_pipeline_test.dir/exec_pipeline_test.cc.o"
  "CMakeFiles/exec_pipeline_test.dir/exec_pipeline_test.cc.o.d"
  "exec_pipeline_test"
  "exec_pipeline_test.pdb"
  "exec_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exec_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
