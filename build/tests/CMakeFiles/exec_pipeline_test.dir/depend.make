# Empty dependencies file for exec_pipeline_test.
# This may be replaced when dependencies are built.
