file(REMOVE_RECURSE
  "CMakeFiles/core_phase_test.dir/core_phase_test.cc.o"
  "CMakeFiles/core_phase_test.dir/core_phase_test.cc.o.d"
  "core_phase_test"
  "core_phase_test.pdb"
  "core_phase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_phase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
