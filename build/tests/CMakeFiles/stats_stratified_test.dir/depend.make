# Empty dependencies file for stats_stratified_test.
# This may be replaced when dependencies are built.
