# Empty dependencies file for jvm_test.
# This may be replaced when dependencies are built.
