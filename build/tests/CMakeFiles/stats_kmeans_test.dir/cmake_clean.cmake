file(REMOVE_RECURSE
  "CMakeFiles/stats_kmeans_test.dir/stats_kmeans_test.cc.o"
  "CMakeFiles/stats_kmeans_test.dir/stats_kmeans_test.cc.o.d"
  "stats_kmeans_test"
  "stats_kmeans_test.pdb"
  "stats_kmeans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_kmeans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
