# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/stats_descriptive_test[1]_include.cmake")
include("/root/repo/build/tests/stats_kmeans_test[1]_include.cmake")
include("/root/repo/build/tests/stats_stratified_test[1]_include.cmake")
include("/root/repo/build/tests/hw_cache_test[1]_include.cmake")
include("/root/repo/build/tests/hw_stream_test[1]_include.cmake")
include("/root/repo/build/tests/jvm_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/exec_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/spark_test[1]_include.cmake")
include("/root/repo/build/tests/graphx_test[1]_include.cmake")
include("/root/repo/build/tests/hadoop_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/core_profile_test[1]_include.cmake")
include("/root/repo/build/tests/core_phase_test[1]_include.cmake")
include("/root/repo/build/tests/core_sampling_test[1]_include.cmake")
include("/root/repo/build/tests/core_sensitivity_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
