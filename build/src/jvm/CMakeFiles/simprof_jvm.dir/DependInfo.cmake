
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jvm/call_stack.cc" "src/jvm/CMakeFiles/simprof_jvm.dir/call_stack.cc.o" "gcc" "src/jvm/CMakeFiles/simprof_jvm.dir/call_stack.cc.o.d"
  "/root/repo/src/jvm/method.cc" "src/jvm/CMakeFiles/simprof_jvm.dir/method.cc.o" "gcc" "src/jvm/CMakeFiles/simprof_jvm.dir/method.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/simprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
