file(REMOVE_RECURSE
  "libsimprof_jvm.a"
)
