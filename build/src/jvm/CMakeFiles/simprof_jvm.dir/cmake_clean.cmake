file(REMOVE_RECURSE
  "CMakeFiles/simprof_jvm.dir/call_stack.cc.o"
  "CMakeFiles/simprof_jvm.dir/call_stack.cc.o.d"
  "CMakeFiles/simprof_jvm.dir/method.cc.o"
  "CMakeFiles/simprof_jvm.dir/method.cc.o.d"
  "libsimprof_jvm.a"
  "libsimprof_jvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simprof_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
