# Empty compiler generated dependencies file for simprof_jvm.
# This may be replaced when dependencies are built.
