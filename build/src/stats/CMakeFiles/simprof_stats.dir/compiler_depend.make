# Empty compiler generated dependencies file for simprof_stats.
# This may be replaced when dependencies are built.
