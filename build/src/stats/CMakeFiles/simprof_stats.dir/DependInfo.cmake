
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/simprof_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/simprof_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/feature_select.cc" "src/stats/CMakeFiles/simprof_stats.dir/feature_select.cc.o" "gcc" "src/stats/CMakeFiles/simprof_stats.dir/feature_select.cc.o.d"
  "/root/repo/src/stats/kmeans.cc" "src/stats/CMakeFiles/simprof_stats.dir/kmeans.cc.o" "gcc" "src/stats/CMakeFiles/simprof_stats.dir/kmeans.cc.o.d"
  "/root/repo/src/stats/matrix.cc" "src/stats/CMakeFiles/simprof_stats.dir/matrix.cc.o" "gcc" "src/stats/CMakeFiles/simprof_stats.dir/matrix.cc.o.d"
  "/root/repo/src/stats/silhouette.cc" "src/stats/CMakeFiles/simprof_stats.dir/silhouette.cc.o" "gcc" "src/stats/CMakeFiles/simprof_stats.dir/silhouette.cc.o.d"
  "/root/repo/src/stats/stratified.cc" "src/stats/CMakeFiles/simprof_stats.dir/stratified.cc.o" "gcc" "src/stats/CMakeFiles/simprof_stats.dir/stratified.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/simprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
