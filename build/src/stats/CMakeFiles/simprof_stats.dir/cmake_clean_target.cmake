file(REMOVE_RECURSE
  "libsimprof_stats.a"
)
