file(REMOVE_RECURSE
  "CMakeFiles/simprof_stats.dir/descriptive.cc.o"
  "CMakeFiles/simprof_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/simprof_stats.dir/feature_select.cc.o"
  "CMakeFiles/simprof_stats.dir/feature_select.cc.o.d"
  "CMakeFiles/simprof_stats.dir/kmeans.cc.o"
  "CMakeFiles/simprof_stats.dir/kmeans.cc.o.d"
  "CMakeFiles/simprof_stats.dir/matrix.cc.o"
  "CMakeFiles/simprof_stats.dir/matrix.cc.o.d"
  "CMakeFiles/simprof_stats.dir/silhouette.cc.o"
  "CMakeFiles/simprof_stats.dir/silhouette.cc.o.d"
  "CMakeFiles/simprof_stats.dir/stratified.cc.o"
  "CMakeFiles/simprof_stats.dir/stratified.cc.o.d"
  "libsimprof_stats.a"
  "libsimprof_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simprof_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
