# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("stats")
subdirs("hw")
subdirs("jvm")
subdirs("exec")
subdirs("data")
subdirs("minispark")
subdirs("minihadoop")
subdirs("workloads")
subdirs("core")
