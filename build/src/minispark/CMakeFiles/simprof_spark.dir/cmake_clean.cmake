file(REMOVE_RECURSE
  "CMakeFiles/simprof_spark.dir/graphx.cc.o"
  "CMakeFiles/simprof_spark.dir/graphx.cc.o.d"
  "CMakeFiles/simprof_spark.dir/spark_context.cc.o"
  "CMakeFiles/simprof_spark.dir/spark_context.cc.o.d"
  "libsimprof_spark.a"
  "libsimprof_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simprof_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
