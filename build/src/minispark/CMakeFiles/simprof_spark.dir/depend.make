# Empty dependencies file for simprof_spark.
# This may be replaced when dependencies are built.
