file(REMOVE_RECURSE
  "libsimprof_spark.a"
)
