file(REMOVE_RECURSE
  "libsimprof_support.a"
)
