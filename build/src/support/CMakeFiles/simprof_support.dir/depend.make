# Empty dependencies file for simprof_support.
# This may be replaced when dependencies are built.
