file(REMOVE_RECURSE
  "CMakeFiles/simprof_support.dir/assert.cc.o"
  "CMakeFiles/simprof_support.dir/assert.cc.o.d"
  "CMakeFiles/simprof_support.dir/interner.cc.o"
  "CMakeFiles/simprof_support.dir/interner.cc.o.d"
  "CMakeFiles/simprof_support.dir/rng.cc.o"
  "CMakeFiles/simprof_support.dir/rng.cc.o.d"
  "CMakeFiles/simprof_support.dir/serialize.cc.o"
  "CMakeFiles/simprof_support.dir/serialize.cc.o.d"
  "CMakeFiles/simprof_support.dir/table.cc.o"
  "CMakeFiles/simprof_support.dir/table.cc.o.d"
  "CMakeFiles/simprof_support.dir/zipf.cc.o"
  "CMakeFiles/simprof_support.dir/zipf.cc.o.d"
  "libsimprof_support.a"
  "libsimprof_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simprof_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
