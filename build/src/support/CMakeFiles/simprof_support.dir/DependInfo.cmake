
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/assert.cc" "src/support/CMakeFiles/simprof_support.dir/assert.cc.o" "gcc" "src/support/CMakeFiles/simprof_support.dir/assert.cc.o.d"
  "/root/repo/src/support/interner.cc" "src/support/CMakeFiles/simprof_support.dir/interner.cc.o" "gcc" "src/support/CMakeFiles/simprof_support.dir/interner.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/support/CMakeFiles/simprof_support.dir/rng.cc.o" "gcc" "src/support/CMakeFiles/simprof_support.dir/rng.cc.o.d"
  "/root/repo/src/support/serialize.cc" "src/support/CMakeFiles/simprof_support.dir/serialize.cc.o" "gcc" "src/support/CMakeFiles/simprof_support.dir/serialize.cc.o.d"
  "/root/repo/src/support/table.cc" "src/support/CMakeFiles/simprof_support.dir/table.cc.o" "gcc" "src/support/CMakeFiles/simprof_support.dir/table.cc.o.d"
  "/root/repo/src/support/zipf.cc" "src/support/CMakeFiles/simprof_support.dir/zipf.cc.o" "gcc" "src/support/CMakeFiles/simprof_support.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
