file(REMOVE_RECURSE
  "CMakeFiles/simprof_data.dir/catalog.cc.o"
  "CMakeFiles/simprof_data.dir/catalog.cc.o.d"
  "CMakeFiles/simprof_data.dir/graph.cc.o"
  "CMakeFiles/simprof_data.dir/graph.cc.o.d"
  "CMakeFiles/simprof_data.dir/kronecker.cc.o"
  "CMakeFiles/simprof_data.dir/kronecker.cc.o.d"
  "CMakeFiles/simprof_data.dir/text.cc.o"
  "CMakeFiles/simprof_data.dir/text.cc.o.d"
  "libsimprof_data.a"
  "libsimprof_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simprof_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
