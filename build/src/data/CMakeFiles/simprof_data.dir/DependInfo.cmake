
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/catalog.cc" "src/data/CMakeFiles/simprof_data.dir/catalog.cc.o" "gcc" "src/data/CMakeFiles/simprof_data.dir/catalog.cc.o.d"
  "/root/repo/src/data/graph.cc" "src/data/CMakeFiles/simprof_data.dir/graph.cc.o" "gcc" "src/data/CMakeFiles/simprof_data.dir/graph.cc.o.d"
  "/root/repo/src/data/kronecker.cc" "src/data/CMakeFiles/simprof_data.dir/kronecker.cc.o" "gcc" "src/data/CMakeFiles/simprof_data.dir/kronecker.cc.o.d"
  "/root/repo/src/data/text.cc" "src/data/CMakeFiles/simprof_data.dir/text.cc.o" "gcc" "src/data/CMakeFiles/simprof_data.dir/text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/simprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
