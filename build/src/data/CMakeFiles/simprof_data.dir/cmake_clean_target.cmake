file(REMOVE_RECURSE
  "libsimprof_data.a"
)
