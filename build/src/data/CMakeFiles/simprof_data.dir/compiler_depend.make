# Empty compiler generated dependencies file for simprof_data.
# This may be replaced when dependencies are built.
