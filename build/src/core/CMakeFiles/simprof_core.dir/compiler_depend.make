# Empty compiler generated dependencies file for simprof_core.
# This may be replaced when dependencies are built.
