file(REMOVE_RECURSE
  "CMakeFiles/simprof_core.dir/lab.cc.o"
  "CMakeFiles/simprof_core.dir/lab.cc.o.d"
  "CMakeFiles/simprof_core.dir/phase.cc.o"
  "CMakeFiles/simprof_core.dir/phase.cc.o.d"
  "CMakeFiles/simprof_core.dir/profile.cc.o"
  "CMakeFiles/simprof_core.dir/profile.cc.o.d"
  "CMakeFiles/simprof_core.dir/sampling.cc.o"
  "CMakeFiles/simprof_core.dir/sampling.cc.o.d"
  "CMakeFiles/simprof_core.dir/sensitivity.cc.o"
  "CMakeFiles/simprof_core.dir/sensitivity.cc.o.d"
  "libsimprof_core.a"
  "libsimprof_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simprof_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
