file(REMOVE_RECURSE
  "libsimprof_core.a"
)
