file(REMOVE_RECURSE
  "libsimprof_workloads.a"
)
