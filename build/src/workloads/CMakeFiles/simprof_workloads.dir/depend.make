# Empty dependencies file for simprof_workloads.
# This may be replaced when dependencies are built.
