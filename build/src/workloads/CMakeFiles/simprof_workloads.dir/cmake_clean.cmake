file(REMOVE_RECURSE
  "CMakeFiles/simprof_workloads.dir/graph_workloads.cc.o"
  "CMakeFiles/simprof_workloads.dir/graph_workloads.cc.o.d"
  "CMakeFiles/simprof_workloads.dir/registry.cc.o"
  "CMakeFiles/simprof_workloads.dir/registry.cc.o.d"
  "CMakeFiles/simprof_workloads.dir/text_hadoop.cc.o"
  "CMakeFiles/simprof_workloads.dir/text_hadoop.cc.o.d"
  "CMakeFiles/simprof_workloads.dir/text_spark.cc.o"
  "CMakeFiles/simprof_workloads.dir/text_spark.cc.o.d"
  "libsimprof_workloads.a"
  "libsimprof_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simprof_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
