file(REMOVE_RECURSE
  "libsimprof_hadoop.a"
)
