file(REMOVE_RECURSE
  "CMakeFiles/simprof_hadoop.dir/hadoop.cc.o"
  "CMakeFiles/simprof_hadoop.dir/hadoop.cc.o.d"
  "libsimprof_hadoop.a"
  "libsimprof_hadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simprof_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
