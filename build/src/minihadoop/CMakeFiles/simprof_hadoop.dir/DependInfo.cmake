
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minihadoop/hadoop.cc" "src/minihadoop/CMakeFiles/simprof_hadoop.dir/hadoop.cc.o" "gcc" "src/minihadoop/CMakeFiles/simprof_hadoop.dir/hadoop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/simprof_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/simprof_data.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/simprof_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/simprof_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/simprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
