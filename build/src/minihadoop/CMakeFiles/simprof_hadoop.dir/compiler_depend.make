# Empty compiler generated dependencies file for simprof_hadoop.
# This may be replaced when dependencies are built.
