file(REMOVE_RECURSE
  "libsimprof_exec.a"
)
