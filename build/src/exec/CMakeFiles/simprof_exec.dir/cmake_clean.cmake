file(REMOVE_RECURSE
  "CMakeFiles/simprof_exec.dir/cluster.cc.o"
  "CMakeFiles/simprof_exec.dir/cluster.cc.o.d"
  "CMakeFiles/simprof_exec.dir/executor_context.cc.o"
  "CMakeFiles/simprof_exec.dir/executor_context.cc.o.d"
  "CMakeFiles/simprof_exec.dir/kernels.cc.o"
  "CMakeFiles/simprof_exec.dir/kernels.cc.o.d"
  "CMakeFiles/simprof_exec.dir/pipeline.cc.o"
  "CMakeFiles/simprof_exec.dir/pipeline.cc.o.d"
  "libsimprof_exec.a"
  "libsimprof_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simprof_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
