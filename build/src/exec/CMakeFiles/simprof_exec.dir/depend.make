# Empty dependencies file for simprof_exec.
# This may be replaced when dependencies are built.
