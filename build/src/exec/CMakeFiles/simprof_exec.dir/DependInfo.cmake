
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/cluster.cc" "src/exec/CMakeFiles/simprof_exec.dir/cluster.cc.o" "gcc" "src/exec/CMakeFiles/simprof_exec.dir/cluster.cc.o.d"
  "/root/repo/src/exec/executor_context.cc" "src/exec/CMakeFiles/simprof_exec.dir/executor_context.cc.o" "gcc" "src/exec/CMakeFiles/simprof_exec.dir/executor_context.cc.o.d"
  "/root/repo/src/exec/kernels.cc" "src/exec/CMakeFiles/simprof_exec.dir/kernels.cc.o" "gcc" "src/exec/CMakeFiles/simprof_exec.dir/kernels.cc.o.d"
  "/root/repo/src/exec/pipeline.cc" "src/exec/CMakeFiles/simprof_exec.dir/pipeline.cc.o" "gcc" "src/exec/CMakeFiles/simprof_exec.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/simprof_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/simprof_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/simprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
