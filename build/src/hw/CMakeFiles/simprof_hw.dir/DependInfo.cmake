
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/access_stream.cc" "src/hw/CMakeFiles/simprof_hw.dir/access_stream.cc.o" "gcc" "src/hw/CMakeFiles/simprof_hw.dir/access_stream.cc.o.d"
  "/root/repo/src/hw/cache.cc" "src/hw/CMakeFiles/simprof_hw.dir/cache.cc.o" "gcc" "src/hw/CMakeFiles/simprof_hw.dir/cache.cc.o.d"
  "/root/repo/src/hw/memory_system.cc" "src/hw/CMakeFiles/simprof_hw.dir/memory_system.cc.o" "gcc" "src/hw/CMakeFiles/simprof_hw.dir/memory_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/simprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
