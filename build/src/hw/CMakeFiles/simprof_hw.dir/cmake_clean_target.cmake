file(REMOVE_RECURSE
  "libsimprof_hw.a"
)
