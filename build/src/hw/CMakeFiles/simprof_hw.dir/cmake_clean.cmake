file(REMOVE_RECURSE
  "CMakeFiles/simprof_hw.dir/access_stream.cc.o"
  "CMakeFiles/simprof_hw.dir/access_stream.cc.o.d"
  "CMakeFiles/simprof_hw.dir/cache.cc.o"
  "CMakeFiles/simprof_hw.dir/cache.cc.o.d"
  "CMakeFiles/simprof_hw.dir/memory_system.cc.o"
  "CMakeFiles/simprof_hw.dir/memory_system.cc.o.d"
  "libsimprof_hw.a"
  "libsimprof_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simprof_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
