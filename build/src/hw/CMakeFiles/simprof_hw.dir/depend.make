# Empty dependencies file for simprof_hw.
# This may be replaced when dependencies are built.
