# Empty dependencies file for fig10_phase_types.
# This may be replaced when dependencies are built.
