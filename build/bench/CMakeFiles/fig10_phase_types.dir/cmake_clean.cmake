file(REMOVE_RECURSE
  "CMakeFiles/fig10_phase_types.dir/fig10_phase_types.cc.o"
  "CMakeFiles/fig10_phase_types.dir/fig10_phase_types.cc.o.d"
  "fig10_phase_types"
  "fig10_phase_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_phase_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
