file(REMOVE_RECURSE
  "CMakeFiles/fig08_sample_size.dir/fig08_sample_size.cc.o"
  "CMakeFiles/fig08_sample_size.dir/fig08_sample_size.cc.o.d"
  "fig08_sample_size"
  "fig08_sample_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_sample_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
