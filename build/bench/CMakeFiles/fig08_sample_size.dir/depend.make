# Empty dependencies file for fig08_sample_size.
# This may be replaced when dependencies are built.
