# Empty compiler generated dependencies file for fig14_wordcount_spark.
# This may be replaced when dependencies are built.
