file(REMOVE_RECURSE
  "CMakeFiles/fig14_wordcount_spark.dir/fig14_wordcount_spark.cc.o"
  "CMakeFiles/fig14_wordcount_spark.dir/fig14_wordcount_spark.cc.o.d"
  "fig14_wordcount_spark"
  "fig14_wordcount_spark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_wordcount_spark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
