file(REMOVE_RECURSE
  "CMakeFiles/fig15_wordcount_hadoop.dir/fig15_wordcount_hadoop.cc.o"
  "CMakeFiles/fig15_wordcount_hadoop.dir/fig15_wordcount_hadoop.cc.o.d"
  "fig15_wordcount_hadoop"
  "fig15_wordcount_hadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_wordcount_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
