# Empty compiler generated dependencies file for fig15_wordcount_hadoop.
# This may be replaced when dependencies are built.
