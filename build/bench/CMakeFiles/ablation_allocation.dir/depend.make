# Empty dependencies file for ablation_allocation.
# This may be replaced when dependencies are built.
