file(REMOVE_RECURSE
  "CMakeFiles/fig06_cov.dir/fig06_cov.cc.o"
  "CMakeFiles/fig06_cov.dir/fig06_cov.cc.o.d"
  "fig06_cov"
  "fig06_cov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_cov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
