# Empty compiler generated dependencies file for fig06_cov.
# This may be replaced when dependencies are built.
