
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig13_sensitive_phases.cc" "bench/CMakeFiles/fig13_sensitive_phases.dir/fig13_sensitive_phases.cc.o" "gcc" "bench/CMakeFiles/fig13_sensitive_phases.dir/fig13_sensitive_phases.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/simprof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/simprof_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/simprof_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/minispark/CMakeFiles/simprof_spark.dir/DependInfo.cmake"
  "/root/repo/build/src/minihadoop/CMakeFiles/simprof_hadoop.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/simprof_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/simprof_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/simprof_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/simprof_data.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/simprof_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
