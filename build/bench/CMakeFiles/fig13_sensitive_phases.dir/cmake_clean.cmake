file(REMOVE_RECURSE
  "CMakeFiles/fig13_sensitive_phases.dir/fig13_sensitive_phases.cc.o"
  "CMakeFiles/fig13_sensitive_phases.dir/fig13_sensitive_phases.cc.o.d"
  "fig13_sensitive_phases"
  "fig13_sensitive_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_sensitive_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
