file(REMOVE_RECURSE
  "CMakeFiles/fig09_phase_count.dir/fig09_phase_count.cc.o"
  "CMakeFiles/fig09_phase_count.dir/fig09_phase_count.cc.o.d"
  "fig09_phase_count"
  "fig09_phase_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_phase_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
