# Empty dependencies file for fig09_phase_count.
# This may be replaced when dependencies are built.
