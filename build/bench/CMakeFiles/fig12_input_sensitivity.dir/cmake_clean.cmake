file(REMOVE_RECURSE
  "CMakeFiles/fig12_input_sensitivity.dir/fig12_input_sensitivity.cc.o"
  "CMakeFiles/fig12_input_sensitivity.dir/fig12_input_sensitivity.cc.o.d"
  "fig12_input_sensitivity"
  "fig12_input_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_input_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
