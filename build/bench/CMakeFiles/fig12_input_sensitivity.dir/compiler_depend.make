# Empty compiler generated dependencies file for fig12_input_sensitivity.
# This may be replaced when dependencies are built.
