# Empty dependencies file for ablation_ci_coverage.
# This may be replaced when dependencies are built.
