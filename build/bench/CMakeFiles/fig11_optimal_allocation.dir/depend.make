# Empty dependencies file for fig11_optimal_allocation.
# This may be replaced when dependencies are built.
