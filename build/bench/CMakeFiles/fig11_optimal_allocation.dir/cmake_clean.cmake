file(REMOVE_RECURSE
  "CMakeFiles/fig11_optimal_allocation.dir/fig11_optimal_allocation.cc.o"
  "CMakeFiles/fig11_optimal_allocation.dir/fig11_optimal_allocation.cc.o.d"
  "fig11_optimal_allocation"
  "fig11_optimal_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_optimal_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
