# Empty compiler generated dependencies file for fig07_sampling_error.
# This may be replaced when dependencies are built.
