file(REMOVE_RECURSE
  "CMakeFiles/fig07_sampling_error.dir/fig07_sampling_error.cc.o"
  "CMakeFiles/fig07_sampling_error.dir/fig07_sampling_error.cc.o.d"
  "fig07_sampling_error"
  "fig07_sampling_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_sampling_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
