file(REMOVE_RECURSE
  "CMakeFiles/ablation_unit_size.dir/ablation_unit_size.cc.o"
  "CMakeFiles/ablation_unit_size.dir/ablation_unit_size.cc.o.d"
  "ablation_unit_size"
  "ablation_unit_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_unit_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
