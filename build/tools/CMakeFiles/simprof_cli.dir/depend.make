# Empty dependencies file for simprof_cli.
# This may be replaced when dependencies are built.
