file(REMOVE_RECURSE
  "CMakeFiles/simprof_cli.dir/simprof_cli.cc.o"
  "CMakeFiles/simprof_cli.dir/simprof_cli.cc.o.d"
  "simprof"
  "simprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simprof_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
