# Empty compiler generated dependencies file for graph_input_study.
# This may be replaced when dependencies are built.
