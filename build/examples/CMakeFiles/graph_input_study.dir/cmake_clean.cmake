file(REMOVE_RECURSE
  "CMakeFiles/graph_input_study.dir/graph_input_study.cpp.o"
  "CMakeFiles/graph_input_study.dir/graph_input_study.cpp.o.d"
  "graph_input_study"
  "graph_input_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_input_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
