// Framework comparison (Section IV-F): the same WordCount benchmark on
// MiniHadoop vs MiniSpark, side by side — phase structure, phase types and
// CPI traces, the data behind the paper's Figures 14 and 15.
//
//   $ ./build/examples/framework_comparison [scale]
#include <algorithm>
#include <iostream>
#include <numeric>

#include "core/lab.h"
#include "core/phase.h"
#include "support/table.h"

namespace {

void describe(const char* title, const simprof::core::ThreadProfile& profile,
              const simprof::core::PhaseModel& model) {
  using simprof::Table;
  std::cout << "\n== " << title << ": " << profile.num_units()
            << " units, " << model.k << " phases, oracle CPI "
            << Table::num(profile.oracle_cpi()) << "\n";
  Table t({"phase", "weight", "mean_cpi", "cov", "type", "dominant_method"});
  for (std::size_t h = 0; h < model.k; ++h) {
    std::size_t best_f = 0;
    double best_w = -1.0;
    for (std::size_t f = 0; f < model.feature_names.size(); ++f) {
      if (model.feature_kinds[f] == simprof::jvm::OpKind::kFramework) continue;
      if (model.centers.at(h, f) > best_w) {
        best_w = model.centers.at(h, f);
        best_f = f;
      }
    }
    t.row({std::to_string(h), Table::pct(model.phases[h].weight),
           Table::num(model.phases[h].mean_cpi),
           Table::num(model.phases[h].cov),
           std::string(simprof::jvm::to_string(model.phase_types[h])),
           model.feature_names.empty() ? "-" : model.feature_names[best_f]});
  }
  t.print_aligned(std::cout);

  // A terminal-friendly CPI sparkline over time (unit order).
  static const char* kLevels[] = {"_", ".", "-", "=", "*", "#"};
  const auto cpis = profile.cpis();
  const double lo = *std::min_element(cpis.begin(), cpis.end());
  const double hi = *std::max_element(cpis.begin(), cpis.end());
  std::cout << "CPI over time [" << Table::num(lo) << " .. " << Table::num(hi)
            << "]:\n";
  const std::size_t buckets = 100;
  for (std::size_t i = 0; i < buckets; ++i) {
    const std::size_t a = i * cpis.size() / buckets;
    const std::size_t b = std::max(a + 1, (i + 1) * cpis.size() / buckets);
    double avg = 0.0;
    for (std::size_t u = a; u < b; ++u) avg += cpis[u];
    avg /= static_cast<double>(b - a);
    const int level = hi > lo ? static_cast<int>(5.0 * (avg - lo) / (hi - lo))
                              : 0;
    std::cout << kLevels[std::clamp(level, 0, 5)];
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace simprof;
  core::LabConfig cfg;
  cfg.scale = argc > 1 ? atof(argv[1]) : 0.3;
  core::WorkloadLab lab(cfg);

  const auto hadoop = lab.run("wc_hp");
  const auto spark = lab.run("wc_sp");
  const auto hadoop_model = core::form_phases(hadoop.profile);
  const auto spark_model = core::form_phases(spark.profile);

  describe("WordCount on Hadoop (Figure 15)", hadoop.profile, hadoop_model);
  describe("WordCount on Spark (Figure 14)", spark.profile, spark_model);

  std::cout << "\nSpark CPI advantage: "
            << Table::num(hadoop.profile.oracle_cpi() /
                          spark.profile.oracle_cpi(), 2)
            << "x lower CPI (map-side reduce couples map+reduce+IO into one "
               "phase; Hadoop pays for sort/spill and compressed IO)\n";
  return 0;
}
