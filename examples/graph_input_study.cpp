// Input-sensitivity study on a graph workload (Section III-D workflow):
// train SimProf's phase model on one input, classify the sampling units of
// reference inputs onto it, and report which phases an architect can skip
// when simulating the other inputs.
//
//   $ ./build/examples/graph_input_study [workload] [scale_pow2]
//
// Defaults: cc_sp on 2^14-vertex Table II graphs (fast); the fig12/fig13
// benches run the full-size version.
#include <iostream>
#include <string>

#include "core/lab.h"
#include "core/phase.h"
#include "core/sampling.h"
#include "core/sensitivity.h"
#include "data/catalog.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace simprof;
  const std::string workload = argc > 1 ? argv[1] : "cc_sp";
  const std::uint32_t scale =
      argc > 2 ? static_cast<std::uint32_t>(std::stoul(argv[2])) : 14;

  core::LabConfig lab_cfg;
  lab_cfg.graph_scale_override = scale;
  core::WorkloadLab lab(lab_cfg);

  std::cout << "training " << workload << " on Google (2^" << scale
            << " vertices)\n";
  const auto train = lab.run(workload, "Google");
  const core::PhaseModel model = core::form_phases(train.profile);
  std::cout << "phases: " << model.k << ", units: "
            << train.profile.num_units() << "\n\n";

  Table table({"reference", "units", "phase_deltas (mean%)", "sensitive"});
  std::vector<core::ThreadProfile> refs;
  std::vector<std::string> names;
  for (const auto& entry : data::snap_catalog(scale)) {
    if (entry.training) continue;
    auto run = lab.run(workload, entry.name);
    const auto per_phase = core::phase_sensitivity_test(model, run.profile);
    std::string deltas, flags;
    for (const auto& s : per_phase) {
      deltas += (deltas.empty() ? "" : " ") + Table::num(s.mean_delta * 100, 0);
      flags += s.sensitive ? 'S' : '-';
    }
    table.row({entry.name, std::to_string(run.profile.num_units()), deltas,
               flags});
    refs.push_back(std::move(run.profile));
    names.push_back(entry.name);
  }
  table.print_aligned(std::cout);

  std::vector<const core::ThreadProfile*> ref_ptrs;
  for (const auto& r : refs) ref_ptrs.push_back(&r);
  const auto report = core::input_sensitivity_test(model, ref_ptrs, names);
  const auto plan = core::simprof_sample(train.profile, model, 20, 7);
  const double frac = report.sensitive_point_fraction(plan);
  std::cout << "\n" << report.num_sensitive() << "/" << model.k
            << " phases are input-sensitive across the reference set\n"
            << "simulation points needed for a new input: "
            << Table::pct(frac) << " of the training sample ("
            << Table::pct(1.0 - frac) << " skippable)\n";
  return 0;
}
