// Bring-your-own workload: SimProf is framework-agnostic — anything that
// pushes call frames and executes work on a simulated cluster can be
// profiled and sampled. This example builds a small custom analytics job
// directly on the execution substrate (no MiniSpark/MiniHadoop), with three
// deliberately different phases, and shows SimProf recovering them.
//
//   $ ./build/examples/custom_workload
#include <iostream>

#include "core/phase.h"
#include "core/profile.h"
#include "core/sampling.h"
#include "exec/cluster.h"
#include "exec/kernels.h"
#include "support/table.h"

int main() {
  using namespace simprof;

  exec::ClusterConfig cfg;
  cfg.memory.num_cores = 2;
  exec::Cluster cluster(cfg);
  core::SamplingManager profiler(cluster.methods());
  cluster.set_profiling_hook(&profiler);

  // Register this application's methods with operation kinds.
  auto& reg = cluster.methods();
  const auto m_main = reg.intern("etl.Pipeline.run", jvm::OpKind::kFramework);
  const auto m_parse = reg.intern("etl.CsvParser.parse", jvm::OpKind::kMap);
  const auto m_join = reg.intern("etl.HashJoin.probe", jvm::OpKind::kReduce);
  const auto m_sort = reg.intern("etl.TimsortRuns.sort", jvm::OpKind::kSort);

  // Data regions: an input file, a build-side hash table, a sort buffer.
  auto& space = cluster.address_space();
  const auto input = space.allocate(48ull << 20);
  const auto hash_table = space.allocate(24ull << 20);
  const auto sort_buffer = space.allocate(12ull << 20);

  // Three stages with distinct memory behaviour, run as cluster tasks.
  std::vector<exec::Task> tasks;
  for (int t = 0; t < 6; ++t) {
    tasks.push_back(exec::Task{
        "etl_" + std::to_string(t), [&](exec::ExecutorContext& ctx) {
          jvm::MethodScope main_scope(ctx.stack(), m_main);
          {  // parse: streaming scan, low CPI
            jvm::MethodScope s(ctx.stack(), m_parse);
            exec::scan_region(ctx, input, 8ull << 20, 1.4);
          }
          {  // join probes: random accesses, high CPI
            jvm::MethodScope s(ctx.stack(), m_join);
            exec::hash_aggregate(ctx, hash_table, 24ull << 20, 400'000, 0.3,
                                 exec::default_kernel_costs());
          }
          {  // sort: recursive partitions, high CPI *variance*
            jvm::MethodScope s(ctx.stack(), m_sort);
            exec::quicksort_traffic(ctx, sort_buffer, 400'000, 8,
                                    exec::default_kernel_costs());
          }
        }});
  }
  cluster.run_stage("etl", std::move(tasks));
  cluster.finish();

  core::ThreadProfile profile = profiler.take_profile();
  const core::PhaseModel model = core::form_phases(profile);

  std::cout << "custom workload: " << profile.num_units()
            << " sampling units → " << model.k << " phases\n";
  Table t({"phase", "weight", "mean_cpi", "cov", "type"});
  for (std::size_t h = 0; h < model.k; ++h) {
    t.row({std::to_string(h), Table::pct(model.phases[h].weight),
           Table::num(model.phases[h].mean_cpi),
           Table::num(model.phases[h].cov),
           std::string(jvm::to_string(model.phase_types[h]))});
  }
  t.print_aligned(std::cout);

  const auto plan = core::simprof_sample(profile, model, 40, 3);
  std::cout << "\n40-point SimProf estimate: "
            << Table::num(plan.estimated_cpi, 3) << " vs oracle "
            << Table::num(profile.oracle_cpi(), 3) << " (error "
            << Table::pct(core::relative_error(plan, profile), 2) << ")\n";
  return 0;
}
