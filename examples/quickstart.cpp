// Quickstart: profile the paper's Figure 1 WordCount program on MiniSpark,
// form phases, and pick simulation points with SimProf.
//
//   $ ./build/examples/quickstart
//
// Walks the whole public API surface end to end:
//   1. synthesize an input corpus,
//   2. run WordCount (flatMap → map → reduceByKey → saveAsTextFile) on a
//      simulated cluster with the thread profiler attached,
//   3. cluster sampling units into phases,
//   4. select 20 simulation points by stratified random sampling and
//      compare the estimate against the oracle CPI.
#include <iostream>

#include "core/phase.h"
#include "core/profile.h"
#include "core/sampling.h"
#include "data/text.h"
#include "exec/cluster.h"
#include "minispark/rdd.h"
#include "support/table.h"

int main() {
  using namespace simprof;

  // --- 1. Input data -------------------------------------------------------
  data::TextConfig text;
  text.num_words = 2'000'000;  // scaled stand-in for the paper's 10G text
  text.vocabulary = 1 << 16;
  const data::TextCorpus corpus = data::TextCorpus::synthesize(text);
  std::cout << "corpus: " << corpus.num_docs() << " documents, "
            << corpus.words().size() << " words\n";

  // --- 2. Cluster + profiler + the Figure 1 program -----------------------
  exec::ClusterConfig cluster_cfg;  // 4 cores, 1M-instruction sampling units
  exec::Cluster cluster(cluster_cfg);
  core::SamplingManager profiler(cluster.methods());
  cluster.set_profiling_hook(&profiler);

  spark::SparkContext sc(cluster);
  auto lines = std::make_shared<spark::TextFileRDD>(sc, corpus, 14);
  auto words = spark::flat_map<data::WordId>(
      lines, "quickstart.WordCount.tokenize", jvm::OpKind::kMap,
      spark::OpCost{.instrs_per_element = 1400},
      [&corpus](const std::uint64_t& doc, std::vector<data::WordId>& out) {
        const auto ws = corpus.doc(doc);
        out.insert(out.end(), ws.begin(), ws.end());
      });
  auto pairs = spark::map<std::pair<data::WordId, std::uint64_t>>(
      words, "quickstart.WordCount.toPair", jvm::OpKind::kMap,
      spark::OpCost{.instrs_per_element = 9},
      [](const data::WordId& w) { return std::make_pair(w, std::uint64_t{1}); });
  auto counts = spark::reduce_by_key(
      pairs, [](const std::uint64_t& a, const std::uint64_t& b) { return a + b; },
      6, spark::OpCost{.instrs_per_element = 30});
  const std::uint64_t written = spark::save_as_text_file(counts, 14.0);
  cluster.finish();
  std::cout << "wordcount wrote " << written << " distinct words\n";

  // --- 3. Phase formation --------------------------------------------------
  core::ThreadProfile profile = profiler.take_profile();
  std::cout << "profiled " << profile.num_units() << " sampling units, "
            << profile.num_methods() << " methods\n\n";

  const core::PhaseModel model = core::form_phases(profile);
  Table phases({"phase", "units", "weight", "mean_cpi", "cov", "type"});
  for (std::size_t h = 0; h < model.k; ++h) {
    phases.row({std::to_string(h), std::to_string(model.phases[h].count),
                Table::pct(model.phases[h].weight),
                Table::num(model.phases[h].mean_cpi),
                Table::num(model.phases[h].cov),
                std::string(jvm::to_string(model.phase_types[h]))});
  }
  phases.print_aligned(std::cout);

  // --- 4. Simulation-point selection ---------------------------------------
  const auto plan = core::simprof_sample(profile, model, 20, /*seed=*/1);
  std::cout << "\nSimProf picked " << plan.sample_size()
            << " simulation points (unit ids:";
  for (std::size_t i = 0; i < std::min<std::size_t>(8, plan.points.size());
       ++i) {
    std::cout << ' ' << profile.units[plan.points[i].unit_index].unit_id;
  }
  std::cout << " ...)\n";
  std::cout << "oracle CPI    = " << Table::num(profile.oracle_cpi(), 4)
            << "\nestimated CPI = " << Table::num(plan.estimated_cpi, 4)
            << "  (error "
            << Table::pct(core::relative_error(plan, profile), 2)
            << ", 99.7% CI ±" << Table::num(plan.ci.margin, 4) << ")\n";
  const auto n5 = core::required_sample_size(model, 0.05);
  std::cout << "units needed for 5% error at 99.7% confidence: " << n5
            << " of " << profile.num_units() << "\n";
  return 0;
}
