// Mini-GraphX: the Spark graph library substrate for cc_sp and rank_sp.
//
// The paper attributes cc_sp's many phases and high-variance Phase 0 to
// GraphX operations — aggregateUsingIndex (a reduce), mapPartitionsWithIndex
// (sequential input conversion) — so this layer reproduces GraphX's Pregel
// execution shape: per-iteration aggregateMessages over edge partitions
// (sequential edge scans + random vertex-attribute gathers), message
// combination via aggregateUsingIndex (hash aggregation), and a joinVertices
// update stage. Message volume tracks the shrinking active frontier, giving
// the same phase time-varying performance the paper observes.
#pragma once

#include <cstdint>
#include <vector>

#include "data/graph.h"
#include "minispark/spark_context.h"

namespace simprof::spark {

struct GraphXStats {
  std::uint32_t iterations = 0;
  std::uint64_t total_messages = 0;
};

class GraphX {
 public:
  /// Partitions the graph's edges by source-vertex range across
  /// sc.default_parallelism() partitions and allocates the simulated CSR /
  /// vertex-attribute regions.
  GraphX(SparkContext& sc, const data::Graph& graph);

  /// Label-propagation connected components (GraphX ConnectedComponents):
  /// iterates until no label changes or `max_iterations`. Returns per-vertex
  /// component labels (smallest reachable vertex id upon convergence).
  std::vector<data::VertexId> connected_components(
      std::uint32_t max_iterations = 64);

  /// PageRank with fixed iteration count (GraphX staticPageRank).
  std::vector<double> pagerank(std::uint32_t iterations,
                               double damping = 0.85);

  const GraphXStats& stats() const { return stats_; }
  std::size_t num_edge_partitions() const { return part_lo_.size(); }

 private:
  struct MessageBatch;

  /// Run the load stage (GraphLoader + mapPartitionsWithIndex) once.
  void load_graph();

  /// One aggregateMessages + aggregateUsingIndex stage. `gather` is invoked
  /// per (src, dst) edge with src active and may emit a message value;
  /// messages to the same target are merged with `merge`.
  template <typename T, typename GatherFn, typename MergeFn>
  std::vector<std::pair<data::VertexId, T>> aggregate_messages(
      const std::vector<std::uint8_t>& active, GatherFn gather, MergeFn merge,
      std::uint64_t active_edges_estimate);

  SparkContext& sc_;
  const data::Graph& graph_;
  bool loaded_ = false;
  GraphXStats stats_;

  // Edge partitioning by source-vertex range.
  std::vector<data::VertexId> part_lo_;
  std::vector<data::VertexId> part_hi_;
  std::vector<std::uint64_t> part_edges_;

  // Simulated regions.
  std::uint64_t vertex_region_ = 0;
  std::uint64_t vertex_region_bytes_ = 0;
  std::uint64_t edge_region_ = 0;
  std::uint64_t edge_region_bytes_ = 0;
  std::uint64_t message_region_ = 0;

  // Pre-interned GraphX method names.
  jvm::MethodId m_load_;
  jvm::MethodId m_map_partitions_;
  jvm::MethodId m_aggregate_messages_;
  jvm::MethodId m_aggregate_using_index_;
  jvm::MethodId m_join_vertices_;
  jvm::MethodId m_ship_vertices_;
  jvm::MethodId m_pregel_;
};

}  // namespace simprof::spark
