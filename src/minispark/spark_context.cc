#include "minispark/spark_context.h"

#include <utility>

#include "jvm/call_stack.h"
#include "obs/obs.h"

namespace simprof::spark {

SparkContext::SparkContext(exec::Cluster& cluster, SparkConfig cfg)
    : cluster_(cluster), cfg_(cfg), methods_(cluster.methods()) {}

void SparkContext::run_stage(const std::string& stage_name, bool shuffle_map,
                             std::vector<exec::Task> tasks) {
  const jvm::MethodId task_frame =
      shuffle_map ? methods_.shuffle_map_task : methods_.result_task;
  std::vector<exec::Task> wrapped;
  wrapped.reserve(tasks.size());
  for (auto& t : tasks) {
    wrapped.push_back(exec::Task{
        t.name,
        [this, task_frame, body = std::move(t.body)](exec::ExecutorContext& ctx) {
          jvm::MethodScope executor(ctx.stack(), methods_.executor_run);
          jvm::MethodScope task(ctx.stack(), task_frame);
          body(ctx);
        }});
  }
  static obs::Counter& stage_count = obs::metrics().counter("spark.stages");
  static obs::Counter& shuffle_stage_count =
      obs::metrics().counter("spark.shuffle_stages");
  stage_count.increment();
  if (shuffle_map) shuffle_stage_count.increment();
  cluster_.run_stage(stage_name, std::move(wrapped), /*thread_per_task=*/false);
  ++stages_run_;
}

}  // namespace simprof::spark
