// MiniSpark RDD layer: lazy lineage, narrow transformation pipelining, and
// shuffle-boundary stage splitting — the programming model of the paper's
// Figure 1.
//
// Functional semantics are real (collect() returns the actual records);
// simulated cost is charged alongside: source scans stream their input
// regions through the cache model, per-element instruction budgets cover the
// user lambdas, map-side combiners generate growing-hash-table traffic, and
// shuffles serialize/deserialize through simulated spill regions.
//
// Template instantiations are intentionally few (the six workloads use a
// handful of K/V combinations), so keeping this header-only is cheap.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "data/text.h"
#include "exec/kernels.h"
#include "exec/pipeline.h"
#include "jvm/call_stack.h"
#include "minispark/spark_context.h"
#include "obs/obs.h"
#include "support/assert.h"

namespace simprof::spark {

template <typename T>
class RDD;
template <typename T>
using RddPtr = std::shared_ptr<RDD<T>>;

/// Per-operation cost hints supplied by the workload author.
struct OpCost {
  double instrs_per_element = 20;  ///< user-fn body
  double record_bytes = 12;        ///< serialized element size (shuffle/IO)
  double aux_bytes_per_element = 0;  ///< auxiliary random-access state
};

/// A shuffle dependency that may still need its map-side stage run.
class ShuffleDep {
 public:
  virtual ~ShuffleDep() = default;
  virtual bool materialized() const = 0;
  virtual void run_map_stage() = 0;
};

class RDDBase {
 public:
  explicit RDDBase(SparkContext& sc) : sc_(sc), id_(sc.next_rdd_id()) {}
  virtual ~RDDBase() = default;

  RDDBase(const RDDBase&) = delete;
  RDDBase& operator=(const RDDBase&) = delete;

  virtual std::size_t num_partitions() const = 0;

  /// Append un-materialized shuffle dependencies in topological order
  /// (ancestors first). `seen` de-duplicates diamond lineage.
  virtual void collect_pending_shuffles(
      std::vector<ShuffleDep*>& out,
      std::unordered_set<const void*>& seen) const = 0;

  SparkContext& context() const { return sc_; }
  int id() const { return id_; }

 protected:
  SparkContext& sc_;
  int id_;
};

template <typename T>
class RDD : public RDDBase {
 public:
  using element_type = T;
  using RDDBase::RDDBase;

  /// Compute partition p inside a task running on `ctx`. Charges simulated
  /// cost as a side effect and returns the real records.
  virtual std::vector<T> compute(std::size_t p,
                                 exec::ExecutorContext& ctx) = 0;
};

namespace detail {

inline std::uint32_t hash_to_partition(std::uint64_t key,
                                       std::size_t partitions) {
  std::uint64_t z = (key + 1) * 0x9e3779b97f4a7c15ULL;
  z ^= z >> 31;
  return static_cast<std::uint32_t>(z % partitions);
}

/// Run all pending shuffle map stages below `rdd`.
inline void materialize_ancestry(const RDDBase& rdd) {
  std::vector<ShuffleDep*> pending;
  std::unordered_set<const void*> seen;
  rdd.collect_pending_shuffles(pending, seen);
  for (ShuffleDep* dep : pending) {
    if (!dep->materialized()) dep->run_map_stage();
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// In-memory partitioned source (sc.parallelize). Reading a partition scans
/// its simulated region (deserialization cost), like a cached RDD block.
template <typename T>
class ParallelizeRDD final : public RDD<T> {
 public:
  ParallelizeRDD(SparkContext& sc, std::vector<std::vector<T>> partitions,
                 double bytes_per_element, std::string name)
      : RDD<T>(sc),
        partitions_(std::move(partitions)),
        bytes_per_element_(bytes_per_element),
        name_(std::move(name)),
        read_method_(sc.cluster().methods().intern(
            "org.apache.spark.rdd.ParallelCollectionRDD.compute[" + name_ + "]",
            jvm::OpKind::kIo)) {
    regions_.reserve(partitions_.size());
    for (const auto& p : partitions_) {
      const auto bytes = static_cast<std::uint64_t>(
          bytes_per_element_ * static_cast<double>(p.size())) + 64;
      regions_.push_back(sc.cluster().address_space().allocate(bytes));
    }
  }

  std::size_t num_partitions() const override { return partitions_.size(); }

  void collect_pending_shuffles(
      std::vector<ShuffleDep*>&, std::unordered_set<const void*>&) const override {}

  std::vector<T> compute(std::size_t p, exec::ExecutorContext& ctx) override {
    SIMPROF_EXPECTS(p < partitions_.size(), "partition out of range");
    const auto bytes = static_cast<std::uint64_t>(
        bytes_per_element_ * static_cast<double>(partitions_[p].size()));
    const double rate = this->sc_.costs().scan_instrs_per_byte * 0.4;
    if (auto* b = ctx.batcher()) {
      b->add(read_method_,
             static_cast<std::uint64_t>(rate * static_cast<double>(bytes)),
             std::make_unique<hw::SequentialStream>(regions_[p], bytes));
    } else {
      jvm::MethodScope scope(ctx.stack(), read_method_);
      exec::scan_region(ctx, regions_[p], bytes, rate);
    }
    return partitions_[p];
  }

  std::uint64_t region(std::size_t p) const { return regions_[p]; }

 private:
  std::vector<std::vector<T>> partitions_;
  double bytes_per_element_;
  std::string name_;
  jvm::MethodId read_method_;
  std::vector<std::uint64_t> regions_;
};

/// HDFS text source: partitions a corpus's documents into splits; computing
/// a partition streams the split's bytes (HadoopRDD read + line record
/// parsing) and yields document ids.
class TextFileRDD final : public RDD<std::uint64_t> {
 public:
  TextFileRDD(SparkContext& sc, const data::TextCorpus& corpus,
              std::size_t num_splits)
      : RDD<std::uint64_t>(sc), corpus_(&corpus) {
    SIMPROF_EXPECTS(num_splits > 0, "need at least one split");
    const std::size_t docs = corpus.num_docs();
    const std::size_t per = (docs + num_splits - 1) / num_splits;
    for (std::size_t start = 0; start < docs; start += per) {
      const std::size_t end = std::min(docs, start + per);
      std::uint64_t bytes = 0;
      for (std::size_t d = start; d < end; ++d) {
        for (data::WordId w : corpus.doc(d)) {
          bytes += data::TextCorpus::word_bytes(w);
        }
      }
      splits_.push_back(Split{start, end, bytes,
                              sc.cluster().address_space().allocate(bytes)});
    }
  }

  std::size_t num_partitions() const override { return splits_.size(); }

  void collect_pending_shuffles(
      std::vector<ShuffleDep*>&, std::unordered_set<const void*>&) const override {}

  std::vector<std::uint64_t> compute(std::size_t p,
                                     exec::ExecutorContext& ctx) override {
    SIMPROF_EXPECTS(p < splits_.size(), "split out of range");
    const Split& s = splits_[p];
    const double rate = sc_.costs().scan_instrs_per_byte;
    if (auto* b = ctx.batcher()) {
      b->add(sc_.methods().hadoop_rdd_read,
             static_cast<std::uint64_t>(rate * static_cast<double>(s.bytes)),
             std::make_unique<hw::SequentialStream>(s.region, s.bytes));
    } else {
      jvm::MethodScope scope(ctx.stack(), sc_.methods().hadoop_rdd_read);
      exec::scan_region(ctx, s.region, s.bytes, rate);
    }
    std::vector<std::uint64_t> docs;
    docs.reserve(s.doc_end - s.doc_begin);
    for (std::size_t d = s.doc_begin; d < s.doc_end; ++d) docs.push_back(d);
    return docs;
  }

  const data::TextCorpus& corpus() const { return *corpus_; }
  std::uint64_t split_bytes(std::size_t p) const { return splits_[p].bytes; }

 private:
  struct Split {
    std::size_t doc_begin = 0;
    std::size_t doc_end = 0;
    std::uint64_t bytes = 0;
    std::uint64_t region = 0;
  };
  const data::TextCorpus* corpus_;
  std::vector<Split> splits_;
};

// ---------------------------------------------------------------------------
// Narrow transformations (pipelined within a stage)
// ---------------------------------------------------------------------------

template <typename U, typename T>
class FlatMapRDD final : public RDD<U> {
 public:
  using Fn = std::function<void(const T&, std::vector<U>&)>;

  FlatMapRDD(RddPtr<T> parent, std::string name, jvm::OpKind kind,
             OpCost cost, Fn fn)
      : RDD<U>(parent->context()),
        parent_(std::move(parent)),
        cost_(cost),
        fn_(std::move(fn)),
        method_(this->sc_.cluster().methods().intern(name, kind)) {
    if (cost_.aux_bytes_per_element > 0) {
      aux_region_ = this->sc_.cluster().address_space().allocate(
          1 << 22);  // 4 MiB auxiliary state region
    }
  }

  std::size_t num_partitions() const override {
    return parent_->num_partitions();
  }

  void collect_pending_shuffles(
      std::vector<ShuffleDep*>& out,
      std::unordered_set<const void*>& seen) const override {
    parent_->collect_pending_shuffles(out, seen);
  }

  std::vector<U> compute(std::size_t p, exec::ExecutorContext& ctx) override {
    // Narrow transformations are iterator-pipelined in Spark: the consumer's
    // frame sits above the producer's on the stack (the consumer pulls), and
    // producer/consumer work interleaves at record granularity. With a
    // batcher attached (the normal task path) the parent's deferred items
    // are prefixed with this operator's frame and everything is flushed in
    // interleaved slices — pipelined operations fuse into one phase, as in
    // the paper's Figure 14.
    exec::PipelineBatcher* b = ctx.batcher();
    std::vector<T> in;
    {
      exec::PipelineFrame pframe(b, method_);
      jvm::MethodScope scope(ctx.stack(), method_);
      in = parent_->compute(p, ctx);
    }
    std::vector<U> out;
    out.reserve(in.size());
    for (const T& e : in) fn_(e, out);
    const auto instrs = static_cast<std::uint64_t>(
        cost_.instrs_per_element * static_cast<double>(in.size()) +
        0.5 * cost_.instrs_per_element * static_cast<double>(out.size()));
    std::unique_ptr<hw::AccessStream> aux;
    if (cost_.aux_bytes_per_element > 0) {
      aux = std::make_unique<hw::RandomStream>(
          aux_region_, 1 << 22,
          static_cast<std::uint64_t>(cost_.aux_bytes_per_element *
                                     static_cast<double>(in.size()) / 64.0) +
              1,
          ctx.rng());
    }
    if (b != nullptr) {
      b->add(method_, instrs, std::move(aux));
    } else {
      jvm::MethodScope scope(ctx.stack(), method_);
      ctx.execute(instrs, aux.get());
    }
    return out;
  }

 private:
  RddPtr<T> parent_;
  OpCost cost_;
  Fn fn_;
  jvm::MethodId method_;
  std::uint64_t aux_region_ = 0;
};

/// map / filter are flat_map specializations; see the free functions below.

/// union: concatenates two RDDs' partitions (a narrow, zero-cost dependency
/// — Spark's UnionRDD). The paper names `union` as an example of Spark
/// operations beyond map/reduce (Section II-B).
template <typename T>
class UnionRDD final : public RDD<T> {
 public:
  UnionRDD(RddPtr<T> left, RddPtr<T> right)
      : RDD<T>(left->context()),
        left_(std::move(left)),
        right_(std::move(right)) {
    SIMPROF_EXPECTS(&left_->context() == &right_->context(),
                    "union across SparkContexts");
  }

  std::size_t num_partitions() const override {
    return left_->num_partitions() + right_->num_partitions();
  }

  void collect_pending_shuffles(
      std::vector<ShuffleDep*>& out,
      std::unordered_set<const void*>& seen) const override {
    left_->collect_pending_shuffles(out, seen);
    right_->collect_pending_shuffles(out, seen);
  }

  std::vector<T> compute(std::size_t p, exec::ExecutorContext& ctx) override {
    const std::size_t nl = left_->num_partitions();
    return p < nl ? left_->compute(p, ctx) : right_->compute(p - nl, ctx);
  }

 private:
  RddPtr<T> left_;
  RddPtr<T> right_;
};

// ---------------------------------------------------------------------------
// Shuffled RDDs
// ---------------------------------------------------------------------------

/// reduceByKey with Spark's map-side combine (Aggregator.combineValuesByKey):
/// the map stage builds a per-task hash map whose region grows as distinct
/// keys accumulate — the tightly coupled map+reduce+IO phase of Figure 14.
template <typename K, typename V>
class ReduceByKeyRDD final : public RDD<std::pair<K, V>>, public ShuffleDep {
 public:
  using Pair = std::pair<K, V>;
  using CombineFn = std::function<V(const V&, const V&)>;
  using KeyHashFn = std::function<std::uint64_t(const K&)>;

  ReduceByKeyRDD(RddPtr<Pair> parent, CombineFn combine,
                 std::size_t num_partitions, OpCost cost,
                 KeyHashFn key_hash, bool map_side_combine = true)
      : RDD<Pair>(parent->context()),
        parent_(std::move(parent)),
        combine_(std::move(combine)),
        partitions_(num_partitions),
        cost_(cost),
        key_hash_(std::move(key_hash)),
        map_side_combine_(map_side_combine),
        shuffle_id_(this->sc_.next_shuffle_id()) {
    SIMPROF_EXPECTS(partitions_ > 0, "need at least one reduce partition");
  }

  std::size_t num_partitions() const override { return partitions_; }

  bool materialized() const override { return materialized_; }

  void collect_pending_shuffles(
      std::vector<ShuffleDep*>& out,
      std::unordered_set<const void*>& seen) const override {
    if (materialized_ || seen.contains(this)) return;
    parent_->collect_pending_shuffles(out, seen);
    seen.insert(this);
    out.push_back(const_cast<ReduceByKeyRDD*>(this));
  }

  void run_map_stage() override {
    SIMPROF_EXPECTS(!materialized_, "map stage already ran");
    detail::materialize_ancestry(*parent_);
    buckets_.assign(partitions_, {});

    const std::size_t map_tasks = parent_->num_partitions();
    std::vector<exec::Task> tasks;
    tasks.reserve(map_tasks);
    for (std::size_t p = 0; p < map_tasks; ++p) {
      tasks.push_back(exec::Task{
          "shuffle_map_" + std::to_string(shuffle_id_) + "_" +
              std::to_string(p),
          [this, p](exec::ExecutorContext& ctx) { map_task(p, ctx); }});
    }
    this->sc_.run_stage("shuffle_" + std::to_string(shuffle_id_),
                        /*shuffle_map=*/true, std::move(tasks));
    materialized_ = true;
  }

  std::vector<Pair> compute(std::size_t p,
                            exec::ExecutorContext& ctx) override {
    SIMPROF_EXPECTS(materialized_, "reduce side before map stage");
    SIMPROF_EXPECTS(p < partitions_, "partition out of range");
    SparkMethods& m = this->sc_.methods();
    const auto& costs = this->sc_.costs();

    // Fetch + deserialize + merge: the reader feeds the combiner iterator,
    // so with a batcher attached (the normal result-task path) both defer
    // and flush interleaved — one reduce-side phase, not two.
    exec::PipelineBatcher* b = ctx.batcher();
    std::uint64_t total = 0;
    for (const auto& run : buckets_[p]) total += run.size();
    const auto bytes = static_cast<std::uint64_t>(
        cost_.record_bytes * static_cast<double>(total));
    const auto read_instrs = static_cast<std::uint64_t>(
        costs.scan_instrs_per_byte * static_cast<double>(bytes));
    static obs::Counter& read_bytes_metric =
        obs::metrics().counter("spark.shuffle_read_bytes");
    read_bytes_metric.add(bytes);
    const std::uint64_t read_base = shuffle_region_ + p * region_stride_;
    if (b != nullptr) {
      b->add(m.shuffle_read, read_instrs,
             std::make_unique<hw::SequentialStream>(read_base, bytes));
    } else {
      jvm::MethodScope read(ctx.stack(), m.shuffle_read);
      exec::scan_region(ctx, read_base, bytes, costs.scan_instrs_per_byte);
    }
    // Merge combiners into the final per-key map.
    std::unordered_map<K, V> merged;
    {
      std::optional<jvm::MethodScope> comb;
      if (b == nullptr) comb.emplace(ctx.stack(), m.combine_combiners);
      auto charge_merge = [&](std::uint64_t elements) {
        if (elements == 0) return;
        if (b != nullptr) {
          b->add(m.combine_combiners,
                 exec::hash_aggregate_instrs(elements, costs),
                 exec::hash_aggregate_stream(ctx.rng(), reduce_region_,
                                             merged.size() * kEntryBytes,
                                             elements, 0.35, costs));
        } else {
          exec::hash_aggregate(ctx, reduce_region_,
                               merged.size() * kEntryBytes, elements, 0.35,
                               costs);
        }
      };
      merged.reserve(total);
      std::uint64_t processed = 0;
      for (const auto& run : buckets_[p]) {
        for (const auto& [k, v] : run) {
          auto [it, fresh] = merged.emplace(k, v);
          if (!fresh) it->second = combine_(it->second, v);
          if (++processed % kBlock == 0) charge_merge(kBlock);
        }
      }
      charge_merge(processed % kBlock);
    }
    std::vector<Pair> out;
    out.reserve(merged.size());
    for (auto& kv : merged) out.emplace_back(kv.first, std::move(kv.second));
    return out;
  }

 private:
  static constexpr std::uint64_t kBlock = 4096;
  static constexpr std::uint64_t kEntryBytes = 32;

  void map_task(std::size_t p, exec::ExecutorContext& ctx) {
    SparkMethods& m = this->sc_.methods();
    const auto& costs = this->sc_.costs();

    // The Aggregator pulls records straight out of the pipelined parent
    // iterator, so the whole upstream computation runs underneath the
    // combineValuesByKey frame and interleaves with the hash probes — the
    // tightly coupled map+reduce+IO phase the paper observes for wc_sp.
    exec::PipelineScope pipeline(ctx);
    exec::PipelineBatcher* b = ctx.batcher();
    std::vector<Pair> in;
    {
      exec::PipelineFrame pframe(map_side_combine_ ? b : nullptr,
                                 m.combine_values);
      in = parent_->compute(p, ctx);
    }

    // Lazily allocate the simulated shuffle regions once sizes are known.
    if (map_region_ == 0) {
      map_region_ = this->sc_.cluster().address_space().allocate(1ULL << 26);
      reduce_region_ =
          this->sc_.cluster().address_space().allocate(1ULL << 26);
      region_stride_ = (1ULL << 26) / partitions_;
      shuffle_region_ =
          this->sc_.cluster().address_space().allocate(1ULL << 26);
    }

    std::unordered_map<K, V> combined;
    if (map_side_combine_) {
      combined.reserve(in.size() / 4 + 16);
      std::uint64_t processed = 0;
      auto defer_hash = [&](std::uint64_t elements) {
        if (elements == 0) return;
        // Hot keys (low Zipf ranks) stay cache-resident: skewed probes over
        // the hash region at its size when this block ran.
        b->add(m.combine_values,
               exec::hash_aggregate_instrs(elements, costs),
               exec::hash_aggregate_stream(ctx.rng(), map_region_,
                                           combined.size() * kEntryBytes,
                                           elements, 0.80, costs));
      };
      for (const auto& [k, v] : in) {
        auto [it, fresh] = combined.emplace(k, v);
        if (!fresh) it->second = combine_(it->second, v);
        if (++processed % kBlock == 0) defer_hash(kBlock);
      }
      defer_hash(processed % kBlock);
    }
    pipeline.finish();  // charge the coupled read+map+combine mixture

    // Partition and write the shuffle output.
    {
      jvm::MethodScope write(ctx.stack(), m.shuffle_write);
      // Fast-forwarded units carry no simulated cycle times — emitting a
      // span from them would plot stale bounds in the trace.
      const bool tracing = obs::trace_enabled() && !ctx.fast_forwarding();
      const std::uint64_t write_start_cycles =
          tracing ? ctx.counters().cycles : 0;
      std::vector<std::vector<Pair>> parts(partitions_);
      auto route = [&](const Pair& kv) {
        parts[detail::hash_to_partition(key_hash_(kv.first), partitions_)]
            .push_back(kv);
      };
      if (map_side_combine_) {
        for (const auto& kv : combined) route({kv.first, kv.second});
      } else {
        for (const auto& kv : in) route(kv);
      }
      std::uint64_t out_records = 0;
      for (const auto& b : parts) out_records += b.size();
      const auto bytes = static_cast<std::uint64_t>(
          cost_.record_bytes * static_cast<double>(out_records));
      static obs::Counter& write_bytes_metric =
          obs::metrics().counter("spark.shuffle_write_bytes");
      write_bytes_metric.add(bytes);
      {
        jvm::MethodScope ser(ctx.stack(), m.serialize);
        exec::write_stream(ctx, map_region_ + (1ULL << 25), bytes,
                           /*compressed=*/false, costs);
      }
      for (std::size_t r = 0; r < partitions_; ++r) {
        if (!parts[r].empty()) buckets_[r].push_back(std::move(parts[r]));
      }
      if (tracing) {
        obs::trace_virtual_span(
            "spark.shuffle_write", write_start_cycles, ctx.counters().cycles,
            ctx.core(),
            {{"partition", p}, {"records", out_records}, {"bytes", bytes}});
      }
    }
  }

  RddPtr<Pair> parent_;
  CombineFn combine_;
  std::size_t partitions_;
  OpCost cost_;
  KeyHashFn key_hash_;
  bool map_side_combine_;
  int shuffle_id_;
  bool materialized_ = false;
  std::vector<std::vector<std::vector<Pair>>> buckets_;  // [reduce][run]
  std::uint64_t map_region_ = 0;
  std::uint64_t reduce_region_ = 0;
  std::uint64_t shuffle_region_ = 0;
  std::uint64_t region_stride_ = 1;
};

/// sortByKey: range partitioning on the map side, per-partition quicksort on
/// the reduce side (ExternalSorter). The recursive partition passes of the
/// sort produce the high intra-phase CPI variance discussed in III-B.1.
template <typename K, typename V>
class SortByKeyRDD final : public RDD<std::pair<K, V>>, public ShuffleDep {
 public:
  using Pair = std::pair<K, V>;
  using RankFn = std::function<double(const K&)>;  ///< key → [0, 1)

  SortByKeyRDD(RddPtr<Pair> parent, RankFn rank, std::size_t num_partitions,
               OpCost cost)
      : RDD<Pair>(parent->context()),
        parent_(std::move(parent)),
        rank_(std::move(rank)),
        partitions_(num_partitions),
        cost_(cost),
        shuffle_id_(this->sc_.next_shuffle_id()) {
    SIMPROF_EXPECTS(partitions_ > 0, "need at least one partition");
  }

  std::size_t num_partitions() const override { return partitions_; }
  bool materialized() const override { return materialized_; }

  void collect_pending_shuffles(
      std::vector<ShuffleDep*>& out,
      std::unordered_set<const void*>& seen) const override {
    if (materialized_ || seen.contains(this)) return;
    parent_->collect_pending_shuffles(out, seen);
    seen.insert(this);
    out.push_back(const_cast<SortByKeyRDD*>(this));
  }

  void run_map_stage() override {
    SIMPROF_EXPECTS(!materialized_, "map stage already ran");
    detail::materialize_ancestry(*parent_);
    buckets_.assign(partitions_, {});
    const std::size_t map_tasks = parent_->num_partitions();
    std::vector<exec::Task> tasks;
    tasks.reserve(map_tasks);
    for (std::size_t p = 0; p < map_tasks; ++p) {
      tasks.push_back(exec::Task{
          "sort_map_" + std::to_string(p),
          [this, p](exec::ExecutorContext& ctx) { map_task(p, ctx); }});
    }
    this->sc_.run_stage("sort_shuffle_" + std::to_string(shuffle_id_),
                        /*shuffle_map=*/true, std::move(tasks));
    materialized_ = true;
  }

  std::vector<Pair> compute(std::size_t p,
                            exec::ExecutorContext& ctx) override {
    SIMPROF_EXPECTS(materialized_, "reduce side before map stage");
    SparkMethods& m = this->sc_.methods();
    const auto& costs = this->sc_.costs();

    std::vector<Pair> all;
    {
      jvm::MethodScope read(ctx.stack(), m.shuffle_read);
      std::uint64_t total = 0;
      for (const auto& run : buckets_[p]) total += run.size();
      all.reserve(total);
      for (const auto& run : buckets_[p]) {
        all.insert(all.end(), run.begin(), run.end());
      }
      exec::scan_region(ctx, sort_region_,
                        static_cast<std::uint64_t>(cost_.record_bytes *
                                                   static_cast<double>(total)),
                        costs.scan_instrs_per_byte);
    }
    {
      jvm::MethodScope sorter(ctx.stack(), m.external_sort);
      std::stable_sort(all.begin(), all.end(),
                       [&](const Pair& a, const Pair& b) {
                         return rank_(a.first) < rank_(b.first);
                       });
      exec::quicksort_traffic(
          ctx, sort_region_, all.size(),
          static_cast<std::uint32_t>(std::max(1.0, cost_.record_bytes)),
          costs);
    }
    return all;
  }

 private:
  void map_task(std::size_t p, exec::ExecutorContext& ctx) {
    SparkMethods& m = this->sc_.methods();
    const auto& costs = this->sc_.costs();
    // The sort-shuffle writer drives the pipelined parent iterator.
    exec::PipelineScope pipeline(ctx);
    std::vector<Pair> in;
    {
      exec::PipelineFrame pframe(ctx.batcher(), m.shuffle_write);
      in = parent_->compute(p, ctx);
    }
    pipeline.finish();
    if (sort_region_ == 0) {
      sort_region_ = this->sc_.cluster().address_space().allocate(1ULL << 26);
      write_region_ = this->sc_.cluster().address_space().allocate(1ULL << 26);
    }
    jvm::MethodScope write(ctx.stack(), m.shuffle_write);
    std::vector<std::vector<Pair>> parts(partitions_);
    for (const auto& kv : in) {
      double r = rank_(kv.first);
      r = std::clamp(r, 0.0, 1.0 - 1e-12);
      parts[static_cast<std::size_t>(r * static_cast<double>(partitions_))]
          .push_back(kv);
    }
    const auto bytes = static_cast<std::uint64_t>(
        cost_.record_bytes * static_cast<double>(in.size()));
    {
      jvm::MethodScope ser(ctx.stack(), m.serialize);
      exec::write_stream(ctx, write_region_, bytes, /*compressed=*/false,
                         costs);
    }
    for (std::size_t r = 0; r < partitions_; ++r) {
      if (!parts[r].empty()) buckets_[r].push_back(std::move(parts[r]));
    }
  }

  RddPtr<Pair> parent_;
  RankFn rank_;
  std::size_t partitions_;
  OpCost cost_;
  int shuffle_id_;
  bool materialized_ = false;
  std::vector<std::vector<std::vector<Pair>>> buckets_;
  std::uint64_t sort_region_ = 0;
  std::uint64_t write_region_ = 0;
};

// ---------------------------------------------------------------------------
// Transformation factories (the user-facing API)
// ---------------------------------------------------------------------------

template <typename U, typename Rdd, typename F>
RddPtr<U> flat_map(std::shared_ptr<Rdd> parent, std::string name,
                   jvm::OpKind kind, OpCost cost, F fn) {
  using T = typename Rdd::element_type;
  return std::make_shared<FlatMapRDD<U, T>>(
      RddPtr<T>(std::move(parent)), std::move(name), kind, cost,
      typename FlatMapRDD<U, T>::Fn(std::move(fn)));
}

template <typename U, typename Rdd, typename F>
RddPtr<U> map(std::shared_ptr<Rdd> parent, std::string name, jvm::OpKind kind,
              OpCost cost, F fn) {
  using T = typename Rdd::element_type;
  return flat_map<U>(std::move(parent), std::move(name), kind, cost,
                     [fn = std::move(fn)](const T& e, std::vector<U>& out) {
                       out.push_back(fn(e));
                     });
}

template <typename Rdd, typename F>
auto filter(std::shared_ptr<Rdd> parent, std::string name, jvm::OpKind kind,
            OpCost cost, F pred) {
  using T = typename Rdd::element_type;
  return flat_map<T>(std::move(parent), std::move(name), kind, cost,
                     [pred = std::move(pred)](const T& e, std::vector<T>& out) {
                       if (pred(e)) out.push_back(e);
                     });
}

template <typename Rdd, typename F>
auto reduce_by_key(std::shared_ptr<Rdd> parent, F fn, std::size_t partitions,
                   OpCost cost) {
  using Pair = typename Rdd::element_type;
  using K = typename Pair::first_type;
  using V = typename Pair::second_type;
  return std::static_pointer_cast<RDD<Pair>>(
      std::make_shared<ReduceByKeyRDD<K, V>>(
          RddPtr<Pair>(std::move(parent)),
          typename ReduceByKeyRDD<K, V>::CombineFn(std::move(fn)), partitions,
          cost, [](const K& k) { return static_cast<std::uint64_t>(k); }));
}

template <typename Rdd, typename R>
auto sort_by_key(std::shared_ptr<Rdd> parent, R rank, std::size_t partitions,
                 OpCost cost) {
  using Pair = typename Rdd::element_type;
  using K = typename Pair::first_type;
  using V = typename Pair::second_type;
  return std::static_pointer_cast<RDD<Pair>>(
      std::make_shared<SortByKeyRDD<K, V>>(
          RddPtr<Pair>(std::move(parent)),
          typename SortByKeyRDD<K, V>::RankFn(std::move(rank)), partitions,
          cost));
}

template <typename RddA, typename RddB>
auto union_rdds(std::shared_ptr<RddA> a, std::shared_ptr<RddB> b) {
  using T = typename RddA::element_type;
  static_assert(std::is_same_v<T, typename RddB::element_type>,
                "union of RDDs with different element types");
  return std::static_pointer_cast<RDD<T>>(
      std::make_shared<UnionRDD<T>>(RddPtr<T>(std::move(a)),
                                    RddPtr<T>(std::move(b))));
}

/// distinct = map-to-pair + reduceByKey(first) + keys, like Spark's.
template <typename Rdd>
auto distinct(std::shared_ptr<Rdd> parent, std::size_t partitions,
              OpCost cost = {}) {
  using T = typename Rdd::element_type;
  auto keyed = map<std::pair<T, std::uint8_t>>(
      std::move(parent), "org.apache.spark.rdd.RDD.distinct",
      jvm::OpKind::kMap, cost,
      [](const T& e) { return std::make_pair(e, std::uint8_t{1}); });
  auto reduced = reduce_by_key(
      std::move(keyed),
      [](const std::uint8_t& a, const std::uint8_t&) { return a; },
      partitions, cost);
  return map<T>(std::move(reduced), "org.apache.spark.rdd.RDD.distinct[keys]",
                jvm::OpKind::kMap, cost,
                [](const std::pair<T, std::uint8_t>& kv) { return kv.first; });
}

/// groupByKey: shuffle all values of a key to one partition. Like Spark,
/// no map-side combine — every record crosses the shuffle (which is why the
/// paper's workloads prefer reduceByKey).
template <typename Rdd>
auto group_by_key(std::shared_ptr<Rdd> parent, std::size_t partitions,
                  OpCost cost = {}) {
  using Pair = typename Rdd::element_type;
  using K = typename Pair::first_type;
  using V = typename Pair::second_type;
  auto singletons = map<std::pair<K, std::vector<V>>>(
      std::move(parent), "org.apache.spark.rdd.PairRDDFunctions.groupByKey",
      jvm::OpKind::kMap, cost, [](const Pair& kv) {
        return std::make_pair(kv.first, std::vector<V>{kv.second});
      });
  return std::static_pointer_cast<RDD<std::pair<K, std::vector<V>>>>(
      std::make_shared<ReduceByKeyRDD<K, std::vector<V>>>(
          std::move(singletons),
          [](const std::vector<V>& a, const std::vector<V>& b) {
            std::vector<V> out = a;
            out.insert(out.end(), b.begin(), b.end());
            return out;
          },
          partitions, cost,
          [](const K& k) { return static_cast<std::uint64_t>(k); },
          /*map_side_combine=*/false));
}

/// Inner join of two pair RDDs on the key: tag each side, union, group by
/// key, emit the cross product — Spark's cogroup-based join, expressed with
/// the same primitives.
template <typename RddA, typename RddB>
auto join(std::shared_ptr<RddA> left, std::shared_ptr<RddB> right,
          std::size_t partitions, OpCost cost = {}) {
  using PairA = typename RddA::element_type;
  using PairB = typename RddB::element_type;
  using K = typename PairA::first_type;
  static_assert(std::is_same_v<K, typename PairB::first_type>,
                "join keys must match");
  using V = typename PairA::second_type;
  using W = typename PairB::second_type;
  using Tagged = std::pair<K, std::pair<std::uint8_t, std::pair<V, W>>>;

  auto tag_left = map<Tagged>(
      std::move(left), "org.apache.spark.rdd.CoGroupedRDD.compute[left]",
      jvm::OpKind::kMap, cost, [](const PairA& kv) {
        return Tagged{kv.first, {0, {kv.second, W{}}}};
      });
  auto tag_right = map<Tagged>(
      std::move(right), "org.apache.spark.rdd.CoGroupedRDD.compute[right]",
      jvm::OpKind::kMap, cost, [](const PairB& kv) {
        return Tagged{kv.first, {1, {V{}, kv.second}}};
      });
  auto grouped = group_by_key(union_rdds(tag_left, tag_right), partitions,
                              cost);
  using Out = std::pair<K, std::pair<V, W>>;
  using Grouped = typename decltype(grouped)::element_type::element_type;
  return flat_map<Out>(
      std::move(grouped), "org.apache.spark.rdd.PairRDDFunctions.join",
      jvm::OpKind::kReduce, cost,
      [](const Grouped& group, std::vector<Out>& out) {
        for (const auto& a : group.second) {
          if (a.first != 0) continue;
          for (const auto& b : group.second) {
            if (b.first != 1) continue;
            out.emplace_back(group.first,
                             std::make_pair(a.second.first, b.second.second));
          }
        }
      });
}

// ---------------------------------------------------------------------------
// Actions (trigger job execution)
// ---------------------------------------------------------------------------

/// Run the job and gather every partition's records on the driver.
template <typename T>
std::vector<T> collect(const RddPtr<T>& rdd) {
  detail::materialize_ancestry(*rdd);
  SparkContext& sc = rdd->context();
  std::vector<std::vector<T>> results(rdd->num_partitions());
  std::vector<exec::Task> tasks;
  tasks.reserve(rdd->num_partitions());
  for (std::size_t p = 0; p < rdd->num_partitions(); ++p) {
    tasks.push_back(exec::Task{
        "collect_" + std::to_string(p),
        [&rdd, &results, p](exec::ExecutorContext& ctx) {
          exec::PipelineScope pipeline(ctx);
          results[p] = rdd->compute(p, ctx);
        }});
  }
  sc.run_stage("collect", /*shuffle_map=*/false, std::move(tasks));
  std::vector<T> out;
  for (auto& r : results) {
    out.insert(out.end(), std::make_move_iterator(r.begin()),
               std::make_move_iterator(r.end()));
  }
  return out;
}

/// Run the job and count records without materializing them on the driver.
template <typename Rdd>
std::uint64_t count(const std::shared_ptr<Rdd>& rdd) {
  using T = typename Rdd::element_type;
  const RddPtr<T> typed(rdd);
  detail::materialize_ancestry(*typed);
  SparkContext& sc = typed->context();
  std::vector<std::uint64_t> counts(typed->num_partitions(), 0);
  std::vector<exec::Task> tasks;
  for (std::size_t p = 0; p < typed->num_partitions(); ++p) {
    tasks.push_back(exec::Task{
        "count_" + std::to_string(p),
        [&typed, &counts, p](exec::ExecutorContext& ctx) {
          exec::PipelineScope pipeline(ctx);
          counts[p] = typed->compute(p, ctx).size();
        }});
  }
  sc.run_stage("count", /*shuffle_map=*/false, std::move(tasks));
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  return total;
}

/// Run the job and write each partition to simulated HDFS; returns the
/// record count. `record_bytes` sizes the output traffic.
template <typename T>
std::uint64_t save_as_text_file(const RddPtr<T>& rdd, double record_bytes) {
  detail::materialize_ancestry(*rdd);
  SparkContext& sc = rdd->context();
  const std::uint64_t out_region =
      sc.cluster().address_space().allocate(1ULL << 26);
  std::vector<std::uint64_t> counts(rdd->num_partitions(), 0);
  std::vector<exec::Task> tasks;
  tasks.reserve(rdd->num_partitions());
  for (std::size_t p = 0; p < rdd->num_partitions(); ++p) {
    tasks.push_back(exec::Task{
        "save_" + std::to_string(p),
        [&rdd, &counts, &sc, out_region, record_bytes, p](
            exec::ExecutorContext& ctx) {
          exec::PipelineScope pipeline(ctx);
          std::vector<T> data = rdd->compute(p, ctx);
          pipeline.finish();
          counts[p] = data.size();
          jvm::MethodScope io(ctx.stack(), sc.methods().hdfs_write);
          exec::write_stream(
              ctx, out_region,
              static_cast<std::uint64_t>(record_bytes *
                                         static_cast<double>(data.size())),
              /*compressed=*/false, sc.costs());
        }});
  }
  sc.run_stage("saveAsTextFile", /*shuffle_map=*/false, std::move(tasks));
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  return total;
}

}  // namespace simprof::spark
