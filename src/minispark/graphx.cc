#include "minispark/graphx.h"

#include <algorithm>
#include <unordered_map>

#include "jvm/call_stack.h"
#include "support/assert.h"

namespace simprof::spark {

using data::VertexId;

GraphX::GraphX(SparkContext& sc, const data::Graph& graph)
    : sc_(sc),
      graph_(graph),
      m_load_(sc.cluster().methods().intern(
          "org.apache.spark.graphx.GraphLoader.edgeListFile",
          jvm::OpKind::kIo)),
      m_map_partitions_(sc.cluster().methods().intern(
          "org.apache.spark.rdd.RDD.mapPartitionsWithIndex",
          jvm::OpKind::kMap)),
      m_aggregate_messages_(sc.cluster().methods().intern(
          "org.apache.spark.graphx.impl.EdgePartition.aggregateMessagesEdgeScan",
          jvm::OpKind::kMap)),
      m_aggregate_using_index_(sc.cluster().methods().intern(
          "org.apache.spark.graphx.impl.ShippableVertexPartition.aggregateUsingIndex",
          jvm::OpKind::kReduce)),
      m_join_vertices_(sc.cluster().methods().intern(
          "org.apache.spark.graphx.impl.VertexRDDImpl.innerJoin",
          jvm::OpKind::kMap)),
      m_ship_vertices_(sc.cluster().methods().intern(
          "org.apache.spark.graphx.impl.ReplicatedVertexView.shipVertexAttributes",
          jvm::OpKind::kShuffle)),
      m_pregel_(sc.cluster().methods().intern(
          "org.apache.spark.graphx.Pregel.apply", jvm::OpKind::kFramework)) {
  const VertexId n = graph_.num_vertices();
  SIMPROF_EXPECTS(n > 0, "empty graph");
  const std::size_t parts = sc.default_parallelism();
  const VertexId per = static_cast<VertexId>((n + parts - 1) / parts);
  for (VertexId lo = 0; lo < n; lo += per) {
    const VertexId hi = std::min<VertexId>(n, lo + per);
    std::uint64_t edges = graph_.offsets()[hi] - graph_.offsets()[lo];
    part_lo_.push_back(lo);
    part_hi_.push_back(hi);
    part_edges_.push_back(edges);
  }
  vertex_region_bytes_ = static_cast<std::uint64_t>(n) * 16;  // id + attr
  edge_region_bytes_ = graph_.footprint_bytes();
  auto& space = sc.cluster().address_space();
  vertex_region_ = space.allocate(vertex_region_bytes_);
  edge_region_ = space.allocate(edge_region_bytes_);
  message_region_ = space.allocate(vertex_region_bytes_);
}

void GraphX::load_graph() {
  if (loaded_) return;
  std::vector<exec::Task> tasks;
  const double bytes_per_edge =
      static_cast<double>(edge_region_bytes_) /
      static_cast<double>(std::max<std::uint64_t>(graph_.num_edges(), 1));
  std::uint64_t offset = 0;
  for (std::size_t p = 0; p < part_lo_.size(); ++p) {
    const std::uint64_t bytes = static_cast<std::uint64_t>(
        bytes_per_edge * static_cast<double>(part_edges_[p]));
    tasks.push_back(exec::Task{
        "graph_load_" + std::to_string(p),
        [this, bytes, offset](exec::ExecutorContext& ctx) {
          jvm::MethodScope load(ctx.stack(), m_load_);
          jvm::MethodScope mp(ctx.stack(), m_map_partitions_);
          // Parse the text edge list (sequential) and build the partition's
          // CSR index (a second pass + per-edge insertion cost). Both are
          // sequential over same-sized regions regardless of topology — an
          // input-INsensitive phase by construction, like the paper's
          // mapPartitionsWithIndex conversion phase.
          exec::scan_region(ctx, edge_region_ + offset, bytes,
                            sc_.costs().scan_instrs_per_byte * 2.2);
          exec::scan_region(ctx, edge_region_ + offset, bytes, 1.8,
                            /*write=*/true);
        }});
    offset += bytes;
  }
  sc_.run_stage("graph_load", /*shuffle_map=*/true, std::move(tasks));
  loaded_ = true;
}

template <typename T, typename GatherFn, typename MergeFn>
std::vector<std::pair<VertexId, T>> GraphX::aggregate_messages(
    const std::vector<std::uint8_t>& active, GatherFn gather, MergeFn merge,
    std::uint64_t active_edges_estimate) {
  (void)active_edges_estimate;
  const double bytes_per_edge =
      static_cast<double>(edge_region_bytes_) /
      static_cast<double>(std::max<std::uint64_t>(graph_.num_edges(), 1));

  std::vector<std::unordered_map<VertexId, T>> partials(part_lo_.size());
  std::vector<exec::Task> tasks;
  for (std::size_t p = 0; p < part_lo_.size(); ++p) {
    tasks.push_back(exec::Task{
        "aggregate_messages_" + std::to_string(p),
        [&, p](exec::ExecutorContext& ctx) {
          jvm::MethodScope pregel(ctx.stack(), m_pregel_);
          std::unordered_map<VertexId, T>& local = partials[p];
          std::uint64_t scanned_edges = 0;
          std::uint64_t gathers = 0;
          {
            // Ship updated vertex attributes to this edge partition's local
            // mirror (ReplicatedVertexView): stream the active slice.
            jvm::MethodScope ship(ctx.stack(), m_ship_vertices_);
            std::uint64_t active_count = 0;
            for (VertexId v = part_lo_[p]; v < part_hi_[p]; ++v) {
              active_count += active[v] ? 1 : 0;
            }
            exec::write_stream(ctx, message_region_, active_count * 64,
                               /*compressed=*/true, sc_.costs());
          }
          {
            jvm::MethodScope agg(ctx.stack(), m_aggregate_messages_);
            for (VertexId v = part_lo_[p]; v < part_hi_[p]; ++v) {
              if (!active[v]) continue;
              const auto nbrs = graph_.neighbors(v);
              scanned_edges += nbrs.size();
              for (VertexId u : nbrs) {
                T msg;
                if (!gather(v, u, msg)) continue;
                ++gathers;
                auto [it, fresh] = local.emplace(u, msg);
                if (!fresh) it->second = merge(it->second, msg);
              }
            }
            // Edge scan: sequential over the touched slice of the CSR.
            exec::scan_region(
                ctx, edge_region_,
                static_cast<std::uint64_t>(
                    bytes_per_edge * static_cast<double>(scanned_edges)),
                sc_.costs().scan_instrs_per_byte * 1.6);
            // Vertex-attribute gathers: random over the vertex region —
            // destination ids are scattered, this is the expensive part.
            if (gathers > 0) {
              // ~90 virtual instructions per message: JVM boxing + closure
              // dispatch dominates GraphX's send path.
              hw::RandomStream gather_stream(vertex_region_,
                                             vertex_region_bytes_, gathers,
                                             ctx.rng());
              ctx.execute(gathers * 90, &gather_stream);
            }
          }
          {
            jvm::MethodScope idx(ctx.stack(), m_aggregate_using_index_);
            exec::hash_aggregate(ctx, message_region_, local.size() * 24,
                                 gathers, 0.30, sc_.costs());
            ctx.compute(gathers * 30);
          }
        }});
  }
  sc_.run_stage("aggregate_messages", /*shuffle_map=*/true, std::move(tasks));

  // Driver-side merge of the per-partition message maps (functional only;
  // the simulated cost of combining lives in aggregateUsingIndex above).
  std::unordered_map<VertexId, T> merged;
  for (auto& part : partials) {
    for (auto& [v, msg] : part) {
      auto [it, fresh] = merged.emplace(v, msg);
      if (!fresh) it->second = merge(it->second, msg);
    }
  }
  std::vector<std::pair<VertexId, T>> out(merged.begin(), merged.end());
  stats_.total_messages += out.size();
  return out;
}

std::vector<VertexId> GraphX::connected_components(
    std::uint32_t max_iterations) {
  load_graph();
  const VertexId n = graph_.num_vertices();
  std::vector<VertexId> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = v;
  std::vector<std::uint8_t> active(n, 1);

  stats_.iterations = 0;
  for (std::uint32_t iter = 0; iter < max_iterations; ++iter) {
    auto messages = aggregate_messages<VertexId>(
        active,
        [&](VertexId src, VertexId dst, VertexId& msg) {
          if (label[src] >= label[dst]) return false;
          msg = label[src];
          return true;
        },
        [](VertexId a, VertexId b) { return std::min(a, b); },
        graph_.num_edges());
    ++stats_.iterations;
    if (messages.empty()) break;

    // joinVertices update stage: apply min(label, message) per partition.
    std::vector<std::uint8_t> next_active(n, 0);
    std::uint64_t changed = 0;
    {
      std::vector<exec::Task> tasks;
      const std::size_t parts = part_lo_.size();
      std::vector<std::vector<std::pair<VertexId, VertexId>>> routed(parts);
      const VertexId per = part_hi_[0] - part_lo_[0];
      for (const auto& [v, msg] : messages) {
        routed[std::min<std::size_t>(v / std::max<VertexId>(per, 1),
                                     parts - 1)]
            .emplace_back(v, msg);
      }
      for (std::size_t p = 0; p < parts; ++p) {
        tasks.push_back(exec::Task{
            "join_vertices_" + std::to_string(p),
            [&, p](exec::ExecutorContext& ctx) {
              jvm::MethodScope join(ctx.stack(), m_join_vertices_);
              for (const auto& [v, msg] : routed[p]) {
                if (msg < label[v]) {
                  label[v] = msg;
                  next_active[v] = 1;
                  ++changed;
                }
              }
              exec::scan_region(
                  ctx, vertex_region_ + part_lo_[p] * 16,
                  static_cast<std::uint64_t>(part_hi_[p] - part_lo_[p]) * 16,
                  2.0, /*write=*/true);
              // Applying the messages is a scattered update pattern over
              // the vertex attributes (join by index).
              if (!routed[p].empty()) {
                hw::RandomStream updates(vertex_region_, vertex_region_bytes_,
                                         routed[p].size() * 2, ctx.rng(),
                                         /*write=*/true);
                ctx.execute(routed[p].size() * 70, &updates);
              }
            }});
      }
      sc_.run_stage("join_vertices", /*shuffle_map=*/false, std::move(tasks));
    }
    if (changed == 0) break;
    active = std::move(next_active);
  }
  return label;
}

std::vector<double> GraphX::pagerank(std::uint32_t iterations,
                                     double damping) {
  load_graph();
  const VertexId n = graph_.num_vertices();
  std::vector<double> rank(n, 1.0);
  std::vector<std::uint8_t> all_active(n, 1);

  for (std::uint32_t iter = 0; iter < iterations; ++iter) {
    std::vector<double> contrib(n, 0.0);
    for (VertexId v = 0; v < n; ++v) {
      const auto deg = graph_.out_degree(v);
      contrib[v] = deg > 0 ? rank[v] / static_cast<double>(deg) : 0.0;
    }
    auto messages = aggregate_messages<double>(
        all_active,
        [&](VertexId src, VertexId /*dst*/, double& msg) {
          msg = contrib[src];
          return msg != 0.0;
        },
        [](double a, double b) { return a + b; }, graph_.num_edges());
    ++stats_.iterations;

    std::vector<double> next(n, 1.0 - damping);
    {
      std::vector<exec::Task> tasks;
      for (std::size_t p = 0; p < part_lo_.size(); ++p) {
        tasks.push_back(exec::Task{
            "rank_update_" + std::to_string(p),
            [&, p](exec::ExecutorContext& ctx) {
              jvm::MethodScope join(ctx.stack(), m_join_vertices_);
              exec::scan_region(
                  ctx, vertex_region_ + part_lo_[p] * 16,
                  static_cast<std::uint64_t>(part_hi_[p] - part_lo_[p]) * 16,
                  2.0, /*write=*/true);
              hw::RandomStream updates(vertex_region_, vertex_region_bytes_,
                                       (part_hi_[p] - part_lo_[p]) / 2,
                                       ctx.rng(), /*write=*/true);
              ctx.execute(
                  static_cast<std::uint64_t>(part_hi_[p] - part_lo_[p]) * 35,
                  &updates);
            }});
      }
      sc_.run_stage("rank_update", /*shuffle_map=*/false, std::move(tasks));
    }
    for (const auto& [v, sum] : messages) next[v] += damping * sum;
    rank = std::move(next);
  }
  return rank;
}

}  // namespace simprof::spark
