// Pre-interned Spark framework method names.
//
// Names follow the real Spark call stacks the paper shows in Figure 5 and
// discusses in Section IV-F (Executor$TaskRunner, Aggregator.
// combineValuesByKey, shuffle reader/writer, HDFS IO), so SimProf phase
// centers resolve to recognizable methods.
#pragma once

#include "jvm/method.h"

namespace simprof::spark {

struct SparkMethods {
  explicit SparkMethods(jvm::MethodRegistry& reg)
      : executor_run(reg.intern("org.apache.spark.executor.Executor$TaskRunner.run",
                                jvm::OpKind::kFramework)),
        shuffle_map_task(reg.intern("org.apache.spark.scheduler.ShuffleMapTask.runTask",
                                    jvm::OpKind::kFramework)),
        result_task(reg.intern("org.apache.spark.scheduler.ResultTask.runTask",
                               jvm::OpKind::kFramework)),
        hadoop_rdd_read(reg.intern("org.apache.spark.rdd.HadoopRDD.compute",
                                   jvm::OpKind::kIo)),
        combine_values(reg.intern("org.apache.spark.Aggregator.combineValuesByKey",
                                  jvm::OpKind::kReduce)),
        combine_combiners(reg.intern("org.apache.spark.Aggregator.combineCombinersByKey",
                                     jvm::OpKind::kReduce)),
        shuffle_write(reg.intern("org.apache.spark.shuffle.sort.SortShuffleWriter.write",
                                 jvm::OpKind::kShuffle)),
        shuffle_read(reg.intern("org.apache.spark.shuffle.BlockStoreShuffleReader.read",
                                jvm::OpKind::kShuffle)),
        serialize(reg.intern("org.apache.spark.serializer.JavaSerializationStream.writeObject",
                             jvm::OpKind::kIo)),
        hdfs_write(reg.intern("org.apache.hadoop.hdfs.DFSOutputStream.write",
                              jvm::OpKind::kIo)),
        external_sort(reg.intern("org.apache.spark.util.collection.ExternalSorter.insertAll",
                                 jvm::OpKind::kSort)) {}

  jvm::MethodId executor_run;
  jvm::MethodId shuffle_map_task;
  jvm::MethodId result_task;
  jvm::MethodId hadoop_rdd_read;
  jvm::MethodId combine_values;
  jvm::MethodId combine_combiners;
  jvm::MethodId shuffle_write;
  jvm::MethodId shuffle_read;
  jvm::MethodId serialize;
  jvm::MethodId hdfs_write;
  jvm::MethodId external_sort;
};

}  // namespace simprof::spark
