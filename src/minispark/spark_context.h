// SparkContext: the driver for the MiniSpark engine.
//
// Mirrors the execution model of Section II-A: jobs are DAGs of stages split
// at shuffle boundaries; each stage spawns one task per partition; executor
// threads live for the whole job (one per simulated core). The RDD layer
// (rdd.h) builds lineage lazily and calls back into run_stage to execute.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/text.h"
#include "exec/cluster.h"
#include "exec/kernels.h"
#include "minispark/names.h"
#include "support/rng.h"

namespace simprof::spark {

struct SparkConfig {
  /// Default partitions per stage ≈ partitions_per_core × cores, like
  /// spark.default.parallelism.
  std::uint32_t partitions_per_core = 3;
  exec::KernelCosts costs;
};

class SparkContext {
 public:
  SparkContext(exec::Cluster& cluster, SparkConfig cfg = {});

  exec::Cluster& cluster() { return cluster_; }
  const SparkConfig& config() const { return cfg_; }
  const exec::KernelCosts& costs() const { return cfg_.costs; }
  SparkMethods& methods() { return methods_; }

  std::uint32_t default_parallelism() const {
    return cfg_.partitions_per_core * cluster_.num_cores();
  }

  int next_rdd_id() { return rdd_counter_++; }
  int next_shuffle_id() { return shuffle_counter_++; }

  /// Execute one stage. Each task body runs under the standard executor /
  /// task-runner framework frames; `shuffle_map` picks the Spark task type
  /// frame (ShuffleMapTask vs ResultTask).
  void run_stage(const std::string& stage_name, bool shuffle_map,
                 std::vector<exec::Task> tasks);

  std::uint32_t stages_run() const { return stages_run_; }

 private:
  exec::Cluster& cluster_;
  SparkConfig cfg_;
  SparkMethods methods_;
  int rdd_counter_ = 0;
  int shuffle_counter_ = 0;
  std::uint32_t stages_run_ = 0;
};

}  // namespace simprof::spark
