// The evaluated benchmark suite (Table I): Sort, WordCount, Grep, NaiveBayes,
// Connected Components and PageRank, each on both MiniHadoop ("_hp") and
// MiniSpark ("_sp") — twelve configurations.
//
// Each workload is a function from (cluster, params) to a functional result;
// profiling is orthogonal (attach a ProfilingHook to the cluster before
// running). Data sizes scale linearly with params.scale so tests can run
// tiny instances of exactly the code the benches run at full size.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exec/cluster.h"

namespace simprof::workloads {

enum class Framework { kSpark, kHadoop };

std::string_view to_string(Framework fw);

struct WorkloadParams {
  double scale = 1.0;            ///< linear data-volume scale factor
  std::uint64_t seed = 42;       ///< data-synthesis seed
  std::string graph_input = "Google";      ///< Table II catalog entry
  std::uint32_t graph_scale_override = 0;  ///< 2^x vertices; 0 = entry value
  std::uint32_t max_iterations = 20;       ///< graph-workload iteration cap
};

struct WorkloadResult {
  std::uint64_t records_out = 0;  ///< output record count
  std::uint64_t checksum = 0;     ///< workload-specific functional digest
  std::uint32_t iterations = 0;   ///< iterations executed (graph workloads)
};

using WorkloadFn = WorkloadResult (*)(exec::Cluster&, const WorkloadParams&);

struct WorkloadInfo {
  std::string name;       ///< e.g. "wc_sp"
  std::string benchmark;  ///< e.g. "WordCount"
  Framework framework = Framework::kSpark;
  bool graph_workload = false;
  WorkloadFn run = nullptr;
};

/// All twelve Table I configurations, Hadoop first then Spark, in the
/// paper's benchmark order (sort, wc, grep, bayes, cc, rank).
const std::vector<WorkloadInfo>& all_workloads();

/// Lookup by name ("wc_sp", "rank_hp", …); contract violation on unknown.
const WorkloadInfo& workload(std::string_view name);

// Individual entry points (exposed for focused tests).
WorkloadResult run_sort_spark(exec::Cluster&, const WorkloadParams&);
WorkloadResult run_wordcount_spark(exec::Cluster&, const WorkloadParams&);
WorkloadResult run_grep_spark(exec::Cluster&, const WorkloadParams&);
WorkloadResult run_bayes_spark(exec::Cluster&, const WorkloadParams&);
WorkloadResult run_sort_hadoop(exec::Cluster&, const WorkloadParams&);
WorkloadResult run_wordcount_hadoop(exec::Cluster&, const WorkloadParams&);
WorkloadResult run_grep_hadoop(exec::Cluster&, const WorkloadParams&);
WorkloadResult run_bayes_hadoop(exec::Cluster&, const WorkloadParams&);
WorkloadResult run_cc_spark(exec::Cluster&, const WorkloadParams&);
WorkloadResult run_rank_spark(exec::Cluster&, const WorkloadParams&);
WorkloadResult run_cc_hadoop(exec::Cluster&, const WorkloadParams&);
WorkloadResult run_rank_hadoop(exec::Cluster&, const WorkloadParams&);

// Shared synthesis helpers (used by tests to rebuild the same inputs).
namespace detail {
struct TextScale {
  std::uint64_t num_words;
  std::uint32_t vocabulary;
};
TextScale text_scale(double scale);
}  // namespace detail

}  // namespace simprof::workloads
