// The four text/record workloads on MiniSpark. Each mirrors its
// BigDataBench implementation shape: WordCount is the Figure 1 program
// verbatim (flatMap → map → reduceByKey → saveAsTextFile).
#include <cstdint>
#include <utility>

#include "data/text.h"
#include "minispark/rdd.h"
#include "workloads/workloads.h"

namespace simprof::workloads {
namespace {

using data::TextCorpus;
using data::WordId;
using spark::OpCost;
using spark::RddPtr;

data::TextConfig corpus_config(const WorkloadParams& p,
                               std::uint32_t num_classes = 0) {
  const auto ts = detail::text_scale(p.scale);
  data::TextConfig cfg;
  cfg.num_words = ts.num_words;
  cfg.vocabulary = ts.vocabulary;
  cfg.zipf_skew = 1.0;
  cfg.mean_doc_words = 160;
  cfg.seed = p.seed;
  cfg.num_classes = num_classes;
  // Labeled corpora (NaiveBayes) halve the vocabulary: the model key space
  // is classes × words, and the full vocabulary would make the combiner
  // working set unrealistically exceed memory at this scale.
  if (num_classes > 0) cfg.vocabulary /= 2;
  return cfg;
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 0x100000001b3ULL;
}

/// docs → words pipeline shared by wc/sort/bayes.
RddPtr<WordId> tokenized_words(spark::SparkContext& sc,
                               const TextCorpus& corpus,
                               std::size_t splits) {
  auto lines = std::make_shared<spark::TextFileRDD>(sc, corpus, splits);
  return spark::flat_map<WordId>(
      lines, "org.apache.spark.examples.WordCount$$anonfun$tokenize",
      jvm::OpKind::kMap, OpCost{.instrs_per_element = 1400, .record_bytes = 8},
      [&corpus](const std::uint64_t& doc, std::vector<WordId>& out) {
        const auto words = corpus.doc(doc);
        out.insert(out.end(), words.begin(), words.end());
      });
}

}  // namespace

WorkloadResult run_wordcount_spark(exec::Cluster& cluster,
                                   const WorkloadParams& p) {
  const auto corpus_sp = TextCorpus::synthesize_shared(corpus_config(p));
  const TextCorpus& corpus = *corpus_sp;
  spark::SparkContext sc(cluster);
  const std::size_t splits = sc.default_parallelism() + cluster.num_cores() / 2;

  auto words = tokenized_words(sc, corpus, splits);
  auto pairs = spark::map<std::pair<WordId, std::uint64_t>>(
      words, "org.apache.spark.examples.WordCount$$anonfun$toPair",
      jvm::OpKind::kMap, OpCost{.instrs_per_element = 9, .record_bytes = 12},
      [](const WordId& w) { return std::make_pair(w, std::uint64_t{1}); });
  auto counts = spark::reduce_by_key(
      pairs, [](const std::uint64_t& a, const std::uint64_t& b) { return a + b; },
      sc.default_parallelism() / 2,
      OpCost{.instrs_per_element = 30, .record_bytes = 12});

  WorkloadResult res;
  res.records_out = spark::save_as_text_file(counts, /*record_bytes=*/14.0);
  // Functional digest: total count must equal the corpus word count.
  auto collected = spark::collect(counts);
  std::uint64_t total = 0, h = 0xcbf29ce484222325ULL;
  for (const auto& [w, c] : collected) {
    total += c;
    h = fnv_mix(h, (static_cast<std::uint64_t>(w) << 32) | c);
  }
  SIMPROF_ASSERT(total == corpus.words().size(),
                 "wordcount lost or duplicated words");
  res.checksum = h;
  cluster.finish();
  return res;
}

WorkloadResult run_sort_spark(exec::Cluster& cluster,
                              const WorkloadParams& p) {
  const auto corpus_sp = TextCorpus::synthesize_shared(corpus_config(p));
  const TextCorpus& corpus = *corpus_sp;
  spark::SparkContext sc(cluster);
  const std::size_t splits = sc.default_parallelism() + cluster.num_cores() / 2;
  const double vocab = static_cast<double>(corpus.vocabulary());

  auto words = tokenized_words(sc, corpus, splits);
  auto pairs = spark::map<std::pair<WordId, std::uint32_t>>(
      words, "org.apache.spark.examples.Sort$$anonfun$toPair",
      jvm::OpKind::kMap, OpCost{.instrs_per_element = 8, .record_bytes = 12},
      [](const WordId& w) { return std::make_pair(w, std::uint32_t{1}); });
  auto sorted = spark::sort_by_key(
      pairs, [vocab](const WordId& w) { return static_cast<double>(w) / vocab; },
      sc.default_parallelism() / 2,
      OpCost{.instrs_per_element = 24, .record_bytes = 12});

  WorkloadResult res;
  auto out = spark::collect(sorted);
  res.records_out = out.size();
  SIMPROF_ASSERT(out.size() == corpus.words().size(), "sort dropped records");
  std::uint64_t h = 0xcbf29ce484222325ULL;
  WordId prev = 0;
  bool is_sorted = true;
  // Partitions are range-contiguous, so the concatenation must be sorted.
  for (const auto& [w, v] : out) {
    (void)v;
    if (w < prev) is_sorted = false;
    prev = w;
    h = fnv_mix(h, w);
  }
  SIMPROF_ASSERT(is_sorted, "sort output out of order");
  res.checksum = h;
  cluster.finish();
  return res;
}

WorkloadResult run_grep_spark(exec::Cluster& cluster,
                              const WorkloadParams& p) {
  // Grep streams far more raw text per unit of downstream work than the
  // other microbenchmarks; BigDataBench feeds it the same 10G input, so the
  // corpus here is scaled up to keep the run length comparable.
  WorkloadParams grep_params = p;
  grep_params.scale = p.scale * 4.0;
  const auto corpus_sp =
      TextCorpus::synthesize_shared(corpus_config(grep_params));
  const TextCorpus& corpus = *corpus_sp;
  spark::SparkContext sc(cluster);
  const std::size_t splits = sc.default_parallelism() + cluster.num_cores() / 2;
  // Pattern: a mid-frequency word — rare enough that matches are selective.
  const WordId pattern = static_cast<WordId>(corpus.vocabulary() / 64 + 3);

  auto lines = std::make_shared<spark::TextFileRDD>(sc, corpus, splits);
  auto matches = spark::filter(
      lines, "org.apache.spark.examples.Grep$$anonfun$matches",
      jvm::OpKind::kMap, OpCost{.instrs_per_element = 4600, .record_bytes = 900},
      [&corpus, pattern](const std::uint64_t& doc) {
        for (WordId w : corpus.doc(doc)) {
          if (w == pattern) return true;
        }
        return false;
      });

  WorkloadResult res;
  res.records_out = spark::save_as_text_file(matches, /*record_bytes=*/900.0);
  std::uint64_t expected = 0;
  for (std::size_t d = 0; d < corpus.num_docs(); ++d) {
    for (WordId w : corpus.doc(d)) {
      if (w == pattern) {
        ++expected;
        break;
      }
    }
  }
  SIMPROF_ASSERT(res.records_out == expected, "grep match count wrong");
  res.checksum = expected;
  cluster.finish();
  return res;
}

WorkloadResult run_bayes_spark(exec::Cluster& cluster,
                               const WorkloadParams& p) {
  constexpr std::uint32_t kClasses = 4;
  const auto corpus_sp =
      TextCorpus::synthesize_shared(corpus_config(p, kClasses));
  const TextCorpus& corpus = *corpus_sp;
  spark::SparkContext sc(cluster);
  const std::size_t splits = sc.default_parallelism() + cluster.num_cores() / 2;

  auto lines = std::make_shared<spark::TextFileRDD>(sc, corpus, splits);
  // Training: emit ((label, word) → 1) for every token; the 64-bit key packs
  // label and word so the standard reduceByKey path aggregates the model.
  auto events = spark::flat_map<std::pair<std::uint64_t, std::uint64_t>>(
      lines, "org.apache.spark.mllib.classification.NaiveBayes$$anonfun$train",
      jvm::OpKind::kMap,
      OpCost{.instrs_per_element = 2400,
             .record_bytes = 16,
             .aux_bytes_per_element = 24},
      [&corpus](const std::uint64_t& doc,
                std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) {
        const std::uint64_t label = corpus.label(doc);
        for (WordId w : corpus.doc(doc)) {
          out.emplace_back((label << 32) | w, 1);
        }
      });
  auto model = spark::reduce_by_key(
      events,
      [](const std::uint64_t& a, const std::uint64_t& b) { return a + b; },
      sc.default_parallelism() / 2,
      OpCost{.instrs_per_element = 34, .record_bytes = 16});

  WorkloadResult res;
  auto counts = spark::collect(model);
  std::uint64_t total = 0, h = 0xcbf29ce484222325ULL;
  for (const auto& [k, c] : counts) {
    total += c;
    h = fnv_mix(h, k * 31 + c);
  }
  SIMPROF_ASSERT(total == corpus.words().size(),
                 "bayes event counts inconsistent");
  res.records_out = counts.size();
  res.checksum = h;
  cluster.finish();
  return res;
}

}  // namespace simprof::workloads
