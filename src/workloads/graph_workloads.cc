// Graph-analytics workloads (Table I: Connected Components, PageRank) on
// both frameworks. Spark versions run on mini-GraphX (Pregel iterations);
// Hadoop versions chain one MapReduce job per iteration, the classic
// Pegasus-style formulation — which is why the paper sees far fewer phases
// on Hadoop (one map + one reduce operation repeated) than on GraphX.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>

#include "data/catalog.h"
#include "data/graph.h"
#include "minihadoop/hadoop.h"
#include "minispark/graphx.h"
#include "workloads/workloads.h"

namespace simprof::workloads {
namespace {

using data::Graph;
using data::VertexId;

std::shared_ptr<const Graph> load_graph(const WorkloadParams& p,
                                        bool symmetrize,
                                        std::uint32_t default_scale) {
  // Paper graphs have 2^20–2^24 vertices; scaled down 1/16–1/128 with the
  // rest of the environment. Tests override with smaller scales.
  const std::uint32_t scale =
      p.graph_scale_override != 0 ? p.graph_scale_override : default_scale;
  auto entry = data::catalog_entry(p.graph_input, scale);
  entry.kron.seed ^= p.seed * 0x9e37ULL;
  return data::kronecker_graph_shared(entry.kron, symmetrize);
}

std::uint64_t label_checksum(const std::vector<VertexId>& labels) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (VertexId l : labels) h = (h ^ l) * 0x100000001b3ULL;
  return h;
}

}  // namespace

WorkloadResult run_cc_spark(exec::Cluster& cluster, const WorkloadParams& p) {
  const auto g_sp = load_graph(p, /*symmetrize=*/true, /*default_scale=*/17);
  const Graph& g = *g_sp;
  spark::SparkContext sc(cluster);
  spark::GraphX graphx(sc, g);
  auto labels = graphx.connected_components(p.max_iterations);

  WorkloadResult res;
  res.iterations = graphx.stats().iterations;
  res.records_out = labels.size();
  res.checksum = label_checksum(labels);
  cluster.finish();
  return res;
}

WorkloadResult run_rank_spark(exec::Cluster& cluster,
                              const WorkloadParams& p) {
  const auto g_sp = load_graph(p, /*symmetrize=*/false, /*default_scale=*/16);
  const Graph& g = *g_sp;
  spark::SparkContext sc(cluster);
  spark::GraphX graphx(sc, g);
  const std::uint32_t iters = std::min<std::uint32_t>(p.max_iterations, 10);
  auto ranks = graphx.pagerank(iters);

  WorkloadResult res;
  res.iterations = iters;
  res.records_out = ranks.size();
  double sum = 0.0;
  for (double r : ranks) sum += r;
  res.checksum = static_cast<std::uint64_t>(sum * 1000.0);
  cluster.finish();
  return res;
}

WorkloadResult run_cc_hadoop(exec::Cluster& cluster,
                             const WorkloadParams& p) {
  const auto g_sp = load_graph(p, /*symmetrize=*/true, /*default_scale=*/17);
  const Graph& g = *g_sp;
  const VertexId n = g.num_vertices();
  std::vector<VertexId> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = v;
  std::vector<std::uint8_t> active(n, 1);

  WorkloadResult res;
  const double bytes_per_vertex =
      static_cast<double>(g.footprint_bytes()) / static_cast<double>(n);

  for (std::uint32_t iter = 0; iter < p.max_iterations; ++iter) {
    // One MR job per iteration: mappers propagate labels along edges of
    // active vertices; reducers take the min label per vertex.
    std::vector<VertexId> frontier;
    for (VertexId v = 0; v < n; ++v) {
      if (active[v]) frontier.push_back(v);
    }
    if (frontier.empty()) break;

    hadoop::JobSpec<VertexId, VertexId, VertexId> spec;
    spec.job_name = "cc_iter" + std::to_string(iter);
    spec.mapper_name = "pegasus.ConCmptBlock$MapStage1.map";
    spec.reducer_name = "pegasus.ConCmptBlock$RedStage1.reduce";
    spec.map_fn = [&](const VertexId& v,
                      std::vector<std::pair<VertexId, VertexId>>& out) {
      const VertexId lv = label[v];
      out.emplace_back(v, lv);
      for (VertexId u : g.neighbors(v)) {
        if (lv < label[u]) out.emplace_back(u, lv);
      }
    };
    spec.combine_fn = [](const VertexId& a, const VertexId& b) {
      return std::min(a, b);
    };
    spec.reduce_fn = [](const VertexId&, const std::vector<VertexId>& vs) {
      return *std::min_element(vs.begin(), vs.end());
    };
    spec.map_instrs_per_record = 150;
    spec.map_instrs_per_emit = 22;

    hadoop::MapReduceJob<VertexId, VertexId, VertexId> job(
        cluster, hadoop::HadoopConfig{}, spec);
    auto out = job.run(hadoop::make_splits(
        frontier, 3 * cluster.num_cores(), bytes_per_vertex));

    std::uint64_t changed = 0;
    std::fill(active.begin(), active.end(), 0);
    for (const auto& [v, min_label] : out) {
      if (min_label < label[v]) {
        label[v] = min_label;
        active[v] = 1;
        ++changed;
      }
    }
    ++res.iterations;
    if (changed == 0) break;
  }
  res.records_out = n;
  res.checksum = label_checksum(label);
  cluster.finish();
  return res;
}

WorkloadResult run_rank_hadoop(exec::Cluster& cluster,
                               const WorkloadParams& p) {
  const auto g_sp = load_graph(p, /*symmetrize=*/false, /*default_scale=*/16);
  const Graph& g = *g_sp;
  const VertexId n = g.num_vertices();
  std::vector<double> rank(n, 1.0);
  constexpr double kDamping = 0.85;
  const std::uint32_t iters = std::min<std::uint32_t>(p.max_iterations, 8);
  const double bytes_per_vertex =
      static_cast<double>(g.footprint_bytes()) / static_cast<double>(n);

  std::vector<VertexId> vertices(n);
  for (VertexId v = 0; v < n; ++v) vertices[v] = v;

  WorkloadResult res;
  for (std::uint32_t iter = 0; iter < iters; ++iter) {
    hadoop::JobSpec<VertexId, VertexId, double> spec;
    spec.job_name = "rank_iter" + std::to_string(iter);
    spec.mapper_name = "pegasus.PagerankNaive$MapStage1.map";
    spec.reducer_name = "pegasus.PagerankNaive$RedStage1.reduce";
    spec.map_fn = [&](const VertexId& v,
                      std::vector<std::pair<VertexId, double>>& out) {
      const auto deg = g.out_degree(v);
      if (deg == 0) return;
      const double contrib = rank[v] / static_cast<double>(deg);
      for (VertexId u : g.neighbors(v)) out.emplace_back(u, contrib);
    };
    spec.combine_fn = [](const double& a, const double& b) { return a + b; };
    spec.reduce_fn = [](const VertexId&, const std::vector<double>& vs) {
      double s = 0.0;
      for (double v : vs) s += v;
      return s;
    };
    spec.map_instrs_per_record = 150;
    spec.map_instrs_per_emit = 20;
    spec.pair_bytes = 16;

    hadoop::MapReduceJob<VertexId, VertexId, double> job(
        cluster, hadoop::HadoopConfig{}, spec);
    auto out = job.run(hadoop::make_splits(vertices, 3 * cluster.num_cores(),
                                           bytes_per_vertex));
    std::vector<double> next(n, 1.0 - kDamping);
    for (const auto& [v, sum] : out) next[v] += kDamping * sum;
    rank = std::move(next);
    ++res.iterations;
  }
  res.records_out = n;
  double sum = 0.0;
  for (double r : rank) sum += r;
  res.checksum = static_cast<std::uint64_t>(sum * 1000.0);
  cluster.finish();
  return res;
}

}  // namespace simprof::workloads
