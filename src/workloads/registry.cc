#include "workloads/workloads.h"

#include "support/assert.h"

namespace simprof::workloads {

std::string_view to_string(Framework fw) {
  return fw == Framework::kSpark ? "spark" : "hadoop";
}

const std::vector<WorkloadInfo>& all_workloads() {
  static const std::vector<WorkloadInfo> registry = {
      {"sort_hp", "Sort", Framework::kHadoop, false, run_sort_hadoop},
      {"sort_sp", "Sort", Framework::kSpark, false, run_sort_spark},
      {"wc_hp", "WordCount", Framework::kHadoop, false, run_wordcount_hadoop},
      {"wc_sp", "WordCount", Framework::kSpark, false, run_wordcount_spark},
      {"grep_hp", "Grep", Framework::kHadoop, false, run_grep_hadoop},
      {"grep_sp", "Grep", Framework::kSpark, false, run_grep_spark},
      {"bayes_hp", "NaiveBayes", Framework::kHadoop, false, run_bayes_hadoop},
      {"bayes_sp", "NaiveBayes", Framework::kSpark, false, run_bayes_spark},
      {"cc_hp", "ConnectedComponents", Framework::kHadoop, true,
       run_cc_hadoop},
      {"cc_sp", "ConnectedComponents", Framework::kSpark, true, run_cc_spark},
      {"rank_hp", "PageRank", Framework::kHadoop, true, run_rank_hadoop},
      {"rank_sp", "PageRank", Framework::kSpark, true, run_rank_spark},
  };
  return registry;
}

const WorkloadInfo& workload(std::string_view name) {
  for (const auto& w : all_workloads()) {
    if (w.name == name) return w;
  }
  SIMPROF_EXPECTS(false, "unknown workload: " + std::string(name));
  static WorkloadInfo dummy;
  return dummy;
}

namespace detail {

TextScale text_scale(double scale) {
  SIMPROF_EXPECTS(scale > 0.0, "scale must be positive");
  auto words = static_cast<std::uint64_t>(8.0e6 * scale);
  if (words < 20'000) words = 20'000;
  // Vocabulary scales sub-linearly (Heaps' law-ish) and is kept large enough
  // that combiner hash tables outgrow the LLC at full scale.
  auto vocab = static_cast<std::uint32_t>(
      static_cast<double>(std::uint32_t{1} << 18) *
      (scale >= 1.0 ? 1.0 : (0.25 + 0.75 * scale)));
  if (vocab < 4'096) vocab = 4'096;
  return TextScale{words, vocab};
}

}  // namespace detail
}  // namespace simprof::workloads
