// The four text/record workloads on MiniHadoop, matching the BigDataBench
// Hadoop implementations (TokenizerMapper/IntSumReducer shapes for WordCount,
// identity map for Sort, selective match for Grep, event counting for
// NaiveBayes training).
#include <cstdint>
#include <utility>

#include "data/text.h"
#include "minihadoop/hadoop.h"
#include "workloads/workloads.h"

namespace simprof::workloads {
namespace {

using data::TextCorpus;
using data::WordId;

data::TextConfig corpus_config(const WorkloadParams& p,
                               std::uint32_t num_classes = 0) {
  const auto ts = detail::text_scale(p.scale);
  data::TextConfig cfg;
  cfg.num_words = ts.num_words;
  cfg.vocabulary = ts.vocabulary;
  cfg.zipf_skew = 1.0;
  cfg.mean_doc_words = 160;
  cfg.seed = p.seed;
  cfg.num_classes = num_classes;
  // Labeled corpora (NaiveBayes) halve the vocabulary: the model key space
  // is classes × words, and the full vocabulary would make the combiner
  // working set unrealistically exceed memory at this scale.
  if (num_classes > 0) cfg.vocabulary /= 2;
  return cfg;
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 0x100000001b3ULL;
}

std::vector<hadoop::InputSplit<std::uint64_t>> doc_splits(
    const TextCorpus& corpus, std::size_t num_splits) {
  std::vector<std::uint64_t> docs(corpus.num_docs());
  for (std::size_t d = 0; d < docs.size(); ++d) docs[d] = d;
  const double bytes_per_doc =
      static_cast<double>(corpus.total_bytes()) /
      static_cast<double>(std::max<std::size_t>(corpus.num_docs(), 1));
  return hadoop::make_splits(docs, num_splits, bytes_per_doc);
}

}  // namespace

WorkloadResult run_wordcount_hadoop(exec::Cluster& cluster,
                                    const WorkloadParams& p) {
  const auto corpus_sp = TextCorpus::synthesize_shared(corpus_config(p));
  const TextCorpus& corpus = *corpus_sp;
  hadoop::JobSpec<std::uint64_t, WordId, std::uint64_t> spec;
  spec.job_name = "wordcount";
  spec.mapper_name = "org.apache.hadoop.examples.WordCount$TokenizerMapper.map";
  spec.reducer_name = "org.apache.hadoop.examples.WordCount$IntSumReducer.reduce";
  spec.map_fn = [&corpus](const std::uint64_t& doc,
                          std::vector<std::pair<WordId, std::uint64_t>>& out) {
    for (WordId w : corpus.doc(doc)) out.emplace_back(w, 1);
  };
  spec.combine_fn = [](const std::uint64_t& a, const std::uint64_t& b) {
    return a + b;
  };
  spec.reduce_fn = [](const WordId&, const std::vector<std::uint64_t>& vs) {
    std::uint64_t s = 0;
    for (auto v : vs) s += v;
    return s;
  };
  spec.map_instrs_per_record = 3000;
  spec.map_instrs_per_emit = 13;

  hadoop::MapReduceJob<std::uint64_t, WordId, std::uint64_t> job(
      cluster, hadoop::HadoopConfig{}, spec);
  auto out = job.run(doc_splits(corpus, 3 * cluster.num_cores() + 2));

  WorkloadResult res;
  res.records_out = out.size();
  std::uint64_t total = 0, h = 0xcbf29ce484222325ULL;
  for (const auto& [w, c] : out) {
    total += c;
    h = fnv_mix(h, (static_cast<std::uint64_t>(w) << 32) | c);
  }
  SIMPROF_ASSERT(total == corpus.words().size(),
                 "hadoop wordcount lost words");
  res.checksum = h;
  cluster.finish();
  return res;
}

WorkloadResult run_sort_hadoop(exec::Cluster& cluster,
                               const WorkloadParams& p) {
  const auto corpus_sp = TextCorpus::synthesize_shared(corpus_config(p));
  const TextCorpus& corpus = *corpus_sp;
  // Hadoop Sort: identity mapper over individual records (words); the
  // framework's sort/merge machinery does all the work. No combiner.
  std::vector<WordId> records(corpus.words().begin(), corpus.words().end());

  hadoop::JobSpec<WordId, WordId, std::uint32_t> spec;
  spec.job_name = "sort";
  spec.mapper_name = "org.apache.hadoop.examples.Sort$IdentityMapper.map";
  spec.reducer_name = "org.apache.hadoop.examples.Sort$IdentityReducer.reduce";
  spec.map_fn = [](const WordId& w,
                   std::vector<std::pair<WordId, std::uint32_t>>& out) {
    out.emplace_back(w, 1);
  };
  spec.reduce_fn = [](const WordId&, const std::vector<std::uint32_t>& vs) {
    return static_cast<std::uint32_t>(vs.size());
  };
  spec.map_instrs_per_record = 14;
  spec.map_instrs_per_emit = 8;
  spec.reduce_instrs_per_value = 8;

  hadoop::MapReduceJob<WordId, WordId, std::uint32_t> job(
      cluster, hadoop::HadoopConfig{}, spec);
  auto out =
      job.run(hadoop::make_splits(records, 3 * cluster.num_cores() + 2, 8.0));

  WorkloadResult res;
  res.records_out = out.size();
  std::uint64_t total = 0, h = 0xcbf29ce484222325ULL;
  for (const auto& [w, c] : out) {
    total += c;
    h = fnv_mix(h, w);
  }
  SIMPROF_ASSERT(total == records.size(), "hadoop sort lost records");
  res.checksum = h;
  cluster.finish();
  return res;
}

WorkloadResult run_grep_hadoop(exec::Cluster& cluster,
                               const WorkloadParams& p) {
  // Same input upscaling as grep_sp: grep is scan-dominated.
  WorkloadParams grep_params = p;
  grep_params.scale = p.scale * 4.0;
  const auto corpus_sp =
      TextCorpus::synthesize_shared(corpus_config(grep_params));
  const TextCorpus& corpus = *corpus_sp;
  const WordId pattern = static_cast<WordId>(corpus.vocabulary() / 64 + 3);

  hadoop::JobSpec<std::uint64_t, std::uint64_t, std::uint64_t> spec;
  spec.job_name = "grep";
  spec.mapper_name = "org.apache.hadoop.examples.Grep$RegexMapper.map";
  spec.reducer_name = "org.apache.hadoop.examples.Grep$LongSumReducer.reduce";
  spec.map_fn = [&corpus, pattern](
                    const std::uint64_t& doc,
                    std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) {
    for (WordId w : corpus.doc(doc)) {
      if (w == pattern) {
        out.emplace_back(doc, 1);
        return;
      }
    }
  };
  spec.reduce_fn = [](const std::uint64_t&,
                      const std::vector<std::uint64_t>& vs) {
    std::uint64_t s = 0;
    for (auto v : vs) s += v;
    return s;
  };
  spec.map_instrs_per_record = 4600;  // regex scan of the whole line
  spec.map_instrs_per_emit = 12;

  hadoop::MapReduceJob<std::uint64_t, std::uint64_t, std::uint64_t> job(
      cluster, hadoop::HadoopConfig{}, spec);
  auto out = job.run(doc_splits(corpus, 3 * cluster.num_cores() + 2));

  WorkloadResult res;
  res.records_out = out.size();
  std::uint64_t expected = 0;
  for (std::size_t d = 0; d < corpus.num_docs(); ++d) {
    for (WordId w : corpus.doc(d)) {
      if (w == pattern) {
        ++expected;
        break;
      }
    }
  }
  SIMPROF_ASSERT(out.size() == expected, "hadoop grep match count wrong");
  res.checksum = expected;
  cluster.finish();
  return res;
}

WorkloadResult run_bayes_hadoop(exec::Cluster& cluster,
                                const WorkloadParams& p) {
  constexpr std::uint32_t kClasses = 4;
  const auto corpus_sp =
      TextCorpus::synthesize_shared(corpus_config(p, kClasses));
  const TextCorpus& corpus = *corpus_sp;

  hadoop::JobSpec<std::uint64_t, std::uint64_t, std::uint64_t> spec;
  spec.job_name = "bayes";
  spec.mapper_name =
      "org.apache.mahout.classifier.naivebayes.training.TrainNaiveBayesJob$Mapper.map";
  spec.reducer_name =
      "org.apache.mahout.classifier.naivebayes.training.TrainNaiveBayesJob$Reducer.reduce";
  spec.map_fn = [&corpus](
                    const std::uint64_t& doc,
                    std::vector<std::pair<std::uint64_t, std::uint64_t>>& out) {
    const std::uint64_t label = corpus.label(doc);
    for (WordId w : corpus.doc(doc)) out.emplace_back((label << 32) | w, 1);
  };
  spec.combine_fn = [](const std::uint64_t& a, const std::uint64_t& b) {
    return a + b;
  };
  spec.reduce_fn = [](const std::uint64_t&,
                      const std::vector<std::uint64_t>& vs) {
    std::uint64_t s = 0;
    for (auto v : vs) s += v;
    return s;
  };
  spec.map_instrs_per_record = 3800;
  spec.map_instrs_per_emit = 15;
  spec.pair_bytes = 16;

  hadoop::MapReduceJob<std::uint64_t, std::uint64_t, std::uint64_t> job(
      cluster, hadoop::HadoopConfig{}, spec);
  auto out = job.run(doc_splits(corpus, 3 * cluster.num_cores() + 2));

  WorkloadResult res;
  res.records_out = out.size();
  std::uint64_t total = 0, h = 0xcbf29ce484222325ULL;
  for (const auto& [k, c] : out) {
    total += c;
    h = fnv_mix(h, k * 31 + c);
  }
  SIMPROF_ASSERT(total == corpus.words().size(), "hadoop bayes lost events");
  res.checksum = h;
  cluster.finish();
  return res;
}

}  // namespace simprof::workloads
