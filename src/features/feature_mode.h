// Memory-access-vector (MAV) feature blocks and the feature-mode vocabulary
// shared by every consumer of the sparse feature pipeline.
//
// The oracle pass attaches one hw::MavBlock to every sampling unit (reuse-
// distance histogram + per-level access mix, see hw/mav.h). This library
// turns those raw counters into feature columns that plug into the existing
// CSR pipeline (core::unit_feature_entries and the matrix builders) under
// three modes:
//
//   kFreq      — method-frequency features only: bitwise the historical
//                layout and values, so every pre-MAV profile, model and test
//                stays byte-identical.
//   kMav       — MAV features only (kMavDim columns): reuse buckets then
//                level slots, each histogram block normalized by its own
//                total so blocks carry equal mass regardless of access count.
//   kCombined  — MAV columns first at [0, kMavDim), method columns shifted
//                up by kMavDim. MAV-first is load-bearing: the streaming
//                former grows the method space in place by appending columns
//                at the end of the CSR rows, which only works if the
//                fixed-width MAV block never moves.
//
// Per-entry values are chosen so that L1-row-normalization commutes with
// column selection: renormalizing any selected subset of a row equals
// renormalizing the same subset of the raw entries. That invariance is what
// lets vectorize_unit / streaming classification accumulate raw per-entry
// values and renormalize over the selected features only, in every mode.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hw/mav.h"

namespace simprof::features {

enum class FeatureMode : std::uint8_t {
  kFreq = 0,      ///< method frequencies only (historical layout)
  kMav = 1,       ///< memory-access vectors only
  kCombined = 2,  ///< MAV block first, then method frequencies
};

/// "freq" / "mav" / "combined".
std::string_view to_string(FeatureMode mode);

/// Inverse of to_string; nullopt for unknown names.
std::optional<FeatureMode> parse_feature_mode(std::string_view name);

/// Total feature columns for a mode over a `num_methods`-method table.
std::size_t feature_space_cols(FeatureMode mode, std::size_t num_methods);

/// Column where method features start: 0 under kFreq, hw::kMavDim under
/// kCombined, and one-past-the-end (hw::kMavDim) under kMav, whose space
/// holds no method columns at all.
std::size_t method_col_offset(FeatureMode mode);

/// Canonical name of MAV column `index` in [0, hw::kMavDim):
/// "mav.reuse.b<k>" for the reuse-distance buckets, then "mav.level.l<k>"
/// for the access-level slots. Names are the stable feature identity across
/// profiles, exactly like method names.
const std::string& mav_feature_name(std::size_t index);

/// Inverse of mav_feature_name; nullopt for anything else (method names).
std::optional<std::size_t> mav_feature_index(std::string_view name);

/// Append the block-normalized entries of `mav` at columns
/// base_col + [0, hw::kMavDim) in ascending column order: each histogram
/// block (reuse, then level) is divided by its own total, so a unit's MAV
/// contributes mass 1 per non-empty block no matter how many accesses it
/// made. Zero counts (and entire zero blocks, e.g. compute-only units)
/// append nothing — the rows stay sparse.
void append_mav_entries(const hw::MavBlock& mav, std::uint32_t base_col,
                        std::vector<std::uint32_t>& cols,
                        std::vector<double>& vals);

}  // namespace simprof::features
