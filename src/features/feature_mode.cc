#include "features/feature_mode.h"

#include <array>

#include "support/assert.h"

namespace simprof::features {
namespace {

std::array<std::string, hw::kMavDim> make_mav_names() {
  std::array<std::string, hw::kMavDim> names;
  for (std::size_t b = 0; b < hw::kReuseBuckets; ++b) {
    names[b] = "mav.reuse.b" + std::to_string(b);
  }
  for (std::size_t l = 0; l < hw::kLevelSlots; ++l) {
    names[hw::kReuseBuckets + l] = "mav.level.l" + std::to_string(l);
  }
  return names;
}

const std::array<std::string, hw::kMavDim>& mav_names() {
  static const std::array<std::string, hw::kMavDim> names = make_mav_names();
  return names;
}

}  // namespace

std::string_view to_string(FeatureMode mode) {
  switch (mode) {
    case FeatureMode::kFreq:
      return "freq";
    case FeatureMode::kMav:
      return "mav";
    case FeatureMode::kCombined:
      return "combined";
  }
  SIMPROF_EXPECTS(false, "unknown feature mode");
}

std::optional<FeatureMode> parse_feature_mode(std::string_view name) {
  if (name == "freq") return FeatureMode::kFreq;
  if (name == "mav") return FeatureMode::kMav;
  if (name == "combined") return FeatureMode::kCombined;
  return std::nullopt;
}

std::size_t feature_space_cols(FeatureMode mode, std::size_t num_methods) {
  switch (mode) {
    case FeatureMode::kFreq:
      return num_methods;
    case FeatureMode::kMav:
      return hw::kMavDim;
    case FeatureMode::kCombined:
      return hw::kMavDim + num_methods;
  }
  SIMPROF_EXPECTS(false, "unknown feature mode");
}

std::size_t method_col_offset(FeatureMode mode) {
  return mode == FeatureMode::kFreq ? 0 : hw::kMavDim;
}

const std::string& mav_feature_name(std::size_t index) {
  SIMPROF_EXPECTS(index < hw::kMavDim, "MAV feature index out of range");
  return mav_names()[index];
}

std::optional<std::size_t> mav_feature_index(std::string_view name) {
  // Names are few and fixed; a linear scan beats a map for 25 entries and
  // rejects non-MAV (method) names on the cheap "mav." prefix test.
  if (name.substr(0, 4) != "mav.") return std::nullopt;
  const auto& names = mav_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  return std::nullopt;
}

void append_mav_entries(const hw::MavBlock& mav, std::uint32_t base_col,
                        std::vector<std::uint32_t>& cols,
                        std::vector<double>& vals) {
  std::uint64_t reuse_total = 0;
  for (std::size_t b = 0; b < hw::kReuseBuckets; ++b) reuse_total += mav.reuse(b);
  std::uint64_t level_total = 0;
  for (std::size_t l = 0; l < hw::kLevelSlots; ++l) {
    level_total += mav.counts[hw::kReuseBuckets + l];
  }
  if (reuse_total > 0) {
    for (std::size_t b = 0; b < hw::kReuseBuckets; ++b) {
      const std::uint64_t c = mav.reuse(b);
      if (c == 0) continue;
      cols.push_back(base_col + static_cast<std::uint32_t>(b));
      vals.push_back(static_cast<double>(c) / static_cast<double>(reuse_total));
    }
  }
  if (level_total > 0) {
    for (std::size_t l = 0; l < hw::kLevelSlots; ++l) {
      const std::uint64_t c = mav.counts[hw::kReuseBuckets + l];
      if (c == 0) continue;
      cols.push_back(base_col +
                     static_cast<std::uint32_t>(hw::kReuseBuckets + l));
      vals.push_back(static_cast<double>(c) / static_cast<double>(level_total));
    }
  }
}

}  // namespace simprof::features
