#include "jvm/call_stack.h"

#include "support/assert.h"

namespace simprof::jvm {

void CallStack::pop() {
  SIMPROF_EXPECTS(!frames_.empty(), "pop on empty call stack");
  frames_.pop_back();
}

MethodId CallStack::top() const {
  SIMPROF_EXPECTS(!frames_.empty(), "top on empty call stack");
  return frames_.back();
}

}  // namespace simprof::jvm
