// Shadow call stacks + the JVMTI-like stack-trace interface.
//
// Workload kernels maintain their simulated thread's call stack with RAII
// MethodScope guards; SimProf's call-stack collector reads it through
// StackTraceSource::get_stack_trace — the same shape as JVMTI GetStackTrace,
// which is all the real agent uses.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "jvm/method.h"

namespace simprof::jvm {

class CallStack {
 public:
  void push(MethodId m) { frames_.push_back(m); }
  void pop();

  std::size_t depth() const { return frames_.size(); }
  bool empty() const { return frames_.empty(); }

  /// Outermost frame first (index 0 = thread entry point).
  std::span<const MethodId> frames() const { return frames_; }

  /// Innermost (currently executing) frame.
  MethodId top() const;

  /// Overwrite the whole stack (checkpoint restore). Outermost frame first,
  /// matching frames().
  void restore_frames(std::vector<MethodId> frames) {
    frames_ = std::move(frames);
  }

 private:
  std::vector<MethodId> frames_;
};

/// RAII frame guard. Non-copyable, non-movable: a stack frame cannot outlive
/// or migrate out of its lexical scope.
class MethodScope {
 public:
  MethodScope(CallStack& stack, MethodId m) : stack_(stack) { stack_.push(m); }
  ~MethodScope() { stack_.pop(); }

  MethodScope(const MethodScope&) = delete;
  MethodScope& operator=(const MethodScope&) = delete;

 private:
  CallStack& stack_;
};

/// JVMTI-GetStackTrace-shaped read interface: SimProf's collector depends on
/// this, not on the execution engine, so any substrate that can produce
/// stacks (a real JVMTI agent, a trace replayer) plugs in.
class StackTraceSource {
 public:
  virtual ~StackTraceSource() = default;
  virtual std::span<const MethodId> get_stack_trace() const = 0;
};

}  // namespace simprof::jvm
