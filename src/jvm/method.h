// Method identity for the simulated managed runtime.
//
// A real SimProf deployment keys call-stack frames on JVMTI jmethodIDs and
// resolves them to fully-qualified names. Here the workload kernels register
// their methods once (name + operation kind) and push/pop them on shadow
// call stacks. The OpKind tag drives the paper's Figure 10 phase-type
// classification (map/reduce/sort/IO).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/interner.h"

namespace simprof::jvm {

using MethodId = std::uint32_t;

/// Dominant-operation category of a method (Section IV-D: phases are typed
/// by their dominant operation).
enum class OpKind : std::uint8_t {
  kFramework,  ///< scheduler/executor plumbing — never performance-dominant
  kMap,
  kReduce,
  kSort,
  kIo,
  kShuffle,
  kCompute,  ///< numeric kernels (pagerank contribs, bayes likelihoods)
};

/// Number of OpKind values — bound for validating serialized kind bytes.
inline constexpr std::uint8_t kNumOpKinds =
    static_cast<std::uint8_t>(OpKind::kCompute) + 1;

std::string_view to_string(OpKind kind);

/// Interns method names and remembers each method's OpKind. One registry per
/// simulated JVM; ids are dense and stable for the lifetime of the registry.
class MethodRegistry {
 public:
  /// Register (or re-find) a method. Re-registering with a different kind is
  /// a contract violation — method identity is global in a JVM.
  MethodId intern(std::string_view qualified_name, OpKind kind);

  const std::string& name(MethodId id) const { return interner_.name(id); }
  OpKind kind(MethodId id) const;
  std::size_t size() const { return interner_.size(); }

 private:
  StringInterner interner_;
  std::vector<OpKind> kinds_;
};

}  // namespace simprof::jvm
