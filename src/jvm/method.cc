#include "jvm/method.h"

#include "support/assert.h"

namespace simprof::jvm {

std::string_view to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kFramework: return "framework";
    case OpKind::kMap: return "map";
    case OpKind::kReduce: return "reduce";
    case OpKind::kSort: return "sort";
    case OpKind::kIo: return "io";
    case OpKind::kShuffle: return "shuffle";
    case OpKind::kCompute: return "compute";
  }
  return "unknown";
}

MethodId MethodRegistry::intern(std::string_view qualified_name, OpKind kind) {
  if (auto existing = interner_.find(qualified_name)) {
    SIMPROF_EXPECTS(kinds_[*existing] == kind,
                    "method re-registered with a different OpKind: " +
                        std::string(qualified_name));
    return *existing;
  }
  const MethodId id = interner_.intern(qualified_name);
  kinds_.push_back(kind);
  SIMPROF_ENSURES(kinds_.size() == interner_.size(), "registry out of sync");
  return id;
}

OpKind MethodRegistry::kind(MethodId id) const {
  SIMPROF_EXPECTS(id < kinds_.size(), "unknown method id");
  return kinds_[id];
}

}  // namespace simprof::jvm
