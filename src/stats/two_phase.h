// Two-phase stratified estimation — double sampling for stratification
// (Cochran, Sampling Techniques, §12.2–12.3), the companion estimator to
// Neyman allocation in stratified.h.
//
// Neyman's Eq. 1 assumes the stratum weights W_h = N_h/N are known exactly,
// which in SimProf means classifying *every* sampling unit before choosing
// the sample. Double sampling drops that requirement: a large, cheap phase-1
// simple random sample of n′ units is only *classified* (phase labels are
// cheap — a nearest-center lookup), producing estimated weights
// w′_h = n′_h/n′; a small phase-2 subsample of n units drawn from the
// phase-1 sample is then *measured* in detail. The price is an extra
// variance term for the estimated weights:
//
//   ȳ_ds = Σ_h w′_h · ȳ_h                                  (point estimate)
//   V̂(ȳ_ds) = Σ_h w′_h² s_h² / n_h                         (within-stratum)
//            + (1/n′) Σ_h w′_h (ȳ_h − ȳ_ds)²               (weight noise)
//
// Edge conventions (verified by the src/verify oracle harness, mirroring
// stratified.h): a singleton measured stratum contributes s_h = 0; a
// non-finite s_h or ȳ_h is treated as 0; strata that received no phase-2
// measurement are skipped and the remaining w′_h renormalized, so degenerate
// fits yield a finite (possibly zero-width) CI rather than NaN.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/stratified.h"

namespace simprof::stats {

/// One stratum of a double-sampling design, as observed by the two phases.
struct TwoPhaseStratum {
  std::size_t phase1_count = 0;  ///< n′_h — phase-1 units classified into h
  std::size_t sample_size = 0;   ///< n_h — phase-2 units actually measured
  double sample_mean = 0.0;      ///< ȳ_h over the measured units
  double sample_stddev = 0.0;    ///< s_h (sample stddev; 0 for singletons)
};

struct TwoPhaseEstimate {
  double mean = 0.0;            ///< ȳ_ds
  double variance = 0.0;        ///< V̂(ȳ_ds), both terms
  double standard_error = 0.0;  ///< √V̂
  ConfidenceInterval ci{};      ///< at the z passed in
};

/// Phase-2 allocation: distribute `total` measured slots across the strata
/// observed in phase 1, Neyman-style against prior deviations (n_h ∝
/// n′_h·σ_h, optimal_allocation underneath, so all its edge conventions
/// apply: per-stratum caps at n′_h, min_per_stratum floor for non-empty
/// strata, proportional fallback when every prior is 0, and non-finite or
/// negative priors treated as 0). `phase1_counts` and `prior_stddevs` must
/// be the same length.
std::vector<std::size_t> two_phase_allocation(
    std::span<const std::size_t> phase1_counts,
    std::span<const double> prior_stddevs, std::size_t total,
    std::size_t min_per_stratum = 1);

/// The double-sampling point estimate, variance and CI for measured strata.
/// Strata with phase1_count = 0 or sample_size = 0 are skipped and the
/// weights renormalized over the rest; if nothing was measured the estimate
/// is all-zero.
TwoPhaseEstimate two_phase_estimate(std::span<const TwoPhaseStratum> strata,
                                    double z = kZ997);

}  // namespace simprof::stats
