// Compressed-sparse-row feature matrix — the sparse sibling of stats::Matrix
// for the unit × method frequency matrices of phase formation. A profile's
// units touch a few dozen methods each out of thousands, so the dense matrix
// is ~99% zeros; the CSR form is built once per profile and densified only
// for the selected top-K feature columns.
//
// Bit-compatibility contract with the dense path: values are stored exactly
// as the dense matrix would hold them, rows normalize by the same sums
// (implicit zeros contribute exact +0.0 terms), and select_columns_dense
// produces a matrix bitwise equal to Matrix::select_columns on the
// equivalent dense matrix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "stats/matrix.h"

namespace simprof::stats {

class SparseMatrix {
 public:
  SparseMatrix() = default;
  /// An empty matrix with a fixed shape; fill it with append_row in row
  /// order (the builder-style API keeps the CSR arrays contiguous).
  SparseMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return col_.size(); }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  /// Append the next row's non-zero entries. `cols` must be strictly
  /// increasing and in range; exactly `rows()` rows must be appended
  /// (appending past the declared shape is a contract violation).
  void append_row(std::span<const std::uint32_t> cols,
                  std::span<const double> vals);

  /// Streaming builder form: append a row to a matrix whose final shape is
  /// not known up front — rows() grows by one and cols() widens to cover
  /// the highest referenced column. `cols` must still be strictly
  /// increasing. Entries land in the same CSR arrays as append_row, so a
  /// matrix grown row-by-row is indistinguishable from one declared with
  /// the final shape and filled with append_row.
  void append_row_grow(std::span<const std::uint32_t> cols,
                       std::span<const double> vals);

  /// Widen the column space (no entries added) — the streaming former calls
  /// this when the method table grows past the widest stored row, so the
  /// snapshot it clusters covers every method seen so far. Shrinking is a
  /// contract violation.
  void grow_cols(std::size_t cols);

  /// How many rows have been appended so far.
  std::size_t rows_filled() const { return row_ptr_.size() - 1; }

  struct RowView {
    std::span<const std::uint32_t> cols;
    std::span<const double> vals;
  };
  RowView row(std::size_t r) const;

  /// Scale each row to sum 1, like Matrix::normalize_rows_l1 (rows summing
  /// to 0 are left untouched). Sums accumulate over the stored entries in
  /// column order — bitwise the same sum the dense walk produces, because
  /// the skipped zeros are exact no-ops.
  void normalize_rows_l1();

  /// Densify every column (tests / small matrices).
  Matrix to_dense() const;

  /// Densify only the given columns, in the given order — the top-K
  /// selection path. Bitwise equal to to_dense().select_columns(selected).
  /// Row blocks run on the thread pool (threads = 0 → global default);
  /// rows are disjoint so the result is trivially deterministic.
  Matrix select_columns_dense(std::span<const std::size_t> selected,
                              std::size_t threads = 0) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};  ///< rows_+1 once fully built
  std::vector<std::uint32_t> col_;
  std::vector<double> val_;
};

}  // namespace simprof::stats
