// Lloyd's k-means with k-means++ seeding — the phase-formation clusterer.
//
// SimProf clusters per-unit method-frequency feature vectors into phases
// (Section III-B of the paper). The number of phases k is chosen by sweeping
// k = 1..max_k and scoring each clustering with the silhouette coefficient
// (see silhouette.h); `choose_k` implements the paper's "smallest k with at
// least 90% of the highest score" rule.
//
// Parallelism and determinism: the hot paths (Lloyd assignment, the restart
// loop, and choose_k's k-sweep) run on support::ThreadPool. Every stochastic
// unit of work gets its own fixed-seed Rng stream (Rng::stream) and every
// floating-point reduction is merged in a fixed chunk order, so results are
// bit-identical for any thread count, including threads = 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/matrix.h"
#include "support/rng.h"

namespace simprof::stats {

struct KMeansConfig {
  std::size_t max_iterations = 64;
  std::size_t restarts = 2;       ///< independent k-means++ seedings; best kept
  double tolerance = 1e-7;        ///< stop when inertia improves less than this
  std::size_t threads = 0;        ///< 0 = global default (hardware_concurrency)
};

struct KMeansResult {
  Matrix centers;                   ///< k × d
  std::vector<std::size_t> labels;  ///< n
  double inertia = 0.0;             ///< Σ squared distance to assigned center
  std::size_t iterations = 0;       ///< iterations of the winning restart
};

/// Cluster `points` (n × d) into k clusters. k must be in [1, n]. Restarts
/// use independent streams forked from one draw of `rng`, run across the
/// pool, and ties on inertia resolve to the lowest restart index.
KMeansResult kmeans(const Matrix& points, std::size_t k, Rng& rng,
                    const KMeansConfig& cfg = {});

/// Index of the nearest row of `centers` to `point` (Euclidean). For whole
/// profiles use the bulk nearest_centers (matrix.h) — it uses the blocked
/// kernel and the pool.
std::size_t nearest_center(const Matrix& centers,
                           std::span<const double> point);

/// Mini-batch k-means (Sculley, WWW'10): incremental center refinement for
/// the streaming phase former. Centers are seeded from a full Lloyd fit
/// (the latest recluster) and nudged toward newly arrived points with a
/// per-center learning rate 1/count, so the model tracks drift between the
/// expensive re-silhouetting passes without touching retained units.
///
/// Determinism: assignment uses the blocked DistanceTable kernel over row
/// chunks (safe on any thread count — labels are a pure function of the
/// operands), and the center update walks batch rows serially in row order,
/// so partial_fit is bit-identical for any `threads` value.
class MiniBatchKMeans {
 public:
  MiniBatchKMeans() = default;
  /// Seed from an existing clustering. `counts` are the per-center
  /// assignment counts of that clustering (they set the initial learning
  /// rates); missing/short counts default to 1 so a fresh center still
  /// moves. k is centers.rows().
  explicit MiniBatchKMeans(Matrix centers,
                           std::vector<std::uint64_t> counts = {});

  std::size_t k() const { return centers_.rows(); }
  const Matrix& centers() const { return centers_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Assign each row of `batch` to its nearest center, then move each
  /// center toward its assigned rows: c ← c + (x − c)/n_c per row, with
  /// n_c incremented first. Returns the per-row labels (computed against
  /// the centers as they stood at entry, like one Lloyd half-step).
  std::vector<std::size_t> partial_fit(const Matrix& batch,
                                       std::size_t threads = 0);

 private:
  Matrix centers_;
  std::vector<std::uint64_t> counts_;
};

struct ChooseKConfig {
  /// Upper bound of the k sweep (paper: k swept from 1 to 20). The sweep is
  /// clamped to min(max_k, points.rows()) — a profile with fewer units than
  /// max_k (tiny inputs, early-stream snapshots) sweeps what it has instead
  /// of contract-aborting — and a zero max_k is clamped up to 1.
  std::size_t max_k = 20;
  double score_fraction = 0.90;    ///< paper: smallest k within 90% of best
  double k1_baseline_score = 0.45; ///< silhouette stand-in for k = 1 (it is
                                   ///< undefined there); lets single-phase
                                   ///< workloads win when no split is crisp
  std::size_t threads = 0;         ///< 0 = global default; the k-sweep, the
                                   ///< restarts and the row blocks share it
  /// Seed for the sampled-silhouette random subsample (one sub-stream per
  /// k). A seeded subset, unlike the old fixed stride, cannot alias with
  /// periodic unit orderings.
  std::uint64_t silhouette_seed = 0x51105e77eULL;
  KMeansConfig kmeans;
};

struct ChooseKResult {
  std::size_t k = 1;
  KMeansResult clustering;
  std::vector<double> scores;  ///< silhouette per k (index 0 ↔ k = 1)
};

/// Sweep k = 1..max_k, score with the (simplified) silhouette coefficient and
/// return the smallest k whose score is ≥ score_fraction × best score. The
/// sweep runs across the pool: each k gets an independent fixed-seed stream
/// derived from one draw of `rng`, and results merge in k order, so the
/// outcome is identical to the serial sweep for any thread count.
ChooseKResult choose_k(const Matrix& points, Rng& rng,
                       const ChooseKConfig& cfg = {});

}  // namespace simprof::stats
