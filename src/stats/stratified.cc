#include "stats/stratified.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/assert.h"

namespace simprof::stats {
namespace {

/// Distribute `total` across strata proportionally to `weights` with
/// largest-remainder rounding and population caps, then enforce the
/// per-stratum floor by reassigning slots from the largest allocations.
/// Any slots that cannot be placed (all strata at cap) are dropped.
std::vector<std::size_t> allocate_by_weight(std::span<const Stratum> strata,
                                            std::span<const double> weights,
                                            std::size_t total,
                                            std::size_t min_per_stratum) {
  const std::size_t h = strata.size();
  std::vector<std::size_t> alloc(h, 0);

  // Largest-remainder apportionment with caps. Iterate because hitting a
  // cap frees slots that re-flow to the remaining strata by weight.
  std::size_t remaining = total;
  while (remaining > 0) {
    double active_weight = 0.0;
    for (std::size_t i = 0; i < h; ++i) {
      if (alloc[i] < strata[i].population) active_weight += weights[i];
    }
    // Every positive-weight stratum may be capped while zero-weight (σ = 0)
    // strata still have room; spill the rest proportionally to population so
    // the "total caps at the summed populations" invariant holds.
    const bool by_population = active_weight <= 0.0;
    if (by_population) {
      for (std::size_t i = 0; i < h; ++i) {
        if (alloc[i] < strata[i].population) {
          active_weight += static_cast<double>(strata[i].population);
        }
      }
    }
    if (active_weight <= 0.0) break;  // everyone capped

    std::vector<std::pair<double, std::size_t>> frac;  // (remainder, idx)
    std::size_t placed = 0;
    std::vector<std::size_t> add(h, 0);
    for (std::size_t i = 0; i < h; ++i) {
      if (alloc[i] >= strata[i].population) continue;
      const double wi = by_population
                            ? static_cast<double>(strata[i].population)
                            : weights[i];
      const double share =
          static_cast<double>(remaining) * wi / active_weight;
      const auto base = static_cast<std::size_t>(share);
      const std::size_t cap = strata[i].population - alloc[i];
      add[i] = std::min(base, cap);
      placed += add[i];
      if (add[i] < cap) frac.emplace_back(share - static_cast<double>(base), i);
    }
    std::stable_sort(
        frac.begin(), frac.end(),
        [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [rem, i] : frac) {
      (void)rem;
      if (placed >= remaining) break;
      if (alloc[i] + add[i] < strata[i].population) {
        ++add[i];
        ++placed;
      }
    }
    if (placed == 0) break;  // everyone capped
    for (std::size_t i = 0; i < h; ++i) alloc[i] += add[i];
    remaining -= std::min(placed, remaining);
  }

  // Enforce the floor: every non-empty stratum keeps at least
  // min(min_per_stratum, population) slots, funded by the largest
  // allocations so the Neyman proportions are disturbed minimally.
  for (std::size_t i = 0; i < h; ++i) {
    const std::size_t floor_i =
        std::min<std::size_t>(min_per_stratum, strata[i].population);
    while (alloc[i] < floor_i) {
      std::size_t donor = h;
      std::size_t donor_excess = 0;
      for (std::size_t j = 0; j < h; ++j) {
        if (j == i) continue;
        const std::size_t floor_j =
            std::min<std::size_t>(min_per_stratum, strata[j].population);
        if (alloc[j] > floor_j && alloc[j] - floor_j > donor_excess) {
          donor = j;
          donor_excess = alloc[j] - floor_j;
        }
      }
      if (donor == h) {
        ++alloc[i];  // nothing to steal: grow the total instead of starving
      } else {
        --alloc[donor];
        ++alloc[i];
      }
    }
  }
  return alloc;
}

}  // namespace

std::vector<std::size_t> optimal_allocation(std::span<const Stratum> strata,
                                            std::size_t total,
                                            std::size_t min_per_stratum) {
  SIMPROF_EXPECTS(!strata.empty(), "no strata");
  std::vector<double> w(strata.size(), 0.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < strata.size(); ++i) {
    // A NaN/inf/negative σ (e.g. from a degenerate upstream fit) must not
    // poison the weights: allocate_by_weight would cast a NaN share to
    // size_t, which is UB. Treat it as "no variance signal" (σ = 0).
    const double sd = std::isfinite(strata[i].stddev) && strata[i].stddev > 0.0
                          ? strata[i].stddev
                          : 0.0;
    w[i] = static_cast<double>(strata[i].population) * sd;
    sum += w[i];
  }
  if (sum <= 0.0) {
    // All phases perfectly homogeneous: fall back to proportional.
    for (std::size_t i = 0; i < strata.size(); ++i) {
      w[i] = static_cast<double>(strata[i].population);
    }
  }
  return allocate_by_weight(strata, w, total, min_per_stratum);
}

std::vector<std::size_t> proportional_allocation(
    std::span<const Stratum> strata, std::size_t total,
    std::size_t min_per_stratum) {
  SIMPROF_EXPECTS(!strata.empty(), "no strata");
  std::vector<double> w(strata.size(), 0.0);
  for (std::size_t i = 0; i < strata.size(); ++i) {
    w[i] = static_cast<double>(strata[i].population);
  }
  return allocate_by_weight(strata, w, total, min_per_stratum);
}

double stratified_standard_error(std::span<const Stratum> strata,
                                 std::span<const std::size_t> sample_sizes) {
  SIMPROF_EXPECTS(strata.size() == sample_sizes.size(),
                  "strata/sample size mismatch");
  double n_total = 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < strata.size(); ++i) {
    const double nh = static_cast<double>(sample_sizes[i]);
    const double nh_pop = static_cast<double>(strata[i].population);
    n_total += nh_pop;
    if (nh <= 0.0 || nh_pop <= 0.0) continue;
    // Clamp the finite population correction to [0, 1]: n_h > N_h (a caller
    // bug or corrupt model) must yield SE terms of 0, not a negative value
    // whose sum can go NaN under sqrt. Non-finite σ contributes nothing —
    // same convention as optimal_allocation.
    const double fpc = std::clamp(1.0 - nh / nh_pop, 0.0, 1.0);
    if (!std::isfinite(strata[i].stddev)) continue;
    const double s2 = strata[i].stddev * strata[i].stddev;
    acc += nh_pop * nh_pop * fpc * s2 / nh;
  }
  if (n_total <= 0.0) return 0.0;
  return std::sqrt(acc) / n_total;
}

double stratified_population_mean(std::span<const Stratum> strata) {
  double num = 0.0, den = 0.0;
  for (const auto& s : strata) {
    num += static_cast<double>(s.population) * s.mean;
    den += static_cast<double>(s.population);
  }
  return den > 0.0 ? num / den : 0.0;
}

std::size_t required_sample_size(std::span<const Stratum> strata,
                                 double rel_margin, double z) {
  SIMPROF_EXPECTS(rel_margin > 0.0, "relative margin must be positive");
  SIMPROF_EXPECTS(z > 0.0, "z must be positive");

  double n_pop = 0.0;
  for (const auto& s : strata) n_pop += static_cast<double>(s.population);
  if (n_pop <= 0.0) return 1;

  const double mu = stratified_population_mean(strata);
  if (mu <= 0.0) return 1;

  double sum_w_sigma = 0.0;   // Σ W_h σ_h
  double sum_w_sigma2 = 0.0;  // Σ W_h σ_h²
  for (const auto& s : strata) {
    const double w = static_cast<double>(s.population) / n_pop;
    sum_w_sigma += w * s.stddev;
    sum_w_sigma2 += w * s.stddev * s.stddev;
  }
  if (sum_w_sigma <= 0.0) return 1;  // zero variance: one unit suffices

  // Under Neyman allocation: Var(n) = (ΣW_hσ_h)²/n − ΣW_hσ_h²/N.
  // Solve z²·Var(n) ≤ (rel_margin·μ)².
  const double target_var = (rel_margin * mu / z) * (rel_margin * mu / z);
  const double denom = target_var + sum_w_sigma2 / n_pop;
  double n = (sum_w_sigma * sum_w_sigma) / denom;
  n = std::clamp(n, 1.0, n_pop);
  return static_cast<std::size_t>(std::ceil(n));
}

ConfidenceInterval confidence_interval(double sample_mean, double se,
                                       double z) {
  return ConfidenceInterval{sample_mean, z * se};
}

}  // namespace simprof::stats
