#include "stats/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.h"
#include "stats/silhouette.h"
#include "support/assert.h"
#include "support/thread_pool.h"

namespace simprof::stats {
namespace {

/// Rows per parallel_for chunk in the assignment step — big enough that the
/// blocked kernel amortises, small enough that 20-way sweeps load-balance.
constexpr std::size_t kRowGrain = 128;

/// k-means++ seeding: first center uniform, subsequent centers sampled with
/// probability proportional to squared distance to the nearest chosen center.
/// Distances use the ‖x‖²+‖c‖²−2·x·c expansion against the precomputed row
/// norms, same as the assignment kernel.
Matrix seed_plus_plus(const Matrix& points, std::span<const double> norms,
                      std::size_t k, Rng& rng) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  Matrix centers(k, d);

  std::vector<double> dist2(n, std::numeric_limits<double>::max());
  std::size_t first = static_cast<std::size_t>(rng.next_below(n));
  std::copy_n(points.row(first).data(), d, centers.row(0).data());

  for (std::size_t c = 1; c < k; ++c) {
    const auto prev = centers.row(c - 1);
    const double cn = dot_product(prev, prev);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d2 = std::max(
          0.0, norms[i] + cn - 2.0 * dot_product(points.row(i), prev));
      dist2[i] = std::min(dist2[i], d2);
      total += dist2[i];
    }
    std::size_t pick = 0;
    if (total > 0.0) {
      double target = rng.next_double() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= dist2[i];
        if (target <= 0.0) {
          pick = i;
          break;
        }
      }
    } else {
      pick = static_cast<std::size_t>(rng.next_below(n));
    }
    std::copy_n(points.row(pick).data(), d, centers.row(c).data());
  }
  return centers;
}

KMeansResult lloyd(const Matrix& points, std::span<const double> norms,
                   Matrix centers, const KMeansConfig& cfg) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  const std::size_t k = centers.rows();
  const std::size_t num_chunks = (n + kRowGrain - 1) / kRowGrain;

  KMeansResult res;
  res.labels.assign(n, 0);
  std::vector<double> dist2(n, 0.0);
  std::vector<double> partial(num_chunks, 0.0);
  double prev_inertia = std::numeric_limits<double>::max();

  for (std::size_t iter = 0; iter < cfg.max_iterations; ++iter) {
    // Assignment step: blocked ‖x‖²+‖c‖²−2·x·c kernel over row chunks.
    // Per-chunk inertia partials merge in chunk order so the sum is
    // bit-identical for any thread count.
    const DistanceTable table(centers);
    support::parallel_for(
        cfg.threads, 0, n, kRowGrain,
        [&](std::size_t chunk, std::size_t b, std::size_t e) {
          table.nearest(points, norms, b, e,
                        std::span<std::size_t>(res.labels).subspan(b, e - b),
                        std::span<double>(dist2).subspan(b, e - b));
          double acc = 0.0;
          for (std::size_t i = b; i < e; ++i) acc += dist2[i];
          partial[chunk] = acc;
        });
    double inertia = 0.0;
    for (const double p : partial) inertia += p;

    // Update step (O(n·d), cheap next to assignment — kept serial so the
    // center accumulation order is fixed).
    Matrix next(k, d);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = res.labels[i];
      ++counts[c];
      auto dst = next.row(c);
      const auto src = points.row(i);
      for (std::size_t j = 0; j < d; ++j) dst[j] += src[j];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: re-seed it at the point farthest from its assigned
        // center — dist2 already holds exactly that distance.
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          if (dist2[i] > far_d) {
            far_d = dist2[i];
            far = i;
          }
        }
        std::copy_n(points.row(far).data(), d, next.row(c).data());
        continue;
      }
      auto dst = next.row(c);
      for (std::size_t j = 0; j < d; ++j) {
        dst[j] /= static_cast<double>(counts[c]);
      }
    }
    centers = std::move(next);
    res.iterations = iter + 1;
    res.inertia = inertia;
    if (prev_inertia - inertia < cfg.tolerance) break;
    prev_inertia = inertia;
  }
  res.centers = std::move(centers);
  static obs::Histogram& iters = obs::metrics().histogram(
      "kmeans.lloyd_iterations", {1, 2, 4, 8, 16, 32, 64});
  iters.observe(static_cast<double>(res.iterations));
  return res;
}

/// Restart loop against precomputed row norms: one fixed-seed stream per
/// restart, run across the pool; ties on inertia keep the lowest restart so
/// the winner matches the serial sweep.
KMeansResult kmeans_with_norms(const Matrix& points,
                               std::span<const double> norms, std::size_t k,
                               std::uint64_t restart_seed,
                               const KMeansConfig& cfg) {
  const std::size_t restarts = std::max<std::size_t>(1, cfg.restarts);
  std::vector<KMeansResult> candidates(restarts);
  support::parallel_for(
      cfg.threads, 0, restarts, 1,
      [&](std::size_t, std::size_t b, std::size_t e) {
        for (std::size_t r = b; r < e; ++r) {
          Rng stream = Rng::stream(restart_seed, r);
          candidates[r] = lloyd(points, norms,
                                seed_plus_plus(points, norms, k, stream), cfg);
        }
      });
  std::size_t best = 0;
  for (std::size_t r = 1; r < restarts; ++r) {
    if (candidates[r].inertia < candidates[best].inertia) best = r;
  }
  return std::move(candidates[best]);
}

}  // namespace

KMeansResult kmeans(const Matrix& points, std::size_t k, Rng& rng,
                    const KMeansConfig& cfg) {
  SIMPROF_EXPECTS(!points.empty(), "kmeans on empty matrix");
  SIMPROF_EXPECTS(k >= 1 && k <= points.rows(),
                  "k must be in [1, number of points]");
  const std::vector<double> norms = row_squared_norms(points);
  return kmeans_with_norms(points, norms, k, rng.next_u64(), cfg);
}

std::size_t nearest_center(const Matrix& centers,
                           std::span<const double> point) {
  SIMPROF_EXPECTS(centers.rows() > 0, "no centers");
  double best = std::numeric_limits<double>::max();
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < centers.rows(); ++c) {
    const double d2 = squared_distance(centers.row(c), point);
    if (d2 < best) {
      best = d2;
      best_c = c;
    }
  }
  return best_c;
}

MiniBatchKMeans::MiniBatchKMeans(Matrix centers,
                                 std::vector<std::uint64_t> counts)
    : centers_(std::move(centers)), counts_(std::move(counts)) {
  counts_.resize(centers_.rows(), 1);
  for (auto& c : counts_) c = std::max<std::uint64_t>(c, 1);
}

std::vector<std::size_t> MiniBatchKMeans::partial_fit(const Matrix& batch,
                                                      std::size_t threads) {
  SIMPROF_EXPECTS(centers_.rows() > 0, "mini-batch k-means with no centers");
  SIMPROF_EXPECTS(batch.cols() == centers_.cols(),
                  "batch/center dimension mismatch");
  const std::size_t n = batch.rows();
  std::vector<std::size_t> labels(n, 0);
  if (n == 0) return labels;

  // Assignment against the entry snapshot of the centers (blocked kernel,
  // deterministic for any thread count).
  const DistanceTable table(centers_);
  const std::vector<double> norms = row_squared_norms(batch);
  std::vector<double> dist2(n, 0.0);
  support::parallel_for(
      threads, 0, n, kRowGrain,
      [&](std::size_t, std::size_t b, std::size_t e) {
        table.nearest(batch, norms, b, e,
                      std::span<std::size_t>(labels).subspan(b, e - b),
                      std::span<double>(dist2).subspan(b, e - b));
      });

  // Serial per-row center update in row order (deterministic): each
  // assigned row pulls its center by 1/n_c.
  const std::size_t d = centers_.cols();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = labels[i];
    ++counts_[c];
    const double eta = 1.0 / static_cast<double>(counts_[c]);
    auto dst = centers_.row(c);
    const auto src = batch.row(i);
    for (std::size_t j = 0; j < d; ++j) {
      dst[j] += eta * (src[j] - dst[j]);
    }
  }
  return labels;
}

ChooseKResult choose_k(const Matrix& points, Rng& rng,
                       const ChooseKConfig& cfg) {
  SIMPROF_EXPECTS(!points.empty(), "choose_k on empty matrix");
  // Clamp the sweep to the population: k > n is undefined for k-means, and
  // a zero max_k would leave the sweep (and the best-score reduction below)
  // operating on nothing — both are trivially reachable from early-stream
  // snapshots and tiny profiles, and both must degrade to a defined sweep
  // instead of contract-aborting.
  const std::size_t max_k = std::max<std::size_t>(
      1, std::min<std::size_t>(cfg.max_k, points.rows()));
  obs::ObsSpan sweep_span(
      "choose_k", {{"points", points.rows()}, {"max_k", max_k}});
  static obs::Counter& sweeps = obs::metrics().counter("choose_k.sweeps");
  sweeps.increment();

  // One draw of the caller's rng seeds the whole sweep; each k forks a
  // fixed stream from it, so the sweep order (and thread count) cannot
  // change any clustering.
  const std::uint64_t sweep_seed = rng.next_u64();
  const std::vector<double> norms = row_squared_norms(points);

  KMeansConfig km = cfg.kmeans;
  if (km.threads == 0) km.threads = cfg.threads;

  ChooseKResult out;
  std::vector<KMeansResult> clusterings(max_k);
  out.scores.assign(max_k, 0.0);

  support::parallel_for(
      cfg.threads, 0, max_k, 1,
      [&](std::size_t, std::size_t b, std::size_t e) {
        for (std::size_t idx = b; idx < e; ++idx) {
          const std::size_t k = idx + 1;
          obs::ObsSpan k_span("choose_k.k", {{"k", k}});
          const std::uint64_t restart_seed =
              Rng::stream(sweep_seed, k).next_u64();
          KMeansResult r =
              kmeans_with_norms(points, norms, k, restart_seed, km);
          out.scores[idx] =
              (k == 1) ? cfg.k1_baseline_score
                       : sampled_silhouette(points, r.labels, k,
                                            kDefaultSilhouetteSample,
                                            cfg.silhouette_seed + k,
                                            km.threads);
          clusterings[idx] = std::move(r);
        }
      });

  const double best = *std::max_element(out.scores.begin(), out.scores.end());
  const double cutoff = cfg.score_fraction * best;
  std::size_t chosen = max_k;  // fall back to the largest k
  for (std::size_t k = 1; k <= max_k; ++k) {
    if (out.scores[k - 1] >= cutoff) {
      chosen = k;
      break;
    }
  }
  out.k = chosen;
  out.clustering = std::move(clusterings[chosen - 1]);
  SIMPROF_LOG(kDebug) << "choose_k: k=" << out.k << " of max_k=" << max_k
                      << " score=" << out.scores[out.k - 1]
                      << " best=" << best;
  return out;
}

}  // namespace simprof::stats
