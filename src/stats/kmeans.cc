#include "stats/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/silhouette.h"
#include "support/assert.h"

namespace simprof::stats {
namespace {

/// k-means++ seeding: first center uniform, subsequent centers sampled with
/// probability proportional to squared distance to the nearest chosen center.
Matrix seed_plus_plus(const Matrix& points, std::size_t k, Rng& rng) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  Matrix centers(k, d);

  std::vector<double> dist2(n, std::numeric_limits<double>::max());
  std::size_t first = static_cast<std::size_t>(rng.next_below(n));
  std::copy_n(points.row(first).data(), d, centers.row(0).data());

  for (std::size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d2 = squared_distance(points.row(i), centers.row(c - 1));
      dist2[i] = std::min(dist2[i], d2);
      total += dist2[i];
    }
    std::size_t pick = 0;
    if (total > 0.0) {
      double target = rng.next_double() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= dist2[i];
        if (target <= 0.0) {
          pick = i;
          break;
        }
      }
    } else {
      pick = static_cast<std::size_t>(rng.next_below(n));
    }
    std::copy_n(points.row(pick).data(), d, centers.row(c).data());
  }
  return centers;
}

KMeansResult lloyd(const Matrix& points, Matrix centers,
                   const KMeansConfig& cfg) {
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  const std::size_t k = centers.rows();

  KMeansResult res;
  res.labels.assign(n, 0);
  double prev_inertia = std::numeric_limits<double>::max();

  for (std::size_t iter = 0; iter < cfg.max_iterations; ++iter) {
    // Assignment step.
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d2 = squared_distance(points.row(i), centers.row(c));
        if (d2 < best) {
          best = d2;
          best_c = c;
        }
      }
      res.labels[i] = best_c;
      inertia += best;
    }

    // Update step.
    Matrix next(k, d);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = res.labels[i];
      ++counts[c];
      auto dst = next.row(c);
      const auto src = points.row(i);
      for (std::size_t j = 0; j < d; ++j) dst[j] += src[j];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: re-seed it at the point farthest from its center.
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d2 =
              squared_distance(points.row(i), centers.row(res.labels[i]));
          if (d2 > far_d) {
            far_d = d2;
            far = i;
          }
        }
        std::copy_n(points.row(far).data(), d, next.row(c).data());
        continue;
      }
      auto dst = next.row(c);
      for (std::size_t j = 0; j < d; ++j) {
        dst[j] /= static_cast<double>(counts[c]);
      }
    }
    centers = std::move(next);
    res.iterations = iter + 1;
    res.inertia = inertia;
    if (prev_inertia - inertia < cfg.tolerance) break;
    prev_inertia = inertia;
  }
  res.centers = std::move(centers);
  return res;
}

}  // namespace

KMeansResult kmeans(const Matrix& points, std::size_t k, Rng& rng,
                    const KMeansConfig& cfg) {
  SIMPROF_EXPECTS(!points.empty(), "kmeans on empty matrix");
  SIMPROF_EXPECTS(k >= 1 && k <= points.rows(),
                  "k must be in [1, number of points]");

  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  const std::size_t restarts = std::max<std::size_t>(1, cfg.restarts);
  for (std::size_t r = 0; r < restarts; ++r) {
    KMeansResult cand = lloyd(points, seed_plus_plus(points, k, rng), cfg);
    if (cand.inertia < best.inertia) best = std::move(cand);
  }
  return best;
}

std::size_t nearest_center(const Matrix& centers,
                           std::span<const double> point) {
  SIMPROF_EXPECTS(centers.rows() > 0, "no centers");
  double best = std::numeric_limits<double>::max();
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < centers.rows(); ++c) {
    const double d2 = squared_distance(centers.row(c), point);
    if (d2 < best) {
      best = d2;
      best_c = c;
    }
  }
  return best_c;
}

ChooseKResult choose_k(const Matrix& points, Rng& rng,
                       const ChooseKConfig& cfg) {
  SIMPROF_EXPECTS(!points.empty(), "choose_k on empty matrix");
  const std::size_t max_k =
      std::min<std::size_t>(cfg.max_k, points.rows());

  ChooseKResult out;
  std::vector<KMeansResult> clusterings;
  clusterings.reserve(max_k);
  out.scores.reserve(max_k);

  for (std::size_t k = 1; k <= max_k; ++k) {
    KMeansResult r = kmeans(points, k, rng, cfg.kmeans);
    const double score =
        (k == 1) ? cfg.k1_baseline_score
                 : sampled_silhouette(points, r.labels, k);
    out.scores.push_back(score);
    clusterings.push_back(std::move(r));
  }

  const double best = *std::max_element(out.scores.begin(), out.scores.end());
  const double cutoff = cfg.score_fraction * best;
  std::size_t chosen = max_k;  // fall back to the largest k
  for (std::size_t k = 1; k <= max_k; ++k) {
    if (out.scores[k - 1] >= cutoff) {
      chosen = k;
      break;
    }
  }
  out.k = chosen;
  out.clustering = std::move(clusterings[chosen - 1]);
  return out;
}

}  // namespace simprof::stats
