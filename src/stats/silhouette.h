// Silhouette coefficients for scoring a clustering.
//
// The paper scores each candidate k with the silhouette coefficient. The
// exact coefficient is O(n²·d); for the per-unit feature matrices SimProf
// clusters (hundreds to thousands of units) we default to the *simplified*
// silhouette (distances to centroids, O(n·k·d)) which preserves the ordering
// of ks in practice; the exact version is kept for validation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/matrix.h"

namespace simprof::stats {

/// Exact mean silhouette over all points. Requires ≥ 2 non-empty clusters;
/// returns 0 otherwise. Points in singleton clusters contribute 0 (sklearn
/// convention).
double exact_silhouette(const Matrix& points,
                        std::span<const std::size_t> labels,
                        std::size_t num_clusters);

/// Simplified silhouette: a(i) = distance to own centroid, b(i) = distance
/// to the nearest other centroid, s(i) = (b-a)/max(a,b). Returns 0 when
/// fewer than 2 clusters are non-empty. Fast (O(n·k·d)) but inflates on
/// unstructured data as k grows — use the sampled exact version to choose k.
double simplified_silhouette(const Matrix& points, const Matrix& centers,
                             std::span<const std::size_t> labels);

/// Exact silhouette over a deterministic subsample of at most `max_points`
/// points (every ⌈n/max_points⌉-th point). Exact silhouette resists the
/// over-fitting inflation the paper warns about (Section V), and the
/// subsample keeps the k = 1..20 sweep O(max_points²·d) per k.
double sampled_silhouette(const Matrix& points,
                          std::span<const std::size_t> labels,
                          std::size_t num_clusters,
                          std::size_t max_points = 400);

}  // namespace simprof::stats
