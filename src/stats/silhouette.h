// Silhouette coefficients for scoring a clustering.
//
// The paper scores each candidate k with the silhouette coefficient. The
// exact coefficient is O(n²·d); for the per-unit feature matrices SimProf
// clusters (hundreds to thousands of units) we default to the *simplified*
// silhouette (distances to centroids, O(n·k·d)) which preserves the ordering
// of ks in practice; the exact version is kept for validation.
//
// All three variants run their pairwise-distance passes through the blocked
// ‖x‖²+‖y‖²−2·x·y kernel (stats/matrix.h DistanceTable) over row chunks on
// support::ThreadPool, with per-chunk partial sums merged in chunk order —
// the score is bit-identical for any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "stats/matrix.h"

namespace simprof::stats {

/// Default sampled_silhouette subsample size — keeps a k = 1..20 sweep
/// O(max_points²·d) per k.
inline constexpr std::size_t kDefaultSilhouetteSample = 400;

/// Exact mean silhouette over all points. Requires ≥ 2 non-empty clusters;
/// returns 0 otherwise. Points in singleton clusters contribute 0 (sklearn
/// convention). threads = 0 → global default.
double exact_silhouette(const Matrix& points,
                        std::span<const std::size_t> labels,
                        std::size_t num_clusters, std::size_t threads = 0);

/// Simplified silhouette: a(i) = distance to own centroid, b(i) = distance
/// to the nearest other centroid, s(i) = (b-a)/max(a,b). Returns 0 when
/// fewer than 2 clusters are non-empty. Fast (O(n·k·d)) but inflates on
/// unstructured data as k grows — use the sampled exact version to choose k.
double simplified_silhouette(const Matrix& points, const Matrix& centers,
                             std::span<const std::size_t> labels,
                             std::size_t threads = 0);

/// Exact silhouette over a seeded random subsample of at most `max_points`
/// points. Exact silhouette resists the over-fitting inflation the paper
/// warns about (Section V); the random subset (unlike the old deterministic
/// stride, which aliased with periodic unit orderings and could starve
/// whole clusters) is unbiased while staying reproducible per seed.
double sampled_silhouette(const Matrix& points,
                          std::span<const std::size_t> labels,
                          std::size_t num_clusters,
                          std::size_t max_points = kDefaultSilhouetteSample,
                          std::uint64_t seed = 0x5a3b1eULL,
                          std::size_t threads = 0);

}  // namespace simprof::stats
