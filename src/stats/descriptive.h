// Descriptive statistics used throughout SimProf: per-phase CPI means and
// deviations (Eq. 5), coefficients of variation (Fig. 6), and the weighted
// CoV summary of the phase-homogeneity analysis.
//
// Small-sample conventions (DESIGN.md §6d): every estimator is total on its
// domain — n < 2 yields variance/stddev/correlation 0 rather than a 0/0 NaN,
// so single-unit phases flow through Neyman weights and CIs as "no variance
// signal" instead of poisoning them.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace simprof::stats {

double mean(std::span<const double> xs);

/// Sample variance (n-1 denominator), 0 when fewer than 2 samples.
double sample_variance(std::span<const double> xs);

/// Population variance (n denominator).
double population_variance(std::span<const double> xs);

/// Sample standard deviation — the paper's s_h (Eq. 5).
double sample_stddev(std::span<const double> xs);

double population_stddev(std::span<const double> xs);

/// Coefficient of variation: stddev/mean (sample stddev); 0 if mean is 0.
double coefficient_of_variation(std::span<const double> xs);

/// Min / max helpers (0 on empty input).
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Summary of a partition of observations into groups (phases): the paper's
/// population / weighted / maximum CoV triple of Fig. 6.
struct CovSummary {
  double population = 0.0;  ///< CoV over all observations.
  double weighted = 0.0;    ///< Σ (N_h/N) · CoV_h.
  double maximum = 0.0;     ///< max_h CoV_h.
};

/// `labels[i]` assigns observation i to a group in [0, num_groups).
CovSummary grouped_cov(std::span<const double> values,
                       std::span<const std::size_t> labels,
                       std::size_t num_groups);

/// Pearson correlation coefficient; 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Incremental moment accumulator (Welford's online algorithm) — the
/// streaming sibling of mean/sample_variance above, used by the streaming
/// phase former to keep per-phase CPI statistics current between full
/// reclusters without retaining the observations.
///
/// Small-sample conventions match the batch estimators: count < 2 yields
/// variance/stddev 0, an empty accumulator reports mean/min/max 0. merge()
/// folds another accumulator in with Chan's parallel update; a fixed fold
/// order yields a deterministic (though not bitwise batch-identical) result,
/// which is why the former rebuilds its accumulators from the retained units
/// at every recluster — the streamed values only bridge the gap in between.
class RunningMoments {
 public:
  void push(double x);
  void merge(const RunningMoments& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator), 0 when fewer than 2 observations.
  double sample_variance() const;
  double sample_stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace simprof::stats
