#include "stats/feature_select.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "support/assert.h"
#include "support/thread_pool.h"

namespace simprof::stats {

namespace {

/// Column blocks of this width keep the dense kernel's accumulator set
/// (5 arrays) inside L1 while each row streams contiguously through the
/// block's columns.
constexpr std::size_t kColBlock = 128;

/// Per-column single-pass moments. `mn`/`mx` detect constant columns
/// exactly — the moment difference Σx² − (Σx)²/n rounds to a tiny nonzero
/// for constant columns, but min == max cannot lie.
struct ColMoments {
  double sx = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
};

/// Moments of the target, accumulated in plain row order (shared verbatim
/// by the dense and sparse kernels).
struct TargetMoments {
  double sy = 0.0;
  double syy = 0.0;
  double syy_centered = 0.0;
};

TargetMoments target_moments(std::span<const double> y) {
  TargetMoments t;
  for (double v : y) {
    t.sy += v;
    t.syy += v * v;
  }
  const double n = static_cast<double>(y.size());
  t.syy_centered = t.syy - t.sy * t.sy / n;
  return t;
}

double score_column(const ColMoments& m, const TargetMoments& t,
                    std::size_t n) {
  if (!(m.mn < m.mx)) return 0.0;  // constant column (or no finite spread)
  const double dn = static_cast<double>(n);
  const double sxx_c = m.sxx - m.sx * m.sx / dn;
  if (sxx_c <= 0.0 || t.syy_centered <= 0.0) return 0.0;
  const double sxy_c = m.sxy - m.sx * t.sy / dn;
  const double r2 =
      std::min((sxy_c * sxy_c) / (sxx_c * t.syy_centered), 1.0 - 1e-12);
  return r2 / (1.0 - r2) * static_cast<double>(n - 2);
}

}  // namespace

std::vector<double> f_regression(const Matrix& x, std::span<const double> y,
                                 std::size_t threads) {
  SIMPROF_EXPECTS(x.rows() == y.size(), "row/target length mismatch");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  std::vector<double> scores(d, 0.0);
  if (n < 3 || d == 0) return scores;

  const TargetMoments ty = target_moments(y);
  const std::size_t blocks = (d + kColBlock - 1) / kColBlock;
  support::parallel_for(
      threads, 0, blocks, 1,
      [&](std::size_t, std::size_t bb, std::size_t be) {
        for (std::size_t block = bb; block < be; ++block) {
          const std::size_t c0 = block * kColBlock;
          const std::size_t w = std::min(kColBlock, d - c0);
          std::vector<ColMoments> total(w);
          // One pass over the rows, folding fixed-size row chunks in chunk
          // order (the same grid the sparse kernel merges on).
          double psx[kColBlock], psxx[kColBlock], psxy[kColBlock];
          for (std::size_t r0 = 0; r0 < n; r0 += kFRegressionRowChunk) {
            const std::size_t r1 = std::min(n, r0 + kFRegressionRowChunk);
            std::fill_n(psx, w, 0.0);
            std::fill_n(psxx, w, 0.0);
            std::fill_n(psxy, w, 0.0);
            for (std::size_t r = r0; r < r1; ++r) {
              const double* __restrict xr = x.row(r).data() + c0;
              const double yr = y[r];
              for (std::size_t j = 0; j < w; ++j) {
                const double v = xr[j];
                psx[j] += v;
                psxx[j] += v * v;
                psxy[j] += v * yr;
                total[j].mn = std::min(total[j].mn, v);
                total[j].mx = std::max(total[j].mx, v);
              }
            }
            for (std::size_t j = 0; j < w; ++j) {
              total[j].sx += psx[j];
              total[j].sxx += psxx[j];
              total[j].sxy += psxy[j];
            }
          }
          for (std::size_t j = 0; j < w; ++j) {
            scores[c0 + j] = score_column(total[j], ty, n);
          }
        }
      });
  return scores;
}

std::vector<double> f_regression(const SparseMatrix& x,
                                 std::span<const double> y,
                                 std::size_t threads) {
  SIMPROF_EXPECTS(x.rows() == y.size(), "row/target length mismatch");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  std::vector<double> scores(d, 0.0);
  if (n < 3 || d == 0) return scores;

  const TargetMoments ty = target_moments(y);

  // Row chunks on the same fixed grid as the dense kernel; each chunk
  // scatters its rows (in row order) into chunk-local per-column partials.
  struct ChunkAcc {
    std::vector<double> sx, sxx, sxy, mn, mx;
    std::vector<std::uint32_t> nnz;
  };
  const std::size_t chunks = (n + kFRegressionRowChunk - 1) / kFRegressionRowChunk;
  std::vector<ChunkAcc> partial(chunks);
  support::parallel_for(
      threads, 0, chunks, 1,
      [&](std::size_t, std::size_t cb, std::size_t ce) {
        for (std::size_t chunk = cb; chunk < ce; ++chunk) {
          ChunkAcc& a = partial[chunk];
          a.sx.assign(d, 0.0);
          a.sxx.assign(d, 0.0);
          a.sxy.assign(d, 0.0);
          a.mn.assign(d, std::numeric_limits<double>::infinity());
          a.mx.assign(d, -std::numeric_limits<double>::infinity());
          a.nnz.assign(d, 0);
          const std::size_t r0 = chunk * kFRegressionRowChunk;
          const std::size_t r1 = std::min(n, r0 + kFRegressionRowChunk);
          for (std::size_t r = r0; r < r1; ++r) {
            const auto row = x.row(r);
            const double yr = y[r];
            for (std::size_t i = 0; i < row.cols.size(); ++i) {
              const std::size_t c = row.cols[i];
              const double v = row.vals[i];
              a.sx[c] += v;
              a.sxx[c] += v * v;
              a.sxy[c] += v * yr;
              a.mn[c] = std::min(a.mn[c], v);
              a.mx[c] = std::max(a.mx[c], v);
              ++a.nnz[c];
            }
          }
        }
      });

  // Ordered merge (chunk 0, 1, …) — the fold order the dense kernel uses,
  // so the two paths agree bit for bit.
  std::vector<ColMoments> total(d);
  std::vector<std::uint64_t> nnz(d, 0);
  for (const ChunkAcc& a : partial) {
    for (std::size_t c = 0; c < d; ++c) {
      total[c].sx += a.sx[c];
      total[c].sxx += a.sxx[c];
      total[c].sxy += a.sxy[c];
      total[c].mn = std::min(total[c].mn, a.mn[c]);
      total[c].mx = std::max(total[c].mx, a.mx[c]);
      nnz[c] += a.nnz[c];
    }
  }
  support::parallel_for(
      threads, 0, d, 4096,
      [&](std::size_t, std::size_t cb, std::size_t ce) {
        for (std::size_t c = cb; c < ce; ++c) {
          ColMoments m = total[c];
          if (nnz[c] < n) {  // the implicit zeros the dense walk would see
            m.mn = std::min(m.mn, 0.0);
            m.mx = std::max(m.mx, 0.0);
          }
          scores[c] = score_column(m, ty, n);
        }
      });
  return scores;
}

std::vector<std::size_t> top_k_indices(std::span<const double> scores,
                                       std::size_t k, bool positive_only) {
  std::vector<std::size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  std::size_t limit = std::min(k, idx.size());
  if (positive_only) {
    std::size_t positives = 0;
    for (auto i : idx) {
      if (scores[i] > 0.0) ++positives;
      else break;
    }
    limit = std::min(limit, positives);
  }
  idx.resize(limit);
  std::sort(idx.begin(), idx.end());
  return idx;
}

}  // namespace simprof::stats
