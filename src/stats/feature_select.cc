#include "stats/feature_select.h"

#include <algorithm>
#include <numeric>

#include "stats/descriptive.h"
#include "support/assert.h"

namespace simprof::stats {

std::vector<double> f_regression(const Matrix& x, std::span<const double> y) {
  SIMPROF_EXPECTS(x.rows() == y.size(), "row/target length mismatch");
  const std::size_t n = x.rows();
  std::vector<double> scores(x.cols(), 0.0);
  if (n < 3) return scores;

  for (std::size_t c = 0; c < x.cols(); ++c) {
    const auto col = x.column(c);
    const double r = pearson(col, y);
    const double r2 = std::min(r * r, 1.0 - 1e-12);
    scores[c] = r2 / (1.0 - r2) * static_cast<double>(n - 2);
  }
  return scores;
}

std::vector<std::size_t> top_k_indices(std::span<const double> scores,
                                       std::size_t k, bool positive_only) {
  std::vector<std::size_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  std::size_t limit = std::min(k, idx.size());
  if (positive_only) {
    std::size_t positives = 0;
    for (auto i : idx) {
      if (scores[i] > 0.0) ++positives;
      else break;
    }
    limit = std::min(limit, positives);
  }
  idx.resize(limit);
  std::sort(idx.begin(), idx.end());
  return idx;
}

}  // namespace simprof::stats
