// Dense row-major matrix of doubles — the feature-matrix currency shared by
// feature selection, k-means, silhouette scoring and unit classification.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/assert.h"

namespace simprof::stats {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& at(std::size_t r, std::size_t c) {
    SIMPROF_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    SIMPROF_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    SIMPROF_EXPECTS(r < rows_, "row out of range");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    SIMPROF_EXPECTS(r < rows_, "row out of range");
    return {data_.data() + r * cols_, cols_};
  }

  std::span<const double> flat() const { return data_; }
  std::span<double> flat_mut() { return data_; }

  /// Copy of one column (columns are strided; callers usually need them
  /// contiguous for the univariate regression test).
  std::vector<double> column(std::size_t c) const;

  /// Keep only the given columns, in the given order.
  Matrix select_columns(std::span<const std::size_t> cols) const;

  /// Scale each row to sum 1 (rows summing to 0 are left untouched).
  void normalize_rows_l1();

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Squared Euclidean distance between two equal-length vectors.
double squared_distance(std::span<const double> a, std::span<const double> b);

/// Euclidean distance.
double distance(std::span<const double> a, std::span<const double> b);

}  // namespace simprof::stats
