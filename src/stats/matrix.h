// Dense row-major matrix of doubles — the feature-matrix currency shared by
// feature selection, k-means, silhouette scoring and unit classification.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/assert.h"

namespace simprof::stats {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& at(std::size_t r, std::size_t c) {
    SIMPROF_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double at(std::size_t r, std::size_t c) const {
    SIMPROF_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    SIMPROF_EXPECTS(r < rows_, "row out of range");
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    SIMPROF_EXPECTS(r < rows_, "row out of range");
    return {data_.data() + r * cols_, cols_};
  }

  std::span<const double> flat() const { return data_; }
  std::span<double> flat_mut() { return data_; }

  /// Zero-copy strided view of one column. Replaces the old copying
  /// column() accessor: hot loops (univariate regression, naive reference
  /// checks) walk the stride instead of allocating an O(rows) vector per
  /// feature column.
  class ColumnView {
   public:
    ColumnView(const double* base, std::size_t stride, std::size_t size)
        : base_(base), stride_(stride), size_(size) {}
    std::size_t size() const { return size_; }
    double operator[](std::size_t i) const { return base_[i * stride_]; }

   private:
    const double* base_;
    std::size_t stride_;
    std::size_t size_;
  };
  ColumnView column_view(std::size_t c) const {
    SIMPROF_EXPECTS(c < cols_, "column out of range");
    return ColumnView(data_.data() + c, cols_, rows_);
  }

  /// Keep only the given columns, in the given order.
  Matrix select_columns(std::span<const std::size_t> cols) const;

  /// Scale each row to sum 1 (rows summing to 0 are left untouched).
  void normalize_rows_l1();

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Squared Euclidean distance between two equal-length vectors.
double squared_distance(std::span<const double> a, std::span<const double> b);

/// Euclidean distance.
double distance(std::span<const double> a, std::span<const double> b);

/// ‖row‖² for every row of m — the cached left-hand norms of the blocked
/// distance kernel.
std::vector<double> row_squared_norms(const Matrix& m);

/// Precomputed right-hand side of blocked pairwise-distance computations:
/// the rows of `b` stored transposed (dimension-major) plus their cached
/// squared norms, so that d²(x, y) = ‖x‖² + ‖y‖² − 2·x·y turns a block of
/// left-hand rows into a small GEMM whose inner loop runs contiguously over
/// all right-hand rows at once. This replaces the per-pair squared_distance
/// loops in Lloyd assignment, bulk unit classification and the silhouette
/// variants. Results are a deterministic function of the operands alone
/// (fixed accumulation order), so blocks may be computed on any thread.
class DistanceTable {
 public:
  explicit DistanceTable(const Matrix& b);

  std::size_t count() const { return count_; }
  std::size_t dims() const { return dims_; }
  std::span<const double> norms() const { return norms_; }

  /// d² between rows [row_begin, row_end) of `a` and every table row.
  /// `a_norms` are row_squared_norms(a); `out` is (row_end−row_begin) ×
  /// count() row-major. Negative rounding residues are clamped to 0.
  void squared_distances(const Matrix& a, std::span<const double> a_norms,
                         std::size_t row_begin, std::size_t row_end,
                         std::span<double> out) const;

  /// For rows [row_begin, row_end) of `a`: index of the nearest table row
  /// (lowest index wins ties) and the squared distance to it. `labels` and
  /// `dist2` are indexed from 0 for the block.
  void nearest(const Matrix& a, std::span<const double> a_norms,
               std::size_t row_begin, std::size_t row_end,
               std::span<std::size_t> labels, std::span<double> dist2) const;

 private:
  void distances_dot(const double* x, double xn, double* out) const;
  void distances_saxpy(const double* x, double xn, double* out) const;
  void distances_saxpy4(const double* const* xs, const double* xns,
                        double* const* os) const;

  std::size_t count_ = 0;
  std::size_t dims_ = 0;
  std::vector<double> rows_;        ///< count_ × dims_ (row-major copy)
  std::vector<double> transposed_;  ///< dims_ × count_
  std::vector<double> norms_;       ///< count_
};

/// x·y with four independent accumulators (fixed merge order, so the result
/// is deterministic) — gives the FP pipeline ILP that the naive dependent
/// chain in squared_distance cannot.
double dot_product(std::span<const double> a, std::span<const double> b);

/// Nearest row of `centers` for every row of `points`, via the blocked
/// kernel, parallelised over row blocks (threads = 0 → global default).
std::vector<std::size_t> nearest_centers(const Matrix& centers,
                                         const Matrix& points,
                                         std::size_t threads = 0);

}  // namespace simprof::stats
