#include "stats/matrix.h"

#include <cmath>

namespace simprof::stats {

std::vector<double> Matrix::column(std::size_t c) const {
  SIMPROF_EXPECTS(c < cols_, "column out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

Matrix Matrix::select_columns(std::span<const std::size_t> cols) const {
  Matrix out(rows_, cols.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t j = 0; j < cols.size(); ++j) {
      SIMPROF_EXPECTS(cols[j] < cols_, "selected column out of range");
      out.at(r, j) = data_[r * cols_ + cols[j]];
    }
  }
  return out;
}

void Matrix::normalize_rows_l1() {
  for (std::size_t r = 0; r < rows_; ++r) {
    auto rw = row(r);
    double sum = 0.0;
    for (double v : rw) sum += v;
    if (sum <= 0.0) continue;
    for (double& v : rw) v /= sum;
  }
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  SIMPROF_EXPECTS(a.size() == b.size(), "dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

}  // namespace simprof::stats
