#include "stats/matrix.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/thread_pool.h"

namespace simprof::stats {

Matrix Matrix::select_columns(std::span<const std::size_t> cols) const {
  Matrix out(rows_, cols.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t j = 0; j < cols.size(); ++j) {
      SIMPROF_EXPECTS(cols[j] < cols_, "selected column out of range");
      out.at(r, j) = data_[r * cols_ + cols[j]];
    }
  }
  return out;
}

void Matrix::normalize_rows_l1() {
  for (std::size_t r = 0; r < rows_; ++r) {
    auto rw = row(r);
    double sum = 0.0;
    for (double v : rw) sum += v;
    if (sum <= 0.0) continue;
    for (double& v : rw) v /= sum;
  }
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  SIMPROF_EXPECTS(a.size() == b.size(), "dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double distance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(squared_distance(a, b));
}

double dot_product(std::span<const double> a, std::span<const double> b) {
  SIMPROF_EXPECTS(a.size() == b.size(), "dimension mismatch");
  const double* __restrict x = a.data();
  const double* __restrict y = b.data();
  const std::size_t n = a.size();
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    s0 += x[j] * y[j];
    s1 += x[j + 1] * y[j + 1];
    s2 += x[j + 2] * y[j + 2];
    s3 += x[j + 3] * y[j + 3];
  }
  double s = (s0 + s1) + (s2 + s3);
  for (; j < n; ++j) s += x[j] * y[j];
  return s;
}

std::vector<double> row_squared_norms(const Matrix& m) {
  std::vector<double> out(m.rows(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    double acc = 0.0;
    for (double v : row) acc += v * v;
    out[r] = acc;
  }
  return out;
}

namespace {
/// Table sizes up to this use the dot-product path: the whole table fits in
/// L1 and a per-row inner loop of count_ elements would be too short to
/// vectorize or pipeline (Lloyd assignment has count_ = k ≤ 20).
constexpr std::size_t kDotPathMaxRows = 48;
}  // namespace

DistanceTable::DistanceTable(const Matrix& b)
    : count_(b.rows()),
      dims_(b.cols()),
      rows_(b.flat().begin(), b.flat().end()),
      transposed_(b.rows() * b.cols()),
      norms_(b.rows(), 0.0) {
  for (std::size_t r = 0; r < count_; ++r) {
    const auto row = b.row(r);
    double acc = 0.0;
    for (std::size_t j = 0; j < dims_; ++j) {
      transposed_[j * count_ + r] = row[j];
      acc += row[j] * row[j];
    }
    norms_[r] = acc;
  }
}

/// Small-table path: one four-accumulator dot product per table row. Both
/// operands stream contiguously and the table stays resident in L1.
void DistanceTable::distances_dot(const double* x, double xn,
                                  double* out) const {
  const double* __restrict rows = rows_.data();
  for (std::size_t c = 0; c < count_; ++c) {
    const double* __restrict cr = rows + c * dims_;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    std::size_t j = 0;
    for (; j + 4 <= dims_; j += 4) {
      s0 += x[j] * cr[j];
      s1 += x[j + 1] * cr[j + 1];
      s2 += x[j + 2] * cr[j + 2];
      s3 += x[j + 3] * cr[j + 3];
    }
    double s = (s0 + s1) + (s2 + s3);
    for (; j < dims_; ++j) s += x[j] * cr[j];
    out[c] = std::max(0.0, xn + norms_[c] - 2.0 * s);
  }
}

/// Large-table path: GEMM-style accumulation — for each dimension, one
/// contiguous (vectorizable) pass over every table row. Zero coordinates
/// (common in L1-normalized sparse feature rows) contribute nothing and
/// are skipped.
void DistanceTable::distances_saxpy(const double* x, double xn,
                                    double* out) const {
  double* __restrict o = out;
  std::fill_n(o, count_, 0.0);
  for (std::size_t j = 0; j < dims_; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    const double* __restrict col = transposed_.data() + j * count_;
    for (std::size_t c = 0; c < count_; ++c) o[c] += xj * col[c];
  }
  const double* __restrict norms = norms_.data();
  for (std::size_t c = 0; c < count_; ++c) {
    o[c] = std::max(0.0, xn + norms[c] - 2.0 * o[c]);
  }
}

/// Four left-hand rows at once: each table column is loaded once and feeds
/// four accumulator rows, quadrupling the kernel's arithmetic intensity.
/// Per output element the accumulation chain is identical to the one-row
/// path, so blocking cannot change a single bit of the result.
void DistanceTable::distances_saxpy4(const double* const* xs,
                                     const double* xns,
                                     double* const* os) const {
  double* __restrict o0 = os[0];
  double* __restrict o1 = os[1];
  double* __restrict o2 = os[2];
  double* __restrict o3 = os[3];
  std::fill_n(o0, count_, 0.0);
  std::fill_n(o1, count_, 0.0);
  std::fill_n(o2, count_, 0.0);
  std::fill_n(o3, count_, 0.0);
  for (std::size_t j = 0; j < dims_; ++j) {
    const double xj0 = xs[0][j];
    const double xj1 = xs[1][j];
    const double xj2 = xs[2][j];
    const double xj3 = xs[3][j];
    if (xj0 == 0.0 && xj1 == 0.0 && xj2 == 0.0 && xj3 == 0.0) continue;
    const double* __restrict col = transposed_.data() + j * count_;
    for (std::size_t c = 0; c < count_; ++c) {
      const double t = col[c];
      o0[c] += xj0 * t;
      o1[c] += xj1 * t;
      o2[c] += xj2 * t;
      o3[c] += xj3 * t;
    }
  }
  const double* __restrict norms = norms_.data();
  for (std::size_t c = 0; c < count_; ++c) {
    o0[c] = std::max(0.0, xns[0] + norms[c] - 2.0 * o0[c]);
    o1[c] = std::max(0.0, xns[1] + norms[c] - 2.0 * o1[c]);
    o2[c] = std::max(0.0, xns[2] + norms[c] - 2.0 * o2[c]);
    o3[c] = std::max(0.0, xns[3] + norms[c] - 2.0 * o3[c]);
  }
}

void DistanceTable::squared_distances(const Matrix& a,
                                      std::span<const double> a_norms,
                                      std::size_t row_begin,
                                      std::size_t row_end,
                                      std::span<double> out) const {
  SIMPROF_EXPECTS(a.cols() == dims_, "dimension mismatch");
  SIMPROF_EXPECTS(row_begin <= row_end && row_end <= a.rows(),
                  "row block out of range");
  SIMPROF_EXPECTS(a_norms.size() == a.rows(), "norms length mismatch");
  SIMPROF_EXPECTS(out.size() >= (row_end - row_begin) * count_,
                  "output block too small");
  // Path choice depends only on the table shape, never on threading, and
  // every path produces bit-identical distances per output element.
  if (count_ <= kDotPathMaxRows) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
      distances_dot(a.row(i).data(), a_norms[i],
                    out.data() + (i - row_begin) * count_);
    }
    return;
  }
  std::size_t i = row_begin;
  for (; i + 4 <= row_end; i += 4) {
    const double* xs[4];
    double xns[4];
    double* os[4];
    for (std::size_t r = 0; r < 4; ++r) {
      xs[r] = a.row(i + r).data();
      xns[r] = a_norms[i + r];
      os[r] = out.data() + (i + r - row_begin) * count_;
    }
    distances_saxpy4(xs, xns, os);
  }
  for (; i < row_end; ++i) {
    distances_saxpy(a.row(i).data(), a_norms[i],
                    out.data() + (i - row_begin) * count_);
  }
}

void DistanceTable::nearest(const Matrix& a, std::span<const double> a_norms,
                            std::size_t row_begin, std::size_t row_end,
                            std::span<std::size_t> labels,
                            std::span<double> dist2) const {
  SIMPROF_EXPECTS(count_ > 0, "no table rows");
  SIMPROF_EXPECTS(labels.size() >= row_end - row_begin &&
                      dist2.size() >= row_end - row_begin,
                  "output block too small");
  std::vector<double> row(count_);
  for (std::size_t i = row_begin; i < row_end; ++i) {
    squared_distances(a, a_norms, i, i + 1, row);
    double best = std::numeric_limits<double>::max();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < count_; ++c) {
      if (row[c] < best) {
        best = row[c];
        best_c = c;
      }
    }
    labels[i - row_begin] = best_c;
    dist2[i - row_begin] = best;
  }
}

std::vector<std::size_t> nearest_centers(const Matrix& centers,
                                         const Matrix& points,
                                         std::size_t threads) {
  SIMPROF_EXPECTS(centers.rows() > 0, "no centers");
  const std::size_t n = points.rows();
  std::vector<std::size_t> labels(n, 0);
  if (n == 0) return labels;
  const std::vector<double> norms = row_squared_norms(points);
  const DistanceTable table(centers);
  std::vector<double> dist2(n);
  support::parallel_for(
      threads, 0, n, 256,
      [&](std::size_t, std::size_t b, std::size_t e) {
        table.nearest(points, norms, b, e,
                      std::span<std::size_t>(labels).subspan(b, e - b),
                      std::span<double>(dist2).subspan(b, e - b));
      });
  return labels;
}

}  // namespace simprof::stats
