// Univariate linear-regression feature scoring.
//
// SimProf's phase formation reduces thousands of method-frequency dimensions
// to the top-K methods most correlated with performance (IPC). The paper
// cites the univariate linear regression test (sklearn's f_regression):
// F = r² / (1 − r²) · (n − 2), where r is the Pearson correlation between a
// feature column and the target. Constant columns (e.g. the executor-thread
// start-up methods appearing in every unit) score 0 and are dropped — exactly
// the elimination the paper describes for Figure 5.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/matrix.h"

namespace simprof::stats {

/// F-statistic per feature column of X against target y. Returns X.cols()
/// scores; constant columns (or constant y) score 0.
std::vector<double> f_regression(const Matrix& x, std::span<const double> y);

/// Indices of the top-k scores (ties broken toward the lower index, output
/// sorted ascending so column selection is stable). k is clamped to the
/// number of strictly positive scores when `positive_only` is set: a column
/// with zero F carries no performance signal and would only add noise.
std::vector<std::size_t> top_k_indices(std::span<const double> scores,
                                       std::size_t k,
                                       bool positive_only = true);

}  // namespace simprof::stats
