// Univariate linear-regression feature scoring.
//
// SimProf's phase formation reduces thousands of method-frequency dimensions
// to the top-K methods most correlated with performance (IPC). The paper
// cites the univariate linear regression test (sklearn's f_regression):
// F = r² / (1 − r²) · (n − 2), where r is the Pearson correlation between a
// feature column and the target. Constant columns (e.g. the executor-thread
// start-up methods appearing in every unit) score 0 and are dropped — exactly
// the elimination the paper describes for Figure 5.
//
// Both kernels are single-pass: per column they accumulate Σx, Σx², Σxy (and
// min/max, which detects constant columns robustly) over rows in fixed
// chunks of kFRegressionRowChunk rows, folding chunk partials in chunk
// order. The chunk grid depends only on the row count, never on the thread
// count, so results are bit-identical for any `threads` value — and because
// implicit zeros are exact no-op additions, the sparse kernel's scores are
// bitwise equal to the dense kernel's on the equivalent matrix.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/matrix.h"
#include "stats/sparse.h"

namespace simprof::stats {

/// Fixed row-chunk size of the accumulation grid (shared by the dense and
/// sparse kernels so their fold order — and therefore their bits — match).
inline constexpr std::size_t kFRegressionRowChunk = 1024;

/// F-statistic per feature column of X against target y. Returns X.cols()
/// scores; constant columns (or constant y) score 0. Parallel over column
/// blocks (threads = 0 → global default); bit-identical for any value.
std::vector<double> f_regression(const Matrix& x, std::span<const double> y,
                                 std::size_t threads = 0);

/// The same scores computed from the CSR form without densifying — parallel
/// over row chunks with an ordered merge. Bitwise equal to the dense
/// overload on x.to_dense().
std::vector<double> f_regression(const SparseMatrix& x,
                                 std::span<const double> y,
                                 std::size_t threads = 0);

/// Indices of the top-k scores (ties broken toward the lower index, output
/// sorted ascending so column selection is stable). k is clamped to the
/// number of strictly positive scores when `positive_only` is set: a column
/// with zero F carries no performance signal and would only add noise.
std::vector<std::size_t> top_k_indices(std::span<const double> scores,
                                       std::size_t k,
                                       bool positive_only = true);

}  // namespace simprof::stats
