#include "stats/silhouette.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.h"

namespace simprof::stats {

double exact_silhouette(const Matrix& points,
                        std::span<const std::size_t> labels,
                        std::size_t num_clusters) {
  const std::size_t n = points.rows();
  SIMPROF_EXPECTS(labels.size() == n, "labels length mismatch");
  if (n == 0 || num_clusters < 2) return 0.0;

  std::vector<std::size_t> counts(num_clusters, 0);
  for (auto l : labels) {
    SIMPROF_EXPECTS(l < num_clusters, "label out of range");
    ++counts[l];
  }
  std::size_t non_empty = 0;
  for (auto c : counts) non_empty += (c > 0) ? 1 : 0;
  if (non_empty < 2) return 0.0;

  double total = 0.0;
  std::vector<double> sums(num_clusters);
  for (std::size_t i = 0; i < n; ++i) {
    if (counts[labels[i]] <= 1) continue;  // singleton → s(i) = 0
    std::fill(sums.begin(), sums.end(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sums[labels[j]] += distance(points.row(i), points.row(j));
    }
    const double a =
        sums[labels[i]] / static_cast<double>(counts[labels[i]] - 1);
    double b = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < num_clusters; ++c) {
      if (c == labels[i] || counts[c] == 0) continue;
      b = std::min(b, sums[c] / static_cast<double>(counts[c]));
    }
    const double denom = std::max(a, b);
    total += (denom > 0.0) ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(n);
}

double sampled_silhouette(const Matrix& points,
                          std::span<const std::size_t> labels,
                          std::size_t num_clusters, std::size_t max_points) {
  const std::size_t n = points.rows();
  SIMPROF_EXPECTS(labels.size() == n, "labels length mismatch");
  SIMPROF_EXPECTS(max_points >= 2, "need at least two sampled points");
  if (n <= max_points) return exact_silhouette(points, labels, num_clusters);

  const std::size_t stride = (n + max_points - 1) / max_points;
  std::vector<std::size_t> picks;
  picks.reserve(max_points);
  for (std::size_t i = 0; i < n; i += stride) picks.push_back(i);

  Matrix sub(picks.size(), points.cols());
  std::vector<std::size_t> sub_labels(picks.size());
  for (std::size_t j = 0; j < picks.size(); ++j) {
    const auto src = points.row(picks[j]);
    std::copy(src.begin(), src.end(), sub.row(j).begin());
    sub_labels[j] = labels[picks[j]];
  }
  return exact_silhouette(sub, sub_labels, num_clusters);
}

double simplified_silhouette(const Matrix& points, const Matrix& centers,
                             std::span<const std::size_t> labels) {
  const std::size_t n = points.rows();
  const std::size_t k = centers.rows();
  SIMPROF_EXPECTS(labels.size() == n, "labels length mismatch");
  if (n == 0 || k < 2) return 0.0;

  std::vector<std::size_t> counts(k, 0);
  for (auto l : labels) {
    SIMPROF_EXPECTS(l < k, "label out of range");
    ++counts[l];
  }
  std::size_t non_empty = 0;
  for (auto c : counts) non_empty += (c > 0) ? 1 : 0;
  if (non_empty < 2) return 0.0;

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = distance(points.row(i), centers.row(labels[i]));
    double b = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == labels[i] || counts[c] == 0) continue;
      b = std::min(b, distance(points.row(i), centers.row(c)));
    }
    const double denom = std::max(a, b);
    total += (denom > 0.0) ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(n);
}

}  // namespace simprof::stats
