#include "stats/silhouette.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.h"
#include "support/assert.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace simprof::stats {
namespace {

/// Rows per chunk of the O(n²) exact pass; the chunk's distance block is
/// kGrainExact × n doubles, sized to stay cache-resident.
constexpr std::size_t kGrainExact = 32;
constexpr std::size_t kGrainSimplified = 256;

/// counts per cluster + the ≥ 2 non-empty precondition shared by the exact
/// and simplified variants.
bool cluster_counts(std::span<const std::size_t> labels,
                    std::size_t num_clusters,
                    std::vector<std::size_t>& counts) {
  counts.assign(num_clusters, 0);
  for (auto l : labels) {
    SIMPROF_EXPECTS(l < num_clusters, "label out of range");
    ++counts[l];
  }
  std::size_t non_empty = 0;
  for (auto c : counts) non_empty += (c > 0) ? 1 : 0;
  return non_empty >= 2;
}

/// Σ of a contiguous run with four independent accumulators — fixed merge
/// order (deterministic) but enough ILP for the FP add pipeline.
double segment_sum(const double* __restrict v, std::size_t len) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t j = 0;
  for (; j + 4 <= len; j += 4) {
    s0 += v[j];
    s1 += v[j + 1];
    s2 += v[j + 2];
    s3 += v[j + 3];
  }
  double s = (s0 + s1) + (s2 + s3);
  for (; j < len; ++j) s += v[j];
  return s;
}

}  // namespace

double exact_silhouette(const Matrix& points,
                        std::span<const std::size_t> labels,
                        std::size_t num_clusters, std::size_t threads) {
  const std::size_t n = points.rows();
  SIMPROF_EXPECTS(labels.size() == n, "labels length mismatch");
  if (n == 0 || num_clusters < 2) return 0.0;

  std::vector<std::size_t> counts;
  if (!cluster_counts(labels, num_clusters, counts)) return 0.0;

  // Group rows by cluster (stable within a cluster) so each per-cluster
  // distance sum is a contiguous segment sum instead of a label-indexed
  // scatter add; a plain sqrt pass over the row vectorizes, the segment
  // sums pipeline. The mean silhouette is permutation-invariant, and the
  // grouping depends only on the labels, never on the thread count.
  std::vector<std::size_t> offsets(num_clusters + 1, 0);
  for (std::size_t c = 0; c < num_clusters; ++c) {
    offsets[c + 1] = offsets[c] + counts[c];
  }
  std::vector<std::size_t> cursor(offsets.begin(), offsets.end() - 1);
  Matrix grouped(n, points.cols());
  std::vector<std::size_t> grouped_labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t pos = cursor[labels[i]]++;
    const auto src = points.row(i);
    std::copy(src.begin(), src.end(), grouped.row(pos).begin());
    grouped_labels[pos] = labels[i];
  }

  const std::vector<double> norms = row_squared_norms(grouped);
  const DistanceTable table(grouped);

  const std::size_t num_chunks = (n + kGrainExact - 1) / kGrainExact;
  std::vector<double> partial(num_chunks, 0.0);
  support::parallel_for(
      threads, 0, n, kGrainExact,
      [&](std::size_t chunk, std::size_t cb, std::size_t ce) {
        std::vector<double> block((ce - cb) * n);
        table.squared_distances(grouped, norms, cb, ce, block);
        std::vector<double> dist(n);
        std::vector<double> sums(num_clusters);
        double acc = 0.0;
        for (std::size_t i = cb; i < ce; ++i) {
          const std::size_t li = grouped_labels[i];
          if (counts[li] <= 1) continue;  // singleton → s(i) = 0
          const double* __restrict d2 = block.data() + (i - cb) * n;
          double* __restrict d = dist.data();
          for (std::size_t j = 0; j < n; ++j) d[j] = std::sqrt(d2[j]);
          for (std::size_t c = 0; c < num_clusters; ++c) {
            sums[c] = segment_sum(d + offsets[c], counts[c]);
          }
          sums[li] -= d[i];  // exclude the self-distance from a(i)
          const double a = sums[li] / static_cast<double>(counts[li] - 1);
          double b = std::numeric_limits<double>::max();
          for (std::size_t c = 0; c < num_clusters; ++c) {
            if (c == li || counts[c] == 0) continue;
            b = std::min(b, sums[c] / static_cast<double>(counts[c]));
          }
          const double denom = std::max(a, b);
          acc += (denom > 0.0) ? (b - a) / denom : 0.0;
        }
        partial[chunk] = acc;
      });

  double total = 0.0;
  for (const double p : partial) total += p;
  return total / static_cast<double>(n);
}

double sampled_silhouette(const Matrix& points,
                          std::span<const std::size_t> labels,
                          std::size_t num_clusters, std::size_t max_points,
                          std::uint64_t seed, std::size_t threads) {
  const std::size_t n = points.rows();
  SIMPROF_EXPECTS(labels.size() == n, "labels length mismatch");
  SIMPROF_EXPECTS(max_points >= 2, "need at least two sampled points");
  static obs::Histogram& sample_sizes = obs::metrics().histogram(
      "silhouette.sample_size", {64, 256, 1024, 4096, 16384, 65536});
  sample_sizes.observe(static_cast<double>(std::min(n, max_points)));
  if (n <= max_points) {
    return exact_silhouette(points, labels, num_clusters, threads);
  }

  // Seeded uniform subset via partial Fisher–Yates, then sorted so the
  // submatrix walks `points` in storage order.
  Rng rng(seed);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < max_points; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(n - i));
    std::swap(idx[i], idx[j]);
  }
  std::vector<std::size_t> picks(idx.begin(), idx.begin() + max_points);
  std::sort(picks.begin(), picks.end());

  Matrix sub(picks.size(), points.cols());
  std::vector<std::size_t> sub_labels(picks.size());
  for (std::size_t j = 0; j < picks.size(); ++j) {
    const auto src = points.row(picks[j]);
    std::copy(src.begin(), src.end(), sub.row(j).begin());
    sub_labels[j] = labels[picks[j]];
  }
  return exact_silhouette(sub, sub_labels, num_clusters, threads);
}

double simplified_silhouette(const Matrix& points, const Matrix& centers,
                             std::span<const std::size_t> labels,
                             std::size_t threads) {
  const std::size_t n = points.rows();
  const std::size_t k = centers.rows();
  SIMPROF_EXPECTS(labels.size() == n, "labels length mismatch");
  if (n == 0 || k < 2) return 0.0;

  std::vector<std::size_t> counts;
  if (!cluster_counts(labels, k, counts)) return 0.0;

  const std::vector<double> norms = row_squared_norms(points);
  const DistanceTable table(centers);

  const std::size_t num_chunks = (n + kGrainSimplified - 1) / kGrainSimplified;
  std::vector<double> partial(num_chunks, 0.0);
  support::parallel_for(
      threads, 0, n, kGrainSimplified,
      [&](std::size_t chunk, std::size_t cb, std::size_t ce) {
        std::vector<double> block((ce - cb) * k);
        table.squared_distances(points, norms, cb, ce, block);
        double acc = 0.0;
        for (std::size_t i = cb; i < ce; ++i) {
          // Singleton cluster → s(i) = 0, matching the exact variant (and
          // sklearn): a(i) is undefined for a lone member, and the
          // center-distance proxy (≈ 0 for a singleton whose center is the
          // point itself) would inflate the score to ~1.
          if (counts[labels[i]] <= 1) continue;
          const double* d2 = block.data() + (i - cb) * k;
          const double a = std::sqrt(d2[labels[i]]);
          double b = std::numeric_limits<double>::max();
          for (std::size_t c = 0; c < k; ++c) {
            if (c == labels[i] || counts[c] == 0) continue;
            b = std::min(b, std::sqrt(d2[c]));
          }
          const double denom = std::max(a, b);
          acc += (denom > 0.0) ? (b - a) / denom : 0.0;
        }
        partial[chunk] = acc;
      });

  double total = 0.0;
  for (const double p : partial) total += p;
  return total / static_cast<double>(n);
}

}  // namespace simprof::stats
