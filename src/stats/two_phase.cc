#include "stats/two_phase.h"

#include <cmath>

#include "support/assert.h"

namespace simprof::stats {

std::vector<std::size_t> two_phase_allocation(
    std::span<const std::size_t> phase1_counts,
    std::span<const double> prior_stddevs, std::size_t total,
    std::size_t min_per_stratum) {
  SIMPROF_EXPECTS(phase1_counts.size() == prior_stddevs.size(),
                  "phase-1 counts / priors length mismatch");
  std::vector<Stratum> strata;
  strata.reserve(phase1_counts.size());
  for (std::size_t h = 0; h < phase1_counts.size(); ++h) {
    strata.push_back(Stratum{phase1_counts[h], prior_stddevs[h], 0.0});
  }
  return optimal_allocation(strata, total, min_per_stratum);
}

TwoPhaseEstimate two_phase_estimate(std::span<const TwoPhaseStratum> strata,
                                    double z) {
  TwoPhaseEstimate out;
  // Weights come from the phase-1 classification; only strata that were
  // actually measured in phase 2 can contribute, so renormalize over them.
  double nprime = 0.0;
  double measured_weight = 0.0;
  for (const auto& s : strata) {
    nprime += static_cast<double>(s.phase1_count);
    if (s.sample_size > 0) {
      measured_weight += static_cast<double>(s.phase1_count);
    }
  }
  if (nprime <= 0.0 || measured_weight <= 0.0) {
    out.ci = confidence_interval(0.0, 0.0, z);
    return out;
  }

  auto sanitize = [](double v) { return std::isfinite(v) ? v : 0.0; };

  double mean = 0.0;
  for (const auto& s : strata) {
    if (s.phase1_count == 0 || s.sample_size == 0) continue;
    const double w = static_cast<double>(s.phase1_count) / measured_weight;
    mean += w * sanitize(s.sample_mean);
  }
  out.mean = mean;

  double within = 0.0;
  double between = 0.0;
  for (const auto& s : strata) {
    if (s.phase1_count == 0 || s.sample_size == 0) continue;
    const double w = static_cast<double>(s.phase1_count) / measured_weight;
    const double sd = sanitize(s.sample_stddev);
    within += w * w * sd * sd / static_cast<double>(s.sample_size);
    const double d = sanitize(s.sample_mean) - mean;
    between += w * d * d;
  }
  out.variance = within + between / nprime;
  out.standard_error = std::sqrt(out.variance);
  out.ci = confidence_interval(out.mean, out.standard_error, z);
  return out;
}

}  // namespace simprof::stats
