#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace simprof::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double population_variance(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double sample_stddev(std::span<const double> xs) {
  return std::sqrt(sample_variance(xs));
}

double population_stddev(std::span<const double> xs) {
  return std::sqrt(population_variance(xs));
}

double coefficient_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return sample_stddev(xs) / m;
}

double min_value(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

CovSummary grouped_cov(std::span<const double> values,
                       std::span<const std::size_t> labels,
                       std::size_t num_groups) {
  SIMPROF_EXPECTS(values.size() == labels.size(),
                  "values/labels length mismatch");
  CovSummary out;
  out.population = coefficient_of_variation(values);
  if (num_groups == 0 || values.empty()) return out;

  std::vector<std::vector<double>> groups(num_groups);
  for (std::size_t i = 0; i < values.size(); ++i) {
    SIMPROF_EXPECTS(labels[i] < num_groups, "label out of range");
    groups[labels[i]].push_back(values[i]);
  }
  const double n = static_cast<double>(values.size());
  for (const auto& g : groups) {
    if (g.empty()) continue;
    const double cov = coefficient_of_variation(g);
    out.weighted += cov * static_cast<double>(g.size()) / n;
    out.maximum = std::max(out.maximum, cov);
  }
  return out;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  SIMPROF_EXPECTS(xs.size() == ys.size(), "length mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningMoments::push(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningMoments::merge(const RunningMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningMoments::sample_variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningMoments::sample_stddev() const {
  return std::sqrt(sample_variance());
}

}  // namespace simprof::stats
