// Stratified random sampling mathematics (Section III-C of the paper).
//
//  * Neyman "optimal allocation" (Eq. 1): n_h = n · N_h·σ_h / Σ N_i·σ_i
//  * stratified standard error with finite-population correction (Eq. 4)
//  * confidence intervals (Eqs. 2–3) at a caller-chosen z (99.7% → z = 3)
//  * the inverse problem: smallest n achieving a target relative margin of
//    error, used for the paper's Figure 8.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace simprof::stats {

/// Per-stratum description: population size and CPI standard deviation.
struct Stratum {
  std::size_t population = 0;  ///< N_h — sampling units in the phase
  double stddev = 0.0;         ///< σ_h — CPI standard deviation of the phase
  double mean = 0.0;           ///< phase CPI mean (used by estimators)
};

/// Eq. 1. Allocates `total` sample slots across strata proportionally to
/// N_h·σ_h, using largest-remainder rounding. Each non-empty stratum gets at
/// least `min_per_stratum` (clamped to its population), and no stratum is
/// allocated more units than it has. If every σ_h is 0 the allocation falls
/// back to proportional-to-population.
///
/// Edge conventions (verified by the src/verify oracle harness): a `total`
/// exceeding the summed populations caps at the population (every stratum
/// fully sampled); a non-finite or negative σ_h is treated as 0 so degenerate
/// fits can never produce NaN weights.
std::vector<std::size_t> optimal_allocation(std::span<const Stratum> strata,
                                            std::size_t total,
                                            std::size_t min_per_stratum = 1);

/// Proportional allocation (n_h ∝ N_h) — the classical alternative; kept as
/// an ablation baseline for the Figure 11 bench.
std::vector<std::size_t> proportional_allocation(
    std::span<const Stratum> strata, std::size_t total,
    std::size_t min_per_stratum = 1);

/// Eq. 4: SE of the stratified mean estimator given realized per-stratum
/// sample sizes (entries with n_h = 0 or N_h = 0 contribute 0, matching the
/// convention that a zero-variance or unsampled stratum adds no estimator
/// variance — callers should ensure n_h ≥ 1 wherever σ_h > 0). The result is
/// always finite: the finite-population correction is clamped to [0, 1] and
/// non-finite σ_h terms are dropped, so single-unit or degenerate strata
/// yield a finite (possibly zero-width) CI rather than NaN.
double stratified_standard_error(std::span<const Stratum> strata,
                                 std::span<const std::size_t> sample_sizes);

/// Population mean implied by the strata (Σ N_h·μ_h / Σ N_h).
double stratified_population_mean(std::span<const Stratum> strata);

/// Smallest total sample size n such that, under optimal allocation,
/// z·SE ≤ rel_margin·mean. Derived from Var_opt(n) = (ΣW_hσ_h)²/n − ΣW_hσ_h²/N.
/// Returns at least 1 and at most the total population.
std::size_t required_sample_size(std::span<const Stratum> strata,
                                 double rel_margin, double z);

/// z-scores for common confidence levels.
inline constexpr double kZ95 = 1.959963984540054;
inline constexpr double kZ99 = 2.5758293035489004;
inline constexpr double kZ997 = 3.0;  ///< the paper's "99.7%" three-sigma

struct ConfidenceInterval {
  double mean = 0.0;
  double margin = 0.0;  ///< z · SE
  double low() const { return mean - margin; }
  double high() const { return mean + margin; }
};

/// Eqs. 2–3 around an externally computed sample mean.
ConfidenceInterval confidence_interval(double sample_mean, double se,
                                       double z);

}  // namespace simprof::stats
