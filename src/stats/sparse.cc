#include "stats/sparse.h"

#include <limits>

#include "support/assert.h"
#include "support/thread_pool.h"

namespace simprof::stats {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {
  row_ptr_.reserve(rows + 1);
}

void SparseMatrix::append_row(std::span<const std::uint32_t> cols,
                              std::span<const double> vals) {
  SIMPROF_EXPECTS(rows_filled() < rows_, "appending past declared row count");
  SIMPROF_EXPECTS(cols.size() == vals.size(), "cols/vals length mismatch");
  std::uint32_t prev = std::numeric_limits<std::uint32_t>::max();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    SIMPROF_EXPECTS(cols[i] < cols_, "sparse column out of range");
    SIMPROF_EXPECTS(prev == std::numeric_limits<std::uint32_t>::max() ||
                        cols[i] > prev,
                    "sparse row columns must be strictly increasing");
    prev = cols[i];
  }
  col_.insert(col_.end(), cols.begin(), cols.end());
  val_.insert(val_.end(), vals.begin(), vals.end());
  row_ptr_.push_back(col_.size());
}

void SparseMatrix::append_row_grow(std::span<const std::uint32_t> cols,
                                   std::span<const double> vals) {
  SIMPROF_EXPECTS(rows_filled() == rows_,
                  "append_row_grow on a partially declared matrix");
  SIMPROF_EXPECTS(cols.size() == vals.size(), "cols/vals length mismatch");
  std::uint32_t prev = std::numeric_limits<std::uint32_t>::max();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    SIMPROF_EXPECTS(prev == std::numeric_limits<std::uint32_t>::max() ||
                        cols[i] > prev,
                    "sparse row columns must be strictly increasing");
    prev = cols[i];
  }
  if (!cols.empty()) {
    cols_ = std::max<std::size_t>(cols_, std::size_t{cols.back()} + 1);
  }
  ++rows_;
  col_.insert(col_.end(), cols.begin(), cols.end());
  val_.insert(val_.end(), vals.begin(), vals.end());
  row_ptr_.push_back(col_.size());
}

void SparseMatrix::grow_cols(std::size_t cols) {
  SIMPROF_EXPECTS(cols >= cols_, "grow_cols cannot shrink the column space");
  cols_ = cols;
}

SparseMatrix::RowView SparseMatrix::row(std::size_t r) const {
  SIMPROF_EXPECTS(r < rows_filled(), "sparse row out of range");
  const std::size_t b = row_ptr_[r];
  const std::size_t e = row_ptr_[r + 1];
  return {{col_.data() + b, e - b}, {val_.data() + b, e - b}};
}

void SparseMatrix::normalize_rows_l1() {
  SIMPROF_EXPECTS(rows_filled() == rows_, "matrix not fully built");
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t b = row_ptr_[r];
    const std::size_t e = row_ptr_[r + 1];
    double sum = 0.0;
    for (std::size_t i = b; i < e; ++i) sum += val_[i];
    if (sum <= 0.0) continue;
    for (std::size_t i = b; i < e; ++i) val_[i] /= sum;
  }
}

Matrix SparseMatrix::to_dense() const {
  SIMPROF_EXPECTS(rows_filled() == rows_, "matrix not fully built");
  Matrix out(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    auto dst = out.row(r);
    for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
      dst[col_[i]] = val_[i];
    }
  }
  return out;
}

Matrix SparseMatrix::select_columns_dense(
    std::span<const std::size_t> selected, std::size_t threads) const {
  SIMPROF_EXPECTS(rows_filled() == rows_, "matrix not fully built");
  // Inverse map: full column id → position in the selection (or npos).
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> position(cols_, kNone);
  for (std::size_t j = 0; j < selected.size(); ++j) {
    SIMPROF_EXPECTS(selected[j] < cols_, "selected column out of range");
    position[selected[j]] = j;
  }
  Matrix out(rows_, selected.size());
  support::parallel_for(
      threads, 0, rows_, 256,
      [&](std::size_t, std::size_t rb, std::size_t re) {
        for (std::size_t r = rb; r < re; ++r) {
          auto dst = out.row(r);
          for (std::size_t i = row_ptr_[r]; i < row_ptr_[r + 1]; ++i) {
            const std::size_t p = position[col_[i]];
            if (p != kNone) dst[p] = val_[i];
          }
        }
      });
  return out;
}

}  // namespace simprof::stats
