#include "verify/synthetic.h"

#include <string>

namespace simprof::verify {

core::ThreadProfile random_profile(Rng& rng) {
  core::ThreadProfile p;
  const std::size_t num_methods = 1 + rng.next_below(24);
  for (std::size_t m = 0; m < num_methods; ++m) {
    std::string name = "m" + std::to_string(m);
    // Occasionally stress the string path: long names and embedded NULs.
    if (rng.next_bool(0.1)) name.append(rng.next_below(300), 'x');
    if (rng.next_bool(0.05)) name.push_back('\0');
    p.method_names.push_back(std::move(name));
    p.method_kinds.push_back(
        static_cast<jvm::OpKind>(rng.next_below(jvm::kNumOpKinds)));
  }
  const std::size_t num_units = 1 + rng.next_below(48);
  for (std::size_t u = 0; u < num_units; ++u) {
    core::UnitRecord rec;
    rec.unit_id = u;
    rec.counters.instructions = rng.next_below(2'000'000);  // 0 allowed
    rec.counters.cycles = rng.next_below(4'000'000);
    rec.counters.line_touches = rng.next_below(1 << 20);
    rec.counters.l1_misses = rng.next_below(1 << 16);
    rec.counters.l2_misses = rng.next_below(1 << 12);
    rec.counters.llc_misses = rng.next_below(1 << 8);
    rec.counters.migrations = rng.next_below(4);
    // Sorted strictly-increasing subset of the method table (possibly empty),
    // mirroring SamplingManager's sorted-histogram output.
    for (std::size_t m = 0; m < num_methods; ++m) {
      if (rng.next_bool(0.4)) {
        rec.methods.push_back(static_cast<std::uint32_t>(m));
        rec.counts.push_back(1 + static_cast<std::uint32_t>(rng.next_below(50)));
      }
    }
    p.units.push_back(std::move(rec));
  }
  return p;
}

core::ThreadProfile golden_profile() {
  core::ThreadProfile p;
  p.method_names = {"executor.plumbing", "wc.map", "wc.reduce", "shuffle.io"};
  p.method_kinds = {jvm::OpKind::kFramework, jvm::OpKind::kMap,
                    jvm::OpKind::kReduce, jvm::OpKind::kShuffle};
  const std::uint64_t cycles[] = {1'200'000, 950'000, 2'400'000};
  for (std::size_t u = 0; u < 3; ++u) {
    core::UnitRecord rec;
    rec.unit_id = u;
    rec.counters.instructions = 1'000'000;
    rec.counters.cycles = cycles[u];
    rec.counters.line_touches = 4096 * (u + 1);
    rec.counters.l1_misses = 100 * (u + 1);
    rec.counters.l2_misses = 10 * (u + 1);
    rec.counters.llc_misses = u;
    rec.counters.migrations = 0;
    rec.methods = {0, static_cast<std::uint32_t>(u + 1)};
    rec.counts = {10, 30 + 5 * static_cast<std::uint32_t>(u)};
    p.units.push_back(std::move(rec));
  }
  return p;
}

}  // namespace simprof::verify
