#include "verify/synthetic.h"

#include <sstream>
#include <string>

#include "core/checkpoint.h"

namespace simprof::verify {

core::ThreadProfile random_profile(Rng& rng) {
  core::ThreadProfile p;
  const std::size_t num_methods = 1 + rng.next_below(24);
  for (std::size_t m = 0; m < num_methods; ++m) {
    std::string name = "m" + std::to_string(m);
    // Occasionally stress the string path: long names and embedded NULs.
    if (rng.next_bool(0.1)) name.append(rng.next_below(300), 'x');
    if (rng.next_bool(0.05)) name.push_back('\0');
    p.method_names.push_back(std::move(name));
    p.method_kinds.push_back(
        static_cast<jvm::OpKind>(rng.next_below(jvm::kNumOpKinds)));
  }
  const std::size_t num_units = 1 + rng.next_below(48);
  for (std::size_t u = 0; u < num_units; ++u) {
    core::UnitRecord rec;
    rec.unit_id = u;
    rec.counters.instructions = rng.next_below(2'000'000);  // 0 allowed
    rec.counters.cycles = rng.next_below(4'000'000);
    rec.counters.line_touches = rng.next_below(1 << 20);
    rec.counters.l1_misses = rng.next_below(1 << 16);
    rec.counters.l2_misses = rng.next_below(1 << 12);
    rec.counters.llc_misses = rng.next_below(1 << 8);
    rec.counters.migrations = rng.next_below(4);
    // Sparse random MAV: most buckets empty like real units, zero whole
    // blocks sometimes (compute-only units record no accesses).
    if (!rng.next_bool(0.2)) {
      for (std::size_t b = 0; b < hw::kMavDim; ++b) {
        if (rng.next_bool(0.3)) rec.mav.counts[b] = rng.next_below(1 << 12);
      }
    }
    // Sorted strictly-increasing subset of the method table (possibly empty),
    // mirroring SamplingManager's sorted-histogram output.
    for (std::size_t m = 0; m < num_methods; ++m) {
      if (rng.next_bool(0.4)) {
        rec.methods.push_back(static_cast<std::uint32_t>(m));
        rec.counts.push_back(1 + static_cast<std::uint32_t>(rng.next_below(50)));
      }
    }
    p.units.push_back(std::move(rec));
  }
  return p;
}

core::ThreadProfile golden_profile() {
  core::ThreadProfile p;
  p.method_names = {"executor.plumbing", "wc.map", "wc.reduce", "shuffle.io"};
  p.method_kinds = {jvm::OpKind::kFramework, jvm::OpKind::kMap,
                    jvm::OpKind::kReduce, jvm::OpKind::kShuffle};
  const std::uint64_t cycles[] = {1'200'000, 950'000, 2'400'000};
  for (std::size_t u = 0; u < 3; ++u) {
    core::UnitRecord rec;
    rec.unit_id = u;
    rec.counters.instructions = 1'000'000;
    rec.counters.cycles = cycles[u];
    rec.counters.line_touches = 4096 * (u + 1);
    rec.counters.l1_misses = 100 * (u + 1);
    rec.counters.l2_misses = 10 * (u + 1);
    rec.counters.llc_misses = u;
    rec.counters.migrations = 0;
    rec.methods = {0, static_cast<std::uint32_t>(u + 1)};
    rec.counts = {10, 30 + 5 * static_cast<std::uint32_t>(u)};
    // Deterministic MAV: a short reuse spectrum plus a level mix that
    // shifts toward DRAM with u, so every MAV byte of the archive is
    // exercised with unit-dependent values.
    rec.mav.counts[0] = 11 + u;
    rec.mav.counts[3] = 7 * (u + 1);
    rec.mav.counts[hw::kColdBucket] = 2 + u;
    rec.mav.counts[hw::kReuseBuckets + 0] = 900 - 100 * u;
    rec.mav.counts[hw::kReuseBuckets + 2] = 40 + 10 * u;
    rec.mav.counts[hw::kReuseBuckets + 3] = 5 * u;
    p.units.push_back(std::move(rec));
  }
  return p;
}

std::unique_ptr<exec::Cluster> checkpoint_fixture(std::uint64_t variant) {
  exec::ClusterConfig cc;
  cc.memory.l1 = {1024, 2};
  cc.memory.l2 = {4096, 4};
  cc.memory.llc = {16384, 4};
  cc.memory.num_cores = 2;
  cc.unit_instrs = 1000;
  cc.snapshot_interval = 100;
  cc.seed = 0xC0FFEE;
  auto cluster = std::make_unique<exec::Cluster>(cc);

  auto& registry = cluster->methods();
  const jvm::MethodId alpha =
      registry.intern("fixture.alpha", jvm::OpKind::kMap);
  const jvm::MethodId beta =
      registry.intern("fixture.beta", jvm::OpKind::kReduce);
  if (variant % 2 == 1) registry.intern("fixture.gamma", jvm::OpKind::kSort);

  // Warm the profiled core's cache hierarchy with a deterministic replay so
  // the archived tag arrays and hit/miss statistics are non-trivial.
  const std::uint64_t touches = 64 + 8 * variant;
  for (std::uint64_t i = 0; i < touches; ++i) {
    hw::MemRef ref;
    ref.line = 1 + i % (16 + variant);
    ref.write = i % 3 == 0;
    cluster->memory().access(cc.profiled_core, ref);
  }

  // Position the profiled thread exactly at the fixture unit's boundary —
  // where save_checkpoint is specified to run and where load_checkpoint's
  // identity checks expect the replay to stand.
  exec::ExecutorContext& ctx = cluster->context(cc.profiled_core);
  exec::ThreadState st = ctx.capture_state();
  st.counters.instructions = kCheckpointFixtureUnit * cc.unit_instrs;
  st.counters.cycles = 1234 + variant;
  st.counters.line_touches = touches;
  st.counters.l1_misses = 7;
  st.counters.l2_misses = 3;
  st.counters.llc_misses = 1;
  st.cycles_acc = 0.25;
  st.frames = {alpha, beta};
  st.next_snapshot_at = st.counters.instructions + cc.snapshot_interval;
  st.next_unit_at = st.counters.instructions + cc.unit_instrs;
  st.unit_start_counters = st.counters;
  ctx.restore_state(st);
  return cluster;
}

std::string fixture_checkpoint_bytes(std::uint64_t variant) {
  const auto cluster = checkpoint_fixture(variant);
  std::ostringstream out(std::ios::binary);
  core::save_checkpoint(out, *cluster, kCheckpointFixtureKey,
                        kCheckpointFixtureUnit);
  return out.str();
}

}  // namespace simprof::verify
