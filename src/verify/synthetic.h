// Deterministic ThreadProfile generators for the verification harnesses:
// randomized profiles spanning the format's edge shapes (for fault injection
// and round-trip checks) and the fixed profile behind the checked-in golden
// archive.
#pragma once

#include <cstdint>

#include "core/profile.h"
#include "support/rng.h"

namespace simprof::verify {

/// A randomized but fully deterministic profile: unit/method counts, stack
/// shapes, and counter values all drawn from `rng`. Covers empty stacks,
/// single-unit profiles, and zero-instruction units.
core::ThreadProfile random_profile(Rng& rng);

/// The fixed profile whose serialized bytes are frozen in golden_archive.h.
/// Handcrafted (no RNG) so it can never drift with generator changes.
core::ThreadProfile golden_profile();

}  // namespace simprof::verify
