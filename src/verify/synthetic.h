// Deterministic ThreadProfile generators for the verification harnesses:
// randomized profiles spanning the format's edge shapes (for fault injection
// and round-trip checks) and the fixed profile behind the checked-in golden
// archive.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/profile.h"
#include "exec/cluster.h"
#include "support/rng.h"

namespace simprof::verify {

/// A randomized but fully deterministic profile: unit/method counts, stack
/// shapes, and counter values all drawn from `rng`. Covers empty stacks,
/// single-unit profiles, and zero-instruction units.
core::ThreadProfile random_profile(Rng& rng);

/// The fixed profile whose serialized bytes are frozen in golden_archive.h.
/// Handcrafted (no RNG) so it can never drift with generator changes.
core::ThreadProfile golden_profile();

/// Cache key and unit index the checkpoint fixture archives are saved under.
inline constexpr char kCheckpointFixtureKey[] = "golden-ckpt-fixture";
inline constexpr std::uint64_t kCheckpointFixtureUnit = 2;

/// A deterministic cluster positioned exactly at the boundary of
/// kCheckpointFixtureUnit: tiny cache geometry warmed with replayed traffic,
/// a handcrafted profiled-thread state, and a small interned method table.
/// A pure function of `variant` (no RNG, no workload), so two calls with the
/// same variant produce save/load-compatible twins and variant 0's archive
/// bytes can be frozen in golden_checkpoint.h.
std::unique_ptr<exec::Cluster> checkpoint_fixture(std::uint64_t variant = 0);

/// save_checkpoint bytes of checkpoint_fixture(variant).
std::string fixture_checkpoint_bytes(std::uint64_t variant = 0);

}  // namespace simprof::verify
