// Seeded fault injection for the serialization and lab-cache layers.
//
// The archive harness corrupts valid BinaryWriter archives — truncation, bit
// flips, length-prefix inflation, version/magic skew, byte splices — and
// asserts ThreadProfile::load answers every one with a typed SerializeError
// (or a benign successful decode when the damage hits don't-care bits),
// never an untyped exception, an allocation blow-up, or a crash. Run it
// under ASan/UBSan (the ci.yml asan-ubsan job does) and "no crash" becomes
// "no UB" too.
//
// The cache harness drives the same corruptions through WorkloadLab's
// on-disk profile cache and asserts each one degrades to a cache miss that
// regenerates the file (counted by lab.cache_corrupt).
//
// The checkpoint harnesses extend both to the SCKP archives of
// core/checkpoint.h: the in-memory sweep asserts load_checkpoint answers
// every corruption with a typed SerializeError or a bit-exact benign decode
// (a decode that restores *different* state than the pristine archive is a
// silent-corruption failure), and the recovery drill corrupts published
// archives under a real lab and asserts measure_units falls back to
// re-execution with numbers identical to the oracle pass.
#pragma once

#include <cstdint>

#include "verify/verify.h"

namespace simprof::verify {

struct FaultConfig {
  std::uint64_t seed = 1;
  std::size_t cases = 500;
};

/// In-memory archive corruption sweep. Increments verify.faults_injected
/// per case; fingerprint covers every per-case verdict.
VerifyReport verify_archive_robustness(const FaultConfig& cfg);

/// End-to-end lab-cache drill: populate a real cache in a scratch dir, then
/// corrupt the file one way per case and assert the next run is a miss that
/// recovers. Runs a tiny workload a handful of times (~seconds).
VerifyReport verify_lab_cache_recovery(std::uint64_t seed);

/// In-memory checkpoint-archive corruption sweep over the deterministic
/// fixture corpus (synthetic.h), plus the golden-checkpoint tripwire: the
/// frozen SCKP v1 bytes must equal a fresh fixture save and restore
/// bit-identical state. Increments verify.ckpt_faults_injected per case.
VerifyReport verify_checkpoint_robustness(const FaultConfig& cfg);

/// End-to-end checkpoint fallback drill: record archives with a real lab
/// run, corrupt them one way per case, and assert measure_units reports
/// fallback with records bitwise-equal to the oracle profile's units.
VerifyReport verify_checkpoint_recovery(std::uint64_t seed);

}  // namespace simprof::verify
