// Round-trip differential checker: every serialized type must survive
// save → load → save with bit-identical output, including IEEE-754 edge
// values (NaN payloads, infinities) and string/vector edge shapes, and the
// current reader must decode the checked-in golden archive byte-for-byte
// (the cross-version tripwire: a format change without a version bump and a
// refreshed golden turns this red).
#pragma once

#include <cstdint>

#include "verify/verify.h"

namespace simprof::verify {

VerifyReport verify_roundtrip(std::uint64_t seed, std::size_t cases = 32);

}  // namespace simprof::verify
