#include "verify/oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <string>

#include "obs/obs.h"
#include "stats/descriptive.h"
#include "stats/feature_select.h"
#include "stats/matrix.h"
#include "stats/silhouette.h"
#include "stats/two_phase.h"
#include "support/rng.h"

namespace simprof::verify {
namespace {

using stats::Stratum;

std::size_t sum_of(std::span<const std::size_t> v) {
  return std::accumulate(v.begin(), v.end(), std::size_t{0});
}

/// Naive O(n²) mean-silhouette reference: textbook definition computed with
/// none of the production code's grouping/blocking/threading machinery, so a
/// shared bug is implausible. Singletons score 0 (sklearn convention).
double reference_exact_silhouette(const stats::Matrix& pts,
                                  std::span<const std::size_t> labels,
                                  std::size_t k) {
  const std::size_t n = pts.rows();
  std::vector<std::size_t> counts(k, 0);
  for (auto l : labels) ++counts[l];
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (counts[labels[i]] <= 1) continue;
    std::vector<double> mean_dist(k, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      double d2 = 0.0;
      for (std::size_t c = 0; c < pts.cols(); ++c) {
        const double d = pts.at(i, c) - pts.at(j, c);
        d2 += d * d;
      }
      mean_dist[labels[j]] += std::sqrt(d2);
    }
    const double a =
        mean_dist[labels[i]] / static_cast<double>(counts[labels[i]] - 1);
    double b = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == labels[i] || counts[c] == 0) continue;
      b = std::min(b, mean_dist[c] / static_cast<double>(counts[c]));
    }
    const double denom = std::max(a, b);
    acc += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return acc / static_cast<double>(n);
}

/// Naive reference for the simplified (center-distance) silhouette.
double reference_simplified_silhouette(const stats::Matrix& pts,
                                       const stats::Matrix& centers,
                                       std::span<const std::size_t> labels) {
  const std::size_t n = pts.rows();
  const std::size_t k = centers.rows();
  std::vector<std::size_t> counts(k, 0);
  for (auto l : labels) ++counts[l];
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (counts[labels[i]] <= 1) continue;
    std::vector<double> dist(k, 0.0);
    for (std::size_t c = 0; c < k; ++c) {
      double d2 = 0.0;
      for (std::size_t f = 0; f < pts.cols(); ++f) {
        const double d = pts.at(i, f) - centers.at(c, f);
        d2 += d * d;
      }
      dist[c] = std::sqrt(d2);
    }
    const double a = dist[labels[i]];
    double b = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < k; ++c) {
      if (c == labels[i] || counts[c] == 0) continue;
      b = std::min(b, dist[c]);
    }
    const double denom = std::max(a, b);
    acc += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return acc / static_cast<double>(n);
}

}  // namespace

VerifyReport verify_statistics(const OracleConfig& cfg) {
  static obs::Counter& oracle_failures =
      obs::metrics().counter("verify.oracle_failures");
  const AllocationFn alloc_fn =
      cfg.allocation
          ? cfg.allocation
          : [](std::span<const Stratum> s, std::size_t n, std::size_t f) {
              return stats::optimal_allocation(s, n, f);
            };

  VerifyReport report;
  report.fingerprint = kFnvOffset;

  // --- Closed-form Neyman allocation (Eq. 1): N_h·σ_h of 100 and 300 split
  // n = 40 exactly 1:3.
  {
    const std::vector<Stratum> strata{{100, 1.0, 1.0}, {100, 3.0, 1.0}};
    const auto a = alloc_fn(strata, 40, 1);
    report.add("oracle.neyman_closed_form",
               a.size() == 2 && a[0] == 10 && a[1] == 30,
               "expected {10, 30}");
  }

  // --- Allocation property sweep on random strata, including non-finite σ
  // and totals beyond the population.
  {
    std::size_t bad = 0;
    std::string first;
    for (std::size_t t = 0; t < cfg.property_trials; ++t) {
      Rng rng = Rng::stream(cfg.seed, 0xA110 + t);
      const std::size_t h = 1 + rng.next_below(7);
      std::vector<Stratum> strata;
      std::size_t pop_total = 0;
      std::size_t non_empty = 0;
      for (std::size_t i = 0; i < h; ++i) {
        Stratum s;
        s.population = rng.next_below(220);  // 0 allowed
        s.stddev = rng.next_double(0.0, 2.0);
        if (rng.next_bool(0.1)) s.stddev = std::nan("");
        if (rng.next_bool(0.05)) {
          s.stddev = std::numeric_limits<double>::infinity();
        }
        s.mean = rng.next_double(0.5, 2.0);
        pop_total += s.population;
        non_empty += s.population > 0 ? 1 : 0;
        strata.push_back(s);
      }
      for (const std::size_t total :
           {std::size_t{0}, std::size_t{1}, pop_total / 2, pop_total,
            pop_total + 37}) {
        const auto a = alloc_fn(strata, total, 1);
        // Documented floor behavior: every non-empty stratum keeps ≥ 1 slot
        // even when the request is smaller, so the realized total is
        // max(min(total, population), #non-empty).
        const std::size_t expect =
            std::max(std::min(total, pop_total), non_empty);
        bool ok = a.size() == strata.size() && sum_of(a) == expect;
        for (std::size_t i = 0; ok && i < strata.size(); ++i) {
          ok = a[i] <= strata[i].population;
        }
        const auto se = stats::stratified_standard_error(strata, a);
        ok = ok && std::isfinite(se) && se >= 0.0;
        if (!ok && first.empty()) {
          std::ostringstream o;
          o << "trial " << t << " total " << total << " sum " << sum_of(a)
            << " expect " << expect;
          first = o.str();
        }
        bad += ok ? 0 : 1;
        report.fingerprint = fnv1a(report.fingerprint, sum_of(a));
        ++report.cases_run;
      }
    }
    report.add("oracle.allocation_properties", bad == 0,
               bad == 0 ? std::to_string(cfg.property_trials * 5) + " cases"
                        : std::to_string(bad) + " violations; first: " + first);
  }

  // --- Stratified SE against the hand-expanded Eq. 4 on a fixture.
  {
    const std::vector<Stratum> strata{{60, 2.0, 1.0}, {40, 1.0, 1.0}};
    const std::vector<std::size_t> n{6, 4};
    const double term0 = 60.0 * 60.0 * (1.0 - 6.0 / 60.0) * 4.0 / 6.0;
    const double term1 = 40.0 * 40.0 * (1.0 - 4.0 / 40.0) * 1.0 / 4.0;
    const double expected = std::sqrt(term0 + term1) / 100.0;
    const double got = stats::stratified_standard_error(strata, n);
    report.add("oracle.se_closed_form", std::abs(got - expected) < 1e-12);
  }

  // --- CI margin is exactly z·SE and single-unit strata stay finite.
  {
    const auto ci = stats::confidence_interval(1.25, 0.02, stats::kZ997);
    const std::vector<Stratum> single{{1, 0.0, 1.0}, {500, 0.4, 1.1}};
    const auto a = alloc_fn(single, 10, 1);
    const double se = stats::stratified_standard_error(single, a);
    const auto ci1 = stats::confidence_interval(1.1, se, stats::kZ997);
    report.add("oracle.ci_margin_closed_form",
               ci.margin == 0.06 && ci.low() == 1.19 && ci.high() == 1.31);
    report.add("oracle.single_unit_stratum_finite_ci",
               std::isfinite(ci1.margin) && std::isfinite(ci1.low()) &&
                   std::isfinite(ci1.high()));
  }

  // --- CI coverage on a synthetic population with known per-stratum
  // variance: resample, estimate, and count hits of the 95% interval.
  // Binomial tolerance: the hit count is Binomial(R, 0.95), so coverage must
  // land within ~6 standard errors of 0.95 (plus FPC/normal-approx slack).
  {
    const std::size_t pops[] = {400, 300, 300};
    const double mus[] = {1.2, 0.9, 0.5};
    const double sigmas[] = {0.30, 0.15, 0.05};
    std::vector<std::vector<double>> values(3);
    std::vector<Stratum> strata;
    double truth_num = 0.0;
    for (std::size_t h = 0; h < 3; ++h) {
      Rng rng = Rng::stream(cfg.seed, 0xC0 + h);
      for (std::size_t i = 0; i < pops[h]; ++i) {
        values[h].push_back(mus[h] + sigmas[h] * rng.next_gaussian());
      }
      Stratum s;
      s.population = pops[h];
      s.stddev = stats::sample_stddev(values[h]);
      s.mean = stats::mean(values[h]);
      truth_num += s.mean * static_cast<double>(pops[h]);
      strata.push_back(s);
    }
    const double n_pop = 1000.0;
    const double truth = truth_num / n_pop;

    const auto alloc = alloc_fn(strata, 60, 1);
    const double se = stats::stratified_standard_error(strata, alloc);
    std::size_t hits = 0;
    for (std::size_t r = 0; r < cfg.coverage_resamples; ++r) {
      Rng rng = Rng::stream(cfg.seed, 0x5A000 + r);
      double est = 0.0;
      for (std::size_t h = 0; h < 3; ++h) {
        // Partial Fisher–Yates without replacement; clamp so a broken
        // allocator over-asking cannot crash the harness (it fails the
        // property and coverage checks instead).
        const std::size_t nh =
            std::min(h < alloc.size() ? alloc[h] : 0, values[h].size());
        if (nh == 0) continue;
        std::vector<std::size_t> idx(values[h].size());
        std::iota(idx.begin(), idx.end(), std::size_t{0});
        double mean_h = 0.0;
        for (std::size_t i = 0; i < nh; ++i) {
          const std::size_t j = i + rng.next_below(idx.size() - i);
          std::swap(idx[i], idx[j]);
          mean_h += values[h][idx[i]];
        }
        mean_h /= static_cast<double>(nh);
        est += mean_h * static_cast<double>(pops[h]) / n_pop;
      }
      hits += std::abs(est - truth) <= stats::kZ95 * se ? 1 : 0;
      ++report.cases_run;
    }
    const double coverage =
        static_cast<double>(hits) / static_cast<double>(cfg.coverage_resamples);
    const double binom_sd = std::sqrt(
        0.95 * 0.05 / static_cast<double>(cfg.coverage_resamples));
    const double tol = std::max(0.015, 6.0 * binom_sd);
    std::ostringstream detail;
    detail << "coverage " << coverage << " vs nominal 0.95 ± " << tol << " ("
           << cfg.coverage_resamples << " resamples)";
    report.add("oracle.ci_coverage", std::abs(coverage - 0.95) <= tol,
               detail.str());
    report.fingerprint = fnv1a(report.fingerprint, hits);
  }

  // --- Neyman no worse than proportional on SE — the point of Eq. 1.
  {
    std::size_t bad = 0;
    for (std::size_t t = 0; t < cfg.property_trials; ++t) {
      Rng rng = Rng::stream(cfg.seed, 0xBEA7 + t);
      const std::size_t h = 2 + rng.next_below(5);
      std::vector<Stratum> strata;
      std::size_t pop = 0;
      for (std::size_t i = 0; i < h; ++i) {
        Stratum s;
        s.population = 20 + rng.next_below(200);
        s.stddev = rng.next_double(0.0, 2.0);
        s.mean = rng.next_double(0.5, 2.0);
        pop += s.population;
        strata.push_back(s);
      }
      const std::size_t n = std::max<std::size_t>(h, pop / 10);
      const double se_test =
          stats::stratified_standard_error(strata, alloc_fn(strata, n, 1));
      const double se_prop = stats::stratified_standard_error(
          strata, stats::proportional_allocation(strata, n));
      bad += se_test <= se_prop * 1.05 ? 0 : 1;  // 5% slack for floors
    }
    report.add("oracle.neyman_beats_proportional", bad == 0,
               std::to_string(bad) + "/" + std::to_string(cfg.property_trials) +
                   " trials worse than proportional");
  }

  // --- Required sample size actually achieves its target margin.
  {
    const std::vector<Stratum> strata{{400, 0.5, 1.2}, {300, 0.2, 0.9},
                                      {300, 0.05, 0.5}};
    const double mu = stats::stratified_population_mean(strata);
    bool ok = true;
    for (const double r : {0.10, 0.05, 0.02}) {
      const auto n = stats::required_sample_size(strata, r, stats::kZ997);
      const double se =
          stats::stratified_standard_error(strata, alloc_fn(strata, n, 1));
      ok = ok && stats::kZ997 * se <= r * mu * 1.12;
    }
    report.add("oracle.required_size_achieves_margin", ok);
  }

  // --- Silhouettes against the naive references, singleton included.
  {
    Rng rng = Rng::stream(cfg.seed, 0x5117);
    const std::size_t n = 120, d = 3, k = 4;
    stats::Matrix pts(n, d);
    stats::Matrix centers(k, d);
    std::vector<std::size_t> labels(n);
    for (std::size_t c = 0; c < k; ++c) {
      for (std::size_t f = 0; f < d; ++f) {
        centers.at(c, f) = rng.next_double(-4.0, 4.0);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      labels[i] = rng.next_below(k - 1);  // cluster k-1 stays empty for now
      for (std::size_t f = 0; f < d; ++f) {
        pts.at(i, f) = centers.at(labels[i], f) + rng.next_gaussian() * 0.7;
      }
    }
    labels[0] = k - 1;  // force a singleton cluster
    const double exact = stats::exact_silhouette(pts, labels, k, 1);
    const double ref = reference_exact_silhouette(pts, labels, k);
    report.add("oracle.exact_silhouette_matches_reference",
               std::abs(exact - ref) < 1e-8,
               "exact " + std::to_string(exact) + " vs reference " +
                   std::to_string(ref) + " (singleton cluster present)");
    const double simp = stats::simplified_silhouette(pts, centers, labels, 1);
    const double simp_ref =
        reference_simplified_silhouette(pts, centers, labels);
    report.add("oracle.simplified_silhouette_matches_reference",
               std::abs(simp - simp_ref) < 1e-8,
               "simplified " + std::to_string(simp) + " vs reference " +
                   std::to_string(simp_ref));
  }

  // --- Feature selection: a correlated column must outrank noise; constant
  // columns score exactly 0 and are excluded from top-k.
  {
    Rng rng = Rng::stream(cfg.seed, 0xFEA7);
    const std::size_t n = 64;
    stats::Matrix x(n, 3);
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = rng.next_double(0.0, 2.0);
      x.at(i, 0) = 3.0 * y[i] + rng.next_gaussian() * 0.05;  // strong signal
      x.at(i, 1) = 7.0;                                      // constant
      x.at(i, 2) = rng.next_gaussian();                      // noise
    }
    const auto scores = stats::f_regression(x, y);
    const auto top = stats::top_k_indices(scores, 2);
    report.add("oracle.f_regression_ranks_signal",
               scores[0] > scores[2] && scores[1] == 0.0 && top.size() == 2 &&
                   top[0] == 0,
               "scores " + std::to_string(scores[0]) + ", " +
                   std::to_string(scores[1]) + ", " +
                   std::to_string(scores[2]));
  }

  // --- Feature selection vs the textbook formula: the single-pass blocked
  // kernel must agree with a naive O(n·d) per-column Pearson r → F
  // conversion on a wide random matrix (mix of signal, noise, and a
  // constant column). The naive path copies each column and runs the
  // two-pass centered pearson() — deliberately the slow reference.
  {
    Rng rng = Rng::stream(cfg.seed, 0xF2E6);
    const std::size_t n = 96, d = 48;
    stats::Matrix x(n, d);
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) y[i] = rng.next_double(0.0, 2.0);
    for (std::size_t f = 0; f < d; ++f) {
      const double slope = (f % 3 == 0) ? rng.next_double(-2.0, 2.0) : 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        x.at(i, f) = slope * y[i] + rng.next_gaussian();
      }
    }
    for (std::size_t i = 0; i < n; ++i) x.at(i, 7) = 3.25;  // constant column
    const auto scores = stats::f_regression(x, y);
    bool ok = scores.size() == d;
    double worst = 0.0;
    std::size_t worst_col = 0;
    for (std::size_t f = 0; ok && f < d; ++f) {
      std::vector<double> col(n);
      const auto view = x.column_view(f);
      for (std::size_t i = 0; i < n; ++i) col[i] = view[i];
      const double r = stats::pearson(col, y);
      double expect = 0.0;
      if (f != 7) {
        const double r2 = std::min(r * r, 1.0 - 1e-12);
        expect = r2 / (1.0 - r2) * static_cast<double>(n - 2);
      }
      const double err =
          std::abs(scores[f] - expect) / std::max(1.0, std::abs(expect));
      if (err > worst) {
        worst = err;
        worst_col = f;
      }
      ok = ok && err < 1e-9;
    }
    report.add("oracle.f_regression_matches_naive_pearson", ok,
               "worst relative error " + std::to_string(worst) + " at column " +
                   std::to_string(worst_col) + " over " + std::to_string(d) +
                   " columns");
  }

  // --- Two-phase estimator, closed form. Phase-1 counts {2, 2} (w′ = ½
  // each), measured values {1, 3} and {5, 7}: ȳ_ds = ½·2 + ½·6 = 4,
  // V̂ = [¼·2/2 + ¼·2/2] + ¼·[½·4 + ½·4] = 0.5 + 1.0 = 1.5, SE = √1.5.
  {
    std::vector<stats::TwoPhaseStratum> tp(2);
    tp[0] = {2, 2, stats::mean(std::vector<double>{1.0, 3.0}),
             stats::sample_stddev(std::vector<double>{1.0, 3.0})};
    tp[1] = {2, 2, stats::mean(std::vector<double>{5.0, 7.0}),
             stats::sample_stddev(std::vector<double>{5.0, 7.0})};
    const auto est = stats::two_phase_estimate(tp, stats::kZ997);
    const bool ok = std::abs(est.mean - 4.0) < 1e-12 &&
                    std::abs(est.variance - 1.5) < 1e-12 &&
                    std::abs(est.standard_error - std::sqrt(1.5)) < 1e-12 &&
                    std::abs(est.ci.margin - 3.0 * std::sqrt(1.5)) < 1e-12;
    std::ostringstream o;
    o << "mean " << est.mean << " var " << est.variance << " se "
      << est.standard_error;
    report.add("oracle.two_phase_closed_form", ok, o.str());
  }

  // --- Two-phase allocation reuses the Eq. 1 machinery against phase-1
  // counts: n′_h·σ_h of 100 and 300 split n = 40 exactly 1:3.
  {
    const std::size_t counts[] = {100, 100};
    const double priors[] = {1.0, 3.0};
    const auto a = stats::two_phase_allocation(counts, priors, 40, 1);
    report.add("oracle.two_phase_allocation_closed_form",
               a.size() == 2 && a[0] == 10 && a[1] == 30,
               "expected {10, 30}");
  }

  // --- Two-phase degenerate conventions: zero-variance strata give an
  // exactly zero-width CI at the stratified mean; a singleton measured
  // stratum, NaN/∞ deviations and unmeasured strata all stay finite.
  {
    std::vector<stats::TwoPhaseStratum> flat(3);
    for (std::size_t h = 0; h < 3; ++h) flat[h] = {10, 2, 1.5, 0.0};
    const auto est = stats::two_phase_estimate(flat, stats::kZ997);
    report.add("oracle.two_phase_zero_variance_zero_width",
               est.mean == 1.5 && est.variance == 0.0 && est.ci.margin == 0.0);

    std::vector<stats::TwoPhaseStratum> ugly(4);
    ugly[0] = {5, 1, 1.2, 0.0};                            // singleton
    ugly[1] = {7, 3, 0.9, std::nan("")};                   // NaN deviation
    ugly[2] = {4, 2, std::numeric_limits<double>::infinity(), 2.0};  // ∞ mean
    ugly[3] = {6, 0, 0.0, 0.0};                            // never measured
    const auto e2 = stats::two_phase_estimate(ugly, stats::kZ997);
    report.add("oracle.two_phase_degenerate_finite",
               std::isfinite(e2.mean) && std::isfinite(e2.variance) &&
                   e2.variance >= 0.0 && std::isfinite(e2.ci.margin));

    const auto empty = stats::two_phase_estimate({}, stats::kZ997);
    report.add("oracle.two_phase_empty_is_zero",
               empty.mean == 0.0 && empty.standard_error == 0.0);
  }

  // --- Two-phase property sweep mirroring the Neyman one: random phase-1
  // counts and measurements (including degenerate deviations) must always
  // produce a finite estimate, a non-negative variance, and an allocation
  // that sums to the documented floor-respecting total and never exceeds a
  // stratum's phase-1 count.
  {
    std::size_t bad = 0;
    std::string first;
    for (std::size_t t = 0; t < cfg.property_trials; ++t) {
      Rng rng = Rng::stream(cfg.seed, 0xD5A1 + t);
      const std::size_t h = 1 + rng.next_below(6);
      std::vector<std::size_t> counts(h);
      std::vector<double> priors(h);
      std::size_t pop_total = 0;
      std::size_t non_empty = 0;
      for (std::size_t i = 0; i < h; ++i) {
        counts[i] = rng.next_below(64);  // 0 allowed
        priors[i] = rng.next_double(0.0, 2.0);
        if (rng.next_bool(0.1)) priors[i] = std::nan("");
        pop_total += counts[i];
        non_empty += counts[i] > 0 ? 1 : 0;
      }
      const std::size_t total = rng.next_below(pop_total + 8);
      const auto a = stats::two_phase_allocation(counts, priors, total, 1);
      const std::size_t expect =
          std::max(std::min(total, pop_total), non_empty);
      bool ok = a.size() == h && sum_of(a) == expect;
      std::vector<stats::TwoPhaseStratum> tp(h);
      for (std::size_t i = 0; ok && i < h; ++i) {
        ok = a[i] <= counts[i];
        tp[i].phase1_count = counts[i];
        tp[i].sample_size = a[i];
        tp[i].sample_mean = rng.next_double(0.5, 2.0);
        tp[i].sample_stddev =
            a[i] > 1 ? rng.next_double(0.0, 1.0) : 0.0;
        if (rng.next_bool(0.05)) tp[i].sample_stddev = std::nan("");
      }
      const auto est = stats::two_phase_estimate(tp, stats::kZ997);
      ok = ok && std::isfinite(est.mean) && std::isfinite(est.variance) &&
           est.variance >= 0.0 && std::isfinite(est.ci.margin);
      if (!ok && first.empty()) {
        std::ostringstream o;
        o << "trial " << t << " total " << total << " sum " << sum_of(a)
          << " expect " << expect;
        first = o.str();
      }
      bad += ok ? 0 : 1;
      report.fingerprint = fnv1a(report.fingerprint, sum_of(a));
      ++report.cases_run;
    }
    report.add("oracle.two_phase_properties", bad == 0,
               bad == 0 ? std::to_string(cfg.property_trials) + " cases"
                        : std::to_string(bad) + " violations; first: " + first);
  }

  for (const auto& c : report.checks) {
    if (!c.passed) oracle_failures.increment();
    report.fingerprint = fnv1a(report.fingerprint, c.passed);
  }
  return report;
}

}  // namespace simprof::verify
