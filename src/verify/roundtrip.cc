#include "verify/roundtrip.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/profile.h"
#include "support/rng.h"
#include "support/serialize.h"
#include "verify/golden_archive.h"
#include "verify/synthetic.h"

namespace simprof::verify {
namespace {

std::string serialize(const core::ThreadProfile& p) {
  std::ostringstream out(std::ios::binary);
  p.save(out);
  return out.str();
}

core::ThreadProfile deserialize(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return core::ThreadProfile::load(in);
}

/// Scalar primitives through BinaryWriter/Reader, compared at the byte
/// level so NaN payloads and signed zeros count.
bool primitives_roundtrip() {
  const std::uint64_t u64s[] = {0, 1, (1ULL << 32) - 1, (1ULL << 32),
                                std::numeric_limits<std::uint64_t>::max()};
  const double f64s[] = {0.0, -0.0, 1.5, -1e308,
                         std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity(),
                         std::numeric_limits<double>::quiet_NaN()};
  std::ostringstream out(std::ios::binary);
  {
    BinaryWriter w(out);
    for (auto v : u64s) w.u64(v);
    for (auto v : f64s) w.f64(v);
    w.u8(0);
    w.u8(255);
    w.u32(std::numeric_limits<std::uint32_t>::max());
    w.str("");
    w.str(std::string("nul\0s", 5));
    w.vec_u32({});
    w.vec_f64({1.0, std::numeric_limits<double>::quiet_NaN()});
  }
  std::istringstream in(out.str(), std::ios::binary);
  BinaryReader r(in);
  for (auto v : u64s) {
    if (r.u64() != v) return false;
  }
  for (auto v : f64s) {
    const double got = r.f64();
    if (std::memcmp(&got, &v, sizeof v) != 0) return false;
  }
  if (r.u8() != 0 || r.u8() != 255) return false;
  if (r.u32() != std::numeric_limits<std::uint32_t>::max()) return false;
  if (!r.str().empty()) return false;
  if (r.str() != std::string("nul\0s", 5)) return false;
  if (!r.vec_u32().empty()) return false;
  const auto vf = r.vec_f64();
  if (vf.size() != 2 || vf[0] != 1.0 || !std::isnan(vf[1])) return false;
  return r.remaining() == 0;
}

}  // namespace

VerifyReport verify_roundtrip(std::uint64_t seed, std::size_t cases) {
  VerifyReport report;
  report.fingerprint = kFnvOffset;

  report.add("roundtrip.primitives_bit_identical", primitives_roundtrip());

  std::size_t bad = 0;
  for (std::size_t i = 0; i < cases; ++i) {
    Rng rng = Rng::stream(seed, 0x27a0 + i);
    const core::ThreadProfile p = random_profile(rng);
    const std::string once = serialize(p);
    const std::string twice = serialize(deserialize(once));
    bad += once == twice ? 0 : 1;
    report.fingerprint = fnv1a(report.fingerprint, once.size());
    ++report.cases_run;
  }
  report.add("roundtrip.profiles_bit_identical", bad == 0,
             std::to_string(cases) + " randomized profiles, " +
                 std::to_string(bad) + " mismatches");

  // Golden archive: frozen v4 bytes must decode to the handcrafted fixture
  // and re-serialize to exactly the frozen bytes.
  {
    const std::string golden(reinterpret_cast<const char*>(kGoldenArchiveV4),
                             sizeof kGoldenArchiveV4);
    bool decodes = false;
    bool identical = false;
    bool matches_fixture = false;
    std::string detail;
    try {
      const core::ThreadProfile p = deserialize(golden);
      decodes = true;
      identical = serialize(p) == golden;
      const core::ThreadProfile want = golden_profile();
      matches_fixture = serialize(want) == golden &&
                        p.num_units() == want.num_units() &&
                        p.method_names == want.method_names;
      detail = std::to_string(p.num_units()) + " units, " +
               std::to_string(p.num_methods()) + " methods";
    } catch (const std::exception& e) {
      detail = e.what();
    }
    report.add("roundtrip.golden_archive_decodes", decodes, detail);
    report.add("roundtrip.golden_archive_stable", identical && matches_fixture,
               "reader/writer drift tripwire — bump kVersion and regenerate "
               "golden_archive.h on any intentional format change");
  }
  return report;
}

}  // namespace simprof::verify
