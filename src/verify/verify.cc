#include "verify/verify.h"

namespace simprof::verify {

void VerifyReport::merge(const VerifyReport& other) {
  checks.insert(checks.end(), other.checks.begin(), other.checks.end());
  cases_run += other.cases_run;
  fingerprint = fnv1a(fingerprint == 0 ? kFnvOffset : fingerprint,
                      other.fingerprint);
}

}  // namespace simprof::verify
