// simprof_verify: fault-injection and differential-oracle verification for
// the archive/cache and statistics layers (DESIGN.md §6d).
//
// Three coordinated harnesses, each returning a VerifyReport:
//   * fault_inject.h  — seeded corruption of serialized archives and the
//     on-disk lab cache; every read path must answer with a typed error or a
//     cache miss, never UB/OOM/a crash.
//   * oracle.h        — closed-form and property checks for the stratified
//     estimator stack (Eqs. 1–5), silhouettes, and feature selection,
//     against independent naive reference implementations.
//   * roundtrip.h     — serialize → reload → re-serialize bit-identity for
//     every archived type, plus decode of a checked-in golden archive.
//
// All randomness flows through Rng::stream(seed, case_index), so a report's
// fingerprint is a pure function of (code, seed) — `simprof verify` runs are
// reproducible and a verdict change is always a behavior change.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace simprof::verify {

/// Outcome of one named check, with human-readable evidence.
struct CheckResult {
  std::string name;
  bool passed = false;
  std::string detail;
};

struct VerifyReport {
  std::vector<CheckResult> checks;
  std::size_t cases_run = 0;      ///< individual seeded cases behind the checks
  std::uint64_t fingerprint = 0;  ///< FNV-1a over per-case verdicts

  std::size_t failures() const {
    std::size_t n = 0;
    for (const auto& c : checks) n += c.passed ? 0 : 1;
    return n;
  }
  bool ok() const { return failures() == 0; }

  void add(std::string name, bool passed, std::string detail = {}) {
    checks.push_back({std::move(name), passed, std::move(detail)});
  }

  /// Concatenates checks and case counts; fingerprints are chained so the
  /// merged value still pins every constituent verdict.
  void merge(const VerifyReport& other);
};

/// FNV-1a step, the fingerprint accumulator shared by the harnesses.
inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 1099511628211ULL;
  }
  return h;
}
inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

}  // namespace simprof::verify
