// Statistical oracle harness: checks the stratified estimator stack
// (optimal_allocation, SE, CIs, required sample size), silhouettes, and
// feature selection against closed-form results on synthetic populations and
// against independent naive reference implementations, plus property sweeps
// (allocation sums/caps/floors, CI coverage within binomial tolerance).
//
// The allocation under test is pluggable so the harness can be mutation-
// tested: handing it a deliberately broken allocator must turn checks red
// (tests/verify_test.cc does exactly that).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "stats/stratified.h"
#include "verify/verify.h"

namespace simprof::verify {

using AllocationFn = std::function<std::vector<std::size_t>(
    std::span<const stats::Stratum>, std::size_t, std::size_t)>;

struct OracleConfig {
  std::uint64_t seed = 2;
  std::size_t property_trials = 64;      ///< random-strata property cases
  std::size_t coverage_resamples = 10000;  ///< CI coverage resampling count
  /// Allocation under test; empty → stats::optimal_allocation.
  AllocationFn allocation;
};

/// Runs every oracle check. Each failed check increments
/// verify.oracle_failures.
VerifyReport verify_statistics(const OracleConfig& cfg);

}  // namespace simprof::verify
