#include "verify/fault_inject.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/lab.h"
#include "core/profile.h"
#include "obs/obs.h"
#include "support/rng.h"
#include "support/serialize.h"
#include "verify/golden_checkpoint.h"
#include "verify/synthetic.h"

namespace simprof::verify {
namespace {

std::string serialize(const core::ThreadProfile& p) {
  std::ostringstream out(std::ios::binary);
  p.save(out);
  return out.str();
}

enum class Mutation : std::uint64_t {
  kTruncate,
  kBitFlip,
  kLengthInflate,
  kHeaderSkew,
  kSplice,
  kGarbage,
  kCount,
};

/// Applies one seeded mutation in place; returns the mutation picked.
Mutation mutate(std::string& bytes, Rng& rng) {
  const auto kind = static_cast<Mutation>(
      rng.next_below(static_cast<std::uint64_t>(Mutation::kCount)));
  const std::size_t size = bytes.size();
  switch (kind) {
    case Mutation::kTruncate:
      bytes.resize(rng.next_below(size));
      break;
    case Mutation::kBitFlip: {
      const std::size_t flips = 1 + rng.next_below(8);
      for (std::size_t f = 0; f < flips; ++f) {
        const std::size_t at = rng.next_below(size);
        bytes[at] = static_cast<char>(
            static_cast<unsigned char>(bytes[at]) ^ (1u << rng.next_below(8)));
      }
      break;
    }
    case Mutation::kLengthInflate: {
      // Overwrite 8 aligned-anywhere bytes with a huge value — whichever
      // u64 field lands there (often a length prefix) now claims gigabytes.
      if (size < 8) break;
      const std::size_t at = rng.next_below(size - 7);
      const std::uint64_t huge =
          (1ULL << (31 + rng.next_below(32))) | rng.next_below(1 << 20);
      std::memcpy(bytes.data() + at, &huge, sizeof huge);
      break;
    }
    case Mutation::kHeaderSkew: {
      // Random magic and/or version word.
      const std::size_t word = rng.next_below(2) * 4;
      const auto v = static_cast<std::uint32_t>(rng.next_u64());
      if (size >= word + 4) std::memcpy(bytes.data() + word, &v, sizeof v);
      break;
    }
    case Mutation::kSplice: {
      const std::size_t at = rng.next_below(size + 1);
      const std::size_t len = 1 + rng.next_below(64);
      std::string extra(len, '\0');
      for (auto& c : extra) c = static_cast<char>(rng.next_below(256));
      bytes.insert(at, extra);
      break;
    }
    case Mutation::kGarbage: {
      const std::size_t at = rng.next_below(size);
      const std::size_t len = 1 + rng.next_below(std::min<std::size_t>(
                                      32, size - at));
      for (std::size_t j = 0; j < len; ++j) {
        bytes[at + j] = static_cast<char>(rng.next_below(256));
      }
      break;
    }
    case Mutation::kCount:
      break;  // unreachable
  }
  return kind;
}

enum Verdict : std::uint64_t {
  kDecoded = 0,        // corruption was benign — archive still parsed
  kTypedReject = 1,    // SerializeError, the contract's happy rejection
  kContractReject = 2, // other ContractViolation (typed, but flags a gap)
  kUntyped = 3,        // anything else escaping load() — a verify failure
};

}  // namespace

VerifyReport verify_archive_robustness(const FaultConfig& cfg) {
  static obs::Counter& injected =
      obs::metrics().counter("verify.faults_injected");

  // Base corpus: the golden fixture plus a spread of randomized archives.
  std::vector<std::string> bases;
  bases.push_back(serialize(golden_profile()));
  for (std::uint64_t b = 0; b < 4; ++b) {
    Rng rng = Rng::stream(cfg.seed, 0xB000 + b);
    bases.push_back(serialize(random_profile(rng)));
  }

  VerifyReport report;
  report.fingerprint = kFnvOffset;
  std::size_t counts[4] = {0, 0, 0, 0};
  std::size_t not_idempotent = 0;
  std::string first_untyped;
  for (std::size_t i = 0; i < cfg.cases; ++i) {
    Rng rng = Rng::stream(cfg.seed, i);
    std::string bytes = bases[rng.next_below(bases.size())];
    const std::size_t rounds = 1 + rng.next_below(3);
    for (std::size_t r = 0; r < rounds && !bytes.empty(); ++r) {
      mutate(bytes, rng);
    }
    injected.increment();

    Verdict v = kUntyped;
    try {
      std::istringstream in(bytes, std::ios::binary);
      const core::ThreadProfile p = core::ThreadProfile::load(in);
      v = kDecoded;
      // A decoded archive must re-serialize to a stable fixed point:
      // save(load(x)) must itself decode to the same bytes.
      const std::string once = serialize(p);
      std::istringstream in2(once, std::ios::binary);
      if (serialize(core::ThreadProfile::load(in2)) != once) ++not_idempotent;
    } catch (const SerializeError&) {
      v = kTypedReject;
    } catch (const ContractViolation&) {
      v = kContractReject;
    } catch (const std::exception& e) {
      v = kUntyped;
      if (first_untyped.empty()) first_untyped = e.what();
    }
    ++counts[v];
    report.fingerprint = fnv1a(report.fingerprint, (i << 2) | v);
    ++report.cases_run;
  }

  const auto fmt = [&] {
    return std::to_string(counts[kDecoded]) + " benign decodes, " +
           std::to_string(counts[kTypedReject]) + " SerializeError, " +
           std::to_string(counts[kContractReject]) + " other contract, " +
           std::to_string(counts[kUntyped]) + " untyped over " +
           std::to_string(cfg.cases) + " cases";
  };
  report.add("fault.typed_errors_only", counts[kUntyped] == 0,
             counts[kUntyped] == 0 ? fmt()
                                   : fmt() + "; first: " + first_untyped);
  report.add("fault.no_contract_leaks", counts[kContractReject] == 0, fmt());
  report.add("fault.injection_effective",
             counts[kTypedReject] > cfg.cases / 20, fmt());
  report.add("fault.reload_idempotent", not_idempotent == 0,
             std::to_string(not_idempotent) + " non-idempotent decodes");
  return report;
}

VerifyReport verify_lab_cache_recovery(std::uint64_t seed) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("simprof_verify_" + std::to_string(::getpid()) + "_" +
       std::to_string(seed));
  fs::remove_all(dir);

  core::LabConfig cfg;
  cfg.scale = 0.05;
  cfg.graph_scale_override = 12;
  cfg.cache_dir = dir.string();
  core::WorkloadLab lab(cfg);

  VerifyReport report;
  report.fingerprint = kFnvOffset;
  const obs::Counter& corrupt_ctr =
      obs::metrics().counter("lab.cache_corrupt");
  const std::uint64_t corrupt_before = corrupt_ctr.value();

  const auto seeded = lab.run("grep_sp");
  report.add("cache.populates", !seeded.from_cache && !seeded.cache_path.empty(),
             "first run wrote " + seeded.cache_path);
  const std::string path = seeded.cache_path;
  report.add("cache.hits_when_intact", lab.run("grep_sp").from_cache);
  report.add("cache.no_stale_tmp", !fs::exists(path + ".tmp"),
             "atomic publish leaves no .tmp behind");

  const auto read_file = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  const auto write_file = [](const std::string& p, const std::string& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  const std::string good = read_file(path);
  struct Variant {
    const char* name;
    std::string bytes;
  };
  std::string flipped = good;
  flipped[flipped.size() / 2] =
      static_cast<char>(static_cast<unsigned char>(flipped[flipped.size() / 2]) ^ 0x40);
  std::string skewed = good;
  skewed[4] = static_cast<char>(skewed[4] + 1);  // version word
  std::string inflated = good;
  const std::uint64_t huge = 1ULL << 40;  // method-count prefix at offset 8
  std::memcpy(inflated.data() + 8, &huge, sizeof huge);
  const std::vector<Variant> variants = {
      {"truncated", good.substr(0, good.size() / 2)},
      {"empty", std::string()},
      {"bit_flipped", flipped},
      {"version_skew", skewed},
      {"length_inflated", inflated},
  };

  for (const auto& v : variants) {
    write_file(path, v.bytes);
    const auto run = lab.run("grep_sp");
    const bool miss_then_regenerate =
        !run.from_cache && run.profile.num_units() == seeded.profile.num_units();
    const bool hits_again = lab.run("grep_sp").from_cache;
    report.add(std::string("cache.recovers_from_") + v.name,
               miss_then_regenerate && hits_again);
    report.fingerprint =
        fnv1a(report.fingerprint, miss_then_regenerate && hits_again);
    ++report.cases_run;
  }
  const std::uint64_t corrupt_delta = corrupt_ctr.value() - corrupt_before;
  report.add("cache.corrupt_counter_counts", corrupt_delta == variants.size(),
             "lab.cache_corrupt +" + std::to_string(corrupt_delta) + " over " +
                 std::to_string(variants.size()) + " corruptions");

  fs::remove_all(dir);
  return report;
}

namespace {

/// Restore `bytes` into a fresh fixture twin and return the twin's re-saved
/// archive — equal to the pristine bytes iff the restore was bit-exact.
/// Throws whatever load_checkpoint throws.
std::string load_into_twin(std::uint64_t variant, const std::string& bytes) {
  const auto twin = checkpoint_fixture(variant);
  std::istringstream in(bytes, std::ios::binary);
  core::load_checkpoint(in, *twin, kCheckpointFixtureKey,
                        kCheckpointFixtureUnit);
  std::ostringstream out(std::ios::binary);
  core::save_checkpoint(out, *twin, kCheckpointFixtureKey,
                        kCheckpointFixtureUnit);
  return out.str();
}

}  // namespace

VerifyReport verify_checkpoint_robustness(const FaultConfig& cfg) {
  static obs::Counter& injected =
      obs::metrics().counter("verify.ckpt_faults_injected");

  VerifyReport report;
  report.fingerprint = kFnvOffset;

  // Golden checkpoint tripwire: the frozen SCKP v2 bytes must equal a fresh
  // fixture save, decode without error, and restore bit-identical state.
  {
    const std::string golden(
        reinterpret_cast<const char*>(kGoldenCheckpointV2),
        sizeof kGoldenCheckpointV2);
    const std::string fresh = fixture_checkpoint_bytes(0);
    bool decodes = false;
    bool stable = false;
    std::string detail;
    try {
      const std::string resaved = load_into_twin(0, golden);
      decodes = true;
      stable = fresh == golden && resaved == golden;
      detail = std::to_string(golden.size()) + " frozen bytes";
    } catch (const std::exception& e) {
      detail = e.what();
    }
    report.add("ckpt.golden_archive_decodes", decodes, detail);
    report.add("ckpt.golden_archive_stable", stable,
               "format drift tripwire — bump kCheckpointVersion and "
               "regenerate golden_checkpoint.h on any intentional change");
  }

  // Corpus: fixture variants with different registries, cache warmth and
  // counter values, so corruption lands on every payload section.
  std::vector<std::pair<std::uint64_t, std::string>> bases;
  for (std::uint64_t v = 0; v < 4; ++v) {
    bases.emplace_back(v, fixture_checkpoint_bytes(v));
  }

  std::size_t counts[4] = {0, 0, 0, 0};
  std::size_t silent = 0;
  std::string first_untyped;
  for (std::size_t i = 0; i < cfg.cases; ++i) {
    Rng rng = Rng::stream(cfg.seed, 0xCC00 + i);
    const auto& [variant, pristine] = bases[rng.next_below(bases.size())];
    std::string bytes = pristine;
    const std::size_t rounds = 1 + rng.next_below(3);
    for (std::size_t r = 0; r < rounds && !bytes.empty(); ++r) {
      mutate(bytes, rng);
    }
    injected.increment();

    Verdict v = kUntyped;
    try {
      const std::string resaved = load_into_twin(variant, bytes);
      v = kDecoded;
      // A decode that does not reproduce the pristine state is the one
      // outcome the format must rule out: a silently wrong restore would
      // surface as a wrong PMU number downstream.
      if (resaved != pristine) ++silent;
    } catch (const SerializeError&) {
      v = kTypedReject;
    } catch (const ContractViolation&) {
      v = kContractReject;
    } catch (const std::exception& e) {
      v = kUntyped;
      if (first_untyped.empty()) first_untyped = e.what();
    }
    ++counts[v];
    report.fingerprint = fnv1a(report.fingerprint, (i << 2) | v);
    ++report.cases_run;
  }

  const auto fmt = [&] {
    return std::to_string(counts[kDecoded]) + " benign decodes, " +
           std::to_string(counts[kTypedReject]) + " SerializeError, " +
           std::to_string(counts[kContractReject]) + " other contract, " +
           std::to_string(counts[kUntyped]) + " untyped over " +
           std::to_string(cfg.cases) + " cases";
  };
  report.add("ckpt_fault.typed_errors_only", counts[kUntyped] == 0,
             counts[kUntyped] == 0 ? fmt()
                                   : fmt() + "; first: " + first_untyped);
  report.add("ckpt_fault.no_contract_leaks", counts[kContractReject] == 0,
             fmt());
  report.add("ckpt_fault.no_silent_corruption", silent == 0,
             std::to_string(silent) + " decodes restored divergent state");
  report.add("ckpt_fault.injection_effective",
             counts[kTypedReject] > cfg.cases / 20, fmt());
  return report;
}

VerifyReport verify_checkpoint_recovery(std::uint64_t seed) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("simprof_ckpt_verify_" + std::to_string(::getpid()) + "_" +
       std::to_string(seed));
  fs::remove_all(dir);

  core::LabConfig cfg;
  cfg.scale = 0.05;
  cfg.graph_scale_override = 12;
  cfg.cache_dir = (dir / "cache").string();
  cfg.checkpoint_dir = (dir / "ckpt").string();
  cfg.checkpoint_stride = 2;
  core::WorkloadLab lab(cfg);

  VerifyReport report;
  report.fingerprint = kFnvOffset;
  const obs::Counter& fallback_ctr = obs::metrics().counter("ckpt.fallback");
  const std::uint64_t fallback_before = fallback_ctr.value();

  const auto seeded = lab.run("grep_sp");
  const auto& oracle_units = seeded.profile.units;
  std::vector<std::uint64_t> targets = {1, oracle_units.size() / 2,
                                        oracle_units.size() - 1};

  const auto same_counters = [](const hw::PmuCounters& a,
                                const hw::PmuCounters& b) {
    return a.instructions == b.instructions && a.cycles == b.cycles &&
           a.line_touches == b.line_touches && a.l1_misses == b.l1_misses &&
           a.l2_misses == b.l2_misses && a.llc_misses == b.llc_misses &&
           a.migrations == b.migrations;
  };
  const auto records_match = [&](const std::vector<core::UnitRecord>& recs) {
    if (recs.size() != targets.size()) return false;
    for (const auto& rec : recs) {
      if (rec.unit_id >= oracle_units.size()) return false;
      const core::UnitRecord& want = oracle_units[rec.unit_id];
      if (want.unit_id != rec.unit_id ||
          !same_counters(rec.counters, want.counters) ||
          rec.methods != want.methods || rec.counts != want.counts) {
        return false;
      }
    }
    return true;
  };

  const auto m0 = lab.measure_units("grep_sp", "Google", targets);
  report.add("ckpt.fast_path_restores", m0.used_checkpoints && !m0.fallback,
             std::to_string(m0.checkpoints_restored) + " restores, " +
                 std::to_string(m0.fast_forwarded_instrs) + " instrs skipped");
  report.add("ckpt.fast_path_exact", records_match(m0.records),
             "restored-unit records equal the oracle pass bit for bit");

  // Archives the fast path restores from, with pristine copies to put back
  // between cases.
  const std::string ckdir =
      lab.checkpoint_dir_for("grep_sp", "Google", cfg.seed);
  std::vector<std::pair<std::string, std::string>> pristine;  // path, bytes
  for (const auto& e : fs::directory_iterator(ckdir)) {
    std::ifstream in(e.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    pristine.emplace_back(e.path().string(), buf.str());
  }
  report.add("ckpt.archives_published", !pristine.empty(),
             std::to_string(pristine.size()) + " archives in " + ckdir);

  struct Corruption {
    const char* name;
    std::string (*apply)(const std::string&);
  };
  const std::vector<Corruption> variants = {
      {"truncated",
       [](const std::string& b) { return b.substr(0, b.size() / 2); }},
      {"bit_flipped",
       [](const std::string& b) {
         std::string out = b;
         out[out.size() / 2] = static_cast<char>(
             static_cast<unsigned char>(out[out.size() / 2]) ^ 0x10);
         return out;
       }},
      {"version_skew",
       [](const std::string& b) {
         std::string out = b;
         if (out.size() > 4) out[4] = static_cast<char>(out[4] + 1);
         return out;
       }},
      {"empty", [](const std::string&) { return std::string(); }},
  };
  const auto write_file = [](const std::string& p, const std::string& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  for (const auto& v : variants) {
    for (const auto& [path, bytes] : pristine) {
      write_file(path, v.apply(bytes));
    }
    const auto m = lab.measure_units("grep_sp", "Google", targets);
    const bool recovered = m.fallback && records_match(m.records);
    report.add(std::string("ckpt.recovers_from_") + v.name, recovered,
               "fallback re-execution, records still exact");
    report.fingerprint = fnv1a(report.fingerprint, recovered);
    ++report.cases_run;
    for (const auto& [path, bytes] : pristine) write_file(path, bytes);
  }
  const std::uint64_t fallback_delta =
      fallback_ctr.value() - fallback_before;
  report.add("ckpt.fallback_counter_counts",
             fallback_delta == variants.size(),
             "ckpt.fallback +" + std::to_string(fallback_delta) + " over " +
                 std::to_string(variants.size()) + " corruptions");

  // Pristine archives back in place: the fast path works again, no fallback.
  const auto m1 = lab.measure_units("grep_sp", "Google", targets);
  report.add("ckpt.fast_path_recovers",
             m1.used_checkpoints && !m1.fallback && records_match(m1.records));

  fs::remove_all(dir);
  return report;
}

}  // namespace simprof::verify
