#include "obs/report.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <utility>

#include <unistd.h>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace simprof::obs {
namespace {

namespace fs = std::filesystem;

std::string env_or(const char* name, std::string fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : std::move(fallback);
}

std::uint64_t unix_ms_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// Build provenance.

BuildInfo build_info() {
#ifdef SIMPROF_BUILD_GIT_SHA
  const char* compiled_sha = SIMPROF_BUILD_GIT_SHA;
#else
  const char* compiled_sha = "unknown";
#endif
#ifdef SIMPROF_BUILD_TYPE_STR
  const char* compiled_type = SIMPROF_BUILD_TYPE_STR;
#else
  const char* compiled_type = "unspecified";
#endif
  BuildInfo info;
  info.git_sha = env_or("SIMPROF_GIT_SHA", compiled_sha);
  info.build_type = env_or("SIMPROF_BUILD_TYPE", compiled_type);
  if (info.git_sha.empty()) info.git_sha = "unknown";
  if (info.build_type.empty()) info.build_type = "unspecified";
  return info;
}

// ---------------------------------------------------------------------------
// Run ledger.

struct RunLedger::State {
  mutable std::mutex mu;
  bool begun = false;
  bool enabled = true;
  bool written = false;
  std::string tool;
  std::string verb;
  std::vector<std::string> args;
  std::string output_path;
  std::uint64_t started_unix_ms = 0;
  std::chrono::steady_clock::time_point started;
  int exit_code = 0;
  // std::map keeps sections sorted by key — deterministic manifests.
  std::map<std::string, std::string> config;
  std::map<std::string, double> quality;
  std::map<std::string, std::uint64_t> schemas;
};

void RunLedger::begin(std::string_view tool, std::string_view verb,
                      std::vector<std::string> args) {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.mu);
  s.begun = true;
  s.written = false;
  s.tool = std::string(tool);
  s.verb = std::string(verb);
  s.args = std::move(args);
  s.started_unix_ms = unix_ms_now();
  s.started = std::chrono::steady_clock::now();
}

void RunLedger::set_output_path(std::string path) {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.mu);
  s.output_path = std::move(path);
}

void RunLedger::disable() {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.mu);
  s.enabled = false;
}

bool RunLedger::enabled() const {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.mu);
  return s.enabled && s.begun;
}

void RunLedger::set_config(std::string_view key, std::string_view value) {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.mu);
  s.config[std::string(key)] = std::string(value);
}

void RunLedger::set_quality(std::string_view key, double value) {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.mu);
  s.quality[std::string(key)] = value;
}

void RunLedger::set_schema(std::string_view key, std::uint64_t version) {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.mu);
  s.schemas[std::string(key)] = version;
}

void RunLedger::set_exit_code(int code) {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.mu);
  s.exit_code = code;
}

namespace {

/// Checkpoint-health keys derived from the counter snapshot: manifest field
/// name → counter name.
constexpr std::pair<const char*, const char*> kCheckpointCounters[] = {
    {"saves", "ckpt.save"},
    {"save_bytes", "ckpt.save_bytes"},
    {"restores", "ckpt.restore"},
    {"restore_bytes", "ckpt.restore_bytes"},
    {"cold_fallbacks", "ckpt.fallback"},
    {"pruned_dirs", "ckpt.pruned"},
    {"fast_forwarded_insts", "lab.fast_forward_skipped_insts"},
};

}  // namespace

std::string RunLedger::to_json() const {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.mu);
  const double duration_ms =
      s.begun ? std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - s.started)
                    .count()
              : 0.0;
  const BuildInfo build = build_info();

  std::string out = "{\n";
  out += "  \"schema\": \"simprof.manifest/" +
         std::to_string(kManifestSchemaVersion) + "\",\n";
  out += "  \"schema_version\": " +
         json_number(static_cast<std::int64_t>(kManifestSchemaVersion)) +
         ",\n";
  out += "  \"tool\": " + json_quote(s.tool) + ",\n";
  out += "  \"verb\": " + json_quote(s.verb) + ",\n";
  out += "  \"args\": [";
  for (std::size_t i = 0; i < s.args.size(); ++i) {
    if (i > 0) out += ", ";
    out += json_quote(s.args[i]);
  }
  out += "],\n";
  out += "  \"build\": {\"git_sha\": " + json_quote(build.git_sha) +
         ", \"build_type\": " + json_quote(build.build_type);
  for (const auto& [key, version] : s.schemas) {
    out += ", " + json_quote(key + "_schema") + ": " + json_number(version);
  }
  out += "},\n";
  out += "  \"started_unix_ms\": " + json_number(s.started_unix_ms) + ",\n";
  out += "  \"duration_ms\": " + json_number(duration_ms) + ",\n";
  out += "  \"exit_code\": " +
         json_number(static_cast<std::int64_t>(s.exit_code)) + ",\n";

  out += "  \"config\": {";
  bool first = true;
  for (const auto& [key, value] : s.config) {
    out += first ? "" : ", ";
    first = false;
    out += json_quote(key) + ": " + json_quote(value);
  }
  out += "},\n";

  out += "  \"quality\": {";
  first = true;
  for (const auto& [key, value] : s.quality) {
    out += first ? "" : ", ";
    first = false;
    out += json_quote(key) + ": " + json_number(value);
  }
  out += "},\n";

  // Checkpoint health, derived from the (merged, deterministic) counters.
  const auto counters = metrics().counters_snapshot();
  auto counter_value = [&](std::string_view name) -> std::uint64_t {
    for (const auto& [n, v] : counters) {
      if (n == name) return v;
    }
    return 0;
  };
  out += "  \"checkpoint\": {";
  first = true;
  for (const auto& [field, counter] : kCheckpointCounters) {
    out += first ? "" : ", ";
    first = false;
    out += json_quote(field) + ": " + json_number(counter_value(counter));
  }
  out += "},\n";

  // The full metrics snapshot, embedded verbatim (it is already a complete
  // JSON object ending in a newline).
  std::string metrics_json = metrics().to_json();
  while (!metrics_json.empty() &&
         (metrics_json.back() == '\n' || metrics_json.back() == ' ')) {
    metrics_json.pop_back();
  }
  out += "  \"metrics\": " + metrics_json + ",\n";

  out += "  \"span_rollup\": [";
  first = true;
  for (const SpanRollupRow& row : span_rollup()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"name\": " + json_quote(row.name);
    out += ", \"timeline\": ";
    out += row.virtual_timeline ? "\"virtual\"" : "\"wall\"";
    out += ", \"count\": " + json_number(row.count);
    out += ", \"total_us\": " + json_number(row.total_us);
    out += ", \"self_us\": " + json_number(row.self_us);
    out += ", \"max_us\": " + json_number(row.max_us);
    out += "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

bool RunLedger::write() {
  {
    State& s = *state_;
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.begun || !s.enabled || s.written) return false;
    if (s.output_path.empty()) s.output_path = default_manifest_path(s.verb);
  }
  const std::string doc = to_json();  // takes the lock itself
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.mu);
  std::error_code ec;
  const fs::path path(s.output_path);
  if (path.has_parent_path()) fs::create_directories(path.parent_path(), ec);
  std::ofstream out(s.output_path, std::ios::trunc);
  if (!out) {
    SIMPROF_LOG(kError) << "ledger: cannot write manifest " << s.output_path;
    return false;
  }
  out << doc;
  out.flush();
  if (!out) {
    SIMPROF_LOG(kError) << "ledger: manifest write failed for "
                        << s.output_path;
    return false;
  }
  s.written = true;
  SIMPROF_LOG(kInfo) << "ledger: wrote run manifest " << s.output_path;
  return true;
}

void RunLedger::reset() {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.mu);
  s.begun = false;
  s.enabled = true;
  s.written = false;
  s.tool.clear();
  s.verb.clear();
  s.args.clear();
  s.output_path.clear();
  s.started_unix_ms = 0;
  s.exit_code = 0;
  s.config.clear();
  s.quality.clear();
  s.schemas.clear();
}

RunLedger& ledger() {
  static RunLedger* instance = [] {
    auto* l = new RunLedger;  // leaky: written from static-dtor contexts
    l->state_ = std::make_unique<RunLedger::State>();
    return l;
  }();
  return *instance;
}

std::string default_manifest_path(std::string_view verb) {
  const std::string dir = env_or("SIMPROF_MANIFEST_DIR", ".simprof_manifests");
  std::string name = "manifest-";
  for (const char c : verb) {
    name.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  name += "-" + std::to_string(unix_ms_now()) + "-" +
          std::to_string(static_cast<long>(::getpid())) + ".json";
  return dir + "/" + name;
}

// ---------------------------------------------------------------------------
// JSON reader.

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->type() == Type::kNumber) ? v->as_number()
                                                      : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->type() == Type::kString)
             ? v->as_string()
             : std::string(fallback);
}

/// Recursive-descent parser; depth-capped so corrupt input cannot blow the
/// stack. Accepts exactly the JSON this repo emits (no comments, no NaN).
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    JsonValue v;
    if (!parse_value(v, 0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.type_ = JsonValue::Type::kString;
        return parse_string(out.str_);
      case 't':
        out.type_ = JsonValue::Type::kBool;
        out.b_ = true;
        return literal("true");
      case 'f':
        out.type_ = JsonValue::Type::kBool;
        out.b_ = false;
        return literal("false");
      case 'n':
        out.type_ = JsonValue::Type::kNull;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.type_ = JsonValue::Type::kObject;
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key)) {
        return false;
      }
      if (!eat(':')) return false;
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.obj_.emplace_back(std::move(key), std::move(v));
      if (eat(',')) continue;
      return eat('}');
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.type_ = JsonValue::Type::kArray;
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.arr_.push_back(std::move(v));
      if (eat(',')) continue;
      return eat(']');
    }
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          // UTF-8 encode (surrogate pairs are not emitted by this repo's
          // writers; lone surrogates encode as-is, which round-trips).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out.type_ = JsonValue::Type::kNumber;
    out.num_ = v;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::optional<JsonValue> parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

std::optional<JsonValue> load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    SIMPROF_LOG(kError) << "report: cannot read " << path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = parse_json(buf.str());
  if (!parsed) {
    SIMPROF_LOG(kError) << "report: invalid JSON in " << path;
  }
  return parsed;
}

// ---------------------------------------------------------------------------
// Diffing.

namespace {

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Direction table for quality figures: true → higher is better.
bool quality_higher_is_better(std::string_view key, bool& known) {
  known = true;
  if (key == "silhouette" || key == "stream_silhouette" ||
      key == "service_qps" || key == "loadgen_qps") {
    return true;
  }
  if (key == "sampling_error_frac" || key == "ci_rel_width" ||
      key == "mav_sampling_error_frac" || key == "two_phase_ci_rel_width" ||
      key == "cov_weighted" || key == "cov" ||
      key == "stream_batch_phase_delta" || key == "service_p50_ms" ||
      key == "service_p99_ms" || key == "loadgen_p50_ms" ||
      key == "loadgen_p99_ms") {
    return false;
  }
  known = false;
  return false;
}

/// Quality keys that are denominators: they count the work a run actually
/// did (units profiled, requests served). A manifest reporting zero for one
/// of these did no work, so every other quality figure in it is vacuous —
/// previously such manifests sailed through the gate because each pairwise
/// comparison skips when both sides are zero/absent.
constexpr const char* kDenominatorQualityKeys[] = {
    "units",
    "units_measured",
    "service_requests",
    "loadgen_completed",
};

bool is_denominator_quality_key(std::string_view key) {
  for (const char* k : kDenominatorQualityKeys) {
    if (key == k) return true;
  }
  return false;
}

void add_finding(std::vector<ReportFinding>& out, ReportFinding::Kind kind,
                 std::string metric, double base, double cur,
                 std::string detail) {
  ReportFinding f;
  f.kind = kind;
  f.metric = std::move(metric);
  f.base = base;
  f.current = cur;
  f.detail = std::move(detail);
  out.push_back(std::move(f));
}

/// Latency-style comparison: higher is worse; flag when relative growth
/// exceeds the threshold AND absolute growth clears the noise floor.
void compare_latency(std::vector<ReportFinding>& out, const std::string& name,
                     double base, double cur, const ReportThresholds& t,
                     double min_delta) {
  if (base <= 0.0 && cur <= 0.0) return;
  const double delta = cur - base;
  const double rel = base > 0.0 ? delta / base : 0.0;
  if (delta > min_delta && rel > t.latency_frac) {
    add_finding(out, ReportFinding::Kind::kRegression, name, base, cur,
                name + " grew " + fmt(rel * 100.0) + "% (" + fmt(base) +
                    " -> " + fmt(cur) + ")");
  } else if (-delta > min_delta && base > 0.0 && -rel > t.latency_frac) {
    add_finding(out, ReportFinding::Kind::kImprovement, name, base, cur,
                name + " improved " + fmt(-rel * 100.0) + "% (" + fmt(base) +
                    " -> " + fmt(cur) + ")");
  }
}

const JsonValue* quantile_histograms(const JsonValue& manifest) {
  const JsonValue* metrics_obj = manifest.find("metrics");
  if (metrics_obj == nullptr) return nullptr;
  return metrics_obj->find("quantile_histograms");
}

std::uint64_t manifest_counter(const JsonValue& manifest,
                               std::string_view name) {
  const JsonValue* metrics_obj = manifest.find("metrics");
  if (metrics_obj == nullptr) return 0;
  const JsonValue* counters = metrics_obj->find("counters");
  if (counters == nullptr) return 0;
  return static_cast<std::uint64_t>(counters->number_or(name, 0.0));
}

}  // namespace

std::size_t RunReport::regressions() const {
  std::size_t n = 0;
  for (const ReportFinding& f : findings) {
    if (f.kind == ReportFinding::Kind::kRegression) ++n;
  }
  return n;
}

std::string RunReport::to_markdown() const {
  std::string out = "# simprof report\n\n";
  out += "Base: `" + base_label + "`\nCurrent: `" + current_label + "`\n\n";
  const std::size_t regs = regressions();
  out += regs == 0 ? "**No regressions.**\n\n"
                   : "**" + std::to_string(regs) + " regression" +
                         (regs == 1 ? "" : "s") + ".**\n\n";
  if (findings.empty()) return out;
  out += "| status | metric | base | current | detail |\n";
  out += "|---|---|---:|---:|---|\n";
  for (const ReportFinding& f : findings) {
    const char* status = f.kind == ReportFinding::Kind::kRegression
                             ? "REGRESSION"
                             : f.kind == ReportFinding::Kind::kImprovement
                                   ? "improvement"
                                   : "info";
    out += "| " + std::string(status) + " | " + f.metric + " | " +
           fmt(f.base) + " | " + fmt(f.current) + " | " + f.detail + " |\n";
  }
  return out;
}

std::string RunReport::to_json() const {
  std::string out = "{\n  \"schema\": \"simprof.report/1\",\n";
  out += "  \"base\": " + json_quote(base_label) + ",\n";
  out += "  \"current\": " + json_quote(current_label) + ",\n";
  out += "  \"regressions\": " +
         json_number(static_cast<std::uint64_t>(regressions())) + ",\n";
  out += "  \"findings\": [";
  bool first = true;
  for (const ReportFinding& f : findings) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    const char* kind = f.kind == ReportFinding::Kind::kRegression
                           ? "regression"
                           : f.kind == ReportFinding::Kind::kImprovement
                                 ? "improvement"
                                 : "info";
    out += "{\"kind\": \"" + std::string(kind) + "\", \"metric\": " +
           json_quote(f.metric) + ", \"base\": " + json_number(f.base) +
           ", \"current\": " + json_number(f.current) +
           ", \"detail\": " + json_quote(f.detail) + "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

RunReport diff_manifests(const JsonValue& base, const JsonValue& current,
                         const ReportThresholds& t, std::string_view base_label,
                         std::string_view current_label) {
  RunReport report;
  report.base_label = std::string(base_label);
  report.current_label = std::string(current_label);
  auto& out = report.findings;

  // Schema / context sanity (informational).
  const std::string bs = base.string_or("schema", "?");
  const std::string cs = current.string_or("schema", "?");
  if (bs != cs) {
    add_finding(out, ReportFinding::Kind::kInfo, "schema", 0, 0,
                "schema mismatch: " + bs + " vs " + cs);
  }
  const std::string bv = base.string_or("verb", "?");
  const std::string cv = current.string_or("verb", "?");
  if (bv != cv) {
    add_finding(out, ReportFinding::Kind::kInfo, "verb", 0, 0,
                "comparing different verbs: " + bv + " vs " + cv);
  }

  // End-to-end latency.
  compare_latency(out, "duration_ms", base.number_or("duration_ms", 0.0),
                  current.number_or("duration_ms", 0.0), t,
                  t.latency_min_delta_ms);

  // Shared quantile histograms: gate p50 and p99 (µs/ms-scale values — use
  // the relative threshold with a scaled noise floor).
  const JsonValue* bq = quantile_histograms(base);
  const JsonValue* cq = quantile_histograms(current);
  if (bq != nullptr && cq != nullptr) {
    for (const auto& [name, bh] : bq->as_object()) {
      const JsonValue* ch = cq->find(name);
      if (ch == nullptr || bh.type() != JsonValue::Type::kObject ||
          ch->type() != JsonValue::Type::kObject) {
        continue;
      }
      for (const char* p : {"p50", "p99"}) {
        const double b = bh.number_or(p, 0.0);
        const double c = ch->number_or(p, 0.0);
        // Noise floor: 1/16 relative bucket resolution means tiny absolute
        // shifts are quantization, not signal.
        const double floor_abs =
            std::max(b, c) / QuantileHistogram::kSubBuckets;
        compare_latency(out, name + "." + p, b, c, t, floor_abs);
      }
    }
  }

  // Quality figures (direction-aware).
  const JsonValue* bqual = base.find("quality");
  const JsonValue* cqual = current.find("quality");

  // Empty-denominator guard: a manifest whose work count (units profiled,
  // requests served) is zero computed its other quality figures over nothing,
  // and every pairwise check below skips zero-vs-zero — so a run that
  // silently did no work would gate as "no regressions". Make it explicit.
  if (cqual != nullptr) {
    for (const auto& [key, cval] : cqual->as_object()) {
      if (!is_denominator_quality_key(key) ||
          cval.type() != JsonValue::Type::kNumber) {
        continue;
      }
      const double c = cval.as_number();
      if (c > 0.0) continue;
      const double b = bqual != nullptr ? bqual->number_or(key, 0.0) : 0.0;
      add_finding(out, ReportFinding::Kind::kRegression, "quality." + key, b, c,
                  "quality." + key + " is " + fmt(c) +
                      ": the run did no work, so its quality figures are "
                      "vacuous");
    }
  }
  if (bqual != nullptr) {
    for (const auto& [key, bval] : bqual->as_object()) {
      if (!is_denominator_quality_key(key) ||
          bval.type() != JsonValue::Type::kNumber) {
        continue;
      }
      if (cqual == nullptr || cqual->find(key) == nullptr) {
        add_finding(out, ReportFinding::Kind::kRegression, "quality." + key,
                    bval.as_number(), 0.0,
                    "quality." + key +
                        " disappeared from the current manifest — cannot "
                        "prove the run did any work");
      }
    }
  }

  if (bqual != nullptr && cqual != nullptr) {
    for (const auto& [key, bval] : bqual->as_object()) {
      const JsonValue* cval = cqual->find(key);
      if (cval == nullptr || bval.type() != JsonValue::Type::kNumber ||
          cval->type() != JsonValue::Type::kNumber) {
        continue;
      }
      const double b = bval.as_number();
      const double c = cval->as_number();
      const std::string metric = "quality." + key;
      if (key == "phase_count") {
        // Phase structure is deterministic — any drift is a regression.
        if (b != c) {
          add_finding(out, ReportFinding::Kind::kRegression, metric, b, c,
                      "phase count drifted: " + fmt(b) + " -> " + fmt(c));
        }
        continue;
      }
      bool known = false;
      const bool higher_better = quality_higher_is_better(key, known);
      if (!known) {
        if (b != c) {
          add_finding(out, ReportFinding::Kind::kInfo, metric, b, c,
                      metric + " changed (no gating direction known)");
        }
        continue;
      }
      const double degraded = higher_better ? b - c : c - b;
      const double scale = std::max(std::abs(b), 1e-12);
      if (degraded / scale > t.quality_frac) {
        add_finding(out, ReportFinding::Kind::kRegression, metric, b, c,
                    metric + " degraded " + fmt(degraded / scale * 100.0) +
                        "% (" + fmt(b) + " -> " + fmt(c) + ")");
      } else if (-degraded / scale > t.quality_frac) {
        add_finding(out, ReportFinding::Kind::kImprovement, metric, b, c,
                    metric + " improved (" + fmt(b) + " -> " + fmt(c) + ")");
      }
    }
  }

  // Checkpoint health: new cold fallbacks are a regression.
  const JsonValue* bckpt = base.find("checkpoint");
  const JsonValue* cckpt = current.find("checkpoint");
  if (bckpt != nullptr && cckpt != nullptr) {
    const double b = bckpt->number_or("cold_fallbacks", 0.0);
    const double c = cckpt->number_or("cold_fallbacks", 0.0);
    if (c > b) {
      add_finding(out, ReportFinding::Kind::kRegression,
                  "checkpoint.cold_fallbacks", b, c,
                  "checkpoint cold fallbacks increased (" + fmt(b) + " -> " +
                      fmt(c) + ")");
    }
  }

  // Instrumentation health: non-finite JSON numbers appearing is a bug.
  const auto bnf =
      static_cast<double>(manifest_counter(base, "obs.json_nonfinite"));
  const auto cnf =
      static_cast<double>(manifest_counter(current, "obs.json_nonfinite"));
  if (cnf > bnf) {
    add_finding(out, ReportFinding::Kind::kRegression, "obs.json_nonfinite",
                bnf, cnf, "non-finite numbers hit the JSON writer");
  }

  // Regressions first, then improvements, then info — stable within kinds.
  std::stable_sort(out.begin(), out.end(),
                   [](const ReportFinding& a, const ReportFinding& b) {
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  return report;
}

std::optional<DirectoryReport> report_directory(
    const std::string& dir, const ReportThresholds& thresholds) {
  struct Entry {
    std::uint64_t started_ms;
    std::string path;
    JsonValue manifest;
  };
  std::vector<Entry> entries;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir, ec)) {
    if (!de.is_regular_file()) continue;
    if (de.path().extension() != ".json") continue;
    auto parsed = load_json_file(de.path().string());
    if (!parsed) continue;
    const std::string schema = parsed->string_or("schema", "");
    if (schema.rfind("simprof.manifest/", 0) != 0) continue;
    Entry e;
    e.started_ms =
        static_cast<std::uint64_t>(parsed->number_or("started_unix_ms", 0.0));
    e.path = de.path().filename().string();
    e.manifest = std::move(*parsed);
    entries.push_back(std::move(e));
  }
  if (ec) {
    SIMPROF_LOG(kError) << "report: cannot list " << dir << ": "
                        << ec.message();
    return std::nullopt;
  }
  if (entries.size() < 2) {
    SIMPROF_LOG(kError) << "report: need at least 2 manifests in " << dir
                        << ", found " << entries.size();
    return std::nullopt;
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.started_ms != b.started_ms) return a.started_ms < b.started_ms;
    return a.path < b.path;
  });

  DirectoryReport out;
  out.manifest_count = entries.size();
  const Entry& prev = entries[entries.size() - 2];
  const Entry& newest = entries.back();
  out.gate = diff_manifests(prev.manifest, newest.manifest, thresholds,
                            prev.path, newest.path);

  std::string md = "## series (" + std::to_string(entries.size()) +
                   " manifests)\n\n";
  md += "| manifest | verb | git sha | duration_ms | exit |\n";
  md += "|---|---|---|---:|---:|\n";
  for (const Entry& e : entries) {
    std::string sha = "?";
    if (const JsonValue* build = e.manifest.find("build")) {
      sha = build->string_or("git_sha", "?");
    }
    md += "| " + e.path + " | " + e.manifest.string_or("verb", "?") + " | " +
          sha + " | " + fmt(e.manifest.number_or("duration_ms", 0.0)) + " | " +
          fmt(e.manifest.number_or("exit_code", 0.0)) + " |\n";
  }
  out.series_md = std::move(md);
  return out;
}

}  // namespace simprof::obs
