#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace simprof::obs {

void json_append_quoted(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  json_append_quoted(out, s);
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  // %.17g round-trips doubles; trim to %g readability where exact.
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string json_number(std::uint64_t v) { return std::to_string(v); }
std::string json_number(std::int64_t v) { return std::to_string(v); }

}  // namespace simprof::obs
