#include "obs/json.h"

#include <atomic>
#include <cmath>
#include <cstdio>

#include "obs/log.h"
#include "obs/metrics.h"

namespace simprof::obs {
namespace {

// Registered at namespace scope (pre-main), never under the registry mutex —
// json_number is called from MetricsRegistry::to_json with that mutex held,
// so a lazy first-use lookup there would self-deadlock. Counter::add itself
// is lock-free.
Counter& g_nonfinite = metrics().counter("obs.json_nonfinite");

}  // namespace

void json_append_quoted(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  json_append_quoted(out, s);
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) {
    // JSON cannot represent NaN/±inf; emit 0 but make the bad
    // instrumentation visible instead of silently absorbing it.
    g_nonfinite.increment();
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      SIMPROF_LOG(kWarn)
          << "json: non-finite number emitted as 0 (further occurrences "
             "counted in obs.json_nonfinite, logged once)";
    }
    return "0";
  }
  char buf[32];
  // %.17g round-trips doubles; trim to %g readability where exact.
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

std::string json_number(std::uint64_t v) { return std::to_string(v); }
std::string json_number(std::int64_t v) { return std::to_string(v); }

}  // namespace simprof::obs
