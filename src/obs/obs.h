// Umbrella header for the observability layer: structured logging
// (SIMPROF_LOG), the metrics registry (metrics()), Chrome-trace spans
// (ObsSpan, trace_virtual_span), the run ledger + regression report
// (ledger(), diff_manifests) and the heartbeat/flight recorder. See the
// individual headers for contracts; the shared one: observability never
// reads RNG state and never feeds back into computation, so enabling any of
// it cannot perturb results.
#pragma once

#include "obs/heartbeat.h"  // IWYU pragma: export
#include "obs/log.h"        // IWYU pragma: export
#include "obs/metrics.h"    // IWYU pragma: export
#include "obs/report.h"     // IWYU pragma: export
#include "obs/trace.h"      // IWYU pragma: export
