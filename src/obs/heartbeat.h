// Heartbeat + flight recorder for long runs.
//
// start_heartbeat() spawns one background thread that (a) logs a periodic
// progress line — units processed, units/s, and an ETA when the pipeline
// published a batch total — and (b) serves on-demand live dumps: SIGUSR1
// (or request_flight_record()) makes the thread write a flight-record JSON
// file containing the currently-open trace spans and the full metrics
// snapshot, so a stuck run can be diagnosed without killing it.
//
// Progress is read from the ordinary metrics registry (`progress.units`
// counter, `progress.batch_done` counter, `progress.batch_total` gauge) —
// the heartbeat only observes; it never feeds back into any computation.
// The signal handler itself only sets an atomic flag (async-signal-safe);
// all I/O happens on the heartbeat thread.
#pragma once

#include <cstdint>
#include <string>

namespace simprof::obs {

struct HeartbeatConfig {
  /// Seconds between progress lines. The thread polls at a finer grain so
  /// flight-record requests are served promptly.
  double period_s = 10.0;
  /// Where flight records are written. Empty → "simprof-flightrec-<pid>.json"
  /// in the working directory.
  std::string flightrec_path;
  /// Install a SIGUSR1 handler that triggers a flight record.
  bool install_sigusr1 = true;
};

/// Start the heartbeat thread (no-op when already running).
void start_heartbeat(const HeartbeatConfig& config = {});

/// Stop and join the heartbeat thread; restores the previous SIGUSR1
/// handler. Safe to call when not running.
void stop_heartbeat();

bool heartbeat_running();

/// Ask the heartbeat thread for a flight record (same path as SIGUSR1, for
/// callers holding no signal). Served within one poll interval.
void request_flight_record();

/// The flight-record document: open spans + metrics snapshot. Usable
/// directly (without the thread) by tests and the CLI.
std::string flight_record_json();

}  // namespace simprof::obs
