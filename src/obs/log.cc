#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace simprof::obs {
namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized (env not read yet)

/// Emission is serialized so concurrent lines never interleave.
std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

std::ostream*& sink_slot() {
  static std::ostream* sink = nullptr;  // nullptr → stderr
  return sink;
}

std::chrono::steady_clock::time_point process_start() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

LogLevel init_level_from_env() {
  if (const char* env = std::getenv("SIMPROF_LOG_LEVEL")) {
    if (const auto parsed = parse_log_level(env)) return *parsed;
  }
  return LogLevel::kInfo;
}

int level_as_int() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(init_level_from_env());
    int expected = -1;
    // First caller wins; a concurrent set_log_level is preserved.
    g_level.compare_exchange_strong(expected, v, std::memory_order_relaxed);
    v = g_level.load(std::memory_order_relaxed);
  }
  return v;
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  return std::nullopt;
}

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel log_level() { return static_cast<LogLevel>(level_as_int()); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= level_as_int();
}

void set_log_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  sink_slot() = sink;
}

std::uint32_t this_thread_tag() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tag =
      next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

std::uint32_t process_rank() {
  static const std::uint32_t rank = [] {
    if (const char* env = std::getenv("SIMPROF_RANK")) {
      return static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
    }
    return 0u;
  }();
  return rank;
}

LogMessage::LogMessage(LogLevel level) : level_(level) {}

LogMessage::~LogMessage() {
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - process_start())
                           .count();
  char header[64];
  std::snprintf(header, sizeof(header), "[+%lld.%03llds %s r%u/t%u] ",
                static_cast<long long>(elapsed / 1000),
                static_cast<long long>(elapsed % 1000),
                std::string(to_string(level_)).c_str(), process_rank(),
                this_thread_tag());
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::ostream& out = sink_slot() != nullptr ? *sink_slot() : std::cerr;
  out << header << stream_.str() << '\n';
  out.flush();
}

}  // namespace simprof::obs
