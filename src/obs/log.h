// Leveled, thread-safe structured logging for the SimProf pipeline.
//
//   SIMPROF_LOG(kInfo) << "lab: cache hit path=" << path;
//
// The macro evaluates its stream expression only when the level is enabled
// (a single relaxed atomic load when disabled — zero formatting cost), so
// log statements are safe on warm paths. Every line is tagged with elapsed
// time since process start, the level, and a rank/thread tag (`r0/t3`):
// ranks distinguish processes in multi-process runs (SIMPROF_RANK), thread
// ids are small sequential ids assigned on first use.
//
// Level control: set_log_level() (the CLI's --log-level flag) or the
// SIMPROF_LOG_LEVEL environment variable (trace|debug|info|warn|error|off),
// read once at first use. Default: info.
//
// Determinism contract: logging never reads RNG state and never feeds back
// into any computation — enabling it cannot perturb results.
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string_view>

namespace simprof::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// "trace" → kTrace, … Case-sensitive; nullopt on unknown names.
std::optional<LogLevel> parse_log_level(std::string_view name);
std::string_view to_string(LogLevel level);

LogLevel log_level();
void set_log_level(LogLevel level);

/// True when a message at `level` would be emitted. One relaxed atomic load.
bool log_enabled(LogLevel level);

/// Redirect log output (default: stderr). Pass nullptr to restore stderr.
/// The sink must outlive all logging; intended for tests.
void set_log_sink(std::ostream* sink);

/// Small sequential id for the calling thread (also tags trace events).
std::uint32_t this_thread_tag();

/// Process rank for the `rN` tag: SIMPROF_RANK env var, default 0.
std::uint32_t process_rank();

/// One in-flight log line; emits on destruction. Use via SIMPROF_LOG.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Lets the macro's ternary discard the ostream& as void.
struct LogVoidify {
  void operator&(std::ostream&) const {}
};

}  // namespace simprof::obs

#define SIMPROF_LOG(level)                                               \
  !::simprof::obs::log_enabled(::simprof::obs::LogLevel::level)          \
      ? (void)0                                                          \
      : ::simprof::obs::LogVoidify() &                                   \
            ::simprof::obs::LogMessage(::simprof::obs::LogLevel::level)  \
                .stream()
