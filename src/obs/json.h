// Minimal JSON emission helpers shared by the metrics exporter, the
// Chrome-trace writer and the run-ledger manifest. Emission only — the one
// obs component that *reads* JSON (`simprof report`, obs/report.h) carries
// its own small recursive-descent reader.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace simprof::obs {

/// Append `s` to `out` as a JSON string literal (quotes included), escaping
/// control characters, quotes and backslashes.
void json_append_quoted(std::string& out, std::string_view s);

/// `s` as a JSON string literal.
std::string json_quote(std::string_view s);

/// A double as a JSON number. NaN/±inf are not representable in JSON and
/// are emitted as 0 — but never silently: each occurrence bumps the
/// `obs.json_nonfinite` counter and the first one logs a kWarn line, so
/// broken instrumentation is visible in every metrics snapshot.
std::string json_number(double v);

std::string json_number(std::uint64_t v);
std::string json_number(std::int64_t v);

}  // namespace simprof::obs
