#include "obs/heartbeat.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace simprof::obs {
namespace {

std::atomic<bool> g_running{false};
std::atomic<bool> g_stop{false};
std::atomic<bool> g_flightrec_requested{false};

struct HeartbeatState {
  std::mutex mu;
  std::thread thread;
  HeartbeatConfig config;
  bool sigusr1_installed = false;
  struct sigaction prev_sigusr1 = {};
};

HeartbeatState& hb_state() {
  static HeartbeatState* s = new HeartbeatState;  // leaky
  return *s;
}

// Async-signal-safe: only sets the flag; the heartbeat thread does the I/O.
void sigusr1_handler(int) {
  g_flightrec_requested.store(true, std::memory_order_relaxed);
}

void write_flight_record(const std::string& path) {
  const std::string doc = flight_record_json();
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SIMPROF_LOG(kError) << "heartbeat: cannot write flight record " << path;
    return;
  }
  out << doc;
  out.flush();
  SIMPROF_LOG(kInfo) << "heartbeat: flight record written to " << path;
}

void heartbeat_main(HeartbeatConfig config) {
  std::string flightrec = config.flightrec_path;
  if (flightrec.empty()) {
    flightrec = "simprof-flightrec-" +
                std::to_string(static_cast<long>(::getpid())) + ".json";
  }
  Counter& units = metrics().counter("progress.units");
  Counter& batch_done = metrics().counter("progress.batch_done");
  Gauge& batch_total = metrics().gauge("progress.batch_total");

  const auto start = std::chrono::steady_clock::now();
  auto last_beat = start;
  std::uint64_t last_units = units.value();

  const auto poll = std::chrono::milliseconds(250);
  const auto period = std::chrono::duration<double>(
      config.period_s > 0.1 ? config.period_s : 0.1);
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(poll);
    if (g_flightrec_requested.exchange(false, std::memory_order_relaxed)) {
      write_flight_record(flightrec);
    }
    const auto now = std::chrono::steady_clock::now();
    if (now - last_beat < period) continue;
    const double dt = std::chrono::duration<double>(now - last_beat).count();
    const double elapsed = std::chrono::duration<double>(now - start).count();
    const std::uint64_t u = units.value();
    const double rate = dt > 0.0 ? static_cast<double>(u - last_units) / dt
                                 : 0.0;
    std::string line = "heartbeat: " + std::to_string(u) + " units, ";
    {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.1f units/s, %.1fs elapsed", rate,
                    elapsed);
      line += buf;
    }
    const double total = batch_total.value();
    const std::uint64_t done = batch_done.value();
    if (total > 0.0 && static_cast<double>(done) < total) {
      const double done_rate =
          elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
      if (done_rate > 0.0) {
        const double eta = (total - static_cast<double>(done)) / done_rate;
        char buf[64];
        std::snprintf(buf, sizeof(buf), ", %.0f/%.0f items, ETA %.0fs",
                      static_cast<double>(done), total, eta);
        line += buf;
      }
    }
    SIMPROF_LOG(kInfo) << line;
    last_beat = now;
    last_units = u;
  }
  // Serve a request that raced with shutdown.
  if (g_flightrec_requested.exchange(false, std::memory_order_relaxed)) {
    write_flight_record(flightrec);
  }
}

}  // namespace

void start_heartbeat(const HeartbeatConfig& config) {
  HeartbeatState& s = hb_state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (g_running.load(std::memory_order_relaxed)) return;
  s.config = config;
  g_stop.store(false, std::memory_order_relaxed);
  g_flightrec_requested.store(false, std::memory_order_relaxed);
  if (config.install_sigusr1) {
    struct sigaction sa = {};
    sa.sa_handler = &sigusr1_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    if (sigaction(SIGUSR1, &sa, &s.prev_sigusr1) == 0) {
      s.sigusr1_installed = true;
    }
  }
  s.thread = std::thread(heartbeat_main, config);
  g_running.store(true, std::memory_order_relaxed);
  SIMPROF_LOG(kDebug) << "heartbeat: started (period "
                      << config.period_s << "s, SIGUSR1 -> flight record)";
}

void stop_heartbeat() {
  HeartbeatState& s = hb_state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!g_running.load(std::memory_order_relaxed)) return;
  g_stop.store(true, std::memory_order_relaxed);
  if (s.thread.joinable()) s.thread.join();
  if (s.sigusr1_installed) {
    sigaction(SIGUSR1, &s.prev_sigusr1, nullptr);
    s.sigusr1_installed = false;
  }
  g_running.store(false, std::memory_order_relaxed);
}

bool heartbeat_running() {
  return g_running.load(std::memory_order_relaxed);
}

void request_flight_record() {
  g_flightrec_requested.store(true, std::memory_order_relaxed);
}

std::string flight_record_json() {
  std::string out = "{\n  \"schema\": \"simprof.flightrec/1\",\n";
  out += "  \"open_spans\": [";
  bool first = true;
  for (const OpenSpanInfo& span : open_spans()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"name\": " + json_quote(span.name);
    out += ", \"tid\": " + json_number(static_cast<std::uint64_t>(span.tid));
    out += ", \"elapsed_us\": " + json_number(span.elapsed_us) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  std::string metrics_json = metrics().to_json();
  while (!metrics_json.empty() && metrics_json.back() == '\n') {
    metrics_json.pop_back();
  }
  out += "  \"metrics\": " + metrics_json + "\n}\n";
  return out;
}

}  // namespace simprof::obs
