#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "obs/json.h"
#include "obs/log.h"

namespace simprof::obs {

std::size_t this_thread_shard() {
  return static_cast<std::size_t>(this_thread_tag()) % kMetricShards;
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

void Gauge::add(double delta) noexcept {
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      cells_((bounds_.size() + 1) * kMetricShards),
      name_(std::move(name)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("histogram needs at least one bound: " +
                                name_);
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("histogram bounds must be increasing: " +
                                  name_);
    }
  }
}

void Histogram::observe(double v) noexcept {
  std::size_t bucket = bounds_.size();  // overflow by default
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  cells_[bucket * kMetricShards + this_thread_shard()].v.fetch_add(
      1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (std::size_t b = 0; b < out.size(); ++b) {
    for (std::size_t s = 0; s < kMetricShards; ++s) {
      out[b] += cells_[b * kMetricShards + s].v.load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : bucket_counts()) total += c;
  return total;
}

QuantileHistogram::QuantileHistogram(std::string name)
    : cells_(kBuckets * kMetricShards),
      min_bits_(std::bit_cast<std::uint64_t>(
          std::numeric_limits<double>::infinity())),
      max_bits_(std::bit_cast<std::uint64_t>(
          -std::numeric_limits<double>::infinity())),
      name_(std::move(name)) {}

std::size_t QuantileHistogram::bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // ≤ 0, -inf and NaN comparisons all land here
  if (v >= std::ldexp(1.0, kMaxExp)) return kBuckets - 1;  // incl. +inf
  int e = 0;
  const double m = std::frexp(v, &e);  // v = m·2^e, m ∈ [0.5, 1) — exact
  const int octave = e - 1;            // 2^octave ≤ v < 2^(octave+1)
  if (octave < kMinExp) return 0;
  // m·2 - 1 ∈ [0, 1) is exact (power-of-two scale + subtraction), so the
  // sub-bucket is pure integer truncation — no libm in the index.
  const int sub = static_cast<int>((m * 2.0 - 1.0) * kSubBuckets);
  return 1 + static_cast<std::size_t>(octave - kMinExp) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

double QuantileHistogram::bucket_upper_bound(std::size_t index) noexcept {
  if (index == 0) return std::ldexp(1.0, kMinExp);
  if (index >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  const std::size_t li = index - 1;
  const int octave = kMinExp + static_cast<int>(li >> kSubBucketBits);
  const int sub = static_cast<int>(li & (kSubBuckets - 1));
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, octave);
}

void QuantileHistogram::observe(double v) noexcept {
  if (std::isnan(v)) {
    nonfinite_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t bucket = bucket_index(v);
  cells_[this_thread_shard() * kBuckets + bucket].fetch_add(
      1, std::memory_order_relaxed);
  // Commutative CAS min/max — order-independent, so deterministic.
  std::uint64_t cur = min_bits_.load(std::memory_order_relaxed);
  while (v < std::bit_cast<double>(cur) &&
         !min_bits_.compare_exchange_weak(
             cur, std::bit_cast<std::uint64_t>(v),
             std::memory_order_relaxed)) {
  }
  cur = max_bits_.load(std::memory_order_relaxed);
  while (v > std::bit_cast<double>(cur) &&
         !max_bits_.compare_exchange_weak(
             cur, std::bit_cast<std::uint64_t>(v),
             std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> QuantileHistogram::bucket_counts() const {
  std::vector<std::uint64_t> out(kBuckets, 0);
  for (std::size_t s = 0; s < kMetricShards; ++s) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      out[b] += cells_[s * kBuckets + b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t QuantileHistogram::count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : bucket_counts()) total += c;
  return total;
}

std::uint64_t QuantileHistogram::nonfinite() const noexcept {
  return nonfinite_.load(std::memory_order_relaxed);
}

double QuantileHistogram::min() const noexcept {
  const double v = std::bit_cast<double>(min_bits_.load(std::memory_order_relaxed));
  return std::isinf(v) ? 0.0 : v;
}

double QuantileHistogram::max() const noexcept {
  const double v = std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  return std::isinf(v) ? 0.0 : v;
}

double QuantileHistogram::quantile(double q) const {
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank on the merged counts: the smallest bucket whose cumulative
  // count reaches ceil(q·N).
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cum = 0;
  std::size_t bucket = kBuckets - 1;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cum += counts[b];
    if (cum >= rank) {
      bucket = b;
      break;
    }
  }
  // Report the bucket's upper bound clamped into the exact observed range:
  // p100 is the true max, a single sample reports itself exactly.
  double v = bucket_upper_bound(bucket);
  v = std::min(v, max());
  v = std::max(v, min());
  return v;
}

void QuantileHistogram::reset() noexcept {
  for (auto& c : cells_) c.store(0, std::memory_order_relaxed);
  nonfinite_.store(0, std::memory_order_relaxed);
  min_bits_.store(
      std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity()),
      std::memory_order_relaxed);
  max_bits_.store(
      std::bit_cast<std::uint64_t>(-std::numeric_limits<double>::infinity()),
      std::memory_order_relaxed);
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  std::map<std::string, std::unique_ptr<QuantileHistogram>, std::less<>>
      quantiles;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl;  // leaky: usable from any static dtor
  return *impl;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.counters.find(name);
  if (it == im.counters.end()) {
    it = im.counters
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end()) {
    it = im.gauges
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end()) {
    it = im.histograms
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::string(name), std::move(bounds))))
             .first;
  }
  return *it->second;
}

QuantileHistogram& MetricsRegistry::quantile_histogram(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.quantiles.find(name);
  if (it == im.quantiles.end()) {
    it = im.quantiles
             .emplace(std::string(name),
                      std::unique_ptr<QuantileHistogram>(
                          new QuantileHistogram(std::string(name))))
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counters_snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(im.counters.size());
  for (const auto& [name, c] : im.counters) out.emplace_back(name, c->value());
  return out;
}

std::string MetricsRegistry::to_json() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : im.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_quoted(out, name);
    out += ": " + json_number(c->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : im.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_quoted(out, name);
    out += ": " + json_number(g->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : im.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_quoted(out, name);
    out += ": {\"bounds\": [";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += json_number(bounds[i]);
    }
    out += "], \"counts\": [";
    const auto counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += json_number(counts[i]);
    }
    out += "], \"count\": " + json_number(h->count()) + "}";
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"quantile_histograms\": {";
  first = true;
  for (const auto& [name, q] : im.quantiles) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_quoted(out, name);
    out += ": {\"count\": " + json_number(q->count());
    out += ", \"nonfinite\": " + json_number(q->nonfinite());
    out += ", \"min\": " + json_number(q->min());
    out += ", \"max\": " + json_number(q->max());
    out += ", \"p50\": " + json_number(q->quantile(0.50));
    out += ", \"p90\": " + json_number(q->quantile(0.90));
    out += ", \"p99\": " + json_number(q->quantile(0.99));
    out += ", \"p999\": " + json_number(q->quantile(0.999));
    // Sparse (index, count) pairs: ~1k buckets, almost all empty.
    out += ", \"buckets\": [";
    const auto counts = q->bucket_counts();
    bool first_bucket = true;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "[" + json_number(static_cast<std::uint64_t>(i)) + ", " +
             json_number(counts[i]) + "]";
    }
    out += "]}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SIMPROF_LOG(kError) << "metrics: cannot write " << path;
    return;
  }
  out << to_json();
  SIMPROF_LOG(kDebug) << "metrics: wrote snapshot to " << path;
}

void MetricsRegistry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
  for (auto& [name, q] : im.quantiles) q->reset();
}

void Histogram::reset() noexcept {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace simprof::obs
