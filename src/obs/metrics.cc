#include "obs/metrics.h"

#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "obs/json.h"
#include "obs/log.h"

namespace simprof::obs {

std::size_t this_thread_shard() {
  return static_cast<std::size_t>(this_thread_tag()) % kMetricShards;
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

void Gauge::add(double delta) noexcept {
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + delta,
                                   std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      cells_((bounds_.size() + 1) * kMetricShards),
      name_(std::move(name)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("histogram needs at least one bound: " +
                                name_);
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("histogram bounds must be increasing: " +
                                  name_);
    }
  }
}

void Histogram::observe(double v) noexcept {
  std::size_t bucket = bounds_.size();  // overflow by default
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  cells_[bucket * kMetricShards + this_thread_shard()].v.fetch_add(
      1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (std::size_t b = 0; b < out.size(); ++b) {
    for (std::size_t s = 0; s < kMetricShards; ++s) {
      out[b] += cells_[b * kMetricShards + s].v.load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : bucket_counts()) total += c;
  return total;
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl;  // leaky: usable from any static dtor
  return *impl;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.counters.find(name);
  if (it == im.counters.end()) {
    it = im.counters
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end()) {
    it = im.gauges
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end()) {
    it = im.histograms
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::string(name), std::move(bounds))))
             .first;
  }
  return *it->second;
}

std::string MetricsRegistry::to_json() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : im.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_quoted(out, name);
    out += ": " + json_number(c->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : im.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_quoted(out, name);
    out += ": " + json_number(g->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : im.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_quoted(out, name);
    out += ": {\"bounds\": [";
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += json_number(bounds[i]);
    }
    out += "], \"counts\": [";
    const auto counts = h->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += json_number(counts[i]);
    }
    out += "], \"count\": " + json_number(h->count()) + "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SIMPROF_LOG(kError) << "metrics: cannot write " << path;
    return;
  }
  out << to_json();
  SIMPROF_LOG(kDebug) << "metrics: wrote snapshot to " << path;
}

void MetricsRegistry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
}

void Histogram::reset() noexcept {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace simprof::obs
