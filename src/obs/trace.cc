#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace simprof::obs {
namespace {

constexpr std::uint32_t kWallPid = 1;
constexpr std::uint32_t kVirtualPid = 2;

/// Hard cap on buffered events; overflow is counted, not collected.
constexpr std::size_t kMaxEvents = 4u << 20;

struct Event {
  char phase;  // 'X' complete, 'i' instant
  std::uint32_t pid;
  std::uint32_t tid;
  double ts_us;
  double dur_us;  // 'X' only
  std::string name;
  std::string args_json;  // pre-rendered "{…}" or empty
};

struct TraceState {
  std::mutex mu;
  std::vector<Event> events;
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen_lanes;  // (pid, tid)
  std::chrono::steady_clock::time_point origin;
  std::uint64_t dropped = 0;
};

std::atomic<bool> g_enabled{false};

TraceState& state() {
  static TraceState* s = new TraceState;  // leaky: usable from static dtors
  return *s;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - state().origin)
          .count());
}

std::string render_args(std::initializer_list<TraceArg> args) {
  if (args.size() == 0) return {};
  std::string out = "{";
  bool first = true;
  for (const TraceArg& a : args) {
    if (!first) out += ", ";
    first = false;
    json_append_quoted(out, a.key);
    out += ": ";
    switch (a.kind) {
      case TraceArg::Kind::kInt: out += json_number(a.i); break;
      case TraceArg::Kind::kUint: out += json_number(a.u); break;
      case TraceArg::Kind::kDouble: out += json_number(a.d); break;
      case TraceArg::Kind::kBool: out += a.b ? "true" : "false"; break;
      case TraceArg::Kind::kString: json_append_quoted(out, a.s); break;
    }
  }
  out += "}";
  return out;
}

void push_event(Event ev) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.events.size() >= kMaxEvents) {
    ++s.dropped;
    return;
  }
  s.seen_lanes.emplace(ev.pid, ev.tid);
  s.events.push_back(std::move(ev));
}

void append_event_json(std::string& out, const Event& ev) {
  char buf[64];
  out += "{\"name\": ";
  json_append_quoted(out, ev.name);
  std::snprintf(buf, sizeof(buf), ", \"ph\": \"%c\", \"pid\": %u, \"tid\": %u",
                ev.phase, ev.pid, ev.tid);
  out += buf;
  out += ", \"ts\": " + json_number(ev.ts_us);
  if (ev.phase == 'X') {
    out += ", \"dur\": " + json_number(ev.dur_us);
  } else if (ev.phase == 'i') {
    out += ", \"s\": \"t\"";
  }
  if (!ev.args_json.empty()) out += ", \"args\": " + ev.args_json;
  out += "}";
}

void append_metadata_json(std::string& out, std::uint32_t pid,
                          std::uint32_t tid, const char* what,
                          const std::string& name) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"name\": \"%s\", \"ph\": \"M\", \"pid\": %u, \"tid\": %u, "
                "\"args\": {\"name\": ",
                what, pid, tid);
  out += buf;
  json_append_quoted(out, name);
  out += "}}";
}

std::string lane_name(std::uint32_t pid, std::uint32_t tid) {
  if (pid == kWallPid) return "thread " + std::to_string(tid);
  if (tid == kVirtualStageLane) return "stages";
  return "core " + std::to_string(tid);
}

/// Registry of currently-open wall-clock spans, keyed by the ObsSpan's
/// address (spans are neither copyable nor movable, so the address is
/// stable for the span's lifetime). Feeds the flight recorder's live dump.
struct OpenRec {
  const char* name;
  std::uint32_t tid;
  std::uint64_t start_ns;
  std::uint64_t seq;  // registration order (oldest first)
};

struct OpenSpanState {
  std::mutex mu;
  std::uint64_t next_seq = 0;
  std::map<const void*, OpenRec> spans;
};

OpenSpanState& open_state() {
  static OpenSpanState* s = new OpenSpanState;  // leaky, like state()
  return *s;
}

void register_open_span(const void* key, const char* name,
                        std::uint64_t start_ns) {
  OpenSpanState& s = open_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.spans.emplace(key,
                  OpenRec{name, this_thread_tag(), start_ns, s.next_seq++});
}

void unregister_open_span(const void* key) {
  OpenSpanState& s = open_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.spans.erase(key);
}

}  // namespace

bool trace_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void start_tracing() {
  TraceState& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.origin = std::chrono::steady_clock::now();
  }
  g_enabled.store(true, std::memory_order_relaxed);
}

void stop_tracing() { g_enabled.store(false, std::memory_order_relaxed); }

void clear_trace() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.events.clear();
  s.seen_lanes.clear();
  s.dropped = 0;
}

std::string trace_to_json() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::string out = "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](auto&& appender) {
    out += first ? "  " : ",\n  ";
    first = false;
    appender();
  };
  for (std::uint32_t pid : {kWallPid, kVirtualPid}) {
    const std::string pname =
        pid == kWallPid ? "wall-clock" : "virtual-clock";
    bool has_lane = false;
    for (const auto& [lp, lt] : s.seen_lanes) {
      if (lp != pid) continue;
      if (!has_lane) {
        emit([&] { append_metadata_json(out, pid, 0, "process_name", pname); });
        has_lane = true;
      }
      emit([&] {
        append_metadata_json(out, pid, lt, "thread_name", lane_name(pid, lt));
      });
    }
  }
  for (const Event& ev : s.events) {
    emit([&] { append_event_json(out, ev); });
  }
  out += "\n]}\n";
  if (s.dropped > 0) {
    SIMPROF_LOG(kWarn) << "trace: " << s.dropped
                       << " events dropped (buffer cap " << kMaxEvents << ")";
  }
  return out;
}

std::vector<SpanRollupRow> span_rollup() {
  // Snapshot the complete events, dropping scheduling internals ("pool.*"):
  // pool.parallel_for only exists on the parallel path (the serial inline
  // path never emits it), so its count varies with --threads and would
  // break the rollup's cross-thread-count (name, count) identity.
  struct Ev {
    std::uint32_t pid, tid;
    double ts, dur;
    const std::string* name;
  };
  TraceState& s = state();
  std::vector<Ev> evs;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    evs.reserve(s.events.size());
    for (const Event& ev : s.events) {
      if (ev.phase != 'X') continue;
      if (std::string_view(ev.name).substr(0, 5) == "pool.") continue;
      evs.push_back(Ev{ev.pid, ev.tid, ev.ts_us, ev.dur_us, &ev.name});
    }
    // NOTE: `name` points into s.events; we finish all reads below before
    // releasing anything, and events are only cleared by clear_trace() which
    // takes the same mutex — but we must not hold pointers past this scope.
    // So do the whole aggregation under the lock.
    std::map<std::pair<bool, std::string>, SpanRollupRow> rows;
    // Per-lane stack pass: sort a lane's events by (ts asc, dur desc, name)
    // so parents precede their children, then track nesting with a stack to
    // apportion self time.
    std::stable_sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
      if (a.pid != b.pid) return a.pid < b.pid;
      if (a.tid != b.tid) return a.tid < b.tid;
      if (a.ts != b.ts) return a.ts < b.ts;
      if (a.dur != b.dur) return a.dur > b.dur;
      return *a.name < *b.name;
    });
    struct Frame {
      double end;
      double child_us = 0.0;
      const std::string* name;
      bool virt;
    };
    std::vector<Frame> stack;
    auto flush_top = [&](const Frame& f, double dur) {
      rows[{f.virt, *f.name}].self_us += dur - f.child_us;
    };
    std::uint32_t cur_pid = 0, cur_tid = 0;
    bool have_lane = false;
    std::vector<double> durs;  // parallel to stack: each frame's duration
    auto pop_frame = [&] {
      flush_top(stack.back(), durs.back());
      stack.pop_back();
      durs.pop_back();
    };
    for (const Ev& ev : evs) {
      if (!have_lane || ev.pid != cur_pid || ev.tid != cur_tid) {
        while (!stack.empty()) pop_frame();
        cur_pid = ev.pid;
        cur_tid = ev.tid;
        have_lane = true;
      }
      while (!stack.empty() && stack.back().end <= ev.ts) pop_frame();
      if (!stack.empty()) stack.back().child_us += ev.dur;
      const bool virt = ev.pid == kVirtualPid;
      SpanRollupRow& row = rows[{virt, *ev.name}];
      if (row.count == 0) {
        row.name = *ev.name;
        row.virtual_timeline = virt;
      }
      ++row.count;
      row.total_us += ev.dur;
      row.max_us = std::max(row.max_us, ev.dur);
      stack.push_back(Frame{ev.ts + ev.dur, 0.0, ev.name, virt});
      durs.push_back(ev.dur);
    }
    while (!stack.empty()) pop_frame();
    std::vector<SpanRollupRow> out;
    out.reserve(rows.size());
    for (auto& [key, row] : rows) out.push_back(std::move(row));
    return out;
  }
}

std::vector<OpenSpanInfo> open_spans() {
  OpenSpanState& s = open_state();
  const std::uint64_t now = now_ns();
  std::vector<std::pair<std::uint64_t, OpenSpanInfo>> tmp;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    tmp.reserve(s.spans.size());
    for (const auto& [key, rec] : s.spans) {
      tmp.emplace_back(
          rec.seq,
          OpenSpanInfo{rec.name, rec.tid,
                       static_cast<double>(now - rec.start_ns) / 1000.0});
    }
  }
  std::sort(tmp.begin(), tmp.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<OpenSpanInfo> out;
  out.reserve(tmp.size());
  for (auto& [seq, info] : tmp) out.push_back(std::move(info));
  return out;
}

bool write_trace(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SIMPROF_LOG(kError) << "trace: cannot write " << path;
    return false;
  }
  out << trace_to_json();
  out.flush();
  if (!out) {
    SIMPROF_LOG(kError) << "trace: write failed for " << path;
    return false;
  }
  SIMPROF_LOG(kDebug) << "trace: wrote events to " << path;
  return true;
}

ObsSpan::ObsSpan(const char* name, std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  armed_ = true;
  name_ = name;
  args_json_ = render_args(args);
  start_ns_ = now_ns();
  register_open_span(this, name_, start_ns_);
}

ObsSpan::~ObsSpan() {
  if (!armed_) return;
  unregister_open_span(this);
  const std::uint64_t end_ns = now_ns();
  Event ev;
  ev.phase = 'X';
  ev.pid = kWallPid;
  ev.tid = this_thread_tag();
  ev.ts_us = static_cast<double>(start_ns_) / 1000.0;
  ev.dur_us = static_cast<double>(end_ns - start_ns_) / 1000.0;
  ev.name = name_;
  ev.args_json = std::move(args_json_);
  push_event(std::move(ev));
}

void trace_instant(const char* name, std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  Event ev;
  ev.phase = 'i';
  ev.pid = kWallPid;
  ev.tid = this_thread_tag();
  ev.ts_us = static_cast<double>(now_ns()) / 1000.0;
  ev.dur_us = 0.0;
  ev.name = name;
  ev.args_json = render_args(args);
  push_event(std::move(ev));
}

void trace_virtual_span(std::string_view name, std::uint64_t start_cycles,
                        std::uint64_t end_cycles, std::uint32_t vtid,
                        std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  const double cycles_per_us = kVirtualClockGhz * 1000.0;
  Event ev;
  ev.phase = 'X';
  ev.pid = kVirtualPid;
  ev.tid = vtid;
  ev.ts_us = static_cast<double>(start_cycles) / cycles_per_us;
  ev.dur_us =
      static_cast<double>(end_cycles - start_cycles) / cycles_per_us;
  ev.name = std::string(name);
  ev.args_json = render_args(args);
  push_event(std::move(ev));
}

void trace_virtual_instant(std::string_view name, std::uint64_t cycles,
                           std::uint32_t vtid,
                           std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  const double cycles_per_us = kVirtualClockGhz * 1000.0;
  Event ev;
  ev.phase = 'i';
  ev.pid = kVirtualPid;
  ev.tid = vtid;
  ev.ts_us = static_cast<double>(cycles) / cycles_per_us;
  ev.dur_us = 0.0;
  ev.name = std::string(name);
  ev.args_json = render_args(args);
  push_event(std::move(ev));
}

}  // namespace simprof::obs
