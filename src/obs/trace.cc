#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace simprof::obs {
namespace {

constexpr std::uint32_t kWallPid = 1;
constexpr std::uint32_t kVirtualPid = 2;

/// Hard cap on buffered events; overflow is counted, not collected.
constexpr std::size_t kMaxEvents = 4u << 20;

struct Event {
  char phase;  // 'X' complete, 'i' instant
  std::uint32_t pid;
  std::uint32_t tid;
  double ts_us;
  double dur_us;  // 'X' only
  std::string name;
  std::string args_json;  // pre-rendered "{…}" or empty
};

struct TraceState {
  std::mutex mu;
  std::vector<Event> events;
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen_lanes;  // (pid, tid)
  std::chrono::steady_clock::time_point origin;
  std::uint64_t dropped = 0;
};

std::atomic<bool> g_enabled{false};

TraceState& state() {
  static TraceState* s = new TraceState;  // leaky: usable from static dtors
  return *s;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - state().origin)
          .count());
}

std::string render_args(std::initializer_list<TraceArg> args) {
  if (args.size() == 0) return {};
  std::string out = "{";
  bool first = true;
  for (const TraceArg& a : args) {
    if (!first) out += ", ";
    first = false;
    json_append_quoted(out, a.key);
    out += ": ";
    switch (a.kind) {
      case TraceArg::Kind::kInt: out += json_number(a.i); break;
      case TraceArg::Kind::kUint: out += json_number(a.u); break;
      case TraceArg::Kind::kDouble: out += json_number(a.d); break;
      case TraceArg::Kind::kBool: out += a.b ? "true" : "false"; break;
      case TraceArg::Kind::kString: json_append_quoted(out, a.s); break;
    }
  }
  out += "}";
  return out;
}

void push_event(Event ev) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.events.size() >= kMaxEvents) {
    ++s.dropped;
    return;
  }
  s.seen_lanes.emplace(ev.pid, ev.tid);
  s.events.push_back(std::move(ev));
}

void append_event_json(std::string& out, const Event& ev) {
  char buf[64];
  out += "{\"name\": ";
  json_append_quoted(out, ev.name);
  std::snprintf(buf, sizeof(buf), ", \"ph\": \"%c\", \"pid\": %u, \"tid\": %u",
                ev.phase, ev.pid, ev.tid);
  out += buf;
  out += ", \"ts\": " + json_number(ev.ts_us);
  if (ev.phase == 'X') {
    out += ", \"dur\": " + json_number(ev.dur_us);
  } else if (ev.phase == 'i') {
    out += ", \"s\": \"t\"";
  }
  if (!ev.args_json.empty()) out += ", \"args\": " + ev.args_json;
  out += "}";
}

void append_metadata_json(std::string& out, std::uint32_t pid,
                          std::uint32_t tid, const char* what,
                          const std::string& name) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"name\": \"%s\", \"ph\": \"M\", \"pid\": %u, \"tid\": %u, "
                "\"args\": {\"name\": ",
                what, pid, tid);
  out += buf;
  json_append_quoted(out, name);
  out += "}}";
}

std::string lane_name(std::uint32_t pid, std::uint32_t tid) {
  if (pid == kWallPid) return "thread " + std::to_string(tid);
  if (tid == kVirtualStageLane) return "stages";
  return "core " + std::to_string(tid);
}

}  // namespace

bool trace_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void start_tracing() {
  TraceState& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.origin = std::chrono::steady_clock::now();
  }
  g_enabled.store(true, std::memory_order_relaxed);
}

void stop_tracing() { g_enabled.store(false, std::memory_order_relaxed); }

void clear_trace() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.events.clear();
  s.seen_lanes.clear();
  s.dropped = 0;
}

std::string trace_to_json() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::string out = "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](auto&& appender) {
    out += first ? "  " : ",\n  ";
    first = false;
    appender();
  };
  for (std::uint32_t pid : {kWallPid, kVirtualPid}) {
    const std::string pname =
        pid == kWallPid ? "wall-clock" : "virtual-clock";
    bool has_lane = false;
    for (const auto& [lp, lt] : s.seen_lanes) {
      if (lp != pid) continue;
      if (!has_lane) {
        emit([&] { append_metadata_json(out, pid, 0, "process_name", pname); });
        has_lane = true;
      }
      emit([&] {
        append_metadata_json(out, pid, lt, "thread_name", lane_name(pid, lt));
      });
    }
  }
  for (const Event& ev : s.events) {
    emit([&] { append_event_json(out, ev); });
  }
  out += "\n]}\n";
  if (s.dropped > 0) {
    SIMPROF_LOG(kWarn) << "trace: " << s.dropped
                       << " events dropped (buffer cap " << kMaxEvents << ")";
  }
  return out;
}

bool write_trace(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    SIMPROF_LOG(kError) << "trace: cannot write " << path;
    return false;
  }
  out << trace_to_json();
  out.flush();
  if (!out) {
    SIMPROF_LOG(kError) << "trace: write failed for " << path;
    return false;
  }
  SIMPROF_LOG(kDebug) << "trace: wrote events to " << path;
  return true;
}

ObsSpan::ObsSpan(const char* name, std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  armed_ = true;
  name_ = name;
  args_json_ = render_args(args);
  start_ns_ = now_ns();
}

ObsSpan::~ObsSpan() {
  if (!armed_) return;
  const std::uint64_t end_ns = now_ns();
  Event ev;
  ev.phase = 'X';
  ev.pid = kWallPid;
  ev.tid = this_thread_tag();
  ev.ts_us = static_cast<double>(start_ns_) / 1000.0;
  ev.dur_us = static_cast<double>(end_ns - start_ns_) / 1000.0;
  ev.name = name_;
  ev.args_json = std::move(args_json_);
  push_event(std::move(ev));
}

void trace_instant(const char* name, std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  Event ev;
  ev.phase = 'i';
  ev.pid = kWallPid;
  ev.tid = this_thread_tag();
  ev.ts_us = static_cast<double>(now_ns()) / 1000.0;
  ev.dur_us = 0.0;
  ev.name = name;
  ev.args_json = render_args(args);
  push_event(std::move(ev));
}

void trace_virtual_span(std::string_view name, std::uint64_t start_cycles,
                        std::uint64_t end_cycles, std::uint32_t vtid,
                        std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  const double cycles_per_us = kVirtualClockGhz * 1000.0;
  Event ev;
  ev.phase = 'X';
  ev.pid = kVirtualPid;
  ev.tid = vtid;
  ev.ts_us = static_cast<double>(start_cycles) / cycles_per_us;
  ev.dur_us =
      static_cast<double>(end_cycles - start_cycles) / cycles_per_us;
  ev.name = std::string(name);
  ev.args_json = render_args(args);
  push_event(std::move(ev));
}

void trace_virtual_instant(std::string_view name, std::uint64_t cycles,
                           std::uint32_t vtid,
                           std::initializer_list<TraceArg> args) {
  if (!trace_enabled()) return;
  const double cycles_per_us = kVirtualClockGhz * 1000.0;
  Event ev;
  ev.phase = 'i';
  ev.pid = kVirtualPid;
  ev.tid = vtid;
  ev.ts_us = static_cast<double>(cycles) / cycles_per_us;
  ev.dur_us = 0.0;
  ev.name = std::string(name);
  ev.args_json = render_args(args);
  push_event(std::move(ev));
}

}  // namespace simprof::obs
