// Metrics registry: named counters, gauges and fixed-bucket histograms for
// the profiling pipeline.
//
// Hot-path design: counter increments and histogram observations are
// lock-free — each metric keeps kMetricShards cache-line-aligned atomic
// cells and a thread updates the cell indexed by its thread tag, so threads
// on different shards never contend. All sharded state is integral, so the
// snapshot merge (a relaxed-load sum over shards in shard order) yields the
// same totals for any thread count and any interleaving — the merge is
// deterministic by construction. Gauges are single atomic doubles
// (set/add), intended for single-writer summary values.
//
// Registration (metrics().counter("name")) takes a mutex; hot paths hoist
// the returned handle into a local/static reference.
//
// Determinism contract: metrics never read RNG state and never feed back
// into any computation — collection cannot perturb results.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace simprof::obs {

inline constexpr std::size_t kMetricShards = 16;

/// Shard index for the calling thread (thread tag mod kMetricShards).
std::size_t this_thread_shard();

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    cells_[this_thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }

  /// Sum over shards — exact and order-independent (integer adds commute).
  std::uint64_t value() const noexcept;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void reset() noexcept;

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kMetricShards> cells_;
  std::string name_;
};

/// Last-write-wins double (set) with an atomic add. Meant for single-writer
/// summary values (utilization, sizes); not sharded.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept;
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> v_{0.0};
  std::string name_;
};

/// Fixed-bucket histogram. A value lands in the first bucket whose upper
/// bound satisfies v <= bound; values above the last bound land in the
/// overflow bucket (index bounds.size()). Bucket counts are sharded like
/// counters, so merged totals are exact for any thread count.
class Histogram {
 public:
  void observe(double v) noexcept;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket totals, length bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);
  void reset() noexcept;

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::vector<double> bounds_;          // strictly increasing upper bounds
  std::vector<Cell> cells_;             // (bounds+1) × kMetricShards
  std::string name_;
};

/// Log-bucketed (HDR-style) histogram with deterministic quantile
/// estimation — the latency/size workhorse of the run ledger.
///
/// Bucketing is log-linear over the double's binary exponent: every octave
/// [2^e, 2^(e+1)) splits into kSubBuckets equal sub-buckets, giving a fixed
/// ≤ 1/kSubBuckets relative quantile error over [2^kMinExp, 2^kMaxExp)
/// (≈ 1e-6 .. 1.7e13 — ns..hours of time, bytes..TBs of size). Values
/// below the range (and ≤ 0) land in the underflow bucket, values at or
/// above it in the overflow bucket; NaN observations are dropped and
/// counted (nonfinite()).
///
/// Determinism contract: the bucket index is computed with std::frexp
/// (exact exponent/mantissa split — no libm rounding), bucket counts are
/// sharded integer cells merged by summation, and min/max are commutative
/// CAS updates, so merged counts, min/max, and every quantile are
/// bit-identical for any thread count and any interleaving of the same
/// observation multiset.
class QuantileHistogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // per octave
  static constexpr int kMinExp = -20;  ///< smallest bucketed octave, 2^-20
  static constexpr int kMaxExp = 44;   ///< first overflow value, 2^44
  /// Underflow + log-linear range + overflow.
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  void observe(double v) noexcept;

  /// Bucket index a value lands in (0 = underflow, kBuckets-1 = overflow).
  static std::size_t bucket_index(double v) noexcept;
  /// Exclusive upper bound of a non-overflow bucket (exact power-of-two
  /// arithmetic; the value a quantile in this bucket reports).
  static double bucket_upper_bound(std::size_t index) noexcept;

  /// Merged per-bucket totals, length kBuckets — exact for any interleaving.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  std::uint64_t nonfinite() const noexcept;

  /// Exact smallest / largest finite observation (0 when empty).
  double min() const noexcept;
  double max() const noexcept;

  /// Quantile estimate at q ∈ [0, 1] (nearest-rank over merged buckets,
  /// reported as the bucket's upper bound clamped into [min, max] — a
  /// single-sample histogram therefore reports the sample exactly). 0 when
  /// empty. Bit-identical for any thread count.
  double quantile(double q) const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit QuantileHistogram(std::string name);
  void reset() noexcept;

  /// Shard-major cells (shard × kBuckets): a thread walks only its own
  /// contiguous block, so shards never false-share.
  std::vector<std::atomic<std::uint64_t>> cells_;
  std::atomic<std::uint64_t> nonfinite_{0};
  std::atomic<std::uint64_t> min_bits_;  ///< double bits, CAS-min
  std::atomic<std::uint64_t> max_bits_;  ///< double bits, CAS-max
  std::string name_;
};

class MetricsRegistry {
 public:
  /// Find-or-create. Handles are stable for the process lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` must be strictly increasing; on re-lookup of an existing
  /// histogram the bounds argument is ignored.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  QuantileHistogram& quantile_histogram(std::string_view name);

  /// Merged (name, value) snapshot of every counter, sorted by name — the
  /// run ledger's source for derived sections (checkpoint health etc.).
  std::vector<std::pair<std::string, std::uint64_t>> counters_snapshot() const;

  /// Deterministic JSON snapshot: metrics sorted by name, sharded cells
  /// merged by integer summation.
  std::string to_json() const;
  void write_json(const std::string& path) const;

  /// Zero every registered metric (handles stay valid). Test support.
  void reset();

 private:
  struct Impl;
  Impl& impl() const;
};

/// The process-wide registry (leaky singleton — safe from static dtors).
MetricsRegistry& metrics();

}  // namespace simprof::obs
