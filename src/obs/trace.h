// RAII trace spans emitted as Chrome trace-event JSON (loadable in
// chrome://tracing and Perfetto).
//
//   obs::ObsSpan span("kmeans.lloyd", {{"k", k}});
//
// Two timelines share one trace file, distinguished by pid:
//   * pid 1 "wall-clock"    — host time of pipeline work (spans use
//     steady_clock; tid = the logger's small per-thread tag), and
//   * pid 2 "virtual-clock" — simulated time of the workload under study
//     (stage/task/spill/shuffle events; ts = virtual cycles at the 2 GHz
//     virtual clock; tid = simulated core, plus a stage summary lane).
//
// Zero-cost-when-off: every emitter checks trace_enabled() (one relaxed
// atomic load) before touching the clock or allocating; TraceArg holds PODs
// and only renders to JSON at emission time. Collection is buffered in
// memory under a mutex (event rates are per-job/per-stage, not per-row) and
// written by write_trace(). The buffer is capped; overflow increments the
// `trace.dropped_events` counter instead of growing without bound.
//
// Determinism contract: tracing never reads RNG state and never feeds back
// into any computation — enabling it cannot perturb results (asserted by
// tests/obs_test.cc's bit-identity tests).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace simprof::obs {

/// Virtual-clock frequency used to place virtual-timeline events in
/// microseconds (matches bench_common.h's kClockGhz).
inline constexpr double kVirtualClockGhz = 2.0;

/// The virtual-timeline lane used for per-stage summary spans (per-task
/// spans use the simulated core id as their lane).
inline constexpr std::uint32_t kVirtualStageLane = 99;

/// One "args" entry of a trace event. Keys are expected to be string
/// literals; values are stored as PODs (or one string) and rendered to JSON
/// only when the event is emitted.
struct TraceArg {
  enum class Kind { kInt, kUint, kDouble, kBool, kString };

  const char* key;
  Kind kind;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0.0;
  bool b = false;
  std::string s;

  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  TraceArg(const char* k, T v) : key(k) {
    if constexpr (std::is_signed_v<T>) {
      kind = Kind::kInt;
      i = static_cast<std::int64_t>(v);
    } else {
      kind = Kind::kUint;
      u = static_cast<std::uint64_t>(v);
    }
  }
  TraceArg(const char* k, double v) : key(k), kind(Kind::kDouble), d(v) {}
  TraceArg(const char* k, bool v) : key(k), kind(Kind::kBool), b(v) {}
  TraceArg(const char* k, std::string_view v)
      : key(k), kind(Kind::kString), s(v) {}
  TraceArg(const char* k, const char* v)
      : key(k), kind(Kind::kString), s(v) {}
};

/// True while a trace session is collecting. One relaxed atomic load.
bool trace_enabled();

/// Begin collecting (resets the wall-clock origin; keeps buffered events).
void start_tracing();

/// Stop collecting. Buffered events stay available for serialization.
void stop_tracing();

/// Drop all buffered events (and per-lane metadata).
void clear_trace();

/// Serialize the buffer as a Chrome trace-event JSON object.
std::string trace_to_json();

/// One aggregated row of the span-rollup profile (see span_rollup()).
struct SpanRollupRow {
  std::string name;
  bool virtual_timeline = false;  ///< virtual-clock (µs are cycles/2000)
  std::uint64_t count = 0;
  double total_us = 0.0;  ///< inclusive time
  double self_us = 0.0;   ///< total minus nested same-lane spans
  double max_us = 0.0;    ///< longest single span
};

/// Aggregate the buffered complete ('X') events into a per-name profile:
/// call counts, inclusive time and self time (inclusive minus the time of
/// spans nested inside on the same lane), sorted by (timeline, name).
///
/// Determinism contract: spans instrument logical work items (a stage, a
/// candidate k, a cache load), so the rollup's (name, count) sequence is
/// bit-identical across thread counts; wall-clock times are measurements
/// and vary, virtual-clock times are simulated and deterministic. Spans
/// named "pool.*" (scheduling internals whose count legitimately depends
/// on --threads) are excluded to keep the contract honest.
std::vector<SpanRollupRow> span_rollup();

/// A currently-open wall-clock span (flight-recorder live dump).
struct OpenSpanInfo {
  std::string name;
  std::uint32_t tid = 0;
  double elapsed_us = 0.0;
};

/// Snapshot of the spans open right now, oldest first. Only populated while
/// tracing is enabled (spans arm on construction).
std::vector<OpenSpanInfo> open_spans();

/// Serialize to `path` (logs an error and returns false on I/O failure).
bool write_trace(const std::string& path);

/// Wall-clock RAII span. Constructing with tracing disabled is free apart
/// from building the (POD) argument list.
class ObsSpan {
 public:
  ObsSpan() = default;
  explicit ObsSpan(const char* name) : ObsSpan(name, {}) {}
  ObsSpan(const char* name, std::initializer_list<TraceArg> args);
  ~ObsSpan();
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  bool armed_ = false;
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::string args_json_;  // pre-rendered "{…}" or empty
};

/// Wall-clock instant event.
void trace_instant(const char* name, std::initializer_list<TraceArg> args = {});

/// Complete event on the virtual timeline: [start_cycles, end_cycles] of a
/// simulated core's clock, on lane `vtid` (core id or kVirtualStageLane).
void trace_virtual_span(std::string_view name, std::uint64_t start_cycles,
                        std::uint64_t end_cycles, std::uint32_t vtid,
                        std::initializer_list<TraceArg> args = {});

/// Instant event on the virtual timeline.
void trace_virtual_instant(std::string_view name, std::uint64_t cycles,
                           std::uint32_t vtid,
                           std::initializer_list<TraceArg> args = {});

}  // namespace simprof::obs
