// Run ledger + regression report: the self-observability layer's persistent
// output and the tool that reads it back.
//
// Every simprof command and bench run emits a schema-versioned JSON run
// manifest ("simprof.manifest/1") at process exit: build provenance
// (git sha, build type, cache/checkpoint schema versions), the full config
// and seed, the complete metrics snapshot, a span-rollup profile
// (self/inclusive time and call counts, deterministic across thread
// counts), estimator-quality figures (phase count, silhouette, CI widths,
// sampling error vs oracle) and checkpoint health. `simprof report` diffs
// two manifests — or gates the newest run of a directory time series
// against its predecessor — and exits non-zero when a latency or quality
// threshold is breached, so CI can gate on the repo's own numbers.
//
// Determinism contract: the ledger only *observes* (counters, rollups,
// quality figures already computed by the pipeline); writing a manifest
// never feeds back into any computation. The manifest's deterministic
// sections (span-rollup (name, count), quality figures, metrics counters)
// are bit-identical across thread counts; wall-clock fields are
// measurements and are compared only against thresholds, never for
// identity.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace simprof::obs {

inline constexpr int kManifestSchemaVersion = 1;

// ---------------------------------------------------------------------------
// Build provenance.

struct BuildInfo {
  std::string git_sha;     ///< short sha, "unknown" outside a checkout
  std::string build_type;  ///< CMAKE_BUILD_TYPE, "unspecified" if empty
};

/// Compile-time provenance (CMake-injected), overridable at runtime via
/// $SIMPROF_GIT_SHA / $SIMPROF_BUILD_TYPE (the bench prelude exports both so
/// manifests and BENCH JSONs agree).
BuildInfo build_info();

// ---------------------------------------------------------------------------
// Run ledger: accumulates run facts, writes the manifest at process exit.

class RunLedger {
 public:
  /// Start a run: records tool/verb/args and the start timestamp, enables
  /// manifest emission. Idempotent facts (config/quality) may be set before
  /// or after begin().
  void begin(std::string_view tool, std::string_view verb,
             std::vector<std::string> args);

  /// Where write() puts the manifest. Unset → default_manifest_path(verb).
  void set_output_path(std::string path);

  /// Turn emission off (e.g. --no-manifest); write() becomes a no-op.
  void disable();
  bool enabled() const;

  /// Config facts (seed, scale, workload …) — rendered as JSON strings.
  void set_config(std::string_view key, std::string_view value);
  /// Estimator-quality figures (silhouette, sampling_error_frac …).
  void set_quality(std::string_view key, double value);
  /// Schema versions beyond the built-in cache/checkpoint pair.
  void set_schema(std::string_view key, std::uint64_t version);
  void set_exit_code(int code);

  /// The manifest as a JSON document (always available, even when
  /// disabled — tests use this without touching the filesystem).
  std::string to_json() const;

  /// Write the manifest to the output path (creating parent directories).
  /// No-op unless begin() ran and the ledger is enabled. Returns true when
  /// a file was written.
  bool write();

  /// Test support: forget everything, as if begin() never ran.
  void reset();

 private:
  friend RunLedger& ledger();
  RunLedger() = default;

  struct State;
  std::unique_ptr<State> state_;
};

/// The process-wide ledger (leaky singleton).
RunLedger& ledger();

/// Default manifest location for a verb: $SIMPROF_MANIFEST_DIR (or
/// ".simprof_manifests") / "manifest-<verb>-<unix_ms>-<pid>.json".
std::string default_manifest_path(std::string_view verb);

// ---------------------------------------------------------------------------
// Minimal JSON reader (reading is confined to this component; the emission
// helpers in json.h stay parse-free).

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool as_bool() const { return b_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const std::vector<JsonValue>& as_array() const { return arr_; }
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const {
    return obj_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Convenience: find(key) as a number, or `fallback`.
  double number_or(std::string_view key, double fallback) const;
  /// Convenience: find(key) as a string, or `fallback`.
  std::string string_or(std::string_view key, std::string_view fallback) const;

 private:
  friend std::optional<JsonValue> parse_json(std::string_view text);
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool b_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Parse a complete JSON document (trailing garbage → nullopt).
std::optional<JsonValue> parse_json(std::string_view text);

/// Read + parse a file; logs a kError line and returns nullopt on failure.
std::optional<JsonValue> load_json_file(const std::string& path);

// ---------------------------------------------------------------------------
// Manifest diffing / regression gating.

struct ReportThresholds {
  /// Relative wall-time growth that counts as a regression (0.25 = +25%).
  double latency_frac = 0.25;
  /// Relative degradation of a quality figure that counts as a regression.
  double quality_frac = 0.10;
  /// Absolute wall-time floor (ms): growth below this never flags, so
  /// micro-runs don't trip on scheduler noise.
  double latency_min_delta_ms = 5.0;
};

struct ReportFinding {
  enum class Kind { kRegression, kImprovement, kInfo };
  Kind kind = Kind::kInfo;
  std::string metric;   ///< e.g. "duration_ms", "quality.silhouette"
  double base = 0.0;
  double current = 0.0;
  std::string detail;   ///< human-readable one-liner
};

struct RunReport {
  std::string base_label;
  std::string current_label;
  std::vector<ReportFinding> findings;

  std::size_t regressions() const;
  std::string to_markdown() const;
  std::string to_json() const;
};

/// Diff two parsed manifests (base vs current) against the thresholds.
RunReport diff_manifests(const JsonValue& base, const JsonValue& current,
                         const ReportThresholds& thresholds,
                         std::string_view base_label,
                         std::string_view current_label);

struct DirectoryReport {
  RunReport gate;           ///< newest vs previous manifest
  std::string series_md;    ///< markdown time-series table (all manifests)
  std::size_t manifest_count = 0;
};

/// Load every "*.json" manifest in `dir` (schema-checked), order by
/// started_unix_ms, gate newest vs previous, and render a series table.
/// nullopt when fewer than two manifests parse.
std::optional<DirectoryReport> report_directory(
    const std::string& dir, const ReportThresholds& thresholds);

}  // namespace simprof::obs
