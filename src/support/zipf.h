// Zipf-distributed sampling for the text-corpus synthesizer.
//
// BigDataBench's text generator draws words from a power-law vocabulary; the
// skew exponent controls how "heavy" the hot words are, which in turn drives
// the combiner hit-rate and hash-map sizes in WordCount/Grep/NaiveBayes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace simprof {

/// Samples ranks in [0, n) with P(rank k) ∝ 1/(k+1)^s using an inverted-CDF
/// table built once at construction (O(n) memory, O(log n) per sample).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return s_; }

  /// Draw one rank; rank 0 is the most frequent item.
  std::size_t sample(Rng& rng) const;

  /// Expected probability of a given rank (for tests).
  double probability(std::size_t rank) const;

 private:
  double s_ = 1.0;
  double norm_ = 1.0;
  std::vector<double> cdf_;
};

}  // namespace simprof
