// Contract-checking macros in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6/I.8). Violations throw simprof::ContractViolation so
// tests can assert on them; they are never compiled out because the library
// is a measurement tool where silent corruption is worse than the check cost.
#pragma once

#include <stdexcept>
#include <string>

namespace simprof {

/// Thrown when a precondition, postcondition, or invariant check fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   const std::string& msg);
}  // namespace detail

}  // namespace simprof

/// Precondition check: argument/state validation at function entry.
#define SIMPROF_EXPECTS(cond, msg)                                            \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::simprof::detail::contract_failure("Precondition", #cond, __FILE__,    \
                                          __LINE__, (msg));                   \
    }                                                                         \
  } while (false)

/// Postcondition / invariant check inside or at the end of a function.
#define SIMPROF_ENSURES(cond, msg)                                            \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::simprof::detail::contract_failure("Postcondition", #cond, __FILE__,   \
                                          __LINE__, (msg));                   \
    }                                                                         \
  } while (false)

/// Internal-logic check ("this cannot happen").
#define SIMPROF_ASSERT(cond, msg)                                             \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::simprof::detail::contract_failure("Assertion", #cond, __FILE__,       \
                                          __LINE__, (msg));                   \
    }                                                                         \
  } while (false)
