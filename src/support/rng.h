// Deterministic pseudo-random number generation for the whole framework.
//
// Every stochastic component (data synthesis, Kronecker sampling, k-means
// initialisation, stratified sampling, OS-migration events) takes an explicit
// Rng so that a (config, seed) pair reproduces a run bit-for-bit — a hard
// requirement for a profiling framework whose outputs are compared across
// sampling strategies.
#pragma once

#include <cstdint>
#include <limits>

#include "support/assert.h"

namespace simprof {

/// SplitMix64: used to expand a single 64-bit seed into stream state.
/// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Pure position-indexed hash: the index-th draw of a counter-based random
/// stream, as one SplitMix64 expansion of (seed, index). Unlike drawing from
/// a stateful generator, draw i of a seed is the same no matter how many
/// other draws happened — which is what lets the execution engine skip over
/// a stream's references in O(1) (checkpoint fast-forward) and still leave
/// every later draw bit-identical.
inline std::uint64_t hash_at(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The full serializable state of an Rng (checkpoint snapshot/restore).
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  bool have_spare_gaussian = false;
  double spare_gaussian = 0.0;

  friend bool operator==(const RngState&, const RngState&) = default;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the framework's workhorse generator.
/// Satisfies the UniformRandomBitGenerator concept so it composes with
/// <random> distributions where convenient, but the members below avoid
/// libstdc++ distribution objects for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    SIMPROF_EXPECTS(lo <= hi, "invalid range");
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Standard normal via Box–Muller (deterministic, no <random>).
  double next_gaussian();

  /// Derive an independent child stream (e.g. one per simulated core).
  /// Consumes state, so successive calls yield different streams.
  Rng split();

  /// Deterministic fixed-seed stream derivation: expands (seed, stream_index)
  /// through SplitMix64 into an independent generator. Unlike split(), this
  /// is a pure function — stream i of a seed is the same no matter how many
  /// other streams were forked or in what order, which is what lets
  /// choose_k's parallel k-sweep and k-means restarts reproduce the serial
  /// schedule bit-for-bit on any thread count.
  static Rng stream(std::uint64_t seed, std::uint64_t stream_index);

  /// Snapshot/restore of the complete generator state (checkpointing).
  RngState state() const {
    RngState st;
    for (int i = 0; i < 4; ++i) st.s[i] = state_[i];
    st.have_spare_gaussian = have_spare_gaussian_;
    st.spare_gaussian = spare_gaussian_;
    return st;
  }

  void set_state(const RngState& st) {
    for (int i = 0; i < 4; ++i) state_[i] = st.s[i];
    have_spare_gaussian_ = st.have_spare_gaussian;
    spare_gaussian_ = st.spare_gaussian;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Fisher–Yates shuffle driven by Rng (std::shuffle's algorithm is not
/// specified, so this keeps sample selection reproducible across stdlibs).
template <typename Container>
void shuffle(Container& c, Rng& rng) {
  const auto n = c.size();
  if (n < 2) return;
  for (std::size_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng.next_below(i + 1));
    using std::swap;
    swap(c[i], c[j]);
  }
}

}  // namespace simprof
