#include "support/interner.h"

#include "support/assert.h"

namespace simprof {

StringInterner::Id StringInterner::intern(std::string_view s) {
  if (auto it = ids_.find(std::string(s)); it != ids_.end()) {
    return it->second;
  }
  const Id id = static_cast<Id>(names_.size());
  names_.emplace_back(s);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<StringInterner::Id> StringInterner::find(
    std::string_view s) const {
  if (auto it = ids_.find(std::string(s)); it != ids_.end()) {
    return it->second;
  }
  return std::nullopt;
}

const std::string& StringInterner::name(Id id) const {
  SIMPROF_EXPECTS(id < names_.size(), "unknown interned id");
  return names_[id];
}

}  // namespace simprof
