#include "support/serialize.h"

namespace simprof {

void BinaryWriter::vec_u32(const std::vector<std::uint32_t>& v) {
  u64(v.size());
  for (auto e : v) u32(e);
}

void BinaryWriter::vec_u64(const std::vector<std::uint64_t>& v) {
  u64(v.size());
  for (auto e : v) u64(e);
}

void BinaryWriter::vec_f64(const std::vector<double>& v) {
  u64(v.size());
  for (auto e : v) f64(e);
}

std::vector<std::uint32_t> BinaryReader::vec_u32() {
  const auto n = u64();
  SIMPROF_EXPECTS(n < (1ULL << 32), "corrupt archive");
  std::vector<std::uint32_t> v(n);
  for (auto& e : v) e = u32();
  return v;
}

std::vector<std::uint64_t> BinaryReader::vec_u64() {
  const auto n = u64();
  SIMPROF_EXPECTS(n < (1ULL << 32), "corrupt archive");
  std::vector<std::uint64_t> v(n);
  for (auto& e : v) e = u64();
  return v;
}

std::vector<double> BinaryReader::vec_f64() {
  const auto n = u64();
  SIMPROF_EXPECTS(n < (1ULL << 32), "corrupt archive");
  std::vector<double> v(n);
  for (auto& e : v) e = f64();
  return v;
}

}  // namespace simprof
