#include "support/serialize.h"

namespace simprof {

// Fixed-width vectors move as one block transfer: the byte layout is
// identical to per-element writes (host is little-endian, the per-element
// path wrote raw bits too), but a 131072-entry LLC tag array costs one
// stream call instead of 131072 — checkpoint restore latency is the
// denominator of the measurement speedup (see core/checkpoint.h).
void BinaryWriter::vec_u32(const std::vector<std::uint32_t>& v) {
  u64(v.size());
  if (!v.empty()) raw(v.data(), v.size() * sizeof(std::uint32_t));
}

void BinaryWriter::vec_u64(const std::vector<std::uint64_t>& v) {
  u64(v.size());
  if (!v.empty()) raw(v.data(), v.size() * sizeof(std::uint64_t));
}

void BinaryWriter::vec_f64(const std::vector<double>& v) {
  u64(v.size());
  if (!v.empty()) raw(v.data(), v.size() * sizeof(double));
}

BinaryReader::BinaryReader(std::istream& in) : in_(in) {
  const std::streampos cur = in_.tellg();
  if (cur == std::streampos(-1)) return;
  in_.seekg(0, std::ios::end);
  const std::streampos end = in_.tellg();
  in_.seekg(cur);
  if (end == std::streampos(-1) || !in_) {
    in_.clear();
    in_.seekg(cur);
    return;
  }
  end_ = static_cast<std::uint64_t>(end);
  seekable_ = true;
}

std::uint64_t BinaryReader::remaining() const {
  if (!seekable_) return std::numeric_limits<std::uint64_t>::max();
  const std::streampos cur = in_.tellg();
  if (cur == std::streampos(-1)) return 0;
  const auto pos = static_cast<std::uint64_t>(cur);
  return pos >= end_ ? 0 : end_ - pos;
}

std::size_t BinaryReader::checked_count(std::size_t elem_size,
                                        const char* what) {
  const std::uint64_t n = u64();
  // Two bounds: a sanity cap against absurd prefixes even on non-seekable
  // streams, and the hard remaining-bytes budget on seekable ones. Both
  // fire *before* any allocation sized by n.
  if (n >= (1ULL << 32) ||
      n > remaining() / static_cast<std::uint64_t>(elem_size)) {
    throw SerializeError(std::string("corrupt archive: ") + what +
                         " length prefix exceeds remaining bytes");
  }
  return static_cast<std::size_t>(n);
}

std::vector<std::uint32_t> BinaryReader::vec_u32() {
  const auto n = checked_count(sizeof(std::uint32_t), "u32 vector");
  std::vector<std::uint32_t> v(n);
  if (n != 0) raw(v.data(), n * sizeof(std::uint32_t));
  return v;
}

std::vector<std::uint64_t> BinaryReader::vec_u64() {
  const auto n = checked_count(sizeof(std::uint64_t), "u64 vector");
  std::vector<std::uint64_t> v(n);
  if (n != 0) raw(v.data(), n * sizeof(std::uint64_t));
  return v;
}

std::vector<double> BinaryReader::vec_f64() {
  const auto n = checked_count(sizeof(double), "f64 vector");
  std::vector<double> v(n);
  if (n != 0) raw(v.data(), n * sizeof(double));
  return v;
}

}  // namespace simprof
