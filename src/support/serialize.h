// Minimal binary (de)serialization used by the WorkloadLab profile cache.
//
// Format: little-endian fixed-width integers, doubles as IEEE-754 bits,
// strings/vectors length-prefixed with uint64. A magic+version header at the
// archive level is the caller's responsibility.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "support/assert.h"

namespace simprof {

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }

  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn&& write_one) {
    u64(v.size());
    for (const auto& e : v) write_one(*this, e);
  }

  void vec_u32(const std::vector<std::uint32_t>& v);
  void vec_u64(const std::vector<std::uint64_t>& v);
  void vec_f64(const std::vector<double>& v);

 private:
  void raw(const void* p, std::size_t n) {
    out_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  }
  std::ostream& out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  std::uint8_t u8() { std::uint8_t v; raw(&v, 1); return v; }
  std::uint32_t u32() { std::uint32_t v; raw(&v, sizeof v); return v; }
  std::uint64_t u64() { std::uint64_t v; raw(&v, sizeof v); return v; }
  double f64() { double v; raw(&v, sizeof v); return v; }

  std::string str() {
    const auto n = u64();
    SIMPROF_EXPECTS(n < (1ULL << 32), "corrupt archive: string too long");
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
  }

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& read_one) {
    const auto n = u64();
    SIMPROF_EXPECTS(n < (1ULL << 32), "corrupt archive: vector too long");
    std::vector<T> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(read_one(*this));
    return v;
  }

  std::vector<std::uint32_t> vec_u32();
  std::vector<std::uint64_t> vec_u64();
  std::vector<double> vec_f64();

  bool ok() const { return static_cast<bool>(in_); }

 private:
  void raw(void* p, std::size_t n) {
    in_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    SIMPROF_EXPECTS(static_cast<std::size_t>(in_.gcount()) == n,
                    "corrupt archive: truncated read");
  }
  std::istream& in_;
};

}  // namespace simprof
