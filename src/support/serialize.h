// Minimal binary (de)serialization used by the WorkloadLab profile cache.
//
// Format: little-endian fixed-width integers, doubles as IEEE-754 bits,
// strings/vectors length-prefixed with uint64. A magic+version header at the
// archive level is the caller's responsibility (ThreadProfile writes
// "SPRF" + version; see DESIGN.md §6d for the versioning policy).
//
// Robustness contract: BinaryReader treats its input as untrusted. Every
// length prefix is bounded by the bytes actually remaining in the stream
// before any allocation, so a corrupt or hostile archive can make a read
// fail with SerializeError but can never drive a multi-gigabyte reserve,
// an over-read, or UB. The fault-injection harness in src/verify drives
// this contract with seeded corruption (see `simprof verify`).
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "support/assert.h"

namespace simprof {

/// Thrown on malformed, truncated, or otherwise corrupt archive bytes.
/// Derives ContractViolation so pre-existing catch sites and tests keep
/// working; new code should catch SerializeError to distinguish bad *input*
/// from a programming bug.
class SerializeError : public ContractViolation {
 public:
  explicit SerializeError(const std::string& what) : ContractViolation(what) {}
};

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }

  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  template <typename T, typename Fn>
  void vec(const std::vector<T>& v, Fn&& write_one) {
    u64(v.size());
    for (const auto& e : v) write_one(*this, e);
  }

  void vec_u32(const std::vector<std::uint32_t>& v);
  void vec_u64(const std::vector<std::uint64_t>& v);
  void vec_f64(const std::vector<double>& v);

 private:
  void raw(const void* p, std::size_t n) {
    out_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  }
  std::ostream& out_;
};

class BinaryReader {
 public:
  /// Measures the stream once at construction (tellg/seekg round trip) so
  /// length prefixes can be validated against the bytes that actually exist.
  /// Non-seekable streams fall back to an unbounded budget — the per-element
  /// truncation check in raw() still catches over-reads, just after O(1)
  /// element reads instead of before the reserve.
  explicit BinaryReader(std::istream& in);

  std::uint8_t u8() { std::uint8_t v; raw(&v, 1); return v; }
  std::uint32_t u32() { std::uint32_t v; raw(&v, sizeof v); return v; }
  std::uint64_t u64() { std::uint64_t v; raw(&v, sizeof v); return v; }
  double f64() { double v; raw(&v, sizeof v); return v; }

  std::string str() {
    const auto n = checked_count(1, "string");
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
  }

  template <typename T, typename Fn>
  std::vector<T> vec(Fn&& read_one) {
    // Unknown element encoding: bound by one byte per element, the smallest
    // any field encodes to; read_one's own raw() calls catch the rest.
    const auto n = checked_count(1, "vector");
    std::vector<T> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i) v.push_back(read_one(*this));
    return v;
  }

  std::vector<std::uint32_t> vec_u32();
  std::vector<std::uint64_t> vec_u64();
  std::vector<double> vec_f64();

  bool ok() const { return static_cast<bool>(in_); }

  /// Bytes left before the end of the stream, or uint64 max if the stream
  /// is not seekable.
  std::uint64_t remaining() const;

 private:
  /// Reads a u64 element count and validates count·elem_size against
  /// remaining(); throws SerializeError("corrupt archive: ...") otherwise.
  std::size_t checked_count(std::size_t elem_size, const char* what);

  void raw(void* p, std::size_t n) {
    in_.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(in_.gcount()) != n) {
      throw SerializeError("corrupt archive: truncated read");
    }
  }

  std::istream& in_;
  std::uint64_t end_ = std::numeric_limits<std::uint64_t>::max();
  bool seekable_ = false;
};

}  // namespace simprof
