// A plain std::thread pool with a deterministic parallel_for primitive — the
// execution layer under the phase-formation hot paths (k-means, silhouette,
// choose_k).
//
// Determinism contract: parallel_for splits [begin, end) into chunks of size
// `grain`; the chunk decomposition depends only on (begin, end, grain), never
// on the worker count or on which worker runs which chunk. Callers that
// reduce (sums, argmins) accumulate per-chunk partials indexed by chunk and
// merge them in chunk order, so floating-point results are bit-identical for
// any thread count — including the serial inline path.
#pragma once

#include <cstddef>
#include <functional>

namespace simprof::support {

class ThreadPool {
 public:
  /// `workers` helper threads (the caller of parallel_for is an extra
  /// participant, so total parallelism is workers + 1).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const;

  /// Chunk function: (chunk_index, chunk_begin, chunk_end).
  using ChunkFn = std::function<void(std::size_t, std::size_t, std::size_t)>;

  /// Run `fn` over [begin, end) in chunks of `grain` (the last chunk may be
  /// short). At most `max_parallelism` threads touch the range (0 means
  /// workers() + 1). Blocks until every chunk ran; the first exception thrown
  /// by `fn` is rethrown here. Nested calls (from inside a pool worker) run
  /// inline serially, in chunk order, to avoid deadlock — results are
  /// unchanged because chunking is identical.
  ///
  /// Concurrent top-level callers (e.g. the service daemon's request
  /// workers) queue FIFO-ish behind the in-flight job rather than faulting:
  /// each caller waits until the pool is free, publishes its own job, and
  /// per-job results stay bit-identical because jobs never interleave
  /// chunks. The wait is observable via the `pool.queue_depth` gauge and the
  /// `pool.queue_wait_ms` quantile histogram (one observation per pooled
  /// job — 0.0 when uncontended — so observation counts stay
  /// thread-count-deterministic for a fixed job sequence).
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const ChunkFn& fn, std::size_t max_parallelism = 0);

 private:
  struct Impl;
  Impl* impl_;
};

/// Default thread count for all parallel phase-formation entry points:
/// std::thread::hardware_concurrency() (at least 1) until overridden by
/// set_default_thread_count (the CLI's --threads flag).
std::size_t default_thread_count();
void set_default_thread_count(std::size_t n);

/// Resolve a config-level `threads` knob: 0 means the global default.
std::size_t resolve_threads(std::size_t requested);

/// The process-wide pool used by the stats/core hot paths. Lazily created.
ThreadPool& global_pool();

/// parallel_for on the global pool with a resolved thread cap; threads <= 1
/// or a single chunk runs inline with no synchronisation cost.
void parallel_for(std::size_t threads, std::size_t begin, std::size_t end,
                  std::size_t grain, const ThreadPool::ChunkFn& fn);

}  // namespace simprof::support
