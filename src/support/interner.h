// String interning: maps strings to dense 32-bit ids.
//
// The JVM substrate interns fully-qualified method names; feature vectors and
// phase centers then work with ids instead of strings, exactly as a JVMTI
// agent would key on jmethodID.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace simprof {

class StringInterner {
 public:
  using Id = std::uint32_t;

  /// Intern `s`, returning its id (existing or freshly assigned).
  Id intern(std::string_view s);

  /// Look up an already-interned string; nullopt if never interned.
  std::optional<Id> find(std::string_view s) const;

  /// The string for an id. Precondition: id < size().
  const std::string& name(Id id) const;

  std::size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, Id> ids_;
  std::vector<std::string> names_;
};

}  // namespace simprof
