#include "support/rng.h"

#include <cmath>

namespace simprof {

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SIMPROF_EXPECTS(bound > 0, "next_below requires a positive bound");
  // Lemire, "Fast Random Integer Generation in an Interval" (2018).
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    const __uint128_t m = static_cast<__uint128_t>(r) * bound;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Rng::next_gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box–Muller; u clamped away from 0 so log() stays finite.
  double u = next_double();
  if (u < 1e-300) u = 1e-300;
  const double v = next_double();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * 3.14159265358979323846 * v;
  spare_gaussian_ = r * std::sin(theta);
  have_spare_gaussian_ = true;
  return r * std::cos(theta);
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_index) {
  // Decorrelate the stream index with one SplitMix64 pass before mixing it
  // into the seed; adjacent indices land in unrelated regions of seed space.
  SplitMix64 ix(stream_index + 0x632be59bd9b4e019ULL);
  Rng child(0);
  SplitMix64 sm(seed ^ ix.next());
  for (auto& s : child.state_) s = sm.next();
  return child;
}

Rng Rng::split() {
  Rng child(0);
  // Seed the child from two draws so parent and child streams diverge.
  SplitMix64 sm(next_u64() ^ (next_u64() << 1 | 1));
  child.state_[0] = sm.next();
  child.state_[1] = sm.next();
  child.state_[2] = sm.next();
  child.state_[3] = sm.next();
  return child;
}

}  // namespace simprof
