#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace simprof::support {

namespace {
/// Set while a pool worker executes chunks so nested parallel_for calls
/// degrade to the serial inline path instead of deadlocking on the pool.
thread_local bool tls_inside_pool_worker = false;

std::size_t chunk_count(std::size_t begin, std::size_t end, std::size_t grain) {
  if (end <= begin) return 0;
  return (end - begin + grain - 1) / grain;
}
}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;   // workers wait here for a job
  std::condition_variable done_cv;   // parallel_for waits here for completion

  // Current job, published under `mu`. A new job bumps `generation`; workers
  // with index < helper_limit join, pull chunks from the atomic `next_chunk`
  // race, and count themselves in/out via `active`. `fn` doubles as the
  // "job live" flag: it points at the caller's stack, which parallel_for
  // keeps alive until `active` drains back to zero.
  std::uint64_t generation = 0;
  const ChunkFn* fn = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;
  std::size_t helper_limit = 0;
  std::atomic<std::size_t> next_chunk{0};
  std::size_t active = 0;
  std::exception_ptr error;

  // Top-level callers that arrive while a job is in flight wait here until
  // `fn` drains back to nullptr; `queued` counts them for the depth gauge.
  std::condition_variable queue_cv;
  std::size_t queued = 0;

  bool stopping = false;
  std::vector<std::thread> threads;

  /// Returns the number of chunks this thread won in the race.
  std::size_t run_chunks(const ChunkFn& f) {
    std::size_t won = 0;
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return won;
      const std::size_t b = begin + c * grain;
      const std::size_t e = std::min(b + grain, end);
      try {
        f(c, b, e);
        ++won;
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        // Skip the remaining chunks so the failed job finishes promptly.
        next_chunk.store(chunks, std::memory_order_relaxed);
        return won;
      }
    }
  }

  void worker(std::size_t index) {
    static obs::Counter& helper_chunks =
        obs::metrics().counter("pool.chunks.helper");
    static obs::Counter& idle_ns = obs::metrics().counter("pool.idle_ns");
    std::unique_lock<std::mutex> lock(mu);
    std::uint64_t seen = 0;
    for (;;) {
      const auto idle_start = std::chrono::steady_clock::now();
      work_cv.wait(lock, [&] { return stopping || generation != seen; });
      idle_ns.add(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - idle_start)
              .count()));
      if (stopping) return;
      seen = generation;
      // A worker that wakes after the job already drained (fn reset) or that
      // is beyond this job's thread cap goes back to waiting.
      if (fn == nullptr || index >= helper_limit) continue;
      const ChunkFn* job = fn;
      ++active;
      lock.unlock();
      tls_inside_pool_worker = true;
      helper_chunks.add(run_chunks(*job));
      tls_inside_pool_worker = false;
      lock.lock();
      if (--active == 0) done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t workers) : impl_(new Impl) {
  impl_->threads.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->threads.emplace_back([this, i] { impl_->worker(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
}

std::size_t ThreadPool::workers() const { return impl_->threads.size(); }

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t grain, const ChunkFn& fn,
                              std::size_t max_parallelism) {
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(begin, end, grain);
  if (chunks == 0) return;

  const std::size_t parallelism =
      max_parallelism == 0 ? workers() + 1 : max_parallelism;
  // Serial inline path: single-thread cap, single chunk, nested call, or a
  // poolless pool. Identical chunk order keeps results bit-identical.
  if (parallelism <= 1 || chunks == 1 || workers() == 0 ||
      tls_inside_pool_worker) {
    static obs::Counter& inline_jobs =
        obs::metrics().counter("pool.inline_jobs");
    inline_jobs.increment();
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t b = begin + c * grain;
      fn(c, b, std::min(b + grain, end));
    }
    return;
  }

  static obs::Counter& jobs = obs::metrics().counter("pool.jobs");
  static obs::Counter& total_chunks = obs::metrics().counter("pool.chunks");
  static obs::Counter& caller_chunks =
      obs::metrics().counter("pool.chunks.caller");
  const std::size_t helpers = std::min(workers(), parallelism - 1);
  jobs.increment();
  total_chunks.add(chunks);
  obs::ObsSpan span("pool.parallel_for",
                    {{"chunks", chunks}, {"grain", grain}, {"helpers", helpers}});

  static obs::Gauge& queue_depth = obs::metrics().gauge("pool.queue_depth");
  static obs::QuantileHistogram& queue_wait_ms =
      obs::metrics().quantile_histogram("pool.queue_wait_ms");

  Impl& im = *impl_;
  std::unique_lock<std::mutex> lock(im.mu);
  // Concurrent top-level callers queue behind the in-flight job. One
  // observation per pooled job (0.0 when the pool was free) keeps the
  // histogram's count equal to pool.jobs regardless of contention.
  double waited_ms = 0.0;
  if (im.fn != nullptr) {
    ++im.queued;
    queue_depth.set(static_cast<double>(im.queued));
    const auto wait_start = std::chrono::steady_clock::now();
    im.queue_cv.wait(lock, [&] { return im.fn == nullptr; });
    waited_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wait_start)
                    .count();
    --im.queued;
    queue_depth.set(static_cast<double>(im.queued));
  }
  queue_wait_ms.observe(waited_ms);
  im.fn = &fn;
  im.begin = begin;
  im.end = end;
  im.grain = grain;
  im.chunks = chunks;
  im.helper_limit = helpers;
  im.next_chunk.store(0, std::memory_order_relaxed);
  im.error = nullptr;
  ++im.generation;
  lock.unlock();
  im.work_cv.notify_all();

  // The calling thread races for chunks alongside the helpers. It counts as
  // inside the pool while doing so, so nested parallel_for calls from its
  // chunks take the inline path instead of publishing a second job.
  tls_inside_pool_worker = true;
  caller_chunks.add(im.run_chunks(fn));
  tls_inside_pool_worker = false;

  lock.lock();
  im.done_cv.wait(lock, [&] { return im.active == 0; });
  im.fn = nullptr;
  std::exception_ptr error = im.error;
  im.error = nullptr;
  lock.unlock();
  im.queue_cv.notify_all();
  if (error) std::rethrow_exception(error);
}

namespace {
std::atomic<std::size_t> g_default_threads{0};
}  // namespace

std::size_t default_thread_count() {
  const std::size_t set = g_default_threads.load(std::memory_order_relaxed);
  if (set > 0) return set;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void set_default_thread_count(std::size_t n) {
  g_default_threads.store(n, std::memory_order_relaxed);
}

std::size_t resolve_threads(std::size_t requested) {
  return requested > 0 ? requested : default_thread_count();
}

ThreadPool& global_pool() {
  // Sized so that --threads above hardware_concurrency (and the determinism
  // tests' threads = 2 sweep on single-core hosts) still exercise real
  // worker threads; parallel_for caps participation per call.
  static ThreadPool pool(std::max<std::size_t>(default_thread_count(), 8) - 1);
  return pool;
}

void parallel_for(std::size_t threads, std::size_t begin, std::size_t end,
                  std::size_t grain, const ThreadPool::ChunkFn& fn) {
  global_pool().parallel_for(begin, end, grain, fn, resolve_threads(threads));
}

}  // namespace simprof::support
