#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/assert.h"

namespace simprof {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SIMPROF_EXPECTS(!header_.empty(), "table needs at least one column");
}

void Table::row(std::vector<std::string> cells) {
  SIMPROF_EXPECTS(cells.size() == header_.size(),
                  "row arity must match header");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string Table::pct(double fraction, int prec) {
  return num(fraction * 100.0, prec) + "%";
}

void Table::print_aligned(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(width[c], '-') + "  ";
  }
  os << rule << '\n';
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

void Table::print(std::ostream& os) const {
  print_aligned(os);
  os << "-- csv --\n";
  print_csv(os);
}

}  // namespace simprof
