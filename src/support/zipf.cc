#include "support/zipf.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace simprof {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  SIMPROF_EXPECTS(n > 0, "Zipf vocabulary must be non-empty");
  SIMPROF_EXPECTS(s >= 0.0, "Zipf exponent must be non-negative");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s_);
    cdf_[k] = acc;
  }
  norm_ = acc;
  for (auto& v : cdf_) v /= norm_;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t rank) const {
  SIMPROF_EXPECTS(rank < cdf_.size(), "rank out of range");
  return 1.0 / std::pow(static_cast<double>(rank + 1), s_) / norm_;
}

}  // namespace simprof
