// Aligned-text and CSV table emission for the benchmark harnesses.
//
// Every figure bench prints (a) an aligned human-readable table matching the
// paper's rows/series and (b) a machine-readable CSV block, so results can be
// re-plotted without re-running the experiment.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace simprof {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void row(std::vector<std::string> cells);

  /// Convenience: format a double with `prec` digits after the point.
  static std::string num(double v, int prec = 3);
  /// Format as percentage ("12.3%").
  static std::string pct(double fraction, int prec = 1);

  void print_aligned(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  /// Aligned table followed by a csv block delimited with "-- csv --".
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace simprof
