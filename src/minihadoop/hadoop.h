// MiniHadoop: the MapReduce engine substrate (Table I's "_hp" configs).
//
// Execution model differences from MiniSpark that the paper leans on:
//   * executor threads are per-task (YarnChild): the profiler merges the
//     threads running on one core into a single stream (Section III-A) —
//     the cluster's thread_per_task mode models exactly that;
//   * mappers buffer key-value output in MapOutputBuffer, quicksort it by
//     key and spill to disk through an (optionally compressed) IFile writer,
//     running the combiner over each sorted spill — Figure 15's map /
//     combine / sort phase trio;
//   * reducers shuffle-fetch map segments, k-way merge them and stream the
//     merged run through the user reduce function to HDFS.
//
// The paper's Hadoop tuning (bigger map buffer, map-output compression) is
// exposed in HadoopConfig and enabled by default.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exec/cluster.h"
#include "exec/kernels.h"
#include "jvm/call_stack.h"
#include "obs/obs.h"
#include "support/assert.h"

namespace simprof::hadoop {

struct HadoopConfig {
  std::uint32_t num_reducers = 0;  ///< 0 → one per core
  std::uint64_t map_buffer_bytes = 8ull << 20;  ///< io.sort.mb (paper: raised)
  double spill_threshold = 0.8;                 ///< io.sort.spill.percent
  bool compress_map_output = true;              ///< paper optimization
  exec::KernelCosts costs;
};

/// Pre-interned Hadoop framework methods (shared by every job on a cluster).
struct HadoopMethods {
  explicit HadoopMethods(jvm::MethodRegistry& reg);

  jvm::MethodId yarn_child;
  jvm::MethodId map_task_run;
  jvm::MethodId record_reader;
  jvm::MethodId output_collect;
  jvm::MethodId sort_and_spill;
  jvm::MethodId quick_sort;
  jvm::MethodId combiner_run;
  jvm::MethodId ifile_append;
  jvm::MethodId codec_compress;
  jvm::MethodId merger_merge;
  jvm::MethodId reduce_task_run;
  jvm::MethodId shuffle_fetch;
  jvm::MethodId output_write;
};

/// One input split: real records plus the modeled HDFS byte size.
template <typename In>
struct InputSplit {
  std::vector<In> records;
  std::uint64_t bytes = 0;
};

/// Job description. `combine_fn` empty → no combiner (Sort, Grep).
/// `reduce_fn` folds the value group of one key into the output value.
template <typename In, typename K, typename V>
struct JobSpec {
  std::string job_name = "job";
  std::string mapper_name = "app.Mapper.map";
  std::string reducer_name = "app.Reducer.reduce";
  std::function<void(const In&, std::vector<std::pair<K, V>>&)> map_fn;
  std::function<V(const V&, const V&)> combine_fn;  // may be empty
  std::function<V(const K&, const std::vector<V>&)> reduce_fn;
  double map_instrs_per_record = 40;
  double map_instrs_per_emit = 12;
  double reduce_instrs_per_value = 14;
  double pair_bytes = 12;
};

template <typename In, typename K, typename V>
class MapReduceJob {
 public:
  MapReduceJob(exec::Cluster& cluster, HadoopConfig cfg,
               JobSpec<In, K, V> spec)
      : cluster_(cluster),
        cfg_(cfg),
        spec_(std::move(spec)),
        methods_(cluster.methods()),
        m_mapper_(cluster.methods().intern(spec_.mapper_name,
                                           jvm::OpKind::kMap)),
        m_reducer_(cluster.methods().intern(spec_.reducer_name,
                                            jvm::OpKind::kReduce)) {
    SIMPROF_EXPECTS(static_cast<bool>(spec_.map_fn), "job needs a map fn");
    SIMPROF_EXPECTS(static_cast<bool>(spec_.reduce_fn),
                    "job needs a reduce fn");
    if (cfg_.num_reducers == 0) cfg_.num_reducers = cluster.num_cores();
    buffer_region_ = cluster.address_space().allocate(cfg_.map_buffer_bytes);
    spill_region_ = cluster.address_space().allocate(1ull << 26);
    reduce_region_ = cluster.address_space().allocate(1ull << 26);
    output_region_ = cluster.address_space().allocate(1ull << 26);
  }

  /// Run the full job; returns the reduce output (key order within a
  /// reducer, reducers concatenated).
  std::vector<std::pair<K, V>> run(const std::vector<InputSplit<In>>& splits) {
    run_map_stage(splits);
    return run_reduce_stage();
  }

  std::uint32_t num_reducers() const { return cfg_.num_reducers; }
  std::uint64_t total_spills() const { return total_spills_; }

 private:
  using Pair = std::pair<K, V>;

  struct Segment {             // one mapper's output for one reducer
    std::vector<Pair> pairs;   // sorted by key
  };

  void run_map_stage(const std::vector<InputSplit<In>>& splits) {
    segments_.assign(cfg_.num_reducers, {});
    std::vector<exec::Task> tasks;
    tasks.reserve(splits.size());
    for (std::size_t s = 0; s < splits.size(); ++s) {
      tasks.push_back(exec::Task{
          spec_.job_name + "_map_" + std::to_string(s),
          [this, &splits, s](exec::ExecutorContext& ctx) {
            map_task(splits[s], ctx);
          }});
    }
    cluster_.run_stage(spec_.job_name + "_map", std::move(tasks),
                       /*thread_per_task=*/true);
  }

  void map_task(const InputSplit<In>& split, exec::ExecutorContext& ctx) {
    jvm::MethodScope yarn(ctx.stack(), methods_.yarn_child);
    jvm::MethodScope mt(ctx.stack(), methods_.map_task_run);

    std::vector<Pair> buffer;
    std::vector<std::vector<Pair>> spills;  // sorted (+combined) runs
    std::uint64_t buffer_bytes = 0;
    const auto spill_at = static_cast<std::uint64_t>(
        cfg_.spill_threshold * static_cast<double>(cfg_.map_buffer_bytes));

    // Read + map cost is charged in record batches between spills, so the
    // simulated timeline interleaves map work with sortAndSpill bursts
    // exactly as a real mapper does (the reader runs under Mapper.run).
    const double bytes_per_record =
        split.records.empty()
            ? 0.0
            : static_cast<double>(split.bytes) /
                  static_cast<double>(split.records.size());
    std::uint64_t pending_records = 0;
    std::uint64_t pending_emits = 0;
    auto charge_map_work = [&] {
      if (pending_records == 0 && pending_emits == 0) return;
      jvm::MethodScope map_scope(ctx.stack(), m_mapper_);
      {
        jvm::MethodScope rr(ctx.stack(), methods_.record_reader);
        exec::scan_region(
            ctx, spill_region_,
            static_cast<std::uint64_t>(
                bytes_per_record * static_cast<double>(pending_records)),
            cfg_.costs.scan_instrs_per_byte);
      }
      const auto instrs = static_cast<std::uint64_t>(
          spec_.map_instrs_per_record * static_cast<double>(pending_records) +
          spec_.map_instrs_per_emit * static_cast<double>(pending_emits));
      jvm::MethodScope collect(ctx.stack(), methods_.output_collect);
      hw::SequentialStream append(
          buffer_region_,
          std::min<std::uint64_t>(
              static_cast<std::uint64_t>(
                  spec_.pair_bytes * static_cast<double>(pending_emits)),
              cfg_.map_buffer_bytes),
          /*write=*/true);
      ctx.execute(instrs, &append);
      pending_records = 0;
      pending_emits = 0;
    };

    std::vector<Pair> emitted;
    for (const In& rec : split.records) {
      emitted.clear();
      spec_.map_fn(rec, emitted);
      ++pending_records;
      pending_emits += emitted.size();
      for (auto& kv : emitted) {
        buffer.push_back(std::move(kv));
        buffer_bytes += static_cast<std::uint64_t>(spec_.pair_bytes);
        if (buffer_bytes >= spill_at) {
          charge_map_work();
          sort_and_spill(buffer, spills, buffer_bytes, ctx);
        }
      }
    }
    charge_map_work();
    if (!buffer.empty()) sort_and_spill(buffer, spills, buffer_bytes, ctx);

    // Merge spills into one partitioned output (only if more than one).
    std::vector<Pair> merged;
    std::uint64_t merged_count = 0;
    for (const auto& sp : spills) merged_count += sp.size();
    if (spills.size() > 1) {
      jvm::MethodScope mg(ctx.stack(), methods_.merger_merge);
      exec::merge_runs(ctx, spill_region_,
                       static_cast<std::uint64_t>(
                           spec_.pair_bytes * static_cast<double>(merged_count)),
                       merged_count, static_cast<std::uint32_t>(spills.size()),
                       cfg_.costs);
    }
    merged.reserve(merged_count);
    for (auto& sp : spills) {
      merged.insert(merged.end(), std::make_move_iterator(sp.begin()),
                    std::make_move_iterator(sp.end()));
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const Pair& a, const Pair& b) {
                       return a.first < b.first;
                     });

    // Partition to reducers (hash partitioner) and publish segments.
    std::vector<std::vector<Pair>> parts(cfg_.num_reducers);
    for (auto& kv : merged) {
      parts[partition_of(kv.first)].push_back(std::move(kv));
    }
    for (std::uint32_t r = 0; r < cfg_.num_reducers; ++r) {
      if (!parts[r].empty()) {
        segments_[r].push_back(Segment{std::move(parts[r])});
      }
    }
  }

  void sort_and_spill(std::vector<Pair>& buffer,
                      std::vector<std::vector<Pair>>& spills,
                      std::uint64_t& buffer_bytes,
                      exec::ExecutorContext& ctx) {
    jvm::MethodScope spill_scope(ctx.stack(), methods_.sort_and_spill);
    ++total_spills_;
    static obs::Counter& spill_count = obs::metrics().counter("hadoop.spills");
    spill_count.increment();
    // Fast-forwarded units carry no simulated cycle times; suppress spans.
    const bool tracing = obs::trace_enabled() && !ctx.fast_forwarding();
    const std::uint64_t spill_start_cycles =
        tracing ? ctx.counters().cycles : 0;
    // QuickSort over the buffered key-value index — recursive partition
    // passes with data-dependent sizes (Figure 15's high-CoV sort phase).
    {
      jvm::MethodScope qs(ctx.stack(), methods_.quick_sort);
      std::stable_sort(buffer.begin(), buffer.end(),
                       [](const Pair& a, const Pair& b) {
                         return a.first < b.first;
                       });
      exec::quicksort_traffic(
          ctx, buffer_region_, buffer.size(),
          static_cast<std::uint32_t>(std::max(1.0, spec_.pair_bytes)),
          cfg_.costs);
    }
    // Combine adjacent same-key values over the sorted run.
    std::vector<Pair> run;
    if (spec_.combine_fn) {
      jvm::MethodScope comb(ctx.stack(), methods_.combiner_run);
      run.reserve(buffer.size() / 2 + 1);
      for (auto& kv : buffer) {
        if (!run.empty() && run.back().first == kv.first) {
          run.back().second = spec_.combine_fn(run.back().second, kv.second);
        } else {
          run.push_back(std::move(kv));
        }
      }
      exec::scan_region(ctx, buffer_region_,
                        static_cast<std::uint64_t>(
                            spec_.pair_bytes * static_cast<double>(buffer.size())),
                        0.9);
    } else {
      run = std::move(buffer);
      buffer = {};
    }
    // IFile append (+ compression when configured).
    {
      jvm::MethodScope io(ctx.stack(), methods_.ifile_append);
      if (cfg_.compress_map_output) {
        jvm::MethodScope codec(ctx.stack(), methods_.codec_compress);
        exec::write_stream(ctx, spill_region_,
                           static_cast<std::uint64_t>(
                               spec_.pair_bytes * static_cast<double>(run.size())),
                           /*compressed=*/true, cfg_.costs);
      } else {
        exec::write_stream(ctx, spill_region_,
                           static_cast<std::uint64_t>(
                               spec_.pair_bytes * static_cast<double>(run.size())),
                           /*compressed=*/false, cfg_.costs);
      }
    }
    if (tracing) {
      obs::trace_virtual_span("hadoop.sort_and_spill", spill_start_cycles,
                              ctx.counters().cycles, ctx.core(),
                              {{"pairs", run.size()},
                               {"combined", static_cast<bool>(spec_.combine_fn)}});
    }
    spills.push_back(std::move(run));
    buffer.clear();
    buffer_bytes = 0;
  }

  std::vector<Pair> run_reduce_stage() {
    std::vector<std::vector<Pair>> outputs(cfg_.num_reducers);
    std::vector<exec::Task> tasks;
    tasks.reserve(cfg_.num_reducers);
    for (std::uint32_t r = 0; r < cfg_.num_reducers; ++r) {
      tasks.push_back(exec::Task{
          spec_.job_name + "_reduce_" + std::to_string(r),
          [this, &outputs, r](exec::ExecutorContext& ctx) {
            outputs[r] = reduce_task(r, ctx);
          }});
    }
    cluster_.run_stage(spec_.job_name + "_reduce", std::move(tasks),
                       /*thread_per_task=*/true);
    std::vector<Pair> all;
    for (auto& o : outputs) {
      all.insert(all.end(), std::make_move_iterator(o.begin()),
                 std::make_move_iterator(o.end()));
    }
    return all;
  }

  std::vector<Pair> reduce_task(std::uint32_t r, exec::ExecutorContext& ctx) {
    jvm::MethodScope yarn(ctx.stack(), methods_.yarn_child);
    jvm::MethodScope rt(ctx.stack(), methods_.reduce_task_run);

    std::uint64_t total = 0;
    for (const auto& seg : segments_[r]) total += seg.pairs.size();
    const auto total_bytes = static_cast<std::uint64_t>(
        spec_.pair_bytes * static_cast<double>(total));

    // Fast-forwarded units carry no simulated cycle times; suppress spans.
    const bool tracing = obs::trace_enabled() && !ctx.fast_forwarding();
    static obs::Counter& shuffle_bytes =
        obs::metrics().counter("hadoop.shuffle_bytes");
    shuffle_bytes.add(total_bytes);
    // Shuffle fetch: stream every segment (decompression cost folded into
    // the scan rate when compression is on).
    {
      jvm::MethodScope sh(ctx.stack(), methods_.shuffle_fetch);
      const std::uint64_t start_cycles = tracing ? ctx.counters().cycles : 0;
      const double rate = cfg_.costs.scan_instrs_per_byte *
                          (cfg_.compress_map_output ? 1.6 : 1.0);
      exec::scan_region(ctx, reduce_region_, total_bytes, rate);
      if (tracing) {
        obs::trace_virtual_span(
            "hadoop.shuffle_fetch", start_cycles, ctx.counters().cycles,
            ctx.core(),
            {{"reducer", r}, {"bytes", total_bytes},
             {"segments", segments_[r].size()}});
      }
    }
    // Merge the sorted segments.
    std::vector<Pair> all;
    all.reserve(total);
    {
      jvm::MethodScope mg(ctx.stack(), methods_.merger_merge);
      const std::uint64_t start_cycles = tracing ? ctx.counters().cycles : 0;
      for (const auto& seg : segments_[r]) {
        all.insert(all.end(), seg.pairs.begin(), seg.pairs.end());
      }
      std::stable_sort(all.begin(), all.end(),
                       [](const Pair& a, const Pair& b) {
                         return a.first < b.first;
                       });
      exec::merge_runs(ctx, reduce_region_, total_bytes, total,
                       static_cast<std::uint32_t>(
                           std::max<std::size_t>(segments_[r].size(), 1)),
                       cfg_.costs);
      if (tracing) {
        obs::trace_virtual_span(
            "hadoop.merge", start_cycles, ctx.counters().cycles, ctx.core(),
            {{"reducer", r}, {"pairs", total},
             {"runs", segments_[r].size()}});
      }
    }
    // Reduce per key group; write output to HDFS.
    std::vector<Pair> out;
    {
      jvm::MethodScope red(ctx.stack(), m_reducer_);
      std::vector<V> group;
      std::size_t i = 0;
      while (i < all.size()) {
        std::size_t j = i;
        group.clear();
        while (j < all.size() && all[j].first == all[i].first) {
          group.push_back(all[j].second);
          ++j;
        }
        out.emplace_back(all[i].first, spec_.reduce_fn(all[i].first, group));
        i = j;
      }
      // Value groups arrive key-clustered but the original insertion order
      // is scattered: charge random gathers over the merged region.
      exec::hash_aggregate(ctx, reduce_region_,
                           std::max<std::uint64_t>(total_bytes, 64), total,
                           0.35, cfg_.costs);
      ctx.compute(static_cast<std::uint64_t>(
          spec_.reduce_instrs_per_value * static_cast<double>(total)));
    }
    {
      jvm::MethodScope io(ctx.stack(), methods_.output_write);
      exec::write_stream(ctx, output_region_,
                         static_cast<std::uint64_t>(
                             spec_.pair_bytes * static_cast<double>(out.size())),
                         /*compressed=*/false, cfg_.costs);
    }
    return out;
  }

  std::uint32_t partition_of(const K& key) const {
    std::uint64_t z =
        (static_cast<std::uint64_t>(key) + 1) * 0x9e3779b97f4a7c15ULL;
    z ^= z >> 31;
    return static_cast<std::uint32_t>(z % cfg_.num_reducers);
  }

  exec::Cluster& cluster_;
  HadoopConfig cfg_;
  JobSpec<In, K, V> spec_;
  HadoopMethods methods_;
  jvm::MethodId m_mapper_;
  jvm::MethodId m_reducer_;
  std::vector<std::vector<Segment>> segments_;  // [reducer][segment]
  std::uint64_t buffer_region_ = 0;
  std::uint64_t spill_region_ = 0;
  std::uint64_t reduce_region_ = 0;
  std::uint64_t output_region_ = 0;
  std::uint64_t total_spills_ = 0;
};

/// Split a record vector into `num_splits` InputSplits with modeled bytes.
template <typename In>
std::vector<InputSplit<In>> make_splits(const std::vector<In>& records,
                                        std::size_t num_splits,
                                        double bytes_per_record) {
  SIMPROF_EXPECTS(num_splits > 0, "need at least one split");
  std::vector<InputSplit<In>> splits;
  const std::size_t per = (records.size() + num_splits - 1) / num_splits;
  for (std::size_t start = 0; start < records.size(); start += per) {
    const std::size_t end = std::min(records.size(), start + per);
    InputSplit<In> s;
    s.records.assign(records.begin() + static_cast<std::ptrdiff_t>(start),
                     records.begin() + static_cast<std::ptrdiff_t>(end));
    s.bytes = static_cast<std::uint64_t>(
        bytes_per_record * static_cast<double>(end - start));
    splits.push_back(std::move(s));
  }
  return splits;
}

}  // namespace simprof::hadoop
