#include "minihadoop/hadoop.h"

namespace simprof::hadoop {

HadoopMethods::HadoopMethods(jvm::MethodRegistry& reg)
    : yarn_child(reg.intern("org.apache.hadoop.mapred.YarnChild.main",
                            jvm::OpKind::kFramework)),
      map_task_run(reg.intern("org.apache.hadoop.mapred.MapTask.run",
                              jvm::OpKind::kFramework)),
      record_reader(reg.intern(
          "org.apache.hadoop.mapreduce.lib.input.LineRecordReader.nextKeyValue",
          jvm::OpKind::kIo)),
      output_collect(reg.intern(
          "org.apache.hadoop.mapred.MapTask$MapOutputBuffer.collect",
          jvm::OpKind::kFramework)),
      // sortAndSpill itself is orchestration; the sorting work shows up in
      // the nested QuickSort frames (keeps Figure 10 frame shares honest).
      sort_and_spill(reg.intern(
          "org.apache.hadoop.mapred.MapTask$MapOutputBuffer.sortAndSpill",
          jvm::OpKind::kFramework)),
      quick_sort(reg.intern("org.apache.hadoop.util.QuickSort.sortInternal",
                            jvm::OpKind::kSort)),
      combiner_run(reg.intern(
          "org.apache.hadoop.mapred.Task$NewCombinerRunner.combine",
          jvm::OpKind::kReduce)),
      ifile_append(reg.intern("org.apache.hadoop.mapred.IFile$Writer.append",
                              jvm::OpKind::kIo)),
      codec_compress(reg.intern(
          "org.apache.hadoop.io.compress.SnappyCodec.compress",
          jvm::OpKind::kIo)),
      merger_merge(reg.intern(
          "org.apache.hadoop.mapred.Merger$MergeQueue.merge",
          jvm::OpKind::kSort)),
      reduce_task_run(reg.intern("org.apache.hadoop.mapred.ReduceTask.run",
                                 jvm::OpKind::kFramework)),
      shuffle_fetch(reg.intern(
          "org.apache.hadoop.mapreduce.task.reduce.Shuffle.run",
          jvm::OpKind::kShuffle)),
      output_write(reg.intern(
          "org.apache.hadoop.mapreduce.lib.output.TextOutputFormat$LineRecordWriter.write",
          jvm::OpKind::kIo)) {}

}  // namespace simprof::hadoop
