// Phase formation (Section III-B): vectorize sampling-unit call stacks into
// method-frequency feature vectors, select the top-K methods most correlated
// with IPC (univariate linear-regression test), and cluster units into
// phases with k-means, choosing k by the silhouette rule.
//
// Also implements the phase-homogeneity analysis of Figure 6 (population /
// weighted / maximum CoV of CPI) and the dominant-operation phase typing of
// Figure 10.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/profile.h"
#include "stats/descriptive.h"
#include "stats/kmeans.h"
#include "stats/matrix.h"
#include "stats/sparse.h"

namespace simprof::core {

struct PhaseFormationConfig {
  std::size_t top_k_features = 100;  ///< paper: K = 100
  /// Minimum univariate F-statistic for a method to survive selection.
  /// Methods whose frequency does not significantly correlate with IPC are
  /// eliminated (the paper drops the executor/task start-up methods this
  /// way); profiles where *no* method passes are performance-uniform and
  /// collapse to a single phase, like grep in the paper's Figure 9.
  double min_f_score = 2.0;
  /// Post-clustering refinement: phases whose CPI mean and deviation are
  /// within this relative threshold of each other are merged — stratifying
  /// over performance-identical strata buys nothing (same 10% equivalence
  /// rule as the paper's Eq. 6). 0 disables merging.
  double merge_threshold = 0.10;
  stats::ChooseKConfig choose_k;     ///< defaults: k ≤ 20, 90% rule
  std::uint64_t seed = 0x51eedULL;   ///< k-means seeding
  /// Worker threads for the clustering sweep (0 = global default from
  /// hardware_concurrency, overridable via the CLI --threads flag). Output
  /// is bit-identical for any value — see stats/kmeans.h.
  std::size_t threads = 0;
};

/// Per-phase CPI statistics (the paper's N_h, μ_h, σ_h, CoV_h).
struct PhaseStats {
  std::size_t count = 0;     ///< N_h — units in the phase
  double mean_cpi = 0.0;     ///< μ_h
  double stddev_cpi = 0.0;   ///< s_h (sample stddev, Eq. 5)
  /// 5%-trimmed sample stddev: the Eq. 6 dispersion comparison uses this —
  /// raw σ is dominated by rare scheduling/migration outliers whose count
  /// fluctuates run to run, which would make the input-sensitivity test fire
  /// on noise rather than on input-dependent behaviour.
  double trimmed_stddev_cpi = 0.0;
  double cov = 0.0;          ///< s_h / μ_h
  double weight = 0.0;       ///< N_h / N
};

/// A fitted phase model: everything needed to sample (Section III-C) and to
/// classify units of other inputs (Section III-D). Self-contained — feature
/// identities are method *names*, so a model built on one profile can
/// classify profiles whose method tables differ.
struct PhaseModel {
  std::size_t k = 0;
  std::vector<std::string> feature_names;  ///< selected methods, in order
  std::vector<jvm::OpKind> feature_kinds;
  stats::Matrix centers;                   ///< k × |features|
  std::vector<std::size_t> labels;         ///< per training unit
  std::vector<PhaseStats> phases;          ///< per phase
  std::vector<double> silhouette_scores;   ///< per candidate k (k = 1 first)

  /// Dominant operation type per phase, from center weights (Figure 10).
  std::vector<jvm::OpKind> phase_types;

  /// The training unit nearest each center (the CODE baseline's pick).
  std::vector<std::size_t> representative_units;
};

/// Full method-frequency matrix (units × methods), L1-row-normalized.
/// Dense reference form — the hot paths use the CSR builder below and
/// densify only selected columns; this stays as the equivalence oracle.
stats::Matrix build_feature_matrix(const ThreadProfile& profile);

/// The same matrix in CSR form, built directly from the unit records (a
/// unit touches a few dozen methods out of thousands, so the dense form is
/// ~99% zeros). Bitwise equivalent: to_dense() equals build_feature_matrix.
stats::SparseMatrix build_sparse_feature_matrix(const ThreadProfile& profile);

/// Fit phases on a profile.
PhaseModel form_phases(const ThreadProfile& profile,
                       const PhaseFormationConfig& cfg = {});

/// Vectorize one unit into a model's feature space (L1-normalized over the
/// selected features; methods are matched by name).
std::vector<double> vectorize_unit(const PhaseModel& model,
                                   const ThreadProfile& profile,
                                   std::size_t unit_index);

/// Vectorize every unit of a profile into a model's feature space — the
/// batch form of vectorize_unit (one hoisted name→feature map, row blocks
/// on the thread pool; threads = 0 → global default). Row u equals
/// vectorize_unit(model, profile, u) bit for bit.
stats::Matrix vectorize_units(const PhaseModel& model,
                              const ThreadProfile& profile,
                              std::size_t threads = 0);

/// Figure 6: population / weighted / maximum CoV of CPI for a clustering.
stats::CovSummary cov_summary(const ThreadProfile& profile,
                              const PhaseModel& model);

/// Dominant non-framework OpKind per phase by snapshot-frame share (the
/// Figure 10 taxonomy; shuffle folds into IO).
std::vector<jvm::OpKind> classify_phase_types(
    const ThreadProfile& profile, const std::vector<std::size_t>& labels,
    std::size_t k);

/// Merge phases whose CPI distributions are equivalent within `threshold`
/// (relative, Eq. 6-style). Rewrites centers/labels/phases in place; called
/// by form_phases and exposed for ablation studies.
void merge_equivalent_phases(PhaseModel& model, const ThreadProfile& profile,
                             double threshold);

/// Recompute per-phase stats for an arbitrary (profile, labels) pairing —
/// used by the input-sensitivity unit classification.
std::vector<PhaseStats> phase_stats_for(const ThreadProfile& profile,
                                        const std::vector<std::size_t>& labels,
                                        std::size_t k);

}  // namespace simprof::core
