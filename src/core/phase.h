// Phase formation (Section III-B): vectorize sampling-unit call stacks into
// method-frequency feature vectors, select the top-K methods most correlated
// with IPC (univariate linear-regression test), and cluster units into
// phases with k-means, choosing k by the silhouette rule.
//
// Also implements the phase-homogeneity analysis of Figure 6 (population /
// weighted / maximum CoV of CPI) and the dominant-operation phase typing of
// Figure 10.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/profile.h"
#include "features/feature_mode.h"
#include "stats/descriptive.h"
#include "stats/kmeans.h"
#include "stats/matrix.h"
#include "stats/sparse.h"

namespace simprof::core {

struct PhaseFormationConfig {
  /// Feature space the units are vectorized into: method frequencies
  /// (historical default, bit-identical to pre-MAV models), memory-access
  /// vectors, or both (MAV columns first — see features/feature_mode.h).
  features::FeatureMode features = features::FeatureMode::kFreq;
  std::size_t top_k_features = 100;  ///< paper: K = 100
  /// Minimum univariate F-statistic for a method to survive selection.
  /// Methods whose frequency does not significantly correlate with IPC are
  /// eliminated (the paper drops the executor/task start-up methods this
  /// way); profiles where *no* method passes are performance-uniform and
  /// collapse to a single phase, like grep in the paper's Figure 9.
  double min_f_score = 2.0;
  /// Post-clustering refinement: phases whose CPI mean and deviation are
  /// within this relative threshold of each other are merged — stratifying
  /// over performance-identical strata buys nothing (same 10% equivalence
  /// rule as the paper's Eq. 6). 0 disables merging.
  double merge_threshold = 0.10;
  stats::ChooseKConfig choose_k;     ///< defaults: k ≤ 20, 90% rule
  std::uint64_t seed = 0x51eedULL;   ///< k-means seeding
  /// Worker threads for the clustering sweep (0 = global default from
  /// hardware_concurrency, overridable via the CLI --threads flag). Output
  /// is bit-identical for any value — see stats/kmeans.h.
  std::size_t threads = 0;
};

/// Trimmed-deviation policy for PhaseStats::trimmed_stddev_cpi. The trim
/// count per tail is explicit and total on the phase size:
///   n <  kTrimFloorUnits  → 0 (too few units to sacrifice any; the trimmed
///                             deviation falls back to the raw σ)
///   n >= kTrimFloorUnits  → max(1, n / 20)  (≈5% per tail, never zero)
/// The floor guarantees that once a phase has kTrimFloorUnits units, at
/// least one element per tail is always dropped — without it, every phase
/// under 20 units trimmed zero elements and the Eq. 6 comparisons silently
/// degraded to the outlier-dominated raw σ exactly where outliers hurt most.
inline constexpr std::size_t kTrimFloorUnits = 8;

/// Elements dropped from each tail for a phase of `count` units, per the
/// policy above.
std::size_t trimmed_tail_count(std::size_t count);

/// Per-phase CPI statistics (the paper's N_h, μ_h, σ_h, CoV_h).
struct PhaseStats {
  std::size_t count = 0;     ///< N_h — units in the phase
  double mean_cpi = 0.0;     ///< μ_h
  double stddev_cpi = 0.0;   ///< s_h (sample stddev, Eq. 5)
  /// Trimmed sample stddev (trimmed_tail_count elements per tail): every
  /// Eq. 6-style dispersion comparison — the input-sensitivity test AND the
  /// post-clustering phase merge — uses this, because raw σ is dominated by
  /// rare scheduling/migration outliers whose count fluctuates run to run,
  /// which would make those tests fire on noise rather than on genuine
  /// behaviour differences.
  double trimmed_stddev_cpi = 0.0;
  double cov = 0.0;          ///< s_h / μ_h
  double weight = 0.0;       ///< N_h / N
};

/// A fitted phase model: everything needed to sample (Section III-C) and to
/// classify units of other inputs (Section III-D). Self-contained — feature
/// identities are method *names*, so a model built on one profile can
/// classify profiles whose method tables differ.
struct PhaseModel {
  std::size_t k = 0;
  /// Feature space this model was fitted in; vectorize_unit/vectorize_units
  /// reproduce the same space when classifying other profiles.
  features::FeatureMode feature_mode = features::FeatureMode::kFreq;
  std::vector<std::string> feature_names;  ///< selected features, in order
  std::vector<jvm::OpKind> feature_kinds;
  stats::Matrix centers;                   ///< k × |features|
  std::vector<std::size_t> labels;         ///< per training unit
  std::vector<PhaseStats> phases;          ///< per phase
  std::vector<double> silhouette_scores;   ///< per candidate k (k = 1 first)

  /// Dominant operation type per phase, from center weights (Figure 10).
  std::vector<jvm::OpKind> phase_types;

  /// The training unit nearest each center (the CODE baseline's pick).
  std::vector<std::size_t> representative_units;
};

/// Full feature matrix (units × feature_space_cols(mode)), L1-row-
/// normalized. Dense reference form — the hot paths use the CSR builder
/// below and densify only selected columns; this stays as the equivalence
/// oracle in every feature mode.
stats::Matrix build_feature_matrix(
    const ThreadProfile& profile,
    features::FeatureMode mode = features::FeatureMode::kFreq);

/// The same matrix in CSR form, built directly from the unit records (a
/// unit touches a few dozen methods out of thousands, so the dense form is
/// ~99% zeros). Bitwise equivalent: to_dense() equals build_feature_matrix.
stats::SparseMatrix build_sparse_feature_matrix(
    const ThreadProfile& profile,
    features::FeatureMode mode = features::FeatureMode::kFreq);

/// One unit's raw CSR row in the chosen feature space. Under kFreq:
/// method-id/count pairs sorted by method id with duplicate ids collapsed
/// last-entry-wins — exactly the assignment semantics of the dense builder,
/// and bitwise the historical layout. Under kMav/kCombined the
/// block-normalized MAV entries come first at columns [0, hw::kMavDim)
/// (features::append_mav_entries) and kCombined method entries follow at
/// +kMavDim, scaled to count/total so each unit's method block carries mass
/// 1 like each MAV block. Shared by build_sparse_feature_matrix and the
/// streaming former's per-unit ingest so both paths produce bitwise the
/// same stored entries. Output lands in `cols`/`vals` (cleared first);
/// `num_methods` bounds the ids.
void unit_feature_entries(
    const UnitRecord& rec, std::size_t num_methods,
    std::vector<std::uint32_t>& cols, std::vector<double>& vals,
    features::FeatureMode mode = features::FeatureMode::kFreq);

/// Fit phases on a profile.
PhaseModel form_phases(const ThreadProfile& profile,
                       const PhaseFormationConfig& cfg = {});

/// The back half of form_phases, starting from an already-built unit ×
/// method feature matrix (CSR, L1-row-normalized, full method space —
/// exactly what build_sparse_feature_matrix returns). form_phases delegates
/// here; the streaming former calls it directly at each recluster with the
/// snapshot of its incrementally grown matrix, which is how the streaming
/// path inherits batch bit-identity for free.
PhaseModel form_phases_from_sparse(const ThreadProfile& profile,
                                   const stats::SparseMatrix& features,
                                   const PhaseFormationConfig& cfg = {});

/// Vectorize one unit into a model's feature space (L1-normalized over the
/// selected features; methods are matched by name).
std::vector<double> vectorize_unit(const PhaseModel& model,
                                   const ThreadProfile& profile,
                                   std::size_t unit_index);

/// Vectorize every unit of a profile into a model's feature space — the
/// batch form of vectorize_unit (one hoisted name→feature map, row blocks
/// on the thread pool; threads = 0 → global default). Row u equals
/// vectorize_unit(model, profile, u) bit for bit.
stats::Matrix vectorize_units(const PhaseModel& model,
                              const ThreadProfile& profile,
                              std::size_t threads = 0);

/// Figure 6: population / weighted / maximum CoV of CPI for a clustering.
stats::CovSummary cov_summary(const ThreadProfile& profile,
                              const PhaseModel& model);

/// Dominant non-framework OpKind per phase by snapshot-frame share (the
/// Figure 10 taxonomy; shuffle folds into IO).
std::vector<jvm::OpKind> classify_phase_types(
    const ThreadProfile& profile, const std::vector<std::size_t>& labels,
    std::size_t k);

/// Merge phases whose CPI distributions are equivalent within `threshold`
/// (relative, Eq. 6-style). Rewrites centers/labels/phases in place; called
/// by form_phases and exposed for ablation studies.
void merge_equivalent_phases(PhaseModel& model, const ThreadProfile& profile,
                             double threshold);

/// Recompute per-phase stats for an arbitrary (profile, labels) pairing —
/// used by the input-sensitivity unit classification.
std::vector<PhaseStats> phase_stats_for(const ThreadProfile& profile,
                                        const std::vector<std::size_t>& labels,
                                        std::size_t k);

}  // namespace simprof::core
