// WorkloadLab: one-stop harness that runs a Table I workload configuration
// under the thread profiler and returns its ThreadProfile, with a disk cache
// so the oracle pass per (workload, input, scale, seed) runs exactly once
// across all benches and examples.
#pragma once

#include <optional>
#include <string>

#include "core/profile.h"
#include "exec/cluster.h"
#include "workloads/workloads.h"

namespace simprof::core {

struct LabConfig {
  double scale = 1.0;
  std::uint64_t seed = 42;
  std::uint32_t num_cores = 4;
  std::uint32_t graph_scale_override = 0;  ///< 0 = catalog default
  /// Sampling-unit size in virtual instructions (paper: 100M, here scaled
  /// 1/100 by default); the snapshot interval stays at unit/10.
  std::uint64_t unit_instrs = 1'000'000;
  /// Cache directory; empty → $SIMPROF_CACHE_DIR or ".simprof_cache".
  std::string cache_dir;
  bool use_cache = true;
};

struct LabRun {
  ThreadProfile profile;
  workloads::WorkloadResult result;  ///< zeroed when loaded from cache
  bool from_cache = false;
  std::string cache_path;  ///< on-disk cache file this run hit or populated
};

class WorkloadLab {
 public:
  explicit WorkloadLab(LabConfig cfg = {});

  /// Profile `workload_name` ("wc_sp", …) on `graph_input` (Table II name,
  /// ignored by non-graph workloads). Cached on disk keyed by every
  /// parameter that affects the run.
  LabRun run(const std::string& workload_name,
             const std::string& graph_input = "Google");

  /// Build a cluster matching this lab's configuration (for callers that
  /// need custom profiling setups, e.g. the trace benches).
  exec::ClusterConfig cluster_config() const;

  const LabConfig& config() const { return cfg_; }

 private:
  std::string cache_path(const std::string& workload_name,
                         const std::string& graph_input) const;

  LabConfig cfg_;
  std::string cache_dir_;
};

}  // namespace simprof::core
