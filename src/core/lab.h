// WorkloadLab: one-stop harness that runs a Table I workload configuration
// under the thread profiler and returns its ThreadProfile, with a disk cache
// so the oracle pass per (workload, input, scale, seed) runs exactly once
// across all benches and examples.
//
// run_batch executes many configurations concurrently on the shared
// support::ThreadPool: duplicate cache keys are single-flighted (one oracle
// pass, counted in lab.batch_dedup), and misses are scheduled before hits so
// simulations start immediately while cached profiles decode alongside them.
// Profiles are a pure function of their configuration, so batch output is
// bit-identical to running the items serially, for any thread count.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/profile.h"
#include "exec/cluster.h"
#include "workloads/workloads.h"

namespace simprof::core {

/// Cache schema version: part of every cache key and checkpoint directory
/// name ("…-v6"); bump to invalidate cached runs. Schema 6: profiles gained
/// per-unit memory-access vectors (profile format "SPRF" v4), so profiles
/// cached under schema 5 no longer decode.
inline constexpr std::uint32_t kLabCacheSchema = 6;

/// Delete checkpoint archive directories under `root` whose name carries a
/// stale schema suffix ("-v<digits>" with digits != kLabCacheSchema) — the
/// replayer would reject them anyway, so they are pure disk waste. Returns
/// the number of directories removed; each removal bumps the `ckpt.pruned`
/// counter, and a non-zero sweep logs one kWarn summary line. A missing
/// root is a no-op.
std::size_t prune_stale_checkpoint_dirs(const std::string& root);

struct LabConfig {
  double scale = 1.0;
  std::uint64_t seed = 42;
  std::uint32_t num_cores = 4;
  std::uint32_t graph_scale_override = 0;  ///< 0 = catalog default
  /// Sampling-unit size in virtual instructions (paper: 100M, here scaled
  /// 1/100 by default); the snapshot interval stays at unit/10.
  std::uint64_t unit_instrs = 1'000'000;
  /// Cache directory; empty → $SIMPROF_CACHE_DIR or ".simprof_cache".
  std::string cache_dir;
  bool use_cache = true;
  /// Checkpoint archive root; empty → $SIMPROF_CHECKPOINT_DIR or
  /// "<cache_dir>/ckpt". Each run gets a subdirectory named after its cache
  /// key.
  std::string checkpoint_dir;
  /// Open a checkpoint window every N unit boundaries during oracle passes
  /// (0 disables recording). Each window archives the warm state plus the
  /// op tape of its N units, so the stride bounds both disk usage and the
  /// worst-case tape replay measure_units pays per selected unit.
  std::uint64_t checkpoint_stride = 2;
  /// Worker threads for run_batch (0 = global default from
  /// hardware_concurrency, overridable via the CLI --threads flag).
  std::size_t threads = 0;
};

struct LabRun {
  ThreadProfile profile;
  workloads::WorkloadResult result;  ///< zeroed when loaded from cache
  bool from_cache = false;
  std::string cache_path;  ///< on-disk cache file this run hit or populated
};

/// One configuration of a batch: a (workload, graph input, seed) triple.
/// An unset seed uses the lab's configured seed.
struct BatchItem {
  std::string workload;
  std::string graph_input = "Google";
  std::optional<std::uint64_t> seed;
};

/// Result of measuring a selected subset of sampling units (measure_units).
struct MeasureResult {
  /// One record per requested unit that exists in the run, ascending by
  /// unit id — bit-identical to the oracle pass's records for those units.
  std::vector<UnitRecord> records;
  bool used_checkpoints = false;   ///< at least one archive was restored
  bool fallback = false;           ///< a bad archive forced re-execution
  std::size_t checkpoints_restored = 0;
  std::uint64_t fast_forwarded_instrs = 0;
  /// Zeroed on the checkpointed fast path — the measurement replays the
  /// archived op tape, so the workload's functional result is never
  /// recomputed. Populated only when measuring cold (no archives/fallback).
  workloads::WorkloadResult result;
};

class WorkloadLab {
 public:
  explicit WorkloadLab(LabConfig cfg = {});

  /// Profile `workload_name` ("wc_sp", …) on `graph_input` (Table II name,
  /// ignored by non-graph workloads). Cached on disk keyed by every
  /// parameter that affects the run. Concurrent calls for the same cache
  /// key are single-flighted: one caller runs the oracle pass, the others
  /// decode its published profile (lab.batch_dedup counts them).
  LabRun run(const std::string& workload_name,
             const std::string& graph_input = "Google");

  /// Run every item, concurrently on the thread pool (cfg.threads workers;
  /// 0 = global default). Results are returned in item order and are
  /// bit-identical to calling run() serially per item.
  std::vector<LabRun> run_batch(const std::vector<BatchItem>& items);

  /// Measure only the given sampling units of a configuration. When a prior
  /// oracle pass left checkpoint archives (see core/checkpoint.h), each
  /// target is measured by restoring the nearest archive at or before it
  /// and re-executing the archived op tape through the unit — the workload
  /// never runs, so the wall-clock cost is O(selected units) rather than
  /// O(run length). Results are bit-identical to the oracle pass's records
  /// for those units. A corrupt or stale archive is never trusted:
  /// measurement falls back to exact cold re-execution from unit 0
  /// (MeasureResult::fallback) and still returns correct numbers.
  MeasureResult measure_units(const std::string& workload_name,
                              const std::string& graph_input,
                              const std::vector<std::uint64_t>& units);

  /// This run's private checkpoint directory (where the recorder publishes
  /// and the replayer scans).
  std::string checkpoint_dir_for(const std::string& workload_name,
                                 const std::string& graph_input,
                                 std::uint64_t seed) const;

  /// Build a cluster matching this lab's configuration (for callers that
  /// need custom profiling setups, e.g. the trace benches).
  exec::ClusterConfig cluster_config() const;

  const LabConfig& config() const { return cfg_; }

 private:
  std::string cache_path(const std::string& workload_name,
                         const std::string& graph_input,
                         std::uint64_t seed) const;
  std::string cache_key(const std::string& workload_name,
                        const std::string& graph_input,
                        std::uint64_t seed) const;
  /// try-load → single-flight lock → re-check → oracle pass → publish.
  LabRun run_config(const std::string& workload_name,
                    const std::string& graph_input, std::uint64_t seed);
  std::optional<LabRun> try_load_cached(const std::string& path,
                                        const std::string& workload_name,
                                        const std::string& graph_input);

  LabConfig cfg_;
  std::string cache_dir_;
  std::string checkpoint_root_;
};

}  // namespace simprof::core
