// WorkloadLab: one-stop harness that runs a Table I workload configuration
// under the thread profiler and returns its ThreadProfile, with a disk cache
// so the oracle pass per (workload, input, scale, seed) runs exactly once
// across all benches and examples.
//
// run_batch executes many configurations concurrently on the shared
// support::ThreadPool: duplicate cache keys are single-flighted (one oracle
// pass, counted in lab.batch_dedup), and misses are scheduled before hits so
// simulations start immediately while cached profiles decode alongside them.
// Profiles are a pure function of their configuration, so batch output is
// bit-identical to running the items serially, for any thread count.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/profile.h"
#include "exec/cluster.h"
#include "workloads/workloads.h"

namespace simprof::core {

struct LabConfig {
  double scale = 1.0;
  std::uint64_t seed = 42;
  std::uint32_t num_cores = 4;
  std::uint32_t graph_scale_override = 0;  ///< 0 = catalog default
  /// Sampling-unit size in virtual instructions (paper: 100M, here scaled
  /// 1/100 by default); the snapshot interval stays at unit/10.
  std::uint64_t unit_instrs = 1'000'000;
  /// Cache directory; empty → $SIMPROF_CACHE_DIR or ".simprof_cache".
  std::string cache_dir;
  bool use_cache = true;
  /// Worker threads for run_batch (0 = global default from
  /// hardware_concurrency, overridable via the CLI --threads flag).
  std::size_t threads = 0;
};

struct LabRun {
  ThreadProfile profile;
  workloads::WorkloadResult result;  ///< zeroed when loaded from cache
  bool from_cache = false;
  std::string cache_path;  ///< on-disk cache file this run hit or populated
};

/// One configuration of a batch: a (workload, graph input, seed) triple.
/// An unset seed uses the lab's configured seed.
struct BatchItem {
  std::string workload;
  std::string graph_input = "Google";
  std::optional<std::uint64_t> seed;
};

class WorkloadLab {
 public:
  explicit WorkloadLab(LabConfig cfg = {});

  /// Profile `workload_name` ("wc_sp", …) on `graph_input` (Table II name,
  /// ignored by non-graph workloads). Cached on disk keyed by every
  /// parameter that affects the run. Concurrent calls for the same cache
  /// key are single-flighted: one caller runs the oracle pass, the others
  /// decode its published profile (lab.batch_dedup counts them).
  LabRun run(const std::string& workload_name,
             const std::string& graph_input = "Google");

  /// Run every item, concurrently on the thread pool (cfg.threads workers;
  /// 0 = global default). Results are returned in item order and are
  /// bit-identical to calling run() serially per item.
  std::vector<LabRun> run_batch(const std::vector<BatchItem>& items);

  /// Build a cluster matching this lab's configuration (for callers that
  /// need custom profiling setups, e.g. the trace benches).
  exec::ClusterConfig cluster_config() const;

  const LabConfig& config() const { return cfg_; }

 private:
  std::string cache_path(const std::string& workload_name,
                         const std::string& graph_input,
                         std::uint64_t seed) const;
  /// try-load → single-flight lock → re-check → oracle pass → publish.
  LabRun run_config(const std::string& workload_name,
                    const std::string& graph_input, std::uint64_t seed);
  std::optional<LabRun> try_load_cached(const std::string& path,
                                        const std::string& workload_name,
                                        const std::string& graph_input);

  LabConfig cfg_;
  std::string cache_dir_;
};

}  // namespace simprof::core
