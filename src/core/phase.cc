#include "core/phase.h"

#include <algorithm>
#include <array>
#include <span>
#include <unordered_map>

#include "obs/obs.h"
#include "stats/feature_select.h"
#include "support/assert.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace simprof::core {
namespace {

constexpr std::size_t kNoFeature = static_cast<std::size_t>(-1);

/// Model feature space decomposed for classification: method features are
/// matched by name (the stable identity across profiles with different
/// method tables), MAV features by their fixed column index.
struct FeatureMaps {
  std::unordered_map<std::string_view, std::size_t> method_of;
  std::array<std::size_t, hw::kMavDim> mav_of{};

  explicit FeatureMaps(const PhaseModel& model) {
    mav_of.fill(kNoFeature);
    method_of.reserve(model.feature_names.size());
    for (std::size_t f = 0; f < model.feature_names.size(); ++f) {
      if (model.feature_mode != features::FeatureMode::kFreq) {
        if (auto mc = features::mav_feature_index(model.feature_names[f])) {
          mav_of[*mc] = f;
          continue;
        }
      }
      method_of.emplace(model.feature_names[f], f);
    }
  }
};

/// Accumulate one unit's raw per-entry feature values into `v` (sized to the
/// model's feature space) and L1-normalize over the touched features — the
/// same per-entry values unit_feature_entries stores, restricted to the
/// selection, which is what makes classification agree with training in
/// every mode (L1 normalization commutes with column selection).
void accumulate_unit(const PhaseModel& model, const ThreadProfile& profile,
                     const UnitRecord& rec, const FeatureMaps& maps,
                     std::span<double> v,
                     std::vector<std::uint32_t>& cols_scratch,
                     std::vector<double>& vals_scratch) {
  const auto mode = model.feature_mode;
  double sum = 0.0;
  if (mode != features::FeatureMode::kMav) {
    double total = 0.0;
    if (mode == features::FeatureMode::kCombined) {
      for (const std::uint32_t c : rec.counts) {
        total += static_cast<double>(c);
      }
    }
    for (std::size_t i = 0; i < rec.methods.size(); ++i) {
      const auto& name = profile.method_names[rec.methods[i]];
      const auto it = maps.method_of.find(name);
      if (it == maps.method_of.end()) continue;
      double val = static_cast<double>(rec.counts[i]);
      if (mode == features::FeatureMode::kCombined) {
        if (total <= 0.0) continue;
        val /= total;
      }
      v[it->second] += val;
      sum += val;
    }
  }
  if (mode != features::FeatureMode::kFreq) {
    cols_scratch.clear();
    vals_scratch.clear();
    features::append_mav_entries(rec.mav, 0, cols_scratch, vals_scratch);
    for (std::size_t i = 0; i < cols_scratch.size(); ++i) {
      const std::size_t f = maps.mav_of[cols_scratch[i]];
      if (f == kNoFeature) continue;
      v[f] += vals_scratch[i];
      sum += vals_scratch[i];
    }
  }
  if (sum > 0.0) {
    for (double& x : v) x /= sum;
  }
}

}  // namespace

stats::Matrix build_feature_matrix(const ThreadProfile& profile,
                                   features::FeatureMode mode) {
  stats::Matrix m(profile.num_units(),
                  features::feature_space_cols(mode, profile.num_methods()));
  std::vector<std::uint32_t> cols;
  std::vector<double> vals;
  for (std::size_t u = 0; u < profile.num_units(); ++u) {
    unit_feature_entries(profile.units[u], profile.num_methods(), cols, vals,
                         mode);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      m.at(u, cols[i]) = vals[i];
    }
  }
  m.normalize_rows_l1();
  return m;
}

void unit_feature_entries(const UnitRecord& rec, std::size_t num_methods,
                          std::vector<std::uint32_t>& cols,
                          std::vector<double>& vals,
                          features::FeatureMode mode) {
  cols.clear();
  vals.clear();
  // MAV entries first (fixed columns [0, kMavDim) under kMav/kCombined);
  // method columns, when present, sit above them so the streaming former
  // can grow the method space in place by appending at the end of the row.
  if (mode != features::FeatureMode::kFreq) {
    features::append_mav_entries(rec.mav, 0, cols, vals);
    if (mode == features::FeatureMode::kMav) return;
  }
  const auto offset =
      static_cast<std::uint32_t>(features::method_col_offset(mode));
  std::vector<std::pair<std::uint32_t, double>> entries;
  entries.reserve(rec.methods.size());
  for (std::size_t i = 0; i < rec.methods.size(); ++i) {
    SIMPROF_EXPECTS(rec.methods[i] < num_methods,
                    "method id outside profile table");
    entries.emplace_back(offset + rec.methods[i],
                         static_cast<double>(rec.counts[i]));
  }
  // Collected records are sorted already; synthetic test profiles may not
  // be. Stable sort + last-entry-wins matches the dense builder's
  // assignment semantics exactly.
  std::stable_sort(entries.begin(), entries.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  const std::size_t method_begin = cols.size();
  for (const auto& [c, v] : entries) {
    if (cols.size() > method_begin && cols.back() == c) {
      vals.back() = v;
    } else {
      cols.push_back(c);
      vals.push_back(v);
    }
  }
  if (mode == features::FeatureMode::kCombined) {
    // Scale the deduplicated method counts to count/total so the method
    // block carries mass 1 per unit, like each MAV block — the same
    // per-block balance the final L1 row normalization preserves.
    double total = 0.0;
    for (std::size_t i = method_begin; i < vals.size(); ++i) total += vals[i];
    if (total > 0.0) {
      for (std::size_t i = method_begin; i < vals.size(); ++i) {
        vals[i] /= total;
      }
    }
  }
}

stats::SparseMatrix build_sparse_feature_matrix(const ThreadProfile& profile,
                                                features::FeatureMode mode) {
  stats::SparseMatrix m(
      profile.num_units(),
      features::feature_space_cols(mode, profile.num_methods()));
  std::vector<std::uint32_t> cols;
  std::vector<double> vals;
  for (std::size_t u = 0; u < profile.num_units(); ++u) {
    unit_feature_entries(profile.units[u], profile.num_methods(), cols, vals,
                         mode);
    m.append_row(cols, vals);
  }
  m.normalize_rows_l1();
  return m;
}

PhaseModel form_phases(const ThreadProfile& profile,
                       const PhaseFormationConfig& cfg) {
  SIMPROF_EXPECTS(profile.num_units() > 0, "cannot form phases of nothing");
  // 1. Vectorize call stacks in CSR form (full method space, row-normalized)
  // — built once per profile; the dense form only ever materializes for the
  // selected top-K columns.
  const stats::SparseMatrix sparse =
      build_sparse_feature_matrix(profile, cfg.features);
  return form_phases_from_sparse(profile, sparse, cfg);
}

PhaseModel form_phases_from_sparse(const ThreadProfile& profile,
                                   const stats::SparseMatrix& sparse,
                                   const PhaseFormationConfig& cfg) {
  SIMPROF_EXPECTS(profile.num_units() > 0, "cannot form phases of nothing");
  SIMPROF_EXPECTS(
      sparse.rows() == profile.num_units() &&
          sparse.cols() == features::feature_space_cols(
                               cfg.features, profile.num_methods()),
      "feature matrix shape does not match profile/feature mode");
  obs::ObsSpan span("phase.form_phases", {{"units", profile.num_units()},
                                          {"methods", profile.num_methods()}});
  static obs::Counter& formations =
      obs::metrics().counter("phase.formations");
  formations.increment();

  // 2. Univariate linear-regression feature selection against IPC, straight
  // off the sparse matrix.
  std::vector<double> ipc(profile.num_units());
  for (std::size_t u = 0; u < profile.num_units(); ++u) {
    ipc[u] = profile.units[u].ipc();
  }
  std::vector<double> scores = stats::f_regression(sparse, ipc, cfg.threads);
  for (double& v : scores) {
    if (v < cfg.min_f_score) v = 0.0;  // insignificant → eliminated
  }
  const std::vector<std::size_t> selected =
      stats::top_k_indices(scores, cfg.top_k_features);

  PhaseModel model;
  model.feature_mode = cfg.features;
  if (selected.empty()) {
    // No method's frequency correlates with performance: the run is
    // performance-uniform and forms a single phase (grep in Figure 9).
    model.k = 1;
    model.centers = stats::Matrix(1, 0);
    model.labels.assign(profile.num_units(), 0);
    model.silhouette_scores = {cfg.choose_k.k1_baseline_score};
    model.phases = phase_stats_for(profile, model.labels, 1);
    model.phase_types = {jvm::OpKind::kMap};
    model.representative_units = {0};
    return model;
  }
  stats::Matrix features = sparse.select_columns_dense(selected, cfg.threads);
  features.normalize_rows_l1();

  // 3. Cluster with k-means, choosing k by the silhouette 90% rule.
  Rng rng(cfg.seed);
  stats::ChooseKConfig ck = cfg.choose_k;
  if (ck.threads == 0) ck.threads = cfg.threads;
  stats::ChooseKResult chosen = stats::choose_k(features, rng, ck);

  model.k = chosen.k;
  model.silhouette_scores = std::move(chosen.scores);
  model.centers = std::move(chosen.clustering.centers);
  model.labels = std::move(chosen.clustering.labels);
  model.feature_names.reserve(selected.size());
  model.feature_kinds.reserve(selected.size());
  const std::size_t offset = features::method_col_offset(cfg.features);
  for (std::size_t c : selected) {
    if (cfg.features != features::FeatureMode::kFreq && c < hw::kMavDim) {
      // MAV columns carry their canonical names; kFramework keeps them out
      // of the operation-dominance phase typing, which is method-based.
      model.feature_names.push_back(features::mav_feature_name(c));
      model.feature_kinds.push_back(jvm::OpKind::kFramework);
    } else {
      model.feature_names.push_back(profile.method_names[c - offset]);
      model.feature_kinds.push_back(profile.method_kinds[c - offset]);
    }
  }

  // 4. Per-phase CPI statistics, then merge performance-equivalent phases:
  // clusters that differ in code signature but not in CPI distribution are
  // one stratum for sampling purposes (and one phase to an architect).
  model.phases = phase_stats_for(profile, model.labels, model.k);
  if (cfg.merge_threshold > 0.0 && model.k > 1) {
    merge_equivalent_phases(model, profile, cfg.merge_threshold);
  }

  // 5. Phase typing: dominant non-framework operation by snapshot-frame
  // share over the *full* method table (selection is for clustering only;
  // a phase's operational identity uses everything its units executed).
  model.phase_types = classify_phase_types(profile, model.labels, model.k);

  // 6. Representative units (nearest to each center) for the CODE baseline.
  model.representative_units.assign(model.k, 0);
  std::vector<double> best(model.k, -1.0);
  for (std::size_t u = 0; u < features.rows(); ++u) {
    const std::size_t h = model.labels[u];
    const double d2 =
        stats::squared_distance(features.row(u), model.centers.row(h));
    if (best[h] < 0.0 || d2 < best[h]) {
      best[h] = d2;
      model.representative_units[h] = u;
    }
  }
  SIMPROF_LOG(kDebug) << "phase: formed k=" << model.k << " phases from "
                      << profile.num_units() << " units ("
                      << selected.size() << " selected features)";
  return model;
}

std::vector<double> vectorize_unit(const PhaseModel& model,
                                   const ThreadProfile& profile,
                                   std::size_t unit_index) {
  SIMPROF_EXPECTS(unit_index < profile.num_units(), "unit out of range");
  // Map model features to this profile once per call; callers classifying
  // whole profiles should use vectorize_units (which hoists this map) —
  // this entry point is for spot checks and tests.
  const FeatureMaps maps(model);
  std::vector<double> v(model.feature_names.size(), 0.0);
  std::vector<std::uint32_t> cols_scratch;
  std::vector<double> vals_scratch;
  accumulate_unit(model, profile, profile.units[unit_index], maps, v,
                  cols_scratch, vals_scratch);
  return v;
}

stats::Matrix vectorize_units(const PhaseModel& model,
                              const ThreadProfile& profile,
                              std::size_t threads) {
  // Hoisted feature maps (the profile's method ids differ from the training
  // run's, names are the stable identity; MAV columns are fixed), shared
  // read-only by all row blocks.
  const FeatureMaps maps(model);
  const std::size_t n = profile.num_units();
  stats::Matrix vectors(n, model.feature_names.size());
  support::parallel_for(
      threads, 0, n, 256,
      [&](std::size_t, std::size_t cb, std::size_t ce) {
        std::vector<std::uint32_t> cols_scratch;
        std::vector<double> vals_scratch;
        for (std::size_t u = cb; u < ce; ++u) {
          accumulate_unit(model, profile, profile.units[u], maps,
                          vectors.row(u), cols_scratch, vals_scratch);
        }
      });
  return vectors;
}

void merge_equivalent_phases(PhaseModel& model, const ThreadProfile& profile,
                             double threshold) {
  // Union-find over phases; equivalence by the Eq. 6-style relative test on
  // (mean, stddev), with near-zero deviations treated as equal.
  std::vector<std::size_t> parent(model.k);
  for (std::size_t h = 0; h < model.k; ++h) parent[h] = h;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };

  auto equivalent = [&](const PhaseStats& a, const PhaseStats& b) {
    if (a.count == 0 || b.count == 0) return false;
    const double mean_ref = std::max(a.mean_cpi, b.mean_cpi);
    if (mean_ref <= 0.0) return true;
    if (std::abs(a.mean_cpi - b.mean_cpi) > threshold * mean_ref) {
      return false;
    }
    // Dispersion leg of Eq. 6 on the *trimmed* deviation — the raw σ of a
    // phase with a handful of outlier units can differ across otherwise
    // identical strata by far more than `threshold`, which used to keep
    // performance-equivalent phases apart (and over-stratify the sample).
    const double dev_a = a.trimmed_stddev_cpi;
    const double dev_b = b.trimmed_stddev_cpi;
    const double dev_ref = std::max(dev_a, dev_b);
    if (dev_ref <= 0.05 * mean_ref) return true;  // both effectively tight
    return std::abs(dev_a - dev_b) <= threshold * dev_ref;
  };

  for (std::size_t a = 0; a < model.k; ++a) {
    for (std::size_t b = a + 1; b < model.k; ++b) {
      if (equivalent(model.phases[a], model.phases[b])) {
        parent[find(b)] = find(a);
      }
    }
  }

  // Compact to dense new ids.
  std::vector<std::size_t> new_id(model.k, model.k);
  std::size_t next = 0;
  for (std::size_t h = 0; h < model.k; ++h) {
    const std::size_t r = find(h);
    if (new_id[r] == model.k) new_id[r] = next++;
    new_id[h] = new_id[r];
  }
  if (next == model.k) return;  // nothing merged

  // Merged centers: count-weighted averages of constituent centers.
  stats::Matrix centers(next, model.centers.cols());
  std::vector<double> weight(next, 0.0);
  for (std::size_t h = 0; h < model.k; ++h) {
    const double w = static_cast<double>(model.phases[h].count);
    const std::size_t t = new_id[h];
    auto dst = centers.row(t);
    const auto src = model.centers.row(h);
    for (std::size_t c = 0; c < centers.cols(); ++c) dst[c] += w * src[c];
    weight[t] += w;
  }
  for (std::size_t t = 0; t < next; ++t) {
    if (weight[t] <= 0.0) continue;
    for (auto& v : centers.row(t)) v /= weight[t];
  }
  model.centers = std::move(centers);
  for (auto& l : model.labels) l = new_id[l];
  model.k = next;
  model.phases = phase_stats_for(profile, model.labels, model.k);
}

stats::CovSummary cov_summary(const ThreadProfile& profile,
                              const PhaseModel& model) {
  const auto cpis = profile.cpis();
  return stats::grouped_cov(cpis, model.labels, model.k);
}

std::vector<jvm::OpKind> classify_phase_types(
    const ThreadProfile& profile, const std::vector<std::size_t>& labels,
    std::size_t k) {
  SIMPROF_EXPECTS(labels.size() == profile.num_units(),
                  "labels/profile mismatch");
  std::vector<std::array<double, 8>> weight(k, std::array<double, 8>{});
  for (std::size_t u = 0; u < labels.size(); ++u) {
    const UnitRecord& rec = profile.units[u];
    for (std::size_t i = 0; i < rec.methods.size(); ++i) {
      const auto kind = profile.method_kinds[rec.methods[i]];
      weight[labels[u]][static_cast<std::size_t>(kind)] +=
          static_cast<double>(rec.counts[i]);
    }
  }
  std::vector<jvm::OpKind> types(k, jvm::OpKind::kFramework);
  for (std::size_t h = 0; h < k; ++h) {
    double best = 0.0;
    for (std::size_t kind = 0; kind < 8; ++kind) {
      if (static_cast<jvm::OpKind>(kind) == jvm::OpKind::kFramework) continue;
      if (weight[h][kind] > best) {
        best = weight[h][kind];
        types[h] = static_cast<jvm::OpKind>(kind);
      }
    }
    // Shuffle traffic is IO in the paper's 4-type taxonomy (Section IV-D).
    if (types[h] == jvm::OpKind::kShuffle) types[h] = jvm::OpKind::kIo;
  }
  return types;
}

std::size_t trimmed_tail_count(std::size_t count) {
  if (count < kTrimFloorUnits) return 0;
  return std::max<std::size_t>(1, count / 20);
}

std::vector<PhaseStats> phase_stats_for(const ThreadProfile& profile,
                                        const std::vector<std::size_t>& labels,
                                        std::size_t k) {
  SIMPROF_EXPECTS(labels.size() == profile.num_units(),
                  "labels/profile mismatch");
  std::vector<std::vector<double>> groups(k);
  for (std::size_t u = 0; u < labels.size(); ++u) {
    SIMPROF_EXPECTS(labels[u] < k, "label out of range");
    groups[labels[u]].push_back(profile.units[u].cpi());
  }
  std::vector<PhaseStats> out(k);
  const double n = static_cast<double>(profile.num_units());
  for (std::size_t h = 0; h < k; ++h) {
    out[h].count = groups[h].size();
    out[h].mean_cpi = stats::mean(groups[h]);
    out[h].stddev_cpi = stats::sample_stddev(groups[h]);
    // Trimmed deviation per the explicit policy in phase.h: zero below
    // kTrimFloorUnits (fall back to raw σ), at least one per tail above it.
    auto& g = groups[h];
    std::sort(g.begin(), g.end());
    const std::size_t trim = trimmed_tail_count(g.size());
    if (trim > 0 && g.size() > 2 * trim) {
      out[h].trimmed_stddev_cpi = stats::sample_stddev(
          std::span<const double>(g.data() + trim, g.size() - 2 * trim));
    } else {
      out[h].trimmed_stddev_cpi = out[h].stddev_cpi;
    }
    out[h].cov = out[h].mean_cpi > 0.0 ? out[h].stddev_cpi / out[h].mean_cpi
                                       : 0.0;
    out[h].weight = n > 0.0 ? static_cast<double>(out[h].count) / n : 0.0;
  }
  return out;
}

}  // namespace simprof::core
