// Online streaming phase formation — the live sibling of form_phases.
//
// The batch pipeline (phase.h) needs the whole run's profile before it can
// cluster; a profiling daemon wants phase structure *while the run is still
// executing*, so selections can start before the last unit lands. The
// StreamingPhaseFormer accepts sampling units one at a time (or in
// micro-batches via repeated ingest calls), accumulates their raw
// method-frequency rows incrementally in the CSR builder, and maintains a
// live cluster model three ways at once:
//
//   * periodic reclusters — full form_phases_from_sparse passes over a
//     normalized snapshot of the accumulated matrix, on a geometric
//     schedule (warmup_units, then whenever the population has grown by
//     recluster_growth×). Each recluster re-runs feature selection AND the
//     silhouette k-sweep, so k is revisited as the workload reveals itself;
//   * mini-batch refinement — between reclusters, arriving units nudge the
//     centers with stats::MiniBatchKMeans (per-center learning rate 1/n_c),
//     so the model tracks drift at O(d) per unit;
//   * live classification — every ingested unit is immediately assigned to
//     its nearest current center and the label recorded, so callers can
//     stratify/select without waiting for the next recluster.
//
// Equivalence contract (enforced by tests/core_streaming_test.cc): with
// max_retained_units = 0, ingesting a profile's units in order and calling
// finalize() yields a PhaseModel bit-identical to batch form_phases on that
// profile — the snapshot the final recluster sees is bitwise the matrix the
// batch builder would have built (shared unit_feature_entries row
// construction, same normalization order). Shuffled arrival converges to
// the same structure within test tolerance. Determinism: ingestion is
// serial by construction and every parallel stage below it is bit-identical
// for any thread count, so the same arrival order gives the same model at
// any `threads` value.
//
// Memory bound: per-former state is O(Σ nnz of retained units) for the CSR
// rows plus O(retained units) bookkeeping. With max_retained_units = n the
// former evicts the oldest units at each recluster, bounding state to the
// newest n units (and trading away exact batch equivalence for a sliding
// window).
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <vector>

#include "core/phase.h"
#include "core/profile.h"
#include "stats/kmeans.h"
#include "stats/sparse.h"

namespace simprof::core {

struct StreamingConfig {
  /// Formation parameters used at every recluster (threads, feature
  /// selection, choose_k, merge threshold, seed — identical meaning to the
  /// batch path, which is what makes finalize() comparable to it).
  PhaseFormationConfig formation;
  /// Units to accumulate before the first recluster. Below this the former
  /// has no model and ingest() returns kNoPhase.
  std::size_t warmup_units = 16;
  /// Geometric recluster schedule: recluster when the retained population
  /// reaches growth × its size at the previous recluster. 1.5 means ~2.7
  /// full passes per doubling — O(log n) reclusters over a run.
  double recluster_growth = 1.5;
  /// Units per mini-batch center refinement between reclusters (pending
  /// units buffer up and flush through MiniBatchKMeans::partial_fit).
  std::size_t refine_batch = 8;
  /// Memory bound: retain at most this many newest units (0 = retain all,
  /// required for exact batch equivalence). Eviction happens at recluster
  /// boundaries, oldest first.
  std::size_t max_retained_units = 0;
};

class StreamingPhaseFormer {
 public:
  /// ingest() result before the first recluster: no model, no phase yet.
  static constexpr std::size_t kNoPhase = static_cast<std::size_t>(-1);

  explicit StreamingPhaseFormer(StreamingConfig cfg = {});

  /// Ingest one sampling unit from `source` (typically the unit that just
  /// completed in a live run). Method ids are adopted verbatim — the
  /// internal method table is extended to cover the source's and names must
  /// agree where they overlap, so in-order full ingestion reconstructs the
  /// source profile exactly. Returns the unit's live phase label under the
  /// current centers, or kNoPhase while still warming up.
  std::size_t ingest(const ThreadProfile& source, std::size_t unit_index);

  /// Ingest a contiguous micro-batch [begin, end) of source units, in
  /// order. Equivalent to calling ingest() per unit.
  void ingest_range(const ThreadProfile& source, std::size_t begin,
                    std::size_t end);

  /// Units ingested over the former's lifetime (eviction does not subtract).
  std::size_t units_ingested() const { return total_ingested_; }
  /// Units currently retained (== ingested unless max_retained_units hit).
  std::size_t units_retained() const { return profile_.num_units(); }
  std::size_t reclusters() const { return reclusters_; }
  bool has_model() const { return reclusters_ > 0; }

  /// The latest reclustered model (refined centers live in center_tracker_;
  /// this is the last full-pass model). Valid once has_model().
  const PhaseModel& model() const { return model_; }

  /// Live labels of the retained units under the current model: recluster
  /// labels for units present at the last recluster, nearest-center labels
  /// for units that arrived since. Index-aligned with profile().units.
  const std::vector<std::size_t>& live_labels() const { return live_labels_; }

  /// The internal accumulated profile (retained units, adopted method
  /// table). Feed this plus model() to the samplers for live selections.
  const ThreadProfile& profile() const { return profile_; }

  /// Invoked after every recluster (model just replaced), e.g. to emit an
  /// interim sample plan before the run finishes. The reference is `*this`;
  /// the hook may read model()/profile()/live_labels() but must not ingest.
  using UpdateHook = std::function<void(const StreamingPhaseFormer&)>;
  void set_update_hook(UpdateHook hook) { hook_ = std::move(hook); }

  /// Force a full recluster over everything retained and return the final
  /// model. With max_retained_units = 0 and in-order arrival this is
  /// bit-identical to form_phases on the source profile. Idempotent: a
  /// second call with no intervening ingest reclusters the same population.
  PhaseModel finalize();

 private:
  void adopt_method_table(const ThreadProfile& source);
  void recluster();
  void flush_refinement();
  std::size_t classify_latest();

  StreamingConfig cfg_;
  ThreadProfile profile_;        ///< retained units + adopted method table
  stats::SparseMatrix raw_;      ///< raw-count CSR rows, one per retained unit
  PhaseModel model_;
  stats::MiniBatchKMeans center_tracker_;  ///< refined copy of model_.centers
  /// method id → feature position in model_ feature space (kNone if the
  /// method was not selected); rebuilt at each recluster.
  std::vector<std::size_t> feature_of_method_;
  /// MAV column → feature position (kNone if not selected); used by the
  /// live classifier under kMav/kCombined feature modes.
  std::array<std::size_t, hw::kMavDim> feature_of_mav_{};
  std::vector<std::size_t> live_labels_;
  stats::Matrix pending_;        ///< vectorized units awaiting partial_fit
  std::size_t pending_rows_ = 0;
  std::size_t total_ingested_ = 0;
  std::size_t reclusters_ = 0;
  std::size_t last_recluster_units_ = 0;
  UpdateHook hook_;
  std::vector<std::uint32_t> cols_scratch_;
  std::vector<double> vals_scratch_;
  /// Last source table adopt_method_table verified, so ingesting a run of
  /// units from the same (unmodified) profile checks names once, not per
  /// unit.
  const void* verified_table_ = nullptr;
  std::size_t verified_table_size_ = 0;
};

}  // namespace simprof::core
