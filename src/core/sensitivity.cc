#include "core/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"
#include "stats/matrix.h"
#include "support/assert.h"

namespace simprof::core {

namespace {
/// Sample standard deviations from fewer units than this are too noisy to
/// drive the Eq. 6 deviation comparison.
constexpr std::size_t kMinUnitsForStddevTest = 40;
}  // namespace

std::vector<std::size_t> classify_units(const PhaseModel& trained,
                                        const ThreadProfile& reference,
                                        std::size_t threads) {
  SIMPROF_EXPECTS(trained.k > 0, "untrained model");
  // Batch vectorization into the model's feature space (phase.h), then bulk
  // blocked nearest-center classification on the PR 1 DistanceTable kernel
  // (matrix.h) — both row-blocked on the thread pool.
  const stats::Matrix vectors = vectorize_units(trained, reference, threads);
  return stats::nearest_centers(trained.centers, vectors, threads);
}

std::vector<PhaseSensitivity> phase_sensitivity_test(
    const PhaseModel& trained, const ThreadProfile& reference,
    double threshold) {
  const auto labels = classify_units(trained, reference);
  const auto ref_stats = phase_stats_for(reference, labels, trained.k);

  // Stddevs below numerical dust (relative to the mean) are treated as zero
  // so that bit-identical CPIs never register as variance.
  auto denoise = [](double stddev, double mean) {
    return stddev < 1e-9 * std::max(mean, 1.0) ? 0.0 : stddev;
  };

  std::vector<PhaseSensitivity> out(trained.k);
  for (std::size_t h = 0; h < trained.k; ++h) {
    PhaseSensitivity& s = out[h];
    s.train_mean = trained.phases[h].mean_cpi;
    s.train_stddev =
        denoise(trained.phases[h].trimmed_stddev_cpi, s.train_mean);
    s.ref_mean = ref_stats[h].mean_cpi;
    s.ref_stddev = denoise(ref_stats[h].trimmed_stddev_cpi, s.ref_mean);
    s.ref_count = ref_stats[h].count;
    if (s.ref_count == 0 || trained.phases[h].count == 0) {
      // The phase does not occur under this input: its performance cannot be
      // compared — treated as not passing the test for this reference.
      continue;
    }
    s.mean_delta = s.train_mean > 0.0
                       ? std::abs(s.train_mean - s.ref_mean) / s.train_mean
                       : 0.0;
    s.stddev_delta =
        s.train_stddev > 0.0
            ? std::abs(s.train_stddev - s.ref_stddev) / s.train_stddev
            : (s.ref_stddev > 0.0 ? 1.0 : 0.0);
    // The deviation comparison needs enough reference units for σ to be
    // estimable at all; below that only the mean test is meaningful.
    const bool sigma_testable = s.ref_count >= kMinUnitsForStddevTest;
    s.sensitive = s.mean_delta > threshold ||
                  (sigma_testable && s.stddev_delta > threshold);
  }
  return out;
}

std::size_t SensitivityReport::num_sensitive() const {
  std::size_t n = 0;
  for (bool b : phase_sensitive) n += b ? 1 : 0;
  return n;
}

double SensitivityReport::sensitive_point_fraction(
    const SamplePlan& plan) const {
  if (plan.points.empty()) return 0.0;
  std::size_t in_sensitive = 0;
  for (const auto& pt : plan.points) {
    SIMPROF_EXPECTS(pt.phase < phase_sensitive.size(),
                    "plan phase outside report");
    in_sensitive += phase_sensitive[pt.phase] ? 1 : 0;
  }
  return static_cast<double>(in_sensitive) /
         static_cast<double>(plan.points.size());
}

SensitivityReport input_sensitivity_test(
    const PhaseModel& trained,
    const std::vector<const ThreadProfile*>& references,
    const std::vector<std::string>& reference_names, double threshold) {
  SIMPROF_EXPECTS(references.size() == reference_names.size(),
                  "reference name/profile count mismatch");
  obs::ObsSpan span("sensitivity.input_test",
                    {{"k", trained.k}, {"references", references.size()}});
  static obs::Counter& tests = obs::metrics().counter("sensitivity.tests");
  static obs::Counter& sensitive_phases =
      obs::metrics().counter("sensitivity.sensitive_phases");
  tests.increment();
  SensitivityReport report;
  report.phase_sensitive.assign(trained.k, false);
  report.reference_names = reference_names;
  for (std::size_t r = 0; r < references.size(); ++r) {
    const ThreadProfile* ref = references[r];
    SIMPROF_EXPECTS(ref != nullptr, "null reference profile");
    auto per_phase = phase_sensitivity_test(trained, *ref, threshold);
    std::size_t hits = 0;
    for (std::size_t h = 0; h < trained.k; ++h) {
      if (per_phase[h].sensitive) {
        report.phase_sensitive[h] = true;
        ++hits;
      }
    }
    SIMPROF_LOG(kInfo) << "sensitivity: reference " << reference_names[r]
                       << " flags " << hits << "/" << trained.k
                       << " phases (threshold=" << threshold << ")";
    report.per_reference.push_back(std::move(per_phase));
  }
  sensitive_phases.add(report.num_sensitive());
  return report;
}

}  // namespace simprof::core
