// Phase sampling (Section III-C) and the comparison baselines (Section
// IV-B): stratified random sampling with Neyman optimal allocation
// (SimProf), simple random sampling (SRS), a single N-second contiguous
// interval (SECOND), and the SimPoint-like one-point-per-phase pick (CODE).
//
// A SamplePlan carries the chosen simulation points, the estimator they
// induce, and — for the probabilistic techniques — the stratified standard
// error / confidence interval of Eqs. 2–5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/phase.h"
#include "core/profile.h"
#include "stats/stratified.h"

namespace simprof::core {

/// One selected sampling unit. `weight` is the estimator weight the unit
/// carries (they sum to 1 within a plan).
struct SimulationPoint {
  std::size_t unit_index = 0;
  std::size_t phase = 0;  ///< 0 for unstratified techniques
  double weight = 0.0;
};

enum class SamplingTechnique {
  kSimProf,
  kSrs,
  kSecond,
  kCode,
  kSystematic,
  kSimProfSystematic,
  kSmarts,
  kSimProfTwoPhase,
};

std::string_view to_string(SamplingTechnique t);

struct SamplePlan {
  SamplingTechnique technique = SamplingTechnique::kSimProf;
  std::vector<SimulationPoint> points;
  std::vector<std::size_t> allocation;  ///< per-phase n_h (stratified only)
  double estimated_cpi = 0.0;
  double standard_error = 0.0;          ///< 0 for SECOND/CODE (not probabilistic)
  stats::ConfidenceInterval ci{};       ///< at the z passed in

  std::size_t sample_size() const { return points.size(); }
};

/// Relative error of a plan's estimate against the profile's oracle CPI.
double relative_error(const SamplePlan& plan, const ThreadProfile& profile);

/// Strata description (N_h, σ_h, μ_h) from a phase model.
std::vector<stats::Stratum> strata_of(const PhaseModel& model);

/// SimProf: stratified random sampling, optimal allocation of `n` points.
SamplePlan simprof_sample(const ThreadProfile& profile,
                          const PhaseModel& model, std::size_t n,
                          std::uint64_t seed, double z = stats::kZ997);

/// SRS baseline: uniform sample of `n` units without replacement.
SamplePlan srs_sample(const ThreadProfile& profile, std::size_t n,
                      std::uint64_t seed, double z = stats::kZ997);

/// SECOND baseline: one contiguous interval covering `seconds` of virtual
/// time at `clock_ghz`, starting after `warmup_fraction` of the run.
SamplePlan second_sample(const ThreadProfile& profile, double seconds,
                         double clock_ghz, double warmup_fraction = 0.1);

/// CODE baseline: the unit nearest each phase center, weighted by phase.
SamplePlan code_sample(const ThreadProfile& profile, const PhaseModel& model);

/// SMARTS-style systematic sampling (Wunderlich et al., ISCA'03): every
/// k-th unit starting from a random offset, k = ⌈N/n⌉. The paper names
/// combining SimProf with systematic sampling as future work; this is the
/// pure-systematic comparator (implemented as an extension).
SamplePlan systematic_sample(const ThreadProfile& profile, std::size_t n,
                             std::uint64_t seed, double z = stats::kZ997);

/// SimProf ∘ systematic: stratified allocation chooses how many points each
/// phase gets (Eq. 1), but points *within* a phase are taken systematically
/// over the phase's unit sequence instead of uniformly at random — the
/// paper's proposed combination (Section III-C, last paragraph).
SamplePlan simprof_systematic_sample(const ThreadProfile& profile,
                                     const PhaseModel& model, std::size_t n,
                                     std::uint64_t seed,
                                     double z = stats::kZ997);

/// SMARTS baseline (Wunderlich et al., ISCA'03): systematic unit selection
/// — every k-th unit from a random offset — whose selected units are meant
/// to be *measured through checkpoint restore + functional fast-forward*
/// rather than by re-simulating the whole run (WorkloadLab::measure_units
/// composes that half; this function only plans the selection and its
/// estimator). Selection math matches systematic_sample; the techniques
/// differ in measurement cost, not statistics.
SamplePlan smarts_sample(const ThreadProfile& profile, std::size_t n,
                         std::uint64_t seed, double z = stats::kZ997);

/// Phase-1 oversampling factor of two_phase_sample: the cheap classified
/// sample is n′ = min(N, kTwoPhaseOversample·n). Classification is a
/// nearest-center lookup, orders of magnitude cheaper than detailed
/// measurement, so a generous factor keeps the weight-noise variance term
/// (Σ w′_h(ȳ_h−ȳ)²/n′) small relative to the within-stratum term.
inline constexpr std::size_t kTwoPhaseOversample = 8;

/// SimProf with two-phase stratified estimation (double sampling for
/// stratification, stats/two_phase.h): a phase-1 SRS of n′ units is only
/// *classified* under the model (estimated weights w′_h = n′_h/n′), then a
/// phase-2 subsample of n units — allocated Neyman-style against the
/// model's prior per-phase deviations — is measured in detail. Unlike
/// simprof_sample this never needs exact stratum populations, at the cost
/// of the estimated-weight variance term in the SE. Point weights are
/// w′_h/n_h and sum to 1.
SamplePlan two_phase_sample(const ThreadProfile& profile,
                            const PhaseModel& model, std::size_t n,
                            std::uint64_t seed, double z = stats::kZ997);

/// Smallest stratified sample size achieving z·SE ≤ rel_margin·μ (Figure 8).
std::size_t required_sample_size(const PhaseModel& model, double rel_margin,
                                 double z = stats::kZ997);

}  // namespace simprof::core
