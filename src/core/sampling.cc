#include "core/sampling.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/obs.h"
#include "stats/descriptive.h"
#include "stats/two_phase.h"
#include "support/assert.h"
#include "support/rng.h"

namespace simprof::core {

std::string_view to_string(SamplingTechnique t) {
  switch (t) {
    case SamplingTechnique::kSimProf: return "SimProf";
    case SamplingTechnique::kSrs: return "SRS";
    case SamplingTechnique::kSecond: return "SECOND";
    case SamplingTechnique::kCode: return "CODE";
    case SamplingTechnique::kSystematic: return "SYSTEMATIC";
    case SamplingTechnique::kSimProfSystematic: return "SimProf+SYS";
    case SamplingTechnique::kSmarts: return "SMARTS";
    case SamplingTechnique::kSimProfTwoPhase: return "SimProf+2P";
  }
  return "unknown";
}

double relative_error(const SamplePlan& plan, const ThreadProfile& profile) {
  const double oracle = profile.oracle_cpi();
  if (oracle <= 0.0) return 0.0;
  return std::abs(plan.estimated_cpi - oracle) / oracle;
}

std::vector<stats::Stratum> strata_of(const PhaseModel& model) {
  std::vector<stats::Stratum> strata;
  strata.reserve(model.phases.size());
  for (const auto& p : model.phases) {
    strata.push_back(stats::Stratum{p.count, p.stddev_cpi, p.mean_cpi});
  }
  return strata;
}

SamplePlan simprof_sample(const ThreadProfile& profile,
                          const PhaseModel& model, std::size_t n,
                          std::uint64_t seed, double z) {
  SIMPROF_EXPECTS(n > 0, "sample size must be positive");
  SIMPROF_EXPECTS(model.labels.size() == profile.num_units(),
                  "model fitted on a different profile");

  obs::ObsSpan span("sample.simprof",
                    {{"n", n}, {"k", model.k}, {"units", profile.num_units()}});
  static obs::Counter& plans = obs::metrics().counter("sample.simprof_plans");
  plans.increment();

  SamplePlan plan;
  plan.technique = SamplingTechnique::kSimProf;
  const auto strata = strata_of(model);
  plan.allocation = stats::optimal_allocation(strata, n);
  if (obs::log_enabled(obs::LogLevel::kDebug)) {
    std::ostringstream alloc;
    for (std::size_t h = 0; h < plan.allocation.size(); ++h) {
      if (h > 0) alloc << ' ';
      alloc << plan.allocation[h];
    }
    SIMPROF_LOG(kDebug) << "sample: Neyman allocation n=" << n
                        << " k=" << model.k << " -> [" << alloc.str() << "]";
  }

  // Group unit indices by phase, then draw n_h uniformly without
  // replacement from each phase.
  std::vector<std::vector<std::size_t>> members(model.k);
  for (std::size_t u = 0; u < model.labels.size(); ++u) {
    members[model.labels[u]].push_back(u);
  }
  Rng rng(seed);
  const double total_units = static_cast<double>(profile.num_units());
  for (std::size_t h = 0; h < model.k; ++h) {
    const std::size_t nh = plan.allocation[h];
    if (nh == 0) continue;
    SIMPROF_ASSERT(nh <= members[h].size(), "allocation exceeds phase size");
    shuffle(members[h], rng);
    const double w_h = static_cast<double>(members[h].size()) / total_units;
    for (std::size_t i = 0; i < nh; ++i) {
      plan.points.push_back(SimulationPoint{
          members[h][i], h, w_h / static_cast<double>(nh)});
    }
  }

  // Stratified estimator: Σ_h W_h · mean(sampled CPIs of phase h). Phases
  // with zero allocation only arise when σ_h = 0 nowhere — Neyman gives
  // every non-empty phase ≥ 1 point via the allocation floor.
  double est = 0.0;
  for (const auto& pt : plan.points) {
    est += pt.weight * profile.units[pt.unit_index].cpi();
  }
  plan.estimated_cpi = est;
  plan.standard_error = stats::stratified_standard_error(strata,
                                                         plan.allocation);
  plan.ci = stats::confidence_interval(est, plan.standard_error, z);
  return plan;
}

SamplePlan srs_sample(const ThreadProfile& profile, std::size_t n,
                      std::uint64_t seed, double z) {
  SIMPROF_EXPECTS(n > 0, "sample size must be positive");
  SIMPROF_EXPECTS(profile.num_units() > 0, "empty profile");
  const std::size_t take = std::min(n, profile.num_units());

  std::vector<std::size_t> idx(profile.num_units());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  Rng rng(seed);
  shuffle(idx, rng);

  SamplePlan plan;
  plan.technique = SamplingTechnique::kSrs;
  double est = 0.0;
  std::vector<double> sampled;
  sampled.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    plan.points.push_back(
        SimulationPoint{idx[i], 0, 1.0 / static_cast<double>(take)});
    sampled.push_back(profile.units[idx[i]].cpi());
    est += sampled.back() / static_cast<double>(take);
  }
  plan.estimated_cpi = est;
  // SRS standard error with finite-population correction.
  const double big_n = static_cast<double>(profile.num_units());
  const double s = stats::sample_stddev(sampled);
  const double fpc = 1.0 - static_cast<double>(take) / big_n;
  plan.standard_error =
      s / std::sqrt(static_cast<double>(take)) * std::sqrt(std::max(fpc, 0.0));
  plan.ci = stats::confidence_interval(est, plan.standard_error, z);
  return plan;
}

SamplePlan second_sample(const ThreadProfile& profile, double seconds,
                         double clock_ghz, double warmup_fraction) {
  SIMPROF_EXPECTS(profile.num_units() > 0, "empty profile");
  SIMPROF_EXPECTS(seconds > 0.0 && clock_ghz > 0.0, "invalid interval");

  const auto target_cycles =
      static_cast<std::uint64_t>(seconds * clock_ghz * 1e9);
  const auto start = static_cast<std::size_t>(
      warmup_fraction * static_cast<double>(profile.num_units()));

  SamplePlan plan;
  plan.technique = SamplingTechnique::kSecond;
  std::uint64_t cycles = 0;
  std::size_t end = start;
  while (end < profile.num_units() && cycles < target_cycles) {
    cycles += profile.units[end].counters.cycles;
    ++end;
  }
  SIMPROF_ASSERT(end > start, "SECOND interval selected no units");
  const double w = 1.0 / static_cast<double>(end - start);
  double est = 0.0;
  for (std::size_t u = start; u < end; ++u) {
    plan.points.push_back(SimulationPoint{u, 0, w});
    est += w * profile.units[u].cpi();
  }
  plan.estimated_cpi = est;
  return plan;  // deterministic window: no meaningful SE/CI
}

SamplePlan code_sample(const ThreadProfile& profile, const PhaseModel& model) {
  SamplePlan plan;
  plan.technique = SamplingTechnique::kCode;
  double est = 0.0;
  for (std::size_t h = 0; h < model.k; ++h) {
    if (model.phases[h].count == 0) continue;
    const std::size_t u = model.representative_units[h];
    plan.points.push_back(SimulationPoint{u, h, model.phases[h].weight});
    est += model.phases[h].weight * profile.units[u].cpi();
  }
  plan.estimated_cpi = est;
  return plan;
}

SamplePlan two_phase_sample(const ThreadProfile& profile,
                            const PhaseModel& model, std::size_t n,
                            std::uint64_t seed, double z) {
  SIMPROF_EXPECTS(n > 0, "sample size must be positive");
  SIMPROF_EXPECTS(model.labels.size() == profile.num_units(),
                  "model fitted on a different profile");

  obs::ObsSpan span("sample.two_phase",
                    {{"n", n}, {"k", model.k}, {"units", profile.num_units()}});
  static obs::Counter& plans =
      obs::metrics().counter("sample.two_phase_plans");
  plans.increment();

  SamplePlan plan;
  plan.technique = SamplingTechnique::kSimProfTwoPhase;

  // Phase 1: a cheap SRS of n′ units, classified only (the model's labels
  // stand in for the nearest-center lookup a live profiler would do).
  const std::size_t big_n = profile.num_units();
  const std::size_t nprime = std::min(big_n, n * kTwoPhaseOversample);
  std::vector<std::size_t> idx(big_n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  Rng rng(seed);
  shuffle(idx, rng);

  std::vector<std::vector<std::size_t>> members(model.k);
  for (std::size_t i = 0; i < nprime; ++i) {
    members[model.labels[idx[i]]].push_back(idx[i]);
  }
  std::vector<std::size_t> phase1_counts(model.k);
  std::vector<double> priors(model.k);
  for (std::size_t h = 0; h < model.k; ++h) {
    phase1_counts[h] = members[h].size();
    priors[h] = model.phases[h].stddev_cpi;
  }

  // Phase 2: Neyman-against-priors allocation of the measured subsample,
  // drawn without replacement from the phase-1 members of each stratum.
  plan.allocation = stats::two_phase_allocation(phase1_counts, priors,
                                                std::min(n, nprime));
  std::vector<stats::TwoPhaseStratum> strata(model.k);
  for (std::size_t h = 0; h < model.k; ++h) {
    strata[h].phase1_count = phase1_counts[h];
    const std::size_t nh = plan.allocation[h];
    if (nh == 0) continue;
    SIMPROF_ASSERT(nh <= members[h].size(),
                   "allocation exceeds phase-1 stratum size");
    shuffle(members[h], rng);
    const double w_h = static_cast<double>(phase1_counts[h]) /
                       static_cast<double>(nprime);
    std::vector<double> sampled;
    sampled.reserve(nh);
    for (std::size_t i = 0; i < nh; ++i) {
      plan.points.push_back(SimulationPoint{
          members[h][i], h, w_h / static_cast<double>(nh)});
      sampled.push_back(profile.units[members[h][i]].cpi());
    }
    strata[h].sample_size = nh;
    strata[h].sample_mean = stats::mean(sampled);
    strata[h].sample_stddev = stats::sample_stddev(sampled);
  }

  const stats::TwoPhaseEstimate est = stats::two_phase_estimate(strata, z);
  plan.estimated_cpi = est.mean;
  plan.standard_error = est.standard_error;
  plan.ci = est.ci;
  return plan;
}

std::size_t required_sample_size(const PhaseModel& model, double rel_margin,
                                 double z) {
  return stats::required_sample_size(strata_of(model), rel_margin, z);
}

namespace {

/// Every k-th element of `units` from a random start, exactly `take` picks.
std::vector<std::size_t> systematic_picks(std::span<const std::size_t> units,
                                          std::size_t take, Rng& rng) {
  std::vector<std::size_t> picks;
  if (units.empty() || take == 0) return picks;
  take = std::min(take, units.size());
  const double stride =
      static_cast<double>(units.size()) / static_cast<double>(take);
  const double start = rng.next_double() * stride;
  picks.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    auto idx = static_cast<std::size_t>(start + static_cast<double>(i) * stride);
    if (idx >= units.size()) idx = units.size() - 1;
    picks.push_back(units[idx]);
  }
  return picks;
}

}  // namespace

SamplePlan systematic_sample(const ThreadProfile& profile, std::size_t n,
                             std::uint64_t seed, double z) {
  SIMPROF_EXPECTS(n > 0, "sample size must be positive");
  SIMPROF_EXPECTS(profile.num_units() > 0, "empty profile");
  std::vector<std::size_t> all(profile.num_units());
  std::iota(all.begin(), all.end(), std::size_t{0});
  Rng rng(seed);
  const auto picks = systematic_picks(all, n, rng);

  SamplePlan plan;
  plan.technique = SamplingTechnique::kSystematic;
  std::vector<double> sampled;
  sampled.reserve(picks.size());
  double est = 0.0;
  for (std::size_t u : picks) {
    plan.points.push_back(
        SimulationPoint{u, 0, 1.0 / static_cast<double>(picks.size())});
    sampled.push_back(profile.units[u].cpi());
    est += sampled.back() / static_cast<double>(picks.size());
  }
  plan.estimated_cpi = est;
  // SRS-style SE as the standard approximation for systematic designs.
  const double big_n = static_cast<double>(profile.num_units());
  const double s = stats::sample_stddev(sampled);
  const double fpc = 1.0 - static_cast<double>(picks.size()) / big_n;
  plan.standard_error = s / std::sqrt(static_cast<double>(picks.size())) *
                        std::sqrt(std::max(fpc, 0.0));
  plan.ci = stats::confidence_interval(est, plan.standard_error, z);
  return plan;
}

SamplePlan smarts_sample(const ThreadProfile& profile, std::size_t n,
                         std::uint64_t seed, double z) {
  // Same systematic selection and estimator as systematic_sample; the
  // technique tag tells downstream consumers (benches, the CLI) to measure
  // the selected units through the checkpoint fast path.
  SamplePlan plan = systematic_sample(profile, n, seed, z);
  plan.technique = SamplingTechnique::kSmarts;
  return plan;
}

SamplePlan simprof_systematic_sample(const ThreadProfile& profile,
                                     const PhaseModel& model, std::size_t n,
                                     std::uint64_t seed, double z) {
  SIMPROF_EXPECTS(n > 0, "sample size must be positive");
  SIMPROF_EXPECTS(model.labels.size() == profile.num_units(),
                  "model fitted on a different profile");

  SamplePlan plan;
  plan.technique = SamplingTechnique::kSimProfSystematic;
  const auto strata = strata_of(model);
  plan.allocation = stats::optimal_allocation(strata, n);

  std::vector<std::vector<std::size_t>> members(model.k);
  for (std::size_t u = 0; u < model.labels.size(); ++u) {
    members[model.labels[u]].push_back(u);  // already in execution order
  }
  Rng rng(seed);
  const double total_units = static_cast<double>(profile.num_units());
  double est = 0.0;
  for (std::size_t h = 0; h < model.k; ++h) {
    const auto picks = systematic_picks(members[h], plan.allocation[h], rng);
    if (picks.empty()) continue;
    const double w_h = static_cast<double>(members[h].size()) / total_units;
    for (std::size_t u : picks) {
      const double w = w_h / static_cast<double>(picks.size());
      plan.points.push_back(SimulationPoint{u, h, w});
      est += w * profile.units[u].cpi();
    }
  }
  plan.estimated_cpi = est;
  plan.standard_error =
      stats::stratified_standard_error(strata, plan.allocation);
  plan.ci = stats::confidence_interval(est, plan.standard_error, z);
  return plan;
}

}  // namespace simprof::core
