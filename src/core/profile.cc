#include "core/profile.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "obs/metrics.h"
#include "support/assert.h"
#include "support/serialize.h"

namespace simprof::core {

namespace {
constexpr std::uint32_t kMagic = 0x53505246;  // "SPRF"
// Version 4: each unit carries its memory-access vector (hw::MavBlock,
// kMavDim u64 counts) between the PMU counters and the method histogram.
constexpr std::uint32_t kVersion = 4;
}  // namespace

std::vector<double> ThreadProfile::cpis() const {
  std::vector<double> out;
  out.reserve(units.size());
  for (const auto& u : units) out.push_back(u.cpi());
  return out;
}

double ThreadProfile::oracle_cpi() const {
  if (units.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& u : units) acc += u.cpi();
  return acc / static_cast<double>(units.size());
}

std::uint64_t ThreadProfile::total_cycles() const {
  std::uint64_t acc = 0;
  for (const auto& u : units) acc += u.counters.cycles;
  return acc;
}

std::uint64_t ThreadProfile::total_instructions() const {
  std::uint64_t acc = 0;
  for (const auto& u : units) acc += u.counters.instructions;
  return acc;
}

void ThreadProfile::save(std::ostream& out) const {
  BinaryWriter w(out);
  w.u32(kMagic);
  w.u32(kVersion);
  w.u64(method_names.size());
  for (std::size_t i = 0; i < method_names.size(); ++i) {
    w.str(method_names[i]);
    w.u8(static_cast<std::uint8_t>(method_kinds[i]));
  }
  w.u64(units.size());
  for (const auto& u : units) {
    w.u64(u.unit_id);
    w.u64(u.counters.instructions);
    w.u64(u.counters.cycles);
    w.u64(u.counters.line_touches);
    w.u64(u.counters.l1_misses);
    w.u64(u.counters.l2_misses);
    w.u64(u.counters.llc_misses);
    w.u64(u.counters.migrations);
    for (const std::uint64_t c : u.mav.counts) w.u64(c);
    w.vec_u32(u.methods);
    w.vec_u32(u.counts);
  }
}

ThreadProfile ThreadProfile::load(std::istream& in) {
  BinaryReader r(in);
  if (r.u32() != kMagic) {
    throw SerializeError("not a SimProf profile (bad magic)");
  }
  if (const auto v = r.u32(); v != kVersion) {
    throw SerializeError("unsupported profile version " + std::to_string(v) +
                         " (expected " + std::to_string(kVersion) + ")");
  }
  ThreadProfile p;
  // Each method entry is ≥ 9 bytes (u64 name length + kind byte); each unit
  // is ≥ 280 bytes (8 id + 56 counters + 8·kMavDim MAV + two vector length
  // prefixes). Bounding the counts up front keeps a corrupt prefix from
  // sizing a reserve.
  const auto methods = r.u64();
  if (methods > r.remaining() / 9) {
    throw SerializeError("corrupt archive: method count exceeds file size");
  }
  p.method_names.reserve(methods);
  p.method_kinds.reserve(methods);
  for (std::uint64_t i = 0; i < methods; ++i) {
    p.method_names.push_back(r.str());
    const std::uint8_t kind = r.u8();
    if (kind >= jvm::kNumOpKinds) {
      throw SerializeError("corrupt archive: invalid method kind byte");
    }
    p.method_kinds.push_back(static_cast<jvm::OpKind>(kind));
  }
  const auto units = r.u64();
  if (units > r.remaining() / 280) {
    throw SerializeError("corrupt archive: unit count exceeds file size");
  }
  p.units.reserve(units);
  for (std::uint64_t i = 0; i < units; ++i) {
    UnitRecord u;
    u.unit_id = r.u64();
    u.counters.instructions = r.u64();
    u.counters.cycles = r.u64();
    u.counters.line_touches = r.u64();
    u.counters.l1_misses = r.u64();
    u.counters.l2_misses = r.u64();
    u.counters.llc_misses = r.u64();
    u.counters.migrations = r.u64();
    for (std::uint64_t& c : u.mav.counts) c = r.u64();
    u.methods = r.vec_u32();
    u.counts = r.vec_u32();
    if (u.methods.size() != u.counts.size()) {
      throw SerializeError("corrupt archive: unit method/count mismatch");
    }
    // Method ids are written sorted and must index the method table —
    // downstream feature extraction indexes columns by these ids.
    for (std::size_t m = 0; m < u.methods.size(); ++m) {
      if (u.methods[m] >= methods ||
          (m > 0 && u.methods[m] <= u.methods[m - 1])) {
        throw SerializeError("corrupt archive: invalid method id in unit");
      }
    }
    p.units.push_back(std::move(u));
  }
  return p;
}

void SamplingManager::on_snapshot(std::span<const jvm::MethodId> stack) {
  ++snapshots_;
  for (jvm::MethodId m : stack) ++current_histogram_[m];
}

void SamplingManager::on_unit_boundary(const hw::PmuCounters& delta,
                                       const hw::MavBlock& mav) {
  // Progress feed for the heartbeat (units/s); observation only.
  static obs::Counter& units_done = obs::metrics().counter("progress.units");
  units_done.increment();
  UnitRecord u;
  u.unit_id = units_.size();
  u.counters = delta;
  u.mav = mav;
  u.methods.reserve(current_histogram_.size());
  u.counts.reserve(current_histogram_.size());
  // Deterministic order: sorted by method id.
  std::vector<std::pair<jvm::MethodId, std::uint32_t>> entries(
      current_histogram_.begin(), current_histogram_.end());
  std::sort(entries.begin(), entries.end());
  for (const auto& [m, c] : entries) {
    u.methods.push_back(m);
    u.counts.push_back(c);
  }
  units_.push_back(std::move(u));
  current_histogram_.clear();
}

ThreadProfile SamplingManager::take_profile() {
  ThreadProfile p;
  p.units = std::move(units_);
  units_ = {};
  current_histogram_.clear();
  const std::size_t n = registry_->size();
  p.method_names.reserve(n);
  p.method_kinds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<jvm::MethodId>(i);
    p.method_names.push_back(registry_->name(id));
    p.method_kinds.push_back(registry_->kind(id));
  }
  return p;
}

}  // namespace simprof::core
