#include "core/streaming.h"

#include <chrono>
#include <limits>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "obs/obs.h"
#include "support/assert.h"

namespace simprof::core {
namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

}  // namespace

StreamingPhaseFormer::StreamingPhaseFormer(StreamingConfig cfg)
    : cfg_(std::move(cfg)) {
  SIMPROF_EXPECTS(cfg_.warmup_units > 0, "warmup_units must be positive");
  SIMPROF_EXPECTS(cfg_.refine_batch > 0, "refine_batch must be positive");
  SIMPROF_EXPECTS(cfg_.recluster_growth >= 1.0,
                  "recluster_growth below 1 would recluster in place forever");
}

void StreamingPhaseFormer::adopt_method_table(const ThreadProfile& source) {
  // Ids are adopted verbatim, so the source table must be a consistent
  // extension of what we have: names agree on the overlap, new methods
  // append. The (data, size) pair memoizes the check — streaming a run of
  // units from one stable profile verifies names once, not per unit.
  if (source.method_names.data() == verified_table_ &&
      source.method_names.size() == verified_table_size_) {
    return;
  }
  const std::size_t overlap =
      std::min(profile_.num_methods(), source.num_methods());
  for (std::size_t m = 0; m < overlap; ++m) {
    SIMPROF_EXPECTS(profile_.method_names[m] == source.method_names[m],
                    "source method table conflicts with adopted ids");
  }
  for (std::size_t m = profile_.num_methods(); m < source.num_methods(); ++m) {
    profile_.method_names.push_back(source.method_names[m]);
    profile_.method_kinds.push_back(source.method_kinds[m]);
  }
  verified_table_ = source.method_names.data();
  verified_table_size_ = source.method_names.size();
}

std::size_t StreamingPhaseFormer::ingest(const ThreadProfile& source,
                                         std::size_t unit_index) {
  SIMPROF_EXPECTS(unit_index < source.num_units(), "unit out of range");
  static obs::Counter& ingested =
      obs::metrics().counter("stream.units_ingested");
  static obs::QuantileHistogram& ingest_ms =
      obs::metrics().quantile_histogram("stream.ingest_ms");
  const auto t0 = std::chrono::steady_clock::now();

  adopt_method_table(source);
  const UnitRecord& rec = source.units[unit_index];
  unit_feature_entries(rec, profile_.num_methods(), cols_scratch_,
                       vals_scratch_, cfg_.formation.features);
  raw_.append_row_grow(cols_scratch_, vals_scratch_);
  profile_.units.push_back(rec);
  ++total_ingested_;
  ingested.increment();

  std::size_t label = kNoPhase;
  const std::size_t n = profile_.num_units();
  const bool due =
      reclusters_ == 0
          ? n >= cfg_.warmup_units
          : static_cast<double>(n) >=
                cfg_.recluster_growth *
                    static_cast<double>(last_recluster_units_);
  if (due) {
    recluster();
    label = live_labels_.back();
  } else if (has_model()) {
    label = classify_latest();
    live_labels_.push_back(label);
  } else {
    live_labels_.push_back(kNoPhase);
  }

  ingest_ms.observe(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
  return label;
}

void StreamingPhaseFormer::ingest_range(const ThreadProfile& source,
                                        std::size_t begin, std::size_t end) {
  SIMPROF_EXPECTS(begin <= end && end <= source.num_units(),
                  "ingest_range out of range");
  for (std::size_t u = begin; u < end; ++u) ingest(source, u);
}

std::size_t StreamingPhaseFormer::classify_latest() {
  // Vectorize the newest unit into the model's feature space (same
  // accumulate + L1-normalize-over-selected semantics as vectorize_unit,
  // via the method-id fast path valid inside the adopted table; MAV
  // contributions are the block-normalized entries, exactly what the
  // training rows stored).
  const std::size_t d = model_.centers.cols();
  if (d == 0) return 0;  // single-phase collapse: everything is phase 0
  const UnitRecord& rec = profile_.units.back();
  const auto mode = cfg_.formation.features;
  std::vector<double> v(d, 0.0);
  double sum = 0.0;
  if (mode != features::FeatureMode::kMav) {
    double total = 0.0;
    if (mode == features::FeatureMode::kCombined) {
      for (const std::uint32_t c : rec.counts) {
        total += static_cast<double>(c);
      }
    }
    for (std::size_t i = 0; i < rec.methods.size(); ++i) {
      const std::size_t m = rec.methods[i];
      if (m >= feature_of_method_.size()) continue;  // arrived post-fit
      const std::size_t f = feature_of_method_[m];
      if (f == kNone) continue;
      double val = static_cast<double>(rec.counts[i]);
      if (mode == features::FeatureMode::kCombined) {
        if (total <= 0.0) continue;
        val /= total;
      }
      v[f] += val;
      sum += val;
    }
  }
  if (mode != features::FeatureMode::kFreq) {
    cols_scratch_.clear();
    vals_scratch_.clear();
    features::append_mav_entries(rec.mav, 0, cols_scratch_, vals_scratch_);
    for (std::size_t i = 0; i < cols_scratch_.size(); ++i) {
      const std::size_t f = feature_of_mav_[cols_scratch_[i]];
      if (f == kNone) continue;
      v[f] += vals_scratch_[i];
      sum += vals_scratch_[i];
    }
  }
  if (sum > 0.0) {
    for (double& x : v) x /= sum;
  }
  const std::size_t label =
      stats::nearest_center(center_tracker_.centers(), v);

  // Buffer for mini-batch refinement; flush a full batch through
  // partial_fit so the centers track drift between reclusters.
  if (pending_rows_ < pending_.rows()) {
    auto dst = pending_.row(pending_rows_);
    for (std::size_t j = 0; j < d; ++j) dst[j] = v[j];
    ++pending_rows_;
  }
  if (pending_rows_ == pending_.rows()) flush_refinement();
  return label;
}

void StreamingPhaseFormer::flush_refinement() {
  if (pending_rows_ == 0 || pending_.rows() == 0) return;
  static obs::Counter& refinements =
      obs::metrics().counter("stream.refinements");
  center_tracker_.partial_fit(pending_, cfg_.formation.threads);
  refinements.increment();
  pending_rows_ = 0;
}

void StreamingPhaseFormer::recluster() {
  SIMPROF_EXPECTS(profile_.num_units() > 0, "recluster with no units");
  static obs::Counter& reclusters =
      obs::metrics().counter("stream.recluster");

  // Memory bound: drop the oldest units beyond the retention cap before the
  // pass, so both the model and the per-former state cover a sliding window.
  if (cfg_.max_retained_units > 0 &&
      profile_.num_units() > cfg_.max_retained_units) {
    static obs::Counter& evicted =
        obs::metrics().counter("stream.evicted_units");
    const std::size_t drop = profile_.num_units() - cfg_.max_retained_units;
    evicted.add(drop);
    profile_.units.erase(profile_.units.begin(),
                         profile_.units.begin() +
                             static_cast<std::ptrdiff_t>(drop));
    stats::SparseMatrix rebuilt;
    for (const UnitRecord& rec : profile_.units) {
      unit_feature_entries(rec, profile_.num_methods(), cols_scratch_,
                           vals_scratch_, cfg_.formation.features);
      rebuilt.append_row_grow(cols_scratch_, vals_scratch_);
    }
    raw_ = std::move(rebuilt);
  }

  // Snapshot the accumulated raw matrix at the full current feature space
  // and normalize — bitwise what build_sparse_feature_matrix would produce
  // for the retained profile, which is what makes finalize() bit-identical
  // to the batch path. (Under kMav/kCombined the MAV block occupies the
  // fixed low columns, so growing the method space still appends at the
  // end.)
  stats::SparseMatrix snapshot = raw_;
  snapshot.grow_cols(features::feature_space_cols(cfg_.formation.features,
                                                  profile_.num_methods()));
  snapshot.normalize_rows_l1();
  model_ = form_phases_from_sparse(profile_, snapshot, cfg_.formation);

  // Re-seed the mini-batch tracker from the fresh centers, learning rates
  // warm-started with the phase populations.
  std::vector<std::uint64_t> counts;
  counts.reserve(model_.phases.size());
  for (const PhaseStats& p : model_.phases) counts.push_back(p.count);
  center_tracker_ = stats::MiniBatchKMeans(model_.centers, std::move(counts));
  pending_ = stats::Matrix(cfg_.refine_batch, model_.centers.cols());
  pending_rows_ = 0;

  // Method id → feature position, by name (feature identity is the name;
  // inside the adopted table ids are stable so the map is a flat vector).
  // MAV features map by their fixed column index instead.
  std::unordered_map<std::string_view, std::size_t> pos;
  pos.reserve(model_.feature_names.size());
  feature_of_mav_.fill(kNone);
  for (std::size_t f = 0; f < model_.feature_names.size(); ++f) {
    if (cfg_.formation.features != features::FeatureMode::kFreq) {
      if (auto mc = features::mav_feature_index(model_.feature_names[f])) {
        feature_of_mav_[*mc] = f;
        continue;
      }
    }
    pos.emplace(model_.feature_names[f], f);
  }
  feature_of_method_.assign(profile_.num_methods(), kNone);
  for (std::size_t m = 0; m < profile_.num_methods(); ++m) {
    if (auto it = pos.find(profile_.method_names[m]); it != pos.end()) {
      feature_of_method_[m] = it->second;
    }
  }

  live_labels_ = model_.labels;
  last_recluster_units_ = profile_.num_units();
  ++reclusters_;
  reclusters.increment();
  if (hook_) hook_(*this);
}

PhaseModel StreamingPhaseFormer::finalize() {
  SIMPROF_EXPECTS(profile_.num_units() > 0,
                  "finalize on a former that ingested nothing");
  recluster();
  return model_;
}

}  // namespace simprof::core
