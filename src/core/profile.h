// Thread profiling (Section III-A): the sampling manager subscribes to the
// executor substrate's profiling hooks, accumulates call-stack snapshots per
// sampling unit and attaches the unit's hardware-counter deltas, producing a
// ThreadProfile — the framework's central data product.
//
// A ThreadProfile is self-contained (it carries its own method table), so it
// serializes to disk and can be analyzed without the cluster that produced
// it — exactly how the real tool's frontend/backend split works.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/executor_context.h"
#include "hw/memory_system.h"
#include "jvm/method.h"

namespace simprof::core {

/// One sampling unit: a fixed-size instruction interval of the profiled
/// executor thread (paper: 100M instructions; here 1M virtual, scaled 1/100).
struct UnitRecord {
  std::uint64_t unit_id = 0;
  hw::PmuCounters counters;              ///< deltas for this unit
  hw::MavBlock mav;                      ///< memory-access vector (hw/mav.h)
  std::vector<jvm::MethodId> methods;    ///< methods seen in snapshots …
  std::vector<std::uint32_t> counts;     ///< … and their frame frequencies

  double cpi() const { return counters.cpi(); }
  double ipc() const { return counters.ipc(); }
};

/// The profile of one executor thread across a whole job.
class ThreadProfile {
 public:
  std::vector<UnitRecord> units;
  std::vector<std::string> method_names;   ///< indexed by MethodId
  std::vector<jvm::OpKind> method_kinds;

  std::size_t num_units() const { return units.size(); }
  std::size_t num_methods() const { return method_names.size(); }

  /// Per-unit CPIs in unit order.
  std::vector<double> cpis() const;

  /// The paper's oracle: the average CPI over all sampling units.
  double oracle_cpi() const;

  /// Total virtual cycles / instructions of the profiled thread.
  std::uint64_t total_cycles() const;
  std::uint64_t total_instructions() const;

  void save(std::ostream& out) const;
  static ThreadProfile load(std::istream& in);
};

/// exec::ProfilingHook implementation: collects snapshots + counter deltas.
class SamplingManager final : public exec::ProfilingHook {
 public:
  explicit SamplingManager(const jvm::MethodRegistry& registry)
      : registry_(&registry) {}

  void on_snapshot(std::span<const jvm::MethodId> stack) override;
  void on_unit_boundary(const hw::PmuCounters& delta,
                        const hw::MavBlock& mav) override;

  std::size_t units_collected() const { return units_.size(); }
  std::uint64_t snapshots_collected() const { return snapshots_; }

  /// Finalize into a self-contained profile (copies the method table).
  ThreadProfile take_profile();

 private:
  const jvm::MethodRegistry* registry_;
  std::unordered_map<jvm::MethodId, std::uint32_t> current_histogram_;
  std::vector<UnitRecord> units_;
  std::uint64_t snapshots_ = 0;
};

}  // namespace simprof::core
