// Input-sensitivity test (Section III-D, Algorithm 1): classify the
// sampling units of reference inputs onto the training input's phase
// centers, compare per-phase CPI mean/stddev, and flag phases whose
// performance moves more than the threshold for any reference input.
// Simulation points falling in input-*insensitive* phases can be skipped
// when exploring additional inputs (Figures 12/13).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/phase.h"
#include "core/profile.h"
#include "core/sampling.h"

namespace simprof::core {

/// Classify every unit of `reference` into the trained model's phases
/// (nearest center in the model's feature space, features matched by
/// method name). Vectorization and the nearest-center pass run in row
/// blocks on the thread pool (threads = 0 → global default).
std::vector<std::size_t> classify_units(const PhaseModel& trained,
                                        const ThreadProfile& reference,
                                        std::size_t threads = 0);

struct PhaseSensitivity {
  double train_mean = 0.0;
  double train_stddev = 0.0;
  double ref_mean = 0.0;
  double ref_stddev = 0.0;
  double mean_delta = 0.0;    ///< |μ_t − μ_r| / μ_t
  double stddev_delta = 0.0;  ///< |σ_t − σ_r| / σ_t
  bool sensitive = false;     ///< Eq. 6 with the configured threshold
  std::size_t ref_count = 0;  ///< reference units classified into the phase
};

/// Eq. 6 for every phase against a single reference input.
std::vector<PhaseSensitivity> phase_sensitivity_test(
    const PhaseModel& trained, const ThreadProfile& reference,
    double threshold = 0.10);

struct SensitivityReport {
  std::vector<bool> phase_sensitive;  ///< accumulated across references
  std::vector<std::vector<PhaseSensitivity>> per_reference;
  std::vector<std::string> reference_names;

  std::size_t num_sensitive() const;
  std::size_t num_insensitive() const { return phase_sensitive.size() - num_sensitive(); }

  /// Fraction of a plan's simulation points that fall in sensitive phases —
  /// the per-reference sample size of Figure 12; (1 − this) is the saving.
  double sensitive_point_fraction(const SamplePlan& plan) const;
};

/// Algorithm 1 over a set of reference profiles.
SensitivityReport input_sensitivity_test(
    const PhaseModel& trained,
    const std::vector<const ThreadProfile*>& references,
    const std::vector<std::string>& reference_names, double threshold = 0.10);

}  // namespace simprof::core
