// Unit-boundary checkpoints: snapshot/restore of the warm simulation state,
// plus the op tape that makes restored measurement O(selected units).
//
// The SMARTS/live-points observation (Wunderlich et al., ISCA'03) applied to
// this substrate: to measure one selected sampling unit the simulator does
// not need to re-run the whole workload — it needs the prefix's *state*
// (warm cache tag arrays, PMU counters, shadow call stack, RNG stream,
// profiling cursors) and the profiled core's *execution trace* for the units
// it wants to measure. During the oracle pass a CheckpointRecorder opens a
// window at every stride-th unit boundary (including unit 0): it serializes
// the state at the window's opening boundary, buffers every detailed
// execute() chunk the profiled core runs (instruction count, consumed memory
// references, LLC pressure, shadow stack — see exec::OpTapeSink), and
// publishes the window as one archive when the next window opens. A
// CheckpointReplayer later measures any selected unit by restoring the
// nearest archive at or before it into a *fresh* cluster and re-executing
// the tape through the unit — no workload functions run at all, so the cost
// is O(selected units), not O(run length). Only the profiled core ever
// touches the cache hierarchy (other cores execute functionally), so the
// tape plus the snapshot determine the measured counters completely:
// restored records are bit-identical to the oracle pass — enforced by
// core_lab_test and verify_checkpoint_recovery.
//
// Archive format ("SCKP", version 2):
//   u32 magic | u32 version | u64 FNV-1a(payload) | str payload
// The payload carries the run identity (cache key, unit geometry), the
// profiled thread's state, the three cache models of the profiled hierarchy
// and the window's op tape. The payload hash catches corruption that
// field-level bounds checks cannot — a flipped bit inside a cache tag array
// still decodes as a valid u64, but a wrong tag would silently change
// restored PMU numbers, and the contract is "typed error or fallback, never
// a wrong number". Restore into the wrong run or at the wrong boundary
// throws CheckpointError.
//
// Durability mirrors the profile cache: archives are published by
// write-to-tmp + fsync + rename, so a killed writer leaves no partial file
// under the published name.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/profile.h"
#include "exec/cluster.h"
#include "support/serialize.h"

namespace simprof::core {

/// Malformed, mismatched, or stale checkpoint archive. Derives
/// SerializeError so the generic corrupt-archive handling (log + fallback to
/// full re-execution) applies without new catch sites.
class CheckpointError : public SerializeError {
 public:
  explicit CheckpointError(const std::string& what) : SerializeError(what) {}
};

inline constexpr std::uint32_t kCheckpointMagic = 0x504b4353;  // "SCKP"
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// One recorded execute() chunk of the profiled core: enough to re-run the
/// chunk bit-identically on a restored cluster (see exec::OpTapeSink).
struct TapeOp {
  std::uint64_t instrs = 0;
  std::uint32_t llc_ways = 0;  ///< shared-LLC effective ways (wave pressure)
  std::vector<jvm::MethodId> frames;  ///< shadow stack during the chunk
  std::vector<hw::MemRef> refs;       ///< references the chunk consumed
};
using CheckpointTape = std::vector<TapeOp>;

/// File name for the archive of unit `u` inside a run's checkpoint dir.
std::string checkpoint_file_name(std::uint64_t unit_index);

/// Serialize the cluster's warm state at the unit boundary starting
/// `unit_index`, plus the window's op tape (empty for state-only archives,
/// e.g. the verify fixtures). Must be called at the governor sequence point
/// (see ExecutorContext::maybe_fire_boundaries) so RNG states line up with
/// what a replayer will observe.
void save_checkpoint(std::ostream& out, const exec::Cluster& cluster,
                     const std::string& cache_key, std::uint64_t unit_index,
                     const CheckpointTape& tape = {});

/// Validate an archive and impose its state onto `cluster` (the profiled
/// thread and the profiled cache hierarchy are overwritten; `cluster` only
/// has to match the archive's geometry, not its history). Throws
/// CheckpointError / SerializeError on any mismatch or corrupt bytes; a
/// failed load never half-applies. Fills `tape_out` with the archive's op
/// tape when non-null. Returns the payload size in bytes (obs counters).
std::uint64_t load_checkpoint(std::istream& in, exec::Cluster& cluster,
                              const std::string& cache_key,
                              std::uint64_t expect_unit,
                              CheckpointTape* tape_out = nullptr);

/// UnitGovernor + OpTapeSink that records checkpoint windows during a
/// detailed (oracle) pass: state captured when a window opens at a stride
/// boundary, chunks buffered while it is live, archive published when the
/// next window opens. Never changes the execution mode. Save failures are
/// logged and skipped — checkpointing is an optimization, not a correctness
/// dependency of the oracle pass. The owner must call finalize() after the
/// workload returns to publish the last window (it covers the run's
/// trailing units, including a trailing partial unit).
class CheckpointRecorder final : public exec::UnitGovernor,
                                 public exec::OpTapeSink {
 public:
  /// `dir` is this run's private archive directory (created on first save).
  CheckpointRecorder(std::string dir, std::string cache_key,
                     std::uint64_t stride);

  exec::ExecMode on_unit_start(std::uint64_t unit_index,
                               exec::ExecutorContext& ctx) override;
  void on_chunk(std::uint64_t instrs, std::span<const hw::MemRef> refs,
                std::uint32_t llc_ways,
                std::span<const jvm::MethodId> frames) override;

  /// Publish the still-open window. Idempotent.
  void finalize();

  std::size_t saved() const { return saved_; }

 private:
  void publish_window();

  std::string dir_;
  std::string cache_key_;
  std::uint64_t stride_;
  std::size_t saved_ = 0;
  bool dir_ready_ = false;

  bool window_open_ = false;
  std::uint64_t window_unit_ = 0;
  std::string window_state_;  ///< state payload encoded at window open
  CheckpointTape tape_;
};

/// ProfilingHook that collects UnitRecords exactly like SamplingManager but
/// only for the target units; shared by the warm replayer and the cold
/// measurer so both produce bit-identical records.
class UnitRecordCollector : public exec::ProfilingHook {
 public:
  explicit UnitRecordCollector(std::vector<std::uint64_t> target_units);

  void on_snapshot(std::span<const jvm::MethodId> stack) override;
  void on_unit_boundary(const hw::PmuCounters& delta,
                        const hw::MavBlock& mav) override;

  /// Collected records for the target units, in ascending unit order.
  std::vector<UnitRecord> take_records();

 protected:
  bool is_target(std::uint64_t u) const;

  std::vector<std::uint64_t> targets_;  ///< sorted, deduplicated
  std::uint64_t current_unit_ = 0;

 private:
  std::unordered_map<jvm::MethodId, std::uint32_t> current_histogram_;
  std::vector<UnitRecord> records_;
};

/// Measures the target units from recorded archives alone: for each target,
/// restore the nearest archive at or before it into a private cluster and
/// re-execute the archived op tape through the target unit. The workload
/// never runs, so targets clustered in one window share a single restore and
/// everything before a window is skipped outright. Any archive problem
/// (corrupt, missing, tape not covering a unit the run contained) raises
/// SerializeError — the caller (WorkloadLab::measure_units) falls back to
/// exact cold re-execution.
class CheckpointReplayer final : public UnitRecordCollector {
 public:
  /// `dir` is scanned for `ckpt-u*.sckp` archives at construction.
  CheckpointReplayer(std::string dir, std::string cache_key,
                     std::vector<std::uint64_t> target_units);

  /// Any archives to replay from? When false the caller should measure cold.
  bool has_archives() const { return !available_.empty(); }

  /// Run the tape replay over a fresh cluster built from `cc` (must be the
  /// same configuration as the recording oracle pass).
  void replay(const exec::ClusterConfig& cc);

  std::size_t restores() const { return restores_; }
  std::uint64_t restored_bytes() const { return restored_bytes_; }
  /// Instructions skipped entirely (never re-executed, not even
  /// functionally) by restoring past them.
  std::uint64_t fast_forwarded_instrs() const { return ff_instrs_; }

 private:
  std::string dir_;
  std::string cache_key_;
  std::vector<std::uint64_t> available_;  ///< archived unit indices, sorted

  std::size_t restores_ = 0;
  std::uint64_t restored_bytes_ = 0;
  std::uint64_t ff_instrs_ = 0;
};

/// UnitGovernor + collector for exact measurement with no archives: the
/// workload runs functionally, units [0, max target] execute detailed (so
/// the cache state entering each target is exact) and everything after the
/// last target fast-forwards. Used when no archives exist and as the
/// fallback when one is corrupt.
class ColdMeasurer final : public UnitRecordCollector,
                           public exec::UnitGovernor {
 public:
  explicit ColdMeasurer(std::vector<std::uint64_t> target_units);

  exec::ExecMode on_unit_start(std::uint64_t unit_index,
                               exec::ExecutorContext& ctx) override;
};

}  // namespace simprof::core
