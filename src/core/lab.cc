#include "core/lab.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <algorithm>
#include <sstream>

#include "obs/obs.h"
#include "support/assert.h"
#include "support/serialize.h"

namespace simprof::core {

namespace {
constexpr std::uint32_t kCacheSchema = 4;  // bump to invalidate cached runs
}

WorkloadLab::WorkloadLab(LabConfig cfg) : cfg_(cfg) {
  if (!cfg_.cache_dir.empty()) {
    cache_dir_ = cfg_.cache_dir;
  } else if (const char* env = std::getenv("SIMPROF_CACHE_DIR")) {
    cache_dir_ = env;
  } else {
    cache_dir_ = ".simprof_cache";
  }
}

exec::ClusterConfig WorkloadLab::cluster_config() const {
  exec::ClusterConfig cc;
  cc.memory.num_cores = cfg_.num_cores;
  cc.seed = cfg_.seed;
  cc.unit_instrs = cfg_.unit_instrs;
  cc.snapshot_interval = std::max<std::uint64_t>(cfg_.unit_instrs / 10, 1);
  return cc;
}

std::string WorkloadLab::cache_path(const std::string& workload_name,
                                    const std::string& graph_input) const {
  std::ostringstream key;
  key << workload_name << '-' << graph_input << "-s" << cfg_.scale << "-seed"
      << cfg_.seed << "-c" << cfg_.num_cores << "-g"
      << cfg_.graph_scale_override << "-u" << cfg_.unit_instrs << "-v"
      << kCacheSchema << ".sprf";
  return (std::filesystem::path(cache_dir_) / key.str()).string();
}

LabRun WorkloadLab::run(const std::string& workload_name,
                        const std::string& graph_input) {
  static obs::Counter& hits = obs::metrics().counter("lab.cache_hits");
  static obs::Counter& misses = obs::metrics().counter("lab.cache_misses");
  static obs::Counter& corrupt = obs::metrics().counter("lab.cache_corrupt");
  const std::string path = cache_path(workload_name, graph_input);
  if (cfg_.use_cache) {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      // A cache file that fails to decode — bad magic, version skew,
      // truncation from a killed writer, bit rot — is a cache miss, never a
      // crash: the oracle pass below regenerates and overwrites it.
      try {
        obs::ObsSpan load_span("lab.cache_load", {{"workload", workload_name}});
        LabRun r;
        r.profile = ThreadProfile::load(in);
        r.from_cache = true;
        r.cache_path = path;
        hits.increment();
        SIMPROF_LOG(kInfo) << "lab: cache hit " << workload_name << "/"
                           << graph_input << " <- " << path << " ("
                           << r.profile.num_units() << " units)";
        return r;
      } catch (const ContractViolation& e) {
        corrupt.increment();
        SIMPROF_LOG(kWarn) << "lab: corrupt cache file " << path << " ("
                           << e.what() << "), treating as miss";
        in.close();
        std::error_code ec;
        std::filesystem::remove(path, ec);
      }
    }
  }
  misses.increment();
  SIMPROF_LOG(kInfo) << "lab: cache miss " << workload_name << "/"
                     << graph_input << " scale=" << cfg_.scale
                     << " seed=" << cfg_.seed << ", running oracle pass";

  const workloads::WorkloadInfo& info = workloads::workload(workload_name);
  exec::Cluster cluster(cluster_config());
  SamplingManager manager(cluster.methods());
  cluster.set_profiling_hook(&manager);

  workloads::WorkloadParams params;
  params.scale = cfg_.scale;
  params.seed = cfg_.seed;
  params.graph_input = graph_input;
  params.graph_scale_override = cfg_.graph_scale_override;

  LabRun r;
  {
    obs::ObsSpan run_span("lab.workload_run", {{"workload", workload_name},
                                               {"input", graph_input}});
    r.result = info.run(cluster, params);
    r.profile = manager.take_profile();
  }
  SIMPROF_ENSURES(r.profile.num_units() > 0,
                  "workload produced no sampling units: " + workload_name);

  if (cfg_.use_cache) {
    obs::ObsSpan save_span("lab.cache_save", {{"workload", workload_name}});
    std::filesystem::create_directories(cache_dir_);
    // Atomic + durable publish: write the whole profile to a .tmp sibling,
    // fsync it, then rename into place and fsync the directory. A run killed
    // mid-write leaves only a .tmp that no reader ever opens — the published
    // name is either absent or a complete profile.
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      SIMPROF_EXPECTS(static_cast<bool>(out), "cannot write profile cache");
      r.profile.save(out);
      out.flush();
      SIMPROF_EXPECTS(static_cast<bool>(out), "short write to profile cache");
    }
    if (const int fd = ::open(tmp.c_str(), O_WRONLY); fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
    std::filesystem::rename(tmp, path);
    if (const int dfd = ::open(cache_dir_.c_str(), O_RDONLY | O_DIRECTORY);
        dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
    r.cache_path = path;
    SIMPROF_LOG(kDebug) << "lab: cached " << r.profile.num_units()
                        << " units -> " << path;
  }
  return r;
}

}  // namespace simprof::core
