#include "core/lab.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <unordered_map>

#include "core/checkpoint.h"
#include "obs/obs.h"
#include "support/assert.h"
#include "support/serialize.h"
#include "support/thread_pool.h"

namespace simprof::core {

namespace {
/// Process-wide per-cache-key locks: two concurrent runs of the same
/// configuration — from one batch, two labs, or two threads — serialize
/// here, so the oracle pass runs exactly once and the .tmp/rename publish
/// path is never raced. Entries live for the process (the key space is
/// bounded by the distinct configurations touched).
class SingleFlight {
 public:
  std::shared_ptr<std::mutex> lock_for(const std::string& key) {
    std::lock_guard<std::mutex> g(mu_);
    auto& slot = locks_[key];
    if (!slot) slot = std::make_shared<std::mutex>();
    return slot;
  }

  static SingleFlight& instance() {
    static SingleFlight sf;
    return sf;
  }

 private:
  std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<std::mutex>> locks_;
};

/// Run the stale-checkpoint sweep at most once per root per process —
/// recorder startup is on the oracle-pass path, and one sweep per process
/// covers every run sharing the root.
void prune_stale_checkpoint_dirs_once(const std::string& root) {
  static std::mutex mu;
  static std::set<std::string>* seen = new std::set<std::string>;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!seen->insert(root).second) return;
  }
  prune_stale_checkpoint_dirs(root);
}
}  // namespace

std::size_t prune_stale_checkpoint_dirs(const std::string& root) {
  static obs::Counter& pruned = obs::metrics().counter("ckpt.pruned");
  std::error_code ec;
  std::filesystem::directory_iterator it(root, ec);
  if (ec) return 0;  // missing/unreadable root: nothing to prune
  std::size_t removed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
    if (ec) break;
    std::error_code dec;
    if (!entry.is_directory(dec) || dec) continue;
    // Checkpoint dirs are named after their cache key, which ends in the
    // schema suffix "-v<digits>". Anything else in the root is left alone.
    const std::string name = entry.path().filename().string();
    const std::size_t vpos = name.rfind("-v");
    if (vpos == std::string::npos || vpos + 2 >= name.size()) continue;
    const std::string digits = name.substr(vpos + 2);
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    std::uint32_t schema = 0;
    try {
      schema = static_cast<std::uint32_t>(std::stoul(digits));
    } catch (...) {
      continue;
    }
    if (schema == kLabCacheSchema) continue;
    std::error_code rec;
    std::filesystem::remove_all(entry.path(), rec);
    if (rec) {
      SIMPROF_LOG(kWarn) << "lab: failed to prune stale checkpoint dir "
                         << entry.path().string() << ": " << rec.message();
      continue;
    }
    ++removed;
    pruned.increment();
  }
  if (removed > 0) {
    SIMPROF_LOG(kWarn) << "lab: pruned " << removed
                       << " stale checkpoint dir(s) under " << root
                       << " (schema != v" << kLabCacheSchema << ")";
  }
  return removed;
}

WorkloadLab::WorkloadLab(LabConfig cfg) : cfg_(cfg) {
  if (!cfg_.cache_dir.empty()) {
    cache_dir_ = cfg_.cache_dir;
  } else if (const char* env = std::getenv("SIMPROF_CACHE_DIR")) {
    cache_dir_ = env;
  } else {
    cache_dir_ = ".simprof_cache";
  }
  if (!cfg_.checkpoint_dir.empty()) {
    checkpoint_root_ = cfg_.checkpoint_dir;
  } else if (const char* env = std::getenv("SIMPROF_CHECKPOINT_DIR")) {
    checkpoint_root_ = env;
  } else {
    checkpoint_root_ =
        (std::filesystem::path(cache_dir_) / "ckpt").string();
  }
}

exec::ClusterConfig WorkloadLab::cluster_config() const {
  exec::ClusterConfig cc;
  cc.memory.num_cores = cfg_.num_cores;
  cc.seed = cfg_.seed;
  cc.unit_instrs = cfg_.unit_instrs;
  cc.snapshot_interval = std::max<std::uint64_t>(cfg_.unit_instrs / 10, 1);
  return cc;
}

std::string WorkloadLab::cache_key(const std::string& workload_name,
                                   const std::string& graph_input,
                                   std::uint64_t seed) const {
  std::ostringstream key;
  key << workload_name << '-' << graph_input << "-s" << cfg_.scale << "-seed"
      << seed << "-c" << cfg_.num_cores << "-g"
      << cfg_.graph_scale_override << "-u" << cfg_.unit_instrs << "-v"
      << kLabCacheSchema;
  return key.str();
}

std::string WorkloadLab::cache_path(const std::string& workload_name,
                                    const std::string& graph_input,
                                    std::uint64_t seed) const {
  return (std::filesystem::path(cache_dir_) /
          (cache_key(workload_name, graph_input, seed) + ".sprf"))
      .string();
}

std::string WorkloadLab::checkpoint_dir_for(const std::string& workload_name,
                                            const std::string& graph_input,
                                            std::uint64_t seed) const {
  return (std::filesystem::path(checkpoint_root_) /
          cache_key(workload_name, graph_input, seed))
      .string();
}

std::optional<LabRun> WorkloadLab::try_load_cached(
    const std::string& path, const std::string& workload_name,
    const std::string& graph_input) {
  static obs::Counter& hits = obs::metrics().counter("lab.cache_hits");
  static obs::Counter& corrupt = obs::metrics().counter("lab.cache_corrupt");
  static obs::QuantileHistogram& load_ms =
      obs::metrics().quantile_histogram("lab.cache_load_ms");
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  // A cache file that fails to decode — bad magic, version skew, truncation
  // from a killed writer, bit rot — is a cache miss, never a crash: the
  // oracle pass regenerates and overwrites it.
  try {
    obs::ObsSpan load_span("lab.cache_load", {{"workload", workload_name}});
    const auto t0 = std::chrono::steady_clock::now();
    LabRun r;
    r.profile = ThreadProfile::load(in);
    load_ms.observe(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
    r.from_cache = true;
    r.cache_path = path;
    hits.increment();
    SIMPROF_LOG(kInfo) << "lab: cache hit " << workload_name << "/"
                       << graph_input << " <- " << path << " ("
                       << r.profile.num_units() << " units)";
    return r;
  } catch (const ContractViolation& e) {
    corrupt.increment();
    SIMPROF_LOG(kWarn) << "lab: corrupt cache file " << path << " ("
                       << e.what() << "), treating as miss";
    in.close();
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return std::nullopt;
  }
}

LabRun WorkloadLab::run(const std::string& workload_name,
                        const std::string& graph_input) {
  return run_config(workload_name, graph_input, cfg_.seed);
}

LabRun WorkloadLab::run_config(const std::string& workload_name,
                               const std::string& graph_input,
                               std::uint64_t seed) {
  static obs::Counter& misses = obs::metrics().counter("lab.cache_misses");
  static obs::Counter& dedup = obs::metrics().counter("lab.batch_dedup");
  const std::string path = cache_path(workload_name, graph_input, seed);
  if (cfg_.use_cache) {
    if (auto r = try_load_cached(path, workload_name, graph_input)) {
      return std::move(*r);
    }
  }

  // Single-flight the oracle pass per cache key. The lock covers the
  // re-check, the run and the publish, so a concurrent caller either waits
  // and decodes the published profile (a dedup) or is the one runner.
  std::shared_ptr<std::mutex> key_lock;
  std::unique_lock<std::mutex> flight;
  if (cfg_.use_cache) {
    key_lock = SingleFlight::instance().lock_for(path);
    flight = std::unique_lock<std::mutex>(*key_lock);
    if (auto r = try_load_cached(path, workload_name, graph_input)) {
      dedup.increment();
      SIMPROF_LOG(kDebug) << "lab: single-flight dedup " << workload_name
                          << "/" << graph_input << " <- " << path;
      return std::move(*r);
    }
  }
  misses.increment();
  SIMPROF_LOG(kInfo) << "lab: cache miss " << workload_name << "/"
                     << graph_input << " scale=" << cfg_.scale
                     << " seed=" << seed << ", running oracle pass";

  const workloads::WorkloadInfo& info = workloads::workload(workload_name);
  exec::ClusterConfig cc = cluster_config();
  cc.seed = seed;
  exec::Cluster cluster(cc);
  SamplingManager manager(cluster.methods());
  cluster.set_profiling_hook(&manager);

  // The oracle pass doubles as the checkpoint producer: every stride-th
  // unit boundary opens a window that snapshots the warm simulation state
  // and records the profiled core's op tape, so measure_units can later
  // measure any unit in O(selected units) instead of O(run length).
  std::optional<CheckpointRecorder> recorder;
  if (cfg_.use_cache && cfg_.checkpoint_stride > 0) {
    // Recorder startup also sweeps archives recorded under an older cache
    // schema out of the shared root — the replayer would reject them anyway.
    prune_stale_checkpoint_dirs_once(checkpoint_root_);
    recorder.emplace(checkpoint_dir_for(workload_name, graph_input, seed),
                     cache_key(workload_name, graph_input, seed),
                     cfg_.checkpoint_stride);
    cluster.set_unit_governor(&*recorder);
    cluster.set_tape_sink(&*recorder);
  }

  workloads::WorkloadParams params;
  params.scale = cfg_.scale;
  params.seed = seed;
  params.graph_input = graph_input;
  params.graph_scale_override = cfg_.graph_scale_override;

  static obs::QuantileHistogram& run_ms =
      obs::metrics().quantile_histogram("lab.run_ms");
  LabRun r;
  {
    obs::ObsSpan run_span("lab.workload_run", {{"workload", workload_name},
                                               {"input", graph_input}});
    const auto t0 = std::chrono::steady_clock::now();
    r.result = info.run(cluster, params);
    if (recorder) recorder->finalize();  // publish the trailing window
    r.profile = manager.take_profile();
    run_ms.observe(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
  }
  SIMPROF_ENSURES(r.profile.num_units() > 0,
                  "workload produced no sampling units: " + workload_name);

  if (cfg_.use_cache) {
    obs::ObsSpan save_span("lab.cache_save", {{"workload", workload_name}});
    std::filesystem::create_directories(cache_dir_);
    // Atomic + durable publish: write the whole profile to a .tmp sibling,
    // fsync it, then rename into place and fsync the directory. A run killed
    // mid-write leaves only a .tmp that no reader ever opens — the published
    // name is either absent or a complete profile. The pid suffix keeps
    // separate processes (which don't share the single-flight locks) off
    // each other's temporaries.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      SIMPROF_EXPECTS(static_cast<bool>(out), "cannot write profile cache");
      r.profile.save(out);
      out.flush();
      SIMPROF_EXPECTS(static_cast<bool>(out), "short write to profile cache");
    }
    if (const int fd = ::open(tmp.c_str(), O_WRONLY); fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
    std::filesystem::rename(tmp, path);
    if (const int dfd = ::open(cache_dir_.c_str(), O_RDONLY | O_DIRECTORY);
        dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
    r.cache_path = path;
    SIMPROF_LOG(kDebug) << "lab: cached " << r.profile.num_units()
                        << " units -> " << path;
  }
  return r;
}

MeasureResult WorkloadLab::measure_units(
    const std::string& workload_name, const std::string& graph_input,
    const std::vector<std::uint64_t>& units) {
  static obs::Counter& ff_insts =
      obs::metrics().counter("lab.fast_forward_skipped_insts");
  static obs::Counter& fallbacks = obs::metrics().counter("ckpt.fallback");
  const std::uint64_t seed = cfg_.seed;
  const std::string key = cache_key(workload_name, graph_input, seed);
  const workloads::WorkloadInfo& info = workloads::workload(workload_name);

  workloads::WorkloadParams params;
  params.scale = cfg_.scale;
  params.seed = seed;
  params.graph_input = graph_input;
  params.graph_scale_override = cfg_.graph_scale_override;

  obs::ObsSpan span("lab.measure_units", {{"workload", workload_name},
                                          {"input", graph_input},
                                          {"units", units.size()}});
  exec::ClusterConfig cc = cluster_config();
  cc.seed = seed;

  // Fast path: the oracle pass left archives (state + op tape per window);
  // replay them through the target units on a fresh cluster. The workload
  // itself never runs, so the cost is O(selected units).
  bool fell_back = false;
  {
    CheckpointReplayer replayer(
        checkpoint_dir_for(workload_name, graph_input, seed), key, units);
    if (replayer.has_archives()) {
      try {
        replayer.replay(cc);
        MeasureResult m;
        m.records = replayer.take_records();
        m.checkpoints_restored = replayer.restores();
        m.used_checkpoints = replayer.restores() > 0;
        m.fast_forwarded_instrs = replayer.fast_forwarded_instrs();
        ff_insts.add(m.fast_forwarded_instrs);
        return m;
      } catch (const SerializeError& e) {
        // A bad archive must never produce a wrong number: abandon the
        // polluted cluster entirely and re-measure cold, which is slower
        // but exact.
        fallbacks.increment();
        fell_back = true;
        SIMPROF_LOG(kWarn) << "lab: checkpoint replay failed for "
                           << workload_name << "/" << graph_input << " ("
                           << e.what() << "), falling back to re-execution";
      }
    }
  }

  // Cold path (no archives, or fallback from a corrupt one): run the
  // workload with units [0, max target] detailed so each target unit sees
  // exactly the oracle pass's cache state.
  exec::Cluster cluster(cc);
  ColdMeasurer cold(units);
  cluster.set_profiling_hook(&cold);
  cluster.set_unit_governor(&cold);
  MeasureResult m;
  m.result = info.run(cluster, params);
  m.records = cold.take_records();
  m.fallback = fell_back;
  m.fast_forwarded_instrs =
      cluster.context(cc.profiled_core).ff_skipped_instrs();
  ff_insts.add(m.fast_forwarded_instrs);
  return m;
}

std::vector<LabRun> WorkloadLab::run_batch(const std::vector<BatchItem>& items) {
  static obs::Counter& batches = obs::metrics().counter("lab.batch_runs");
  static obs::Counter& batch_items = obs::metrics().counter("lab.batch_items");
  static obs::Counter& dedup = obs::metrics().counter("lab.batch_dedup");
  const std::size_t n = items.size();
  std::vector<LabRun> out(n);
  if (n == 0) return out;
  batches.increment();
  batch_items.add(n);

  // Group items by cache key: one oracle pass / decode per distinct
  // configuration, duplicates copy the representative's result.
  struct Unique {
    std::size_t item;       ///< first item with this key
    std::uint64_t seed;
    bool expect_hit;        ///< cache file present at scheduling time
  };
  std::vector<Unique> uniq;
  std::vector<std::size_t> uniq_of(n);
  {
    std::unordered_map<std::string, std::size_t> first_of;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t seed = items[i].seed.value_or(cfg_.seed);
      std::string path =
          cache_path(items[i].workload, items[i].graph_input, seed);
      auto [it, inserted] = first_of.emplace(std::move(path), uniq.size());
      if (inserted) {
        const bool hit =
            cfg_.use_cache && std::filesystem::exists(it->first);
        uniq.push_back({i, seed, hit});
      } else {
        dedup.increment();
      }
      uniq_of[i] = it->second;
    }
  }

  // Cache-aware schedule: misses (full simulations, the long poles) are
  // dispatched first so they start immediately; hits decode alongside them.
  // Execution order cannot affect results — each run is a pure function of
  // its configuration.
  std::vector<std::size_t> order;
  order.reserve(uniq.size());
  for (std::size_t u = 0; u < uniq.size(); ++u) {
    if (!uniq[u].expect_hit) order.push_back(u);
  }
  const std::size_t scheduled_misses = order.size();
  for (std::size_t u = 0; u < uniq.size(); ++u) {
    if (uniq[u].expect_hit) order.push_back(u);
  }

  obs::ObsSpan span("lab.run_batch",
                    {{"items", n},
                     {"unique", uniq.size()},
                     {"scheduled_misses", scheduled_misses}});
  // Progress feed for the heartbeat: total published once, done ticks as
  // each unique configuration completes (observation only — never read back
  // by the batch itself).
  static obs::Counter& batch_done =
      obs::metrics().counter("progress.batch_done");
  obs::metrics()
      .gauge("progress.batch_total")
      .set(static_cast<double>(uniq.size()));
  std::vector<LabRun> results(uniq.size());
  support::parallel_for(
      cfg_.threads, 0, order.size(), 1,
      [&](std::size_t, std::size_t b, std::size_t e) {
        for (std::size_t j = b; j < e; ++j) {
          const Unique& u = uniq[order[j]];
          const BatchItem& item = items[u.item];
          results[order[j]] =
              run_config(item.workload, item.graph_input, u.seed);
          batch_done.increment();
        }
      });

  // Fan the unique results back out in item order (the last consumer of a
  // result moves it, earlier duplicates copy).
  std::vector<std::size_t> last_user(uniq.size());
  for (std::size_t i = 0; i < n; ++i) last_user[uniq_of[i]] = i;
  for (std::size_t i = 0; i < n; ++i) {
    if (last_user[uniq_of[i]] == i) {
      out[i] = std::move(results[uniq_of[i]]);
    } else {
      out[i] = results[uniq_of[i]];
    }
  }
  return out;
}

}  // namespace simprof::core
