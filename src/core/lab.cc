#include "core/lab.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <algorithm>
#include <sstream>

#include "support/assert.h"

namespace simprof::core {

namespace {
constexpr std::uint32_t kCacheSchema = 4;  // bump to invalidate cached runs
}

WorkloadLab::WorkloadLab(LabConfig cfg) : cfg_(cfg) {
  if (!cfg_.cache_dir.empty()) {
    cache_dir_ = cfg_.cache_dir;
  } else if (const char* env = std::getenv("SIMPROF_CACHE_DIR")) {
    cache_dir_ = env;
  } else {
    cache_dir_ = ".simprof_cache";
  }
}

exec::ClusterConfig WorkloadLab::cluster_config() const {
  exec::ClusterConfig cc;
  cc.memory.num_cores = cfg_.num_cores;
  cc.seed = cfg_.seed;
  cc.unit_instrs = cfg_.unit_instrs;
  cc.snapshot_interval = std::max<std::uint64_t>(cfg_.unit_instrs / 10, 1);
  return cc;
}

std::string WorkloadLab::cache_path(const std::string& workload_name,
                                    const std::string& graph_input) const {
  std::ostringstream key;
  key << workload_name << '-' << graph_input << "-s" << cfg_.scale << "-seed"
      << cfg_.seed << "-c" << cfg_.num_cores << "-g"
      << cfg_.graph_scale_override << "-u" << cfg_.unit_instrs << "-v"
      << kCacheSchema << ".sprf";
  return (std::filesystem::path(cache_dir_) / key.str()).string();
}

LabRun WorkloadLab::run(const std::string& workload_name,
                        const std::string& graph_input) {
  const std::string path = cache_path(workload_name, graph_input);
  if (cfg_.use_cache) {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      LabRun r;
      r.profile = ThreadProfile::load(in);
      r.from_cache = true;
      return r;
    }
  }

  const workloads::WorkloadInfo& info = workloads::workload(workload_name);
  exec::Cluster cluster(cluster_config());
  SamplingManager manager(cluster.methods());
  cluster.set_profiling_hook(&manager);

  workloads::WorkloadParams params;
  params.scale = cfg_.scale;
  params.seed = cfg_.seed;
  params.graph_input = graph_input;
  params.graph_scale_override = cfg_.graph_scale_override;

  LabRun r;
  r.result = info.run(cluster, params);
  r.profile = manager.take_profile();
  SIMPROF_ENSURES(r.profile.num_units() > 0,
                  "workload produced no sampling units: " + workload_name);

  if (cfg_.use_cache) {
    std::filesystem::create_directories(cache_dir_);
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      SIMPROF_EXPECTS(static_cast<bool>(out), "cannot write profile cache");
      r.profile.save(out);
    }
    std::filesystem::rename(tmp, path);
  }
  return r;
}

}  // namespace simprof::core
