#include "core/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/obs.h"
#include "support/assert.h"

namespace simprof::core {

namespace {

// Local FNV-1a (64-bit): core cannot depend on src/verify, and the hash only
// needs to be stable within the archive format version.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a_bytes(std::uint64_t h, const void* p, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

void write_counters(BinaryWriter& w, const hw::PmuCounters& c) {
  w.u64(c.instructions);
  w.u64(c.cycles);
  w.u64(c.line_touches);
  w.u64(c.l1_misses);
  w.u64(c.l2_misses);
  w.u64(c.llc_misses);
  w.u64(c.migrations);
}

hw::PmuCounters read_counters(BinaryReader& r) {
  hw::PmuCounters c;
  c.instructions = r.u64();
  c.cycles = r.u64();
  c.line_touches = r.u64();
  c.l1_misses = r.u64();
  c.l2_misses = r.u64();
  c.llc_misses = r.u64();
  c.migrations = r.u64();
  return c;
}

/// The state section of the payload: run identity + profiled thread +
/// profiled cache hierarchy, captured at the unit boundary the archive
/// restores to.
void encode_state(BinaryWriter& w, const exec::Cluster& cluster,
                  const std::string& cache_key, std::uint64_t unit_index) {
  const exec::ClusterConfig& cfg = cluster.config();
  const exec::ThreadState st =
      cluster.context(cfg.profiled_core).capture_state();

  w.str(cache_key);
  w.u64(unit_index);
  w.u64(cfg.unit_instrs);
  w.u32(cluster.num_cores());
  w.u32(cfg.profiled_core);

  write_counters(w, st.counters);
  w.f64(st.cycles_acc);
  w.u64(st.thread_id);
  for (const std::uint64_t s : st.rng.s) w.u64(s);
  w.u8(st.rng.have_spare_gaussian ? 1 : 0);
  w.f64(st.rng.spare_gaussian);
  w.u64(st.next_snapshot_at);
  w.u64(st.next_unit_at);
  write_counters(w, st.unit_start_counters);
  w.vec_u32(st.frames);

  cluster.memory().l1(cfg.profiled_core).save_state(w);
  cluster.memory().l2(cfg.profiled_core).save_state(w);
  cluster.memory().llc().save_state(w);
}

// Tape references are stored column-wise — one bulk u64 array of line
// addresses plus one byte-string of flag bits per op — so encode/decode is
// two block transfers per op instead of two stream reads per reference
// (restore latency is the denominator of the checkpoint speedup).
void write_tape(BinaryWriter& w, const CheckpointTape& tape) {
  std::vector<std::uint64_t> lines;
  std::string flags;
  w.u64(tape.size());
  for (const TapeOp& op : tape) {
    w.u64(op.instrs);
    w.u32(op.llc_ways);
    w.vec_u32(op.frames);
    lines.clear();
    lines.reserve(op.refs.size());
    flags.clear();
    flags.reserve(op.refs.size());
    for (const hw::MemRef& ref : op.refs) {
      lines.push_back(ref.line);
      flags.push_back(static_cast<char>((ref.write ? 1 : 0) |
                                        (ref.prefetchable ? 2 : 0)));
    }
    w.vec_u64(lines);
    w.str(flags);
  }
}

CheckpointTape read_tape(BinaryReader& r) {
  CheckpointTape tape(r.u64());
  for (TapeOp& op : tape) {
    op.instrs = r.u64();
    op.llc_ways = r.u32();
    op.frames = r.vec_u32();
    const std::vector<std::uint64_t> lines = r.vec_u64();
    const std::string flags = r.str();
    if (flags.size() != lines.size()) {
      throw CheckpointError("corrupt archive: tape ref columns disagree");
    }
    op.refs.resize(lines.size());
    for (std::size_t i = 0; i < lines.size(); ++i) {
      op.refs[i].line = lines[i];
      op.refs[i].write = (flags[i] & 1) != 0;
      op.refs[i].prefetchable = (flags[i] & 2) != 0;
    }
  }
  return tape;
}

void write_archive(std::ostream& out, const std::string& payload) {
  BinaryWriter w(out);
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointVersion);
  w.u64(fnv1a_bytes(kFnvOffset, payload.data(), payload.size()));
  w.str(payload);
}

/// Replays a recorded chunk's reference sequence verbatim.
class ReplayStream final : public hw::AccessStream {
 public:
  explicit ReplayStream(const std::vector<hw::MemRef>& refs) : refs_(refs) {}

  bool next(hw::MemRef& out) override {
    if (pos_ >= refs_.size()) return false;
    out = refs_[pos_++];
    return true;
  }
  std::uint64_t total_refs() const override { return refs_.size(); }
  void skip(std::uint64_t n) override {
    pos_ = std::min<std::uint64_t>(refs_.size(), pos_ + n);
  }
  std::uint64_t remaining() const override { return refs_.size() - pos_; }

 private:
  const std::vector<hw::MemRef>& refs_;
  std::uint64_t pos_ = 0;
};

}  // namespace

std::string checkpoint_file_name(std::uint64_t unit_index) {
  return "ckpt-u" + std::to_string(unit_index) + ".sckp";
}

void save_checkpoint(std::ostream& out, const exec::Cluster& cluster,
                     const std::string& cache_key, std::uint64_t unit_index,
                     const CheckpointTape& tape) {
  std::ostringstream payload_stream;
  {
    BinaryWriter w(payload_stream);
    encode_state(w, cluster, cache_key, unit_index);
    write_tape(w, tape);
  }
  write_archive(out, payload_stream.str());
}

std::uint64_t load_checkpoint(std::istream& in, exec::Cluster& cluster,
                              const std::string& cache_key,
                              std::uint64_t expect_unit,
                              CheckpointTape* tape_out) {
  std::string payload;
  {
    BinaryReader r(in);
    if (r.u32() != kCheckpointMagic) {
      throw CheckpointError("not a checkpoint archive (bad magic)");
    }
    if (const auto v = r.u32(); v != kCheckpointVersion) {
      throw CheckpointError("unsupported checkpoint version " +
                            std::to_string(v));
    }
    const std::uint64_t expect_hash = r.u64();
    payload = r.str();
    if (fnv1a_bytes(kFnvOffset, payload.data(), payload.size()) !=
        expect_hash) {
      throw CheckpointError("corrupt archive: checkpoint payload hash "
                            "mismatch");
    }
  }

  const std::uint64_t payload_size = payload.size();
  std::istringstream payload_stream(std::move(payload));
  BinaryReader r(payload_stream);

  if (r.str() != cache_key) {
    throw CheckpointError("checkpoint belongs to a different run");
  }
  const std::uint64_t unit_index = r.u64();
  if (unit_index != expect_unit) {
    throw CheckpointError("checkpoint is for unit " +
                          std::to_string(unit_index) + ", expected " +
                          std::to_string(expect_unit));
  }
  const exec::ClusterConfig& cfg = cluster.config();
  if (r.u64() != cfg.unit_instrs) {
    throw CheckpointError("checkpoint unit size mismatch");
  }
  if (r.u32() != cluster.num_cores() || r.u32() != cfg.profiled_core) {
    throw CheckpointError("checkpoint cluster geometry mismatch");
  }

  exec::ThreadState st;
  st.counters = read_counters(r);
  st.cycles_acc = r.f64();
  st.thread_id = r.u64();
  for (std::uint64_t& s : st.rng.s) s = r.u64();
  st.rng.have_spare_gaussian = r.u8() != 0;
  st.rng.spare_gaussian = r.f64();
  st.next_snapshot_at = r.u64();
  st.next_unit_at = r.u64();
  st.unit_start_counters = read_counters(r);
  st.frames = r.vec_u32();

  // Archive self-consistency: the saved position must be the boundary the
  // file name / caller claims. This is a property of the archive alone — the
  // live cluster's history is irrelevant under impose semantics.
  if (st.counters.instructions != unit_index * cfg.unit_instrs) {
    throw CheckpointError("checkpoint instruction position mismatch");
  }

  // Parse the caches and the tape into scratch copies first: load_state
  // throws on geometry mismatch, and a half-restored hierarchy must never be
  // left behind when we report failure.
  hw::Cache l1(cfg.memory.l1);
  hw::Cache l2(cfg.memory.l2);
  hw::Cache llc(cfg.memory.llc);
  l1.load_state(r);
  l2.load_state(r);
  llc.load_state(r);
  CheckpointTape tape = read_tape(r);

  exec::ExecutorContext& ctx = cluster.context(cfg.profiled_core);
  ctx.restore_state(st);
  cluster.memory().l1(cfg.profiled_core) = l1;
  cluster.memory().l2(cfg.profiled_core) = l2;
  cluster.memory().llc() = llc;
  if (tape_out != nullptr) *tape_out = std::move(tape);
  return payload_size;
}

CheckpointRecorder::CheckpointRecorder(std::string dir, std::string cache_key,
                                       std::uint64_t stride)
    : dir_(std::move(dir)), cache_key_(std::move(cache_key)),
      stride_(stride) {}

exec::ExecMode CheckpointRecorder::on_unit_start(std::uint64_t unit_index,
                                                 exec::ExecutorContext& ctx) {
  if (stride_ == 0 || unit_index % stride_ != 0) {
    return exec::ExecMode::kDetailed;
  }
  publish_window();
  // Open the next window: capture the state payload right now — this is the
  // governor sequence point, after the boundary's migration draw, which is
  // exactly where a replayer resumes — and buffer chunks until the window
  // closes at the next stride boundary (or finalize()).
  std::ostringstream state_stream;
  {
    BinaryWriter w(state_stream);
    encode_state(w, ctx.cluster(), cache_key_, unit_index);
  }
  window_state_ = state_stream.str();
  window_unit_ = unit_index;
  tape_.clear();
  window_open_ = true;
  return exec::ExecMode::kDetailed;
}

void CheckpointRecorder::on_chunk(std::uint64_t instrs,
                                  std::span<const hw::MemRef> refs,
                                  std::uint32_t llc_ways,
                                  std::span<const jvm::MethodId> frames) {
  if (!window_open_ || (instrs == 0 && refs.empty())) return;
  TapeOp op;
  op.instrs = instrs;
  op.llc_ways = llc_ways;
  op.frames.assign(frames.begin(), frames.end());
  op.refs.assign(refs.begin(), refs.end());
  tape_.push_back(std::move(op));
}

void CheckpointRecorder::finalize() { publish_window(); }

void CheckpointRecorder::publish_window() {
  if (!window_open_) return;
  window_open_ = false;
  static obs::Counter& saves = obs::metrics().counter("ckpt.save");
  static obs::Counter& save_bytes = obs::metrics().counter("ckpt.save_bytes");
  obs::ObsSpan span("ckpt.save", {{"unit", window_unit_}});

  const std::string path =
      (std::filesystem::path(dir_) / checkpoint_file_name(window_unit_))
          .string();
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  try {
    if (!dir_ready_) {
      std::filesystem::create_directories(dir_);
      dir_ready_ = true;
    }
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) {
        SIMPROF_LOG(kWarn) << "ckpt: cannot open " << tmp
                           << " for writing, skipping checkpoint";
        return;
      }
      std::ostringstream payload_stream;
      payload_stream.write(
          window_state_.data(),
          static_cast<std::streamsize>(window_state_.size()));
      {
        BinaryWriter w(payload_stream);
        write_tape(w, tape_);
      }
      write_archive(out, payload_stream.str());
      out.flush();
      if (!out) {
        SIMPROF_LOG(kWarn) << "ckpt: short write to " << tmp
                           << ", skipping checkpoint";
        std::error_code ec;
        std::filesystem::remove(tmp, ec);
        return;
      }
    }
    if (const int fd = ::open(tmp.c_str(), O_WRONLY); fd >= 0) {
      ::fsync(fd);
      ::close(fd);
    }
    std::filesystem::rename(tmp, path);
    if (const int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
        dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
    ++saved_;
    saves.increment();
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (!ec) save_bytes.add(size);
    SIMPROF_LOG(kDebug) << "ckpt: saved unit " << window_unit_ << " ("
                        << tape_.size() << " tape ops) -> " << path;
  } catch (const std::filesystem::filesystem_error& e) {
    SIMPROF_LOG(kWarn) << "ckpt: save failed for unit " << window_unit_
                       << " (" << e.what()
                       << "), continuing without checkpoint";
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
  }
}

UnitRecordCollector::UnitRecordCollector(
    std::vector<std::uint64_t> target_units)
    : targets_(std::move(target_units)) {
  std::sort(targets_.begin(), targets_.end());
  targets_.erase(std::unique(targets_.begin(), targets_.end()),
                 targets_.end());
}

bool UnitRecordCollector::is_target(std::uint64_t u) const {
  return std::binary_search(targets_.begin(), targets_.end(), u);
}

void UnitRecordCollector::on_snapshot(std::span<const jvm::MethodId> stack) {
  // Snapshots only matter for units we will keep; warming units burn the
  // cache hierarchy in, not the histogram.
  if (!is_target(current_unit_)) return;
  for (const jvm::MethodId m : stack) ++current_histogram_[m];
}

void UnitRecordCollector::on_unit_boundary(const hw::PmuCounters& delta,
                                           const hw::MavBlock& mav) {
  if (is_target(current_unit_)) {
    UnitRecord u;
    u.unit_id = current_unit_;
    u.counters = delta;
    u.mav = mav;
    // Deterministic order: sorted by method id (mirrors SamplingManager).
    std::vector<std::pair<jvm::MethodId, std::uint32_t>> entries(
        current_histogram_.begin(), current_histogram_.end());
    std::sort(entries.begin(), entries.end());
    u.methods.reserve(entries.size());
    u.counts.reserve(entries.size());
    for (const auto& [m, c] : entries) {
      u.methods.push_back(m);
      u.counts.push_back(c);
    }
    records_.push_back(std::move(u));
  }
  current_histogram_.clear();
  ++current_unit_;
}

std::vector<UnitRecord> UnitRecordCollector::take_records() {
  std::vector<UnitRecord> out = std::move(records_);
  records_ = {};
  std::sort(out.begin(), out.end(),
            [](const UnitRecord& a, const UnitRecord& b) {
              return a.unit_id < b.unit_id;
            });
  return out;
}

CheckpointReplayer::CheckpointReplayer(std::string dir, std::string cache_key,
                                       std::vector<std::uint64_t> target_units)
    : UnitRecordCollector(std::move(target_units)), dir_(std::move(dir)),
      cache_key_(std::move(cache_key)) {
  // Discover the available archives. A scan failure (missing dir) just
  // means no checkpoints: the caller measures cold.
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir_, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    constexpr std::string_view prefix = "ckpt-u";
    constexpr std::string_view suffix = ".sckp";
    if (name.size() <= prefix.size() + suffix.size() ||
        name.compare(0, prefix.size(), prefix) != 0 ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string digits =
        name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    available_.push_back(std::stoull(digits));
  }
  std::sort(available_.begin(), available_.end());
}

void CheckpointReplayer::replay(const exec::ClusterConfig& cc) {
  static obs::Counter& restore_ctr = obs::metrics().counter("ckpt.restore");
  static obs::Counter& restore_bytes =
      obs::metrics().counter("ckpt.restore_bytes");
  static obs::QuantileHistogram& restore_ms =
      obs::metrics().quantile_histogram("ckpt.restore_ms");

  exec::Cluster cluster(cc);
  cluster.set_profiling_hook(this);
  exec::ExecutorContext& ctx = cluster.context(cc.profiled_core);

  bool loaded = false;
  std::uint64_t loaded_unit = 0;
  CheckpointTape tape;
  std::size_t op_idx = 0;

  for (const std::uint64_t t : targets_) {
    auto it = std::upper_bound(available_.begin(), available_.end(), t);
    if (it == available_.begin()) {
      throw CheckpointError("no checkpoint archive at or before unit " +
                            std::to_string(t));
    }
    const std::uint64_t start = *std::prev(it);

    if (!loaded || loaded_unit != start) {
      obs::ObsSpan span("ckpt.restore", {{"unit", start}});
      const auto t0 = std::chrono::steady_clock::now();
      const std::string path =
          (std::filesystem::path(dir_) / checkpoint_file_name(start))
              .string();
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        throw CheckpointError("checkpoint archive vanished: " + path);
      }
      const std::uint64_t before_ip = ctx.counters().instructions;
      const std::uint64_t bytes =
          load_checkpoint(in, cluster, cache_key_, start, &tape);
      const std::uint64_t after_ip = start * cc.unit_instrs;
      if (after_ip > before_ip) ff_instrs_ += after_ip - before_ip;
      ++restores_;
      restored_bytes_ += bytes;
      restore_ctr.increment();
      restore_bytes.add(bytes);
      restore_ms.observe(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
      loaded = true;
      loaded_unit = start;
      op_idx = 0;
      current_unit_ = start;
      SIMPROF_LOG(kDebug) << "ckpt: restored unit " << start << " <- " << path
                          << " (" << bytes << " payload bytes, "
                          << tape.size() << " tape ops)";
    }

    // Re-execute the window's op tape until the boundary closing unit `t`
    // fires. Chunks never span boundaries (execute() clips them), so op
    // granularity is exact, and stopping mid-window leaves valid state for
    // a later target in the same window.
    while (current_unit_ <= t && op_idx < tape.size()) {
      const TapeOp& op = tape[op_idx++];
      ctx.stack().restore_frames(op.frames);
      cluster.memory().llc().set_effective_ways(op.llc_ways);
      ReplayStream rs(op.refs);
      ctx.execute(op.instrs, &rs);
    }

    if (current_unit_ <= t) {
      // Tape exhausted before unit `t` completed: either the run's trailing
      // partial unit (measurable iff at least one snapshot interval long,
      // mirroring Cluster::finish()), a target past the end of the run
      // (skipped, like the oracle pass would), or — if archives exist past
      // this window — a tape that should have reached the next stride
      // boundary but did not, i.e. archive damage.
      const std::uint64_t ip = ctx.counters().instructions;
      if (ip / cc.unit_instrs == t &&
          ip % cc.unit_instrs >= cc.snapshot_interval) {
        on_unit_boundary(
            ctx.counters().delta_since(ctx.capture_state().unit_start_counters),
            ctx.unit_mav());
      } else if (available_.back() > loaded_unit) {
        throw CheckpointError("op tape in archive for unit " +
                              std::to_string(loaded_unit) +
                              " ends before unit " + std::to_string(t));
      }
    }
  }
}

ColdMeasurer::ColdMeasurer(std::vector<std::uint64_t> target_units)
    : UnitRecordCollector(std::move(target_units)) {}

exec::ExecMode ColdMeasurer::on_unit_start(std::uint64_t unit_index,
                                           exec::ExecutorContext&) {
  current_unit_ = unit_index;
  // Everything up to the last target runs detailed so each target unit sees
  // exactly the cache state the oracle pass saw; past it, only functional
  // execution remains.
  return targets_.empty() || unit_index > targets_.back()
             ? exec::ExecMode::kFastForward
             : exec::ExecMode::kDetailed;
}

}  // namespace simprof::core
