#include "exec/kernels.h"

#include <algorithm>

#include "hw/access_stream.h"
#include "support/assert.h"

namespace simprof::exec {

const KernelCosts& default_kernel_costs() {
  static const KernelCosts costs{};
  return costs;
}

void scan_region(ExecutorContext& ctx, std::uint64_t base, std::uint64_t bytes,
                 double instrs_per_byte, bool write) {
  if (bytes == 0) return;
  hw::SequentialStream stream(base, bytes, write);
  ctx.execute(static_cast<std::uint64_t>(instrs_per_byte *
                                         static_cast<double>(bytes)),
              &stream);
}

std::uint64_t hash_aggregate_instrs(std::uint64_t elements,
                                    const KernelCosts& costs) {
  return static_cast<std::uint64_t>(costs.hash_probe_instrs *
                                    static_cast<double>(elements));
}

std::unique_ptr<hw::AccessStream> hash_aggregate_stream(
    Rng& rng, std::uint64_t base, std::uint64_t occupied_bytes,
    std::uint64_t elements, double hot_fraction_skew,
    const KernelCosts& costs) {
  const auto touches = static_cast<std::uint64_t>(
      costs.hash_touches_per_element * static_cast<double>(elements));
  const std::uint64_t bytes = std::max<std::uint64_t>(occupied_bytes, 64);
  if (hot_fraction_skew > 0.0) {
    return std::make_unique<hw::ZipfStream>(base, bytes, touches,
                                            hot_fraction_skew, rng,
                                            /*write=*/true);
  }
  return std::make_unique<hw::RandomStream>(base, bytes, touches, rng,
                                            /*write=*/false,
                                            /*write_fraction=*/0.5);
}

void hash_aggregate(ExecutorContext& ctx, std::uint64_t base,
                    std::uint64_t occupied_bytes, std::uint64_t elements,
                    double hot_fraction_skew, const KernelCosts& costs) {
  if (elements == 0) return;
  const auto stream = hash_aggregate_stream(ctx.rng(), base, occupied_bytes,
                                            elements, hot_fraction_skew,
                                            costs);
  ctx.execute(hash_aggregate_instrs(elements, costs), stream.get());
}

void quicksort_traffic(ExecutorContext& ctx, std::uint64_t base,
                       std::uint64_t elements, std::uint32_t element_bytes,
                       const KernelCosts& costs,
                       std::uint64_t cutoff_elements) {
  if (elements == 0) return;
  SIMPROF_EXPECTS(element_bytes > 0, "element bytes must be positive");

  if (elements <= cutoff_elements) {
    // Small partition: one resident pass (insertion-sort regime).
    scan_region(ctx, base, elements * element_bytes,
                costs.sort_instrs_per_element /
                    static_cast<double>(element_bytes));
    return;
  }
  // Partition pass: stream the whole range once (reads + exchanged writes).
  {
    hw::SequentialStream stream(base, elements * element_bytes,
                                /*write=*/true);
    ctx.execute(static_cast<std::uint64_t>(costs.sort_instrs_per_element *
                                           static_cast<double>(elements)),
                &stream);
  }
  // Randomized split between 35% and 65% — real pivots are imperfect, and
  // the imbalance is what spreads partition sizes (and thus CPIs) out.
  const double frac = ctx.rng().next_double(0.35, 0.65);
  const auto left = static_cast<std::uint64_t>(
      frac * static_cast<double>(elements));
  const std::uint64_t right = elements - left;
  quicksort_traffic(ctx, base, left, element_bytes, costs, cutoff_elements);
  quicksort_traffic(ctx, base + left * element_bytes, right, element_bytes,
                    costs, cutoff_elements);
}

void write_stream(ExecutorContext& ctx, std::uint64_t base,
                  std::uint64_t bytes, bool compressed,
                  const KernelCosts& costs) {
  if (bytes == 0) return;
  const double per_byte =
      costs.serialize_instrs_per_byte +
      (compressed ? costs.compress_instrs_per_byte : 0.0);
  hw::SequentialStream stream(base, bytes, /*write=*/true);
  ctx.execute(
      static_cast<std::uint64_t>(per_byte * static_cast<double>(bytes)),
      &stream);
}

void merge_runs(ExecutorContext& ctx, std::uint64_t base,
                std::uint64_t total_bytes, std::uint64_t elements,
                std::uint32_t runs, const KernelCosts& costs) {
  if (total_bytes == 0 || elements == 0) return;
  const std::uint32_t r = std::max<std::uint32_t>(runs, 1);
  // Interleaved sequential reads of r runs: modeled as a strided pass per
  // run head (prefetch-friendly but with r concurrent streams the stride
  // defeats some locality).
  const std::uint64_t stride_lines = std::max<std::uint64_t>(r / 2, 1);
  hw::StridedStream stream(base, total_bytes, stride_lines);
  ctx.execute(static_cast<std::uint64_t>(costs.merge_instrs_per_element *
                                         static_cast<double>(elements)),
              &stream);
}

}  // namespace simprof::exec
