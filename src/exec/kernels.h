// Reusable workload kernels: the memory/instruction cost shapes shared by
// both computing frameworks (scans, hash aggregation, quicksort, spills,
// merges). Functional results are computed by the engines with ordinary C++;
// these kernels emit the corresponding *simulated* instruction counts and
// cache traffic, so the cost model lives in one place.
//
// Per-element instruction budgets are deliberately coarse (they only need to
// place phase CPIs in realistic ranges); the *shape* of the traffic —
// sequential vs random, region growth, partition recursion — is what drives
// the paper's phase phenomena.
#pragma once

#include <cstdint>
#include <memory>

#include "exec/executor_context.h"

namespace simprof::exec {

/// Instruction budgets per element/byte for the common operations.
struct KernelCosts {
  double scan_instrs_per_byte = 1.2;       ///< tokenize/deserialize scans
  double map_instrs_per_element = 26;      ///< user map-fn body
  double hash_probe_instrs = 34;           ///< hash+compare+merge per element
  double hash_touches_per_element = 1.6;   ///< cache-line touches per probe
  double sort_instrs_per_element = 7;     ///< per element per partition pass
  double serialize_instrs_per_byte = 0.9;  ///< object serialization
  double compress_instrs_per_byte = 1.7;   ///< spill compression (Hadoop opt)
  double merge_instrs_per_element = 18;    ///< k-way merge step
};

/// Global default used by the engines; a workload can override per run.
const KernelCosts& default_kernel_costs();

/// Sequential scan of `bytes` (input split read, shuffle block read, …).
void scan_region(ExecutorContext& ctx, std::uint64_t base,
                 std::uint64_t bytes, double instrs_per_byte,
                 bool write = false);

/// Hash-map aggregation of `elements` into a table that has grown to
/// `occupied_bytes` within a region at `base` (combiners, reducers,
/// aggregateUsingIndex). Probes are Zipf-skewed when `hot_fraction_skew` > 0
/// (hot keys hit cached lines) and uniform otherwise.
void hash_aggregate(ExecutorContext& ctx, std::uint64_t base,
                    std::uint64_t occupied_bytes, std::uint64_t elements,
                    double hot_fraction_skew, const KernelCosts& costs);

/// Deferred-charging building blocks for pipeline batching (exec/pipeline.h):
/// the instruction budget and probe stream hash_aggregate would charge.
std::uint64_t hash_aggregate_instrs(std::uint64_t elements,
                                    const KernelCosts& costs);
std::unique_ptr<hw::AccessStream> hash_aggregate_stream(
    Rng& rng, std::uint64_t base, std::uint64_t occupied_bytes,
    std::uint64_t elements, double hot_fraction_skew,
    const KernelCosts& costs);

/// Quicksort cache behaviour over `elements`·`element_bytes` at `base`:
/// recursive partition passes touch progressively smaller regions, so deep
/// partitions become cache-resident — the paper's canonical source of
/// intra-phase CPI variation. Splits are randomized via ctx.rng().
/// `cutoff_elements` switches to an insertion-sort-style resident pass.
void quicksort_traffic(ExecutorContext& ctx, std::uint64_t base,
                       std::uint64_t elements, std::uint32_t element_bytes,
                       const KernelCosts& costs,
                       std::uint64_t cutoff_elements = 4096);

/// Serialize-and-write `bytes` to a spill/shuffle/HDFS file at `base`
/// (sequential writes). `compressed` adds the compression cpu cost.
void write_stream(ExecutorContext& ctx, std::uint64_t base,
                  std::uint64_t bytes, bool compressed,
                  const KernelCosts& costs);

/// k-way merge of `runs` sorted runs totalling `elements` over a region:
/// sequential reads of each run interleaved (strided view) + heap work.
void merge_runs(ExecutorContext& ctx, std::uint64_t base,
                std::uint64_t total_bytes, std::uint64_t elements,
                std::uint32_t runs, const KernelCosts& costs);

}  // namespace simprof::exec
