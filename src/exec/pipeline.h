// Pipeline-interleaved cost charging.
//
// Spark fuses narrow transformations into one iterator pipeline: during a
// task, a sampling profiler sees *every* pipeline stage's frames in every
// snapshot window, because stages alternate at record granularity. Charging
// each operator's cost as one contiguous block would instead fabricate
// separate phases per operator (an artifact the real system doesn't have).
//
// A PipelineBatcher collects each operator's (frames, instructions, traffic)
// as work items during the functional computation, then flush() replays them
// in round-robin slices far smaller than a snapshot interval — so sampling
// units see the true mixed signature.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "exec/executor_context.h"
#include "hw/access_stream.h"
#include "jvm/method.h"

namespace simprof::exec {

/// View over another stream that serves at most a quota of references per
/// flush slice (the inner stream's cursor advances persistently).
class QuotaStream final : public hw::AccessStream {
 public:
  QuotaStream(hw::AccessStream& inner, std::uint64_t quota)
      : inner_(&inner), quota_(quota) {}
  bool next(hw::MemRef& out) override {
    if (served_ >= quota_) return false;
    if (!inner_->next(out)) return false;
    ++served_;
    return true;
  }
  std::uint64_t total_refs() const override { return quota_; }
  void skip(std::uint64_t n) override {
    const std::uint64_t step =
        std::min({n, quota_ - served_, inner_->remaining()});
    inner_->skip(step);
    served_ += step;
  }
  std::uint64_t remaining() const override {
    return std::min(quota_ - served_, inner_->remaining());
  }

 private:
  hw::AccessStream* inner_;
  std::uint64_t quota_;
  std::uint64_t served_ = 0;
};

class PipelineBatcher {
 public:
  /// Enter/leave a pipeline stage: frames pushed here prefix every item
  /// added while active (mirrors the consumer-above-producer stack shape).
  void push_frame(jvm::MethodId m) { prefix_.push_back(m); }
  void pop_frame() { prefix_.pop_back(); }

  /// Record one operator's work. `stream` may be null (pure compute).
  void add(jvm::MethodId method, std::uint64_t instrs,
           std::unique_ptr<hw::AccessStream> stream);

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }

  /// Charge everything in interleaved round-robin slices of at most
  /// `slice_instrs` per step, pushing each item's frames for its slices.
  /// The batcher is empty afterwards.
  void flush(ExecutorContext& ctx, std::uint64_t slice_instrs);

 private:
  struct Item {
    std::vector<jvm::MethodId> frames;
    std::uint64_t instrs = 0;
    std::uint64_t charged = 0;
    std::uint64_t refs_total = 0;
    std::uint64_t refs_served = 0;
    std::unique_ptr<hw::AccessStream> stream;
  };
  std::vector<jvm::MethodId> prefix_;
  std::vector<Item> items_;
};

/// RAII frame guard for the batcher prefix.
class PipelineFrame {
 public:
  PipelineFrame(PipelineBatcher* batcher, jvm::MethodId m) : batcher_(batcher) {
    if (batcher_ != nullptr) batcher_->push_frame(m);
  }
  ~PipelineFrame() {
    if (batcher_ != nullptr) batcher_->pop_frame();
  }
  PipelineFrame(const PipelineFrame&) = delete;
  PipelineFrame& operator=(const PipelineFrame&) = delete;

 private:
  PipelineBatcher* batcher_;
};

/// RAII attach/flush helper for terminal pipeline drivers (shuffle-map and
/// result tasks): attaches a fresh batcher to the context and flushes it on
/// scope exit (before destructor-run method scopes unwind).
class PipelineScope {
 public:
  explicit PipelineScope(ExecutorContext& ctx)
      : ctx_(ctx), previous_(ctx.batcher()) {
    ctx_.set_batcher(&batcher_);
  }
  ~PipelineScope() { finish(); }

  PipelineScope(const PipelineScope&) = delete;
  PipelineScope& operator=(const PipelineScope&) = delete;

  /// Detach and charge now (idempotent).
  void finish();

 private:
  ExecutorContext& ctx_;
  PipelineBatcher batcher_;
  PipelineBatcher* previous_;
  bool finished_ = false;
};

}  // namespace simprof::exec
