// The simulated cluster node: N cores, a shared memory hierarchy, and a
// deterministic wave scheduler for stage execution.
//
// Concurrency model: a stage's tasks are dealt to cores round-robin and run
// in waves of up to `num_cores` tasks. All tasks in a wave are "concurrent"
// in virtual time; the shared LLC's effective associativity is divided by the
// wave's width, so full waves pressure the profiled thread's LLC share and
// straggler waves run with more cache — reproducing the paper's
// phase-interleaving performance variation deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/executor_context.h"
#include "hw/access_stream.h"
#include "hw/memory_system.h"
#include "jvm/method.h"
#include "support/rng.h"

namespace simprof::exec {

struct ClusterConfig {
  hw::MemorySystemConfig memory;
  std::uint64_t unit_instrs = 1'000'000;        ///< paper: 100M, scaled 1/100
  std::uint64_t snapshot_interval = 100'000;    ///< paper: 10M, scaled 1/100
  double migration_prob_per_unit = 0.006;       ///< OS scheduling noise
  std::uint32_t profiled_core = 0;
  std::uint64_t seed = 42;
};

/// A schedulable unit of work: Spark task or Hadoop map/reduce attempt.
struct Task {
  std::string name;
  std::function<void(ExecutorContext&)> body;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& cfg);

  std::uint32_t num_cores() const { return memory_.num_cores(); }
  const ClusterConfig& config() const { return cfg_; }

  jvm::MethodRegistry& methods() { return methods_; }
  const jvm::MethodRegistry& methods() const { return methods_; }
  hw::MemorySystem& memory() { return memory_; }
  const hw::MemorySystem& memory() const { return memory_; }
  hw::AddressSpace& address_space() { return address_space_; }

  ExecutorContext& context(std::uint32_t core);
  const ExecutorContext& context(std::uint32_t core) const;

  /// Install the profiling subscriber (SimProf's thread profiler). May be
  /// null to run unprofiled.
  void set_profiling_hook(ProfilingHook* hook) { hook_ = hook; }
  ProfilingHook* profiling_hook() const { return hook_; }

  /// Install the per-unit execution-mode policy (checkpoint record/replay;
  /// see core/checkpoint.h). May be null: every unit runs detailed.
  void set_unit_governor(UnitGovernor* g) { governor_ = g; }
  UnitGovernor* unit_governor() const { return governor_; }

  /// Install the profiled core's detailed-execution trace subscriber
  /// (checkpoint op-tape recording; see core/checkpoint.h). May be null.
  void set_tape_sink(OpTapeSink* s) { tape_sink_ = s; }
  OpTapeSink* tape_sink() const { return tape_sink_; }

  /// Stages executed so far (schedule-position bookkeeping).
  std::uint64_t stages_run() const { return stages_run_; }

  /// Execute one stage: tasks are dealt round-robin to cores and run in
  /// waves. `thread_per_task` selects Hadoop semantics (each task runs on a
  /// fresh executor thread).
  void run_stage(std::string_view stage_name, std::vector<Task> tasks,
                 bool thread_per_task = false);

  /// Flush the profiled thread's trailing partial sampling unit (fires a
  /// final on_unit_boundary if at least one snapshot interval completed).
  void finish();

 private:
  ClusterConfig cfg_;
  hw::MemorySystem memory_;
  jvm::MethodRegistry methods_;
  hw::AddressSpace address_space_;
  std::vector<std::unique_ptr<ExecutorContext>> contexts_;
  ProfilingHook* hook_ = nullptr;
  UnitGovernor* governor_ = nullptr;
  OpTapeSink* tape_sink_ = nullptr;
  std::uint64_t stages_run_ = 0;
  Rng scheduler_rng_;
};

}  // namespace simprof::exec
