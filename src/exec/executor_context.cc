#include "exec/executor_context.h"

#include <algorithm>

#include "exec/cluster.h"
#include "obs/obs.h"
#include "support/assert.h"

namespace simprof::exec {

ExecutorContext::ExecutorContext(Cluster& cluster, std::uint32_t core, Rng rng)
    : cluster_(cluster), core_(core), rng_(rng) {
  next_snapshot_at_ = cluster_.config().snapshot_interval;
  next_unit_at_ = cluster_.config().unit_instrs;
}

bool ExecutorContext::is_profiled() const {
  return core_ == cluster_.config().profiled_core;
}

jvm::MethodId ExecutorContext::method(std::string_view name,
                                      jvm::OpKind kind) {
  return cluster_.methods().intern(name, kind);
}

hw::AddressSpace& ExecutorContext::address_space() {
  return cluster_.address_space();
}

std::uint64_t ExecutorContext::pipeline_slice_instrs() const {
  return std::max<std::uint64_t>(cluster_.config().snapshot_interval / 4, 1);
}

void ExecutorContext::prime_governor_if_needed() {
  // The first profiled instruction of a run is a unit start too: consult the
  // governor once so a replayer can fast-forward from instruction zero (or a
  // recorder can treat unit 0 as already recorded by construction).
  if (governor_primed_) return;
  governor_primed_ = true;
  if (UnitGovernor* g = cluster_.unit_governor(); g != nullptr) {
    mode_ = g->on_unit_start(
        counters_.instructions / cluster_.config().unit_instrs, *this);
  }
}

void ExecutorContext::execute(std::uint64_t instrs, hw::AccessStream* stream) {
  if (is_profiled()) prime_governor_if_needed();

  if (instrs == 0) {
    // Still drain the stream so kernels can emit pure-traffic work.
    if (stream != nullptr && is_profiled()) {
      if (mode_ == ExecMode::kFastForward) {
        // Advance the cursor without simulation; positions stay identical
        // to a detailed drain so later detailed units see the same stream.
        stream->skip(stream->remaining());
        return;
      }
      OpTapeSink* sink = cluster_.tape_sink();
      if (sink != nullptr) tape_refs_.clear();
      hw::MemRef ref;
      double cycles = 0.0;
      while (stream->next(ref)) {
        const auto out = cluster_.memory().access_outcome(core_, ref);
        cycles += out.cycles;
        mav_tracker_.record(ref.line, out.level);
        ++counters_.line_touches;
        if (sink != nullptr) tape_refs_.push_back(ref);
      }
      charge_cycles(cycles);
      if (sink != nullptr && !tape_refs_.empty()) {
        sink->on_chunk(0, tape_refs_,
                       cluster_.memory().llc().effective_ways(),
                       stack_.frames());
      }
    }
    return;
  }

  const auto& cost = cluster_.memory().config().cost;

  if (!is_profiled()) {
    // Functional-only execution: advance the clock, skip cache simulation.
    counters_.instructions += instrs;
    charge_cycles(static_cast<double>(instrs) * cost.base_cpi);
    return;
  }

  const std::uint64_t total_refs = stream ? stream->total_refs() : 0;
  std::uint64_t done = 0;
  std::uint64_t refs_done = 0;
  hw::MemRef ref;
  OpTapeSink* const sink = cluster_.tape_sink();

  while (done < instrs) {
    // Advance to the nearest profiling boundary.
    std::uint64_t step = instrs - done;
    const std::uint64_t ip = counters_.instructions;
    SIMPROF_ASSERT(next_snapshot_at_ > ip && next_unit_at_ > ip,
                   "boundary bookkeeping fell behind");
    step = std::min(step, next_snapshot_at_ - ip);
    step = std::min(step, next_unit_at_ - ip);

    // References apportioned evenly across the chunk's instructions. In
    // fast-forward the same target is computed but the references are
    // skipped in O(1) — stream cursors and instruction counts advance
    // exactly as in detailed mode, only the cache simulation is elided.
    const std::uint64_t target =
        total_refs == 0
            ? 0
            : static_cast<std::uint64_t>(static_cast<__uint128_t>(total_refs) *
                                         (done + step) / instrs);
    if (mode_ == ExecMode::kFastForward) {
      if (target > refs_done) {
        stream->skip(target - refs_done);
        refs_done = target;
      }
      counters_.instructions += step;
      done += step;
      ff_skipped_instrs_ += step;
      charge_cycles(static_cast<double>(step) * cost.base_cpi);
      maybe_fire_boundaries();
      continue;
    }

    double cycles = static_cast<double>(step) * cost.base_cpi;
    if (sink != nullptr) tape_refs_.clear();
    while (refs_done < target && stream->next(ref)) {
      const auto out = cluster_.memory().access_outcome(core_, ref);
      cycles += out.cycles;
      mav_tracker_.record(ref.line, out.level);
      ++refs_done;
      ++counters_.line_touches;
      if (sink != nullptr) tape_refs_.push_back(ref);
    }
    // Miss counters are read off the cache models lazily at boundaries; the
    // per-level miss deltas are maintained here for unit records.
    counters_.l1_misses = cluster_.memory().l1(core_).stats().misses;
    counters_.l2_misses = cluster_.memory().l2(core_).stats().misses;
    counters_.llc_misses = cluster_.memory().llc().stats().misses;

    counters_.instructions += step;
    done += step;
    charge_cycles(cycles);
    // The chunk belongs to the window that was open while it executed, so it
    // is emitted before the boundary hooks can rotate the recorder's window.
    if (sink != nullptr) {
      sink->on_chunk(step, tape_refs_,
                     cluster_.memory().llc().effective_ways(),
                     stack_.frames());
    }
    maybe_fire_boundaries();
  }
}

void ExecutorContext::maybe_fire_boundaries() {
  const auto& cfg = cluster_.config();
  const std::uint64_t ip = counters_.instructions;
  ProfilingHook* hook = cluster_.profiling_hook();
  // Hooks describe the unit that just *completed*, so they are gated on the
  // mode that unit ran under — the governor may flip the mode below, which
  // only affects the unit that is starting.
  const bool detailed = mode_ == ExecMode::kDetailed;

  if (ip >= next_snapshot_at_) {
    if (detailed && hook != nullptr) hook->on_snapshot(stack_.frames());
    next_snapshot_at_ += cfg.snapshot_interval;
  }
  if (ip >= next_unit_at_) {
    if (detailed && hook != nullptr) {
      hook->on_unit_boundary(counters_.delta_since(unit_start_counters_),
                             mav_tracker_.block());
    }
    unit_start_counters_ = counters_;
    // Reset before the governor's sequence point so checkpoint archives
    // never need to carry tracker state (it is empty exactly here).
    mav_tracker_.reset();
    next_unit_at_ += cfg.unit_instrs;
    // OS scheduling noise: occasionally the executor thread is migrated to
    // another core; its private caches go cold (Section III-B.1). The draw
    // is consumed in every mode — the generator must evolve identically in
    // fast-forward and detailed execution — but the cold-cache mechanics
    // only apply when the unit is simulated.
    const bool migrated = rng_.next_bool(cfg.migration_prob_per_unit);
    if (detailed && migrated) {
      cluster_.memory().migrate(core_);
      ++counters_.migrations;
      static obs::Counter& migrations =
          obs::metrics().counter("exec.migrations");
      migrations.increment();
      obs::trace_virtual_instant("migration", counters_.cycles, core_,
                                 {{"instructions", ip}});
    }
    // Unit boundary mechanics are done; let the governor pick the mode for
    // the unit now starting. A checkpoint recorder snapshots *here* (after
    // the migration draw) and a replayer restores at the same sequence
    // point, so saved and restored generator states line up exactly.
    if (UnitGovernor* g = cluster_.unit_governor(); g != nullptr) {
      mode_ = g->on_unit_start(ip / cfg.unit_instrs, *this);
    }
  }
}

ThreadState ExecutorContext::capture_state() const {
  ThreadState st;
  st.counters = counters_;
  st.cycles_acc = cycles_acc_;
  st.thread_id = thread_id_;
  st.rng = rng_.state();
  const auto frames = stack_.frames();
  st.frames.assign(frames.begin(), frames.end());
  st.next_snapshot_at = next_snapshot_at_;
  st.next_unit_at = next_unit_at_;
  st.unit_start_counters = unit_start_counters_;
  return st;
}

void ExecutorContext::restore_state(const ThreadState& st) {
  // Restores land at unit boundaries, where the saving context's tracker had
  // just been reset — start empty so replayed units rebuild identical MAVs.
  mav_tracker_.reset();
  counters_ = st.counters;
  cycles_acc_ = st.cycles_acc;
  thread_id_ = st.thread_id;
  rng_.set_state(st.rng);
  stack_.restore_frames(st.frames);
  next_snapshot_at_ = st.next_snapshot_at;
  next_unit_at_ = st.next_unit_at;
  unit_start_counters_ = st.unit_start_counters;
}

}  // namespace simprof::exec
