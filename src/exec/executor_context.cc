#include "exec/executor_context.h"

#include <algorithm>

#include "exec/cluster.h"
#include "obs/obs.h"
#include "support/assert.h"

namespace simprof::exec {

ExecutorContext::ExecutorContext(Cluster& cluster, std::uint32_t core, Rng rng)
    : cluster_(cluster), core_(core), rng_(rng) {
  next_snapshot_at_ = cluster_.config().snapshot_interval;
  next_unit_at_ = cluster_.config().unit_instrs;
}

bool ExecutorContext::is_profiled() const {
  return core_ == cluster_.config().profiled_core;
}

jvm::MethodId ExecutorContext::method(std::string_view name,
                                      jvm::OpKind kind) {
  return cluster_.methods().intern(name, kind);
}

hw::AddressSpace& ExecutorContext::address_space() {
  return cluster_.address_space();
}

std::uint64_t ExecutorContext::pipeline_slice_instrs() const {
  return std::max<std::uint64_t>(cluster_.config().snapshot_interval / 4, 1);
}

void ExecutorContext::execute(std::uint64_t instrs, hw::AccessStream* stream) {
  if (instrs == 0) {
    // Still drain the stream so kernels can emit pure-traffic work.
    if (stream != nullptr && is_profiled()) {
      hw::MemRef ref;
      double cycles = 0.0;
      while (stream->next(ref)) {
        cycles += cluster_.memory().access(core_, ref);
        ++counters_.line_touches;
      }
      charge_cycles(cycles);
    }
    return;
  }

  const auto& cost = cluster_.memory().config().cost;

  if (!is_profiled()) {
    // Functional-only execution: advance the clock, skip cache simulation.
    counters_.instructions += instrs;
    charge_cycles(static_cast<double>(instrs) * cost.base_cpi);
    return;
  }

  const std::uint64_t total_refs = stream ? stream->total_refs() : 0;
  std::uint64_t done = 0;
  std::uint64_t refs_done = 0;
  hw::MemRef ref;

  while (done < instrs) {
    // Advance to the nearest profiling boundary.
    std::uint64_t step = instrs - done;
    const std::uint64_t ip = counters_.instructions;
    SIMPROF_ASSERT(next_snapshot_at_ > ip && next_unit_at_ > ip,
                   "boundary bookkeeping fell behind");
    step = std::min(step, next_snapshot_at_ - ip);
    step = std::min(step, next_unit_at_ - ip);

    // References apportioned evenly across the chunk's instructions.
    double cycles = static_cast<double>(step) * cost.base_cpi;
    if (total_refs > 0) {
      const std::uint64_t target =
          static_cast<std::uint64_t>(static_cast<__uint128_t>(total_refs) *
                                     (done + step) / instrs);
      while (refs_done < target && stream->next(ref)) {
        cycles += cluster_.memory().access(core_, ref);
        ++refs_done;
        ++counters_.line_touches;
      }
    }
    // Miss counters are read off the cache models lazily at boundaries; the
    // per-level miss deltas are maintained here for unit records.
    counters_.l1_misses = cluster_.memory().l1(core_).stats().misses;
    counters_.l2_misses = cluster_.memory().l2(core_).stats().misses;
    counters_.llc_misses = cluster_.memory().llc().stats().misses;

    counters_.instructions += step;
    done += step;
    charge_cycles(cycles);
    maybe_fire_boundaries();
  }
}

void ExecutorContext::maybe_fire_boundaries() {
  const auto& cfg = cluster_.config();
  const std::uint64_t ip = counters_.instructions;
  ProfilingHook* hook = cluster_.profiling_hook();

  if (ip >= next_snapshot_at_) {
    if (hook != nullptr) hook->on_snapshot(stack_.frames());
    next_snapshot_at_ += cfg.snapshot_interval;
  }
  if (ip >= next_unit_at_) {
    if (hook != nullptr) {
      hook->on_unit_boundary(counters_.delta_since(unit_start_counters_));
    }
    unit_start_counters_ = counters_;
    next_unit_at_ += cfg.unit_instrs;
    // OS scheduling noise: occasionally the executor thread is migrated to
    // another core; its private caches go cold (Section III-B.1).
    if (rng_.next_bool(cfg.migration_prob_per_unit)) {
      cluster_.memory().migrate(core_);
      ++counters_.migrations;
      static obs::Counter& migrations =
          obs::metrics().counter("exec.migrations");
      migrations.increment();
      obs::trace_virtual_instant("migration", counters_.cycles, core_,
                                 {{"instructions", ip}});
    }
  }
}

}  // namespace simprof::exec
