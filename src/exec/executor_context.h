// ExecutorContext: the simulated executor thread a workload kernel runs on.
//
// Kernels interact with the simulation exclusively through this type:
//   * `method(...)` + jvm::MethodScope maintain the shadow call stack,
//   * `execute(instrs, stream)` retires virtual instructions and replays the
//     kernel's memory traffic through the cache hierarchy,
//   * snapshot and sampling-unit boundaries fire the profiling hooks that
//     SimProf's thread profiler (Section III-A) subscribes to.
//
// Only the *profiled* core pays for cache simulation and snapshotting; other
// cores advance instruction counts for schedule bookkeeping but execute
// functionally. Their LLC interference on the profiled thread is modeled by
// the cluster's wave-pressure mechanism (see cluster.h).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "hw/access_stream.h"
#include "hw/mav.h"
#include "hw/memory_system.h"
#include "jvm/call_stack.h"
#include "jvm/method.h"
#include "support/rng.h"

namespace simprof::exec {

class Cluster;
class PipelineBatcher;

/// Subscriber for profiling events on the profiled executor thread.
class ProfilingHook {
 public:
  virtual ~ProfilingHook() = default;
  /// Called every snapshot interval with the live call stack (JVMTI-style).
  virtual void on_snapshot(std::span<const jvm::MethodId> stack) = 0;
  /// Called at each sampling-unit boundary with the unit's counter deltas
  /// and its memory-access vector (zero counts when the unit ran without
  /// cache simulation).
  virtual void on_unit_boundary(const hw::PmuCounters& delta,
                                const hw::MavBlock& mav) = 0;
};

/// Subscriber for the profiled core's detailed execution trace. execute()
/// fires it once per boundary-clipped chunk — immediately before the chunk's
/// profiling boundaries — with the chunk's instruction count, exactly the
/// memory references it consumed, the shared LLC's effective associativity
/// (wave pressure) and the live shadow stack. A checkpoint recorder
/// (core/checkpoint.h) serializes this op tape next to the state snapshot so
/// a later measurement can re-execute the chunk sequence verbatim without
/// running the workload at all.
class OpTapeSink {
 public:
  virtual ~OpTapeSink() = default;
  virtual void on_chunk(std::uint64_t instrs,
                        std::span<const hw::MemRef> refs,
                        std::uint32_t llc_ways,
                        std::span<const jvm::MethodId> frames) = 0;
};

/// How the profiled thread executes the upcoming sampling unit.
enum class ExecMode {
  kDetailed,      ///< full cache simulation + profiling hooks
  kFastForward,   ///< functional only: advance cursors, skip simulation
};

class ExecutorContext;

/// Per-unit mode policy, consulted by the profiled context at every
/// sampling-unit start (including the very first instruction of a run).
/// This is where checkpointing plugs in: a recorder snapshots state here
/// and always answers kDetailed; a replayer restores the nearest archive
/// at segment starts and fast-forwards everything outside the selected
/// units (see core/checkpoint.h).
class UnitGovernor {
 public:
  virtual ~UnitGovernor() = default;
  virtual ExecMode on_unit_start(std::uint64_t unit_index,
                                 ExecutorContext& ctx) = 0;
};

/// Complete serializable state of one executor thread (checkpointing).
struct ThreadState {
  hw::PmuCounters counters;
  double cycles_acc = 0.0;
  std::uint64_t thread_id = 0;
  RngState rng;
  std::vector<jvm::MethodId> frames;  ///< shadow stack, outermost first
  std::uint64_t next_snapshot_at = 0;
  std::uint64_t next_unit_at = 0;
  hw::PmuCounters unit_start_counters;
};

class ExecutorContext final : public jvm::StackTraceSource {
 public:
  ExecutorContext(Cluster& cluster, std::uint32_t core, Rng rng);

  std::uint32_t core() const { return core_; }
  bool is_profiled() const;

  jvm::CallStack& stack() { return stack_; }
  std::span<const jvm::MethodId> get_stack_trace() const override {
    return stack_.frames();
  }

  /// Intern a method in the cluster-wide registry.
  jvm::MethodId method(std::string_view name, jvm::OpKind kind);

  /// Retire `instrs` virtual instructions whose memory traffic is described
  /// by `stream` (may be null for pure-compute work). References are spread
  /// evenly across the instruction range; snapshot/unit boundaries fire
  /// in-order as they are crossed.
  void execute(std::uint64_t instrs, hw::AccessStream* stream);

  /// Pure-compute convenience.
  void compute(std::uint64_t instrs) { execute(instrs, nullptr); }

  /// Deterministic per-core random stream (data-dependent access patterns).
  Rng& rng() { return rng_; }
  const Rng& rng() const { return rng_; }

  /// Owning cluster (engines use this to reach scheduler-level state).
  Cluster& cluster() { return cluster_; }
  const Cluster& cluster() const { return cluster_; }

  /// True while the current sampling unit executes functionally only
  /// (checkpoint replay outside the selected units). Engines use this to
  /// suppress trace spans whose cycle bounds would be stale.
  bool fast_forwarding() const { return mode_ == ExecMode::kFastForward; }

  /// Instructions retired without detailed simulation (obs/bench counter).
  std::uint64_t ff_skipped_instrs() const { return ff_skipped_instrs_; }

  /// Memory-access vector accumulated since the last unit boundary (the
  /// trailing-partial-unit hook sites read this; see Cluster::finish and
  /// the checkpoint replayer).
  const hw::MavBlock& unit_mav() const { return mav_tracker_.block(); }

  /// Snapshot/overwrite the full thread state (checkpoint save/restore).
  ThreadState capture_state() const;
  void restore_state(const ThreadState& st);

  /// Cluster-wide simulated address space for data-structure regions.
  hw::AddressSpace& address_space();

  const hw::PmuCounters& counters() const { return counters_; }
  std::uint64_t instructions() const { return counters_.instructions; }

  /// Virtual thread identity: Spark keeps one thread per core for the whole
  /// job; Hadoop starts a fresh thread per task (the profiler merges them).
  std::uint64_t thread_id() const { return thread_id_; }
  void begin_new_thread() { ++thread_id_; }

  /// Active pipeline batcher (see exec/pipeline.h), or null when operators
  /// should charge immediately. Managed by PipelineScope.
  PipelineBatcher* batcher() const { return batcher_; }
  void set_batcher(PipelineBatcher* b) { batcher_ = b; }

  /// Recommended flush slice: well under the snapshot interval so sampling
  /// units observe the interleaved pipeline mixture.
  std::uint64_t pipeline_slice_instrs() const;

 private:
  friend class Cluster;

  void charge_cycles(double cycles) {
    cycles_acc_ += cycles;
    counters_.cycles = static_cast<std::uint64_t>(cycles_acc_);
  }
  void maybe_fire_boundaries();
  void prime_governor_if_needed();

  Cluster& cluster_;
  std::uint32_t core_;
  Rng rng_;
  jvm::CallStack stack_;
  hw::PmuCounters counters_;
  double cycles_acc_ = 0.0;
  std::uint64_t thread_id_ = 0;
  PipelineBatcher* batcher_ = nullptr;

  // Profiling bookkeeping (profiled core only).
  std::uint64_t next_snapshot_at_ = 0;
  std::uint64_t next_unit_at_ = 0;
  hw::PmuCounters unit_start_counters_;
  /// Intra-unit reuse/level tracker; reset at every unit boundary *before*
  /// the governor sequence point, so checkpoint save/restore never needs to
  /// carry tracker state (it is empty exactly where archives snapshot).
  hw::ReuseTracker mav_tracker_;

  // Checkpoint replay bookkeeping (profiled core only).
  ExecMode mode_ = ExecMode::kDetailed;
  bool governor_primed_ = false;
  std::uint64_t ff_skipped_instrs_ = 0;
  std::vector<hw::MemRef> tape_refs_;  ///< scratch chunk buffer (OpTapeSink)
};

}  // namespace simprof::exec
