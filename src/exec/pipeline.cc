#include "exec/pipeline.h"

#include <algorithm>

#include "jvm/call_stack.h"
#include "support/assert.h"

namespace simprof::exec {

void PipelineBatcher::add(jvm::MethodId method, std::uint64_t instrs,
                          std::unique_ptr<hw::AccessStream> stream) {
  Item item;
  item.frames = prefix_;
  item.frames.push_back(method);
  item.instrs = instrs;
  if (stream) {
    item.refs_total = stream->total_refs();
    item.stream = std::move(stream);
  }
  if (item.instrs == 0 && item.refs_total == 0) return;
  items_.push_back(std::move(item));
}

void PipelineBatcher::flush(ExecutorContext& ctx,
                            std::uint64_t slice_instrs) {
  SIMPROF_EXPECTS(slice_instrs > 0, "slice must be positive");
  // Proportional interleaving: every item finishes in the same number of
  // rounds, so the mixture seen by each sampling window matches each
  // operator's share of the pipeline — a fused iterator's time profile.
  std::uint64_t max_instrs = 0;
  for (const Item& item : items_) {
    max_instrs = std::max(max_instrs, item.instrs);
  }
  const std::uint64_t rounds =
      std::max<std::uint64_t>(1, (max_instrs + slice_instrs - 1) /
                                     slice_instrs);
  std::vector<std::uint64_t> per_round(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) {
    per_round[i] =
        std::max<std::uint64_t>(1, (items_[i].instrs + rounds - 1) / rounds);
  }

  bool any = true;
  while (any) {
    any = false;
    for (std::size_t idx = 0; idx < items_.size(); ++idx) {
      Item& item = items_[idx];
      const std::uint64_t left = item.instrs - item.charged;
      const std::uint64_t refs_left = item.refs_total - item.refs_served;
      if (left == 0 && refs_left == 0) continue;
      any = true;

      // Jittered slice size: constant slices alias with the snapshot
      // period and every snapshot would land in the same item, badly
      // skewing the sampled mixture (a real sampling profiler's timer
      // jitter provides the same decorrelation).
      const auto jittered = static_cast<std::uint64_t>(
          static_cast<double>(per_round[idx]) *
          ctx.rng().next_double(0.6, 1.4));
      const std::uint64_t step =
          std::min(left, std::max<std::uint64_t>(jittered, 1));
      // References proportional to instruction progress (all remaining refs
      // on the last slice).
      std::uint64_t quota = refs_left;
      if (left > step && item.instrs > 0) {
        quota = static_cast<std::uint64_t>(
            static_cast<__uint128_t>(item.refs_total) *
            (item.charged + step) / item.instrs);
        quota = quota > item.refs_served ? quota - item.refs_served : 0;
        quota = std::min(quota, refs_left);
      }

      // MethodScope is non-movable; push/pop the frame chain manually.
      for (jvm::MethodId m : item.frames) ctx.stack().push(m);
      if (item.stream && quota > 0) {
        QuotaStream slice_stream(*item.stream, quota);
        ctx.execute(step, &slice_stream);
        item.refs_served += quota;
      } else {
        ctx.execute(step, nullptr);
      }
      for (std::size_t i = 0; i < item.frames.size(); ++i) ctx.stack().pop();
      item.charged += step;

      // Degenerate case: refs but no instructions — drain in one go.
      if (item.instrs == 0 && item.stream) {
        QuotaStream all(*item.stream, refs_left);
        for (jvm::MethodId m : item.frames) ctx.stack().push(m);
        ctx.execute(0, &all);
        for (std::size_t i = 0; i < item.frames.size(); ++i) ctx.stack().pop();
        item.refs_served = item.refs_total;
      }
    }
  }
  items_.clear();
}

void PipelineScope::finish() {
  if (finished_) return;
  finished_ = true;
  ctx_.set_batcher(previous_);
  if (!batcher_.empty()) {
    // Slices well below the snapshot interval so units sample the mixture.
    batcher_.flush(ctx_, ctx_.pipeline_slice_instrs());
  }
}

}  // namespace simprof::exec
