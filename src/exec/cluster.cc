#include "exec/cluster.h"

#include <algorithm>
#include <string>

#include "obs/obs.h"
#include "support/assert.h"

namespace simprof::exec {

Cluster::Cluster(const ClusterConfig& cfg)
    : cfg_(cfg), memory_(cfg.memory), scheduler_rng_(cfg.seed) {
  SIMPROF_EXPECTS(cfg.unit_instrs > 0 && cfg.snapshot_interval > 0,
                  "intervals must be positive");
  SIMPROF_EXPECTS(cfg.unit_instrs % cfg.snapshot_interval == 0,
                  "unit size must be a multiple of the snapshot interval");
  SIMPROF_EXPECTS(cfg.profiled_core < cfg.memory.num_cores,
                  "profiled core out of range");
  contexts_.reserve(cfg.memory.num_cores);
  for (std::uint32_t c = 0; c < cfg.memory.num_cores; ++c) {
    contexts_.push_back(
        std::make_unique<ExecutorContext>(*this, c, scheduler_rng_.split()));
  }
}

ExecutorContext& Cluster::context(std::uint32_t core) {
  SIMPROF_EXPECTS(core < contexts_.size(), "core out of range");
  return *contexts_[core];
}

const ExecutorContext& Cluster::context(std::uint32_t core) const {
  SIMPROF_EXPECTS(core < contexts_.size(), "core out of range");
  return *contexts_[core];
}

void Cluster::run_stage(std::string_view stage_name, std::vector<Task> tasks,
                        bool thread_per_task) {
  static obs::Counter& stages = obs::metrics().counter("exec.stages");
  static obs::Counter& task_count = obs::metrics().counter("exec.tasks");
  static obs::Counter& waves = obs::metrics().counter("exec.waves");
  stages.increment();
  task_count.add(tasks.size());
  ++stages_run_;
  const std::string name(stage_name);
  obs::ObsSpan stage_span("exec.stage",
                          {{"stage", stage_name}, {"tasks", tasks.size()}});
  const bool tracing = obs::trace_enabled();
  const std::uint64_t stage_start_cycles =
      tracing ? contexts_[cfg_.profiled_core]->counters().cycles : 0;
  const std::uint32_t cores = num_cores();
  SIMPROF_LOG(kDebug) << "exec: stage " << name << " (" << tasks.size()
                      << " tasks over " << cores << " cores)";

  // Deal tasks to cores round-robin, then run wave by wave. Within a wave
  // all tasks are concurrent in virtual time; host execution order is
  // core-major and deterministic.
  std::size_t next = 0;
  std::size_t wave = 0;
  while (next < tasks.size()) {
    const std::uint32_t wave_width = static_cast<std::uint32_t>(
        std::min<std::size_t>(cores, tasks.size() - next));
    memory_.set_llc_pressure(wave_width);
    waves.increment();
    for (std::uint32_t c = 0; c < wave_width; ++c) {
      ExecutorContext& ctx = *contexts_[c];
      if (thread_per_task) ctx.begin_new_thread();
      Task& t = tasks[next + c];
      SIMPROF_ASSERT(static_cast<bool>(t.body), "task without a body");
      const std::uint64_t task_start_cycles =
          tracing ? ctx.counters().cycles : 0;
      t.body(ctx);
      if (tracing) {
        obs::trace_virtual_span(
            name + "/task", task_start_cycles, ctx.counters().cycles, c,
            {{"task", next + c}, {"wave", wave}, {"stage", stage_name}});
      }
    }
    next += wave_width;
    ++wave;
  }
  memory_.set_llc_pressure(1);
  if (tracing) {
    obs::trace_virtual_span(name, stage_start_cycles,
                            contexts_[cfg_.profiled_core]->counters().cycles,
                            obs::kVirtualStageLane,
                            {{"tasks", tasks.size()}, {"waves", wave}});
  }
}

void Cluster::finish() {
  // Fire a trailing unit boundary if the profiled thread has a partial unit
  // at least one snapshot long; shorter tails carry too few call stacks to
  // vectorize and are dropped, mirroring the paper's fixed-size units.
  ExecutorContext& ctx = *contexts_[cfg_.profiled_core];
  if (hook_ == nullptr) return;
  // A fast-forwarded tail carries no simulated counters — dropping it
  // mirrors the replayer never selecting the trailing partial unit.
  if (ctx.fast_forwarding()) return;
  const std::uint64_t into_unit =
      ctx.counters().instructions % cfg_.unit_instrs;
  if (into_unit >= cfg_.snapshot_interval) {
    hook_->on_unit_boundary(
        ctx.counters().delta_since(ctx.unit_start_counters_),
        ctx.unit_mav());
    ctx.unit_start_counters_ = ctx.counters();
    ctx.mav_tracker_.reset();
  }
}

}  // namespace simprof::exec
