// Set-associative LRU cache model.
//
// The hardware-counter substrate that stands in for perf_event: SimProf needs
// per-sampling-unit IPC / miss counts whose variation is *caused* by data
// access behaviour (sort partition sizes, random reduce accesses, cold caches
// after OS migration, LLC sharing between executor threads). A mechanistic
// cache model produces those effects instead of sampling them from a
// distribution.
//
// Addresses are line-granular: the workload kernels emit one access per
// distinct cache-line touch (see access_stream.h), so "miss rate" here is a
// per-line-touch rate and all within-line hits are folded into the base CPI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/assert.h"

namespace simprof {
class BinaryWriter;
class BinaryReader;
}  // namespace simprof

namespace simprof::hw {

using LineAddr = std::uint64_t;  ///< cache-line index (byte address >> 6)

inline constexpr std::uint64_t kLineBytes = 64;

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t ways = 8;

  std::size_t num_sets() const {
    SIMPROF_EXPECTS(ways > 0, "cache needs at least one way");
    const std::uint64_t lines = size_bytes / kLineBytes;
    SIMPROF_EXPECTS(lines >= ways, "cache smaller than one set");
    return static_cast<std::size_t>(lines / ways);
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t accesses() const { return hits + misses; }
  double miss_rate() const {
    const auto a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(a);
  }
};

/// A single cache level. For the shared LLC, `set_effective_ways` models
/// capacity pressure from concurrently running executor threads: a line only
/// counts as resident while its LRU position is inside the effective ways, so
/// pressure p ≈ ways/p usable ways per thread. (MRU order is maintained over
/// all physical ways so releasing pressure restores capacity.)
class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// True on hit. Miss inserts the line (write-allocate for both reads and
  /// writes; this model does not distinguish dirty state).
  bool access(LineAddr line);

  /// Invalidate everything (OS-migration cold-cache events).
  void flush();

  void set_effective_ways(std::uint32_t w) {
    effective_ways_ = std::min(std::max<std::uint32_t>(w, 1), cfg_.ways);
  }
  std::uint32_t effective_ways() const { return effective_ways_; }

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  const CacheConfig& config() const { return cfg_; }

  /// Serialize the full warm state (tag arrays in MRU order, pressure,
  /// hit/miss counters) for unit-boundary checkpoints. Geometry is written
  /// too: load_state throws SerializeError when the archive's geometry does
  /// not match this cache, so a checkpoint can never be restored into a
  /// differently shaped hierarchy.
  void save_state(BinaryWriter& w) const;
  void load_state(BinaryReader& r);

 private:
  CacheConfig cfg_;
  std::size_t sets_;
  std::uint32_t effective_ways_;
  // ways_[set*ways + i] is the i-th most recently used line of the set;
  // kInvalid marks an empty slot.
  static constexpr LineAddr kInvalid = ~LineAddr{0};
  std::vector<LineAddr> ways_;
  CacheStats stats_;
};

}  // namespace simprof::hw
