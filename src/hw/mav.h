// Memory-access vectors (MAV): per-unit memory-behaviour signatures.
//
// "Memory Access Vectors" (Caculo et al.) showed that sampling fidelity
// improves when sampling units are characterized by *memory behaviour*, not
// just instruction mix. This module gives the oracle pass that vocabulary:
// while the profiled core replays its references through the cache
// hierarchy, a ReuseTracker folds every touch into a fixed-width MavBlock —
// a log2-bucketed reuse-distance histogram plus a which-level-served-it
// histogram. The block is reset at every sampling-unit boundary, so a unit's
// MAV depends only on the unit's own reference stream (plus the warm cache
// state it inherited, via the level histogram) — which is exactly what makes
// checkpointed tape replay reproduce it bit-identically: restore the cache
// state, re-execute the unit's tape, and the tracker sees the same touches
// in the same order.
//
// Reuse distance here is the classic stack distance: the number of
// *distinct* cache lines touched between two consecutive touches of the same
// line, computed exactly with a last-position map plus a Fenwick tree over
// access timestamps (O(log n) per access, n = accesses within the unit).
// First touches within a unit land in the dedicated cold bucket — the
// tracker is intra-unit by construction, so "cold" means "no prior touch in
// this unit", a deterministic property of the unit itself.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hw/cache.h"

namespace simprof::hw {

/// Which level of the hierarchy served a reference (cost-model order).
enum class AccessLevel : std::uint8_t {
  kL1 = 0,
  kL2 = 1,
  kLlc = 2,
  kDram = 3,
  kDramPrefetched = 4,
};

/// Reuse-distance buckets: bucket 0 holds distance 0 (immediate re-touch),
/// bucket b in [1, 18] holds distances with bit_width d == b (i.e. d in
/// [2^(b-1), 2^b)), saturating at bucket 18; bucket 19 is the cold bucket
/// (first touch of the line within the unit).
inline constexpr std::size_t kReuseBuckets = 20;
inline constexpr std::size_t kColdBucket = kReuseBuckets - 1;
/// One slot per AccessLevel value.
inline constexpr std::size_t kLevelSlots = 5;
/// Total MAV width: reuse histogram followed by the level histogram.
inline constexpr std::size_t kMavDim = kReuseBuckets + kLevelSlots;

/// Reuse-distance bucket for a finite stack distance.
std::size_t reuse_bucket(std::uint64_t distance);

/// One sampling unit's memory-access vector: counts[0, kReuseBuckets) is the
/// reuse-distance histogram (cold touches in kColdBucket), counts at
/// kReuseBuckets + level is the per-level service histogram. Both halves sum
/// to the number of tracked line touches.
struct MavBlock {
  std::array<std::uint64_t, kMavDim> counts{};

  std::uint64_t reuse(std::size_t bucket) const { return counts[bucket]; }
  std::uint64_t level(AccessLevel l) const {
    return counts[kReuseBuckets + static_cast<std::size_t>(l)];
  }
  std::uint64_t total() const;

  bool operator==(const MavBlock&) const = default;
};

/// Exact intra-unit reuse-distance tracker. Feed it every line touch of the
/// profiled core (in execution order) with the level that served it; read
/// block() at the unit boundary and reset(). State is O(distinct lines
/// touched since reset); reset keeps capacity so steady-state units do not
/// reallocate.
class ReuseTracker {
 public:
  void record(LineAddr line, AccessLevel level);
  void reset();
  const MavBlock& block() const { return block_; }
  /// No touches recorded since the last reset (checkpoint sequence points
  /// happen exactly here, so trackers never need snapshotting).
  bool empty() const { return now_ == 0; }

 private:
  std::uint64_t prefix(std::uint64_t i) const;
  void add(std::uint64_t i, std::uint64_t delta);

  MavBlock block_;
  std::unordered_map<LineAddr, std::uint64_t> last_;  ///< line → timestamp
  /// Fenwick tree (1-based) over timestamps; a set bit marks the *most
  /// recent* touch position of some line, so a prefix-sum difference counts
  /// distinct lines touched in a timestamp interval.
  std::vector<std::uint64_t> bit_;
  std::vector<std::uint8_t> mark_;  ///< plain marks, for capacity rebuilds
  std::uint64_t now_ = 0;
};

}  // namespace simprof::hw
