#include "hw/mav.h"

#include <bit>
#include <cstring>

namespace simprof::hw {

std::size_t reuse_bucket(std::uint64_t distance) {
  if (distance == 0) return 0;
  const auto width = static_cast<std::size_t>(std::bit_width(distance));
  return width < kColdBucket - 1 ? width : kColdBucket - 1;
}

std::uint64_t MavBlock::total() const {
  std::uint64_t t = 0;
  for (std::size_t b = 0; b < kReuseBuckets; ++b) t += counts[b];
  return t;
}

std::uint64_t ReuseTracker::prefix(std::uint64_t i) const {
  std::uint64_t s = 0;
  for (; i > 0; i -= i & (~i + 1)) s += bit_[i];
  return s;
}

void ReuseTracker::add(std::uint64_t i, std::uint64_t delta) {
  for (; i < bit_.size(); i += i & (~i + 1)) bit_[i] += delta;
}

void ReuseTracker::record(LineAddr line, AccessLevel level) {
  ++now_;
  if (now_ >= bit_.size()) {
    // Double the timestamp capacity and rebuild the Fenwick tree from the
    // plain marks (a resized tree's new nodes cover old positions, so a
    // zero-extend alone would be wrong). Amortized O(1) per access.
    std::size_t cap = bit_.empty() ? 1024 : bit_.size() * 2;
    while (cap <= now_) cap *= 2;
    mark_.resize(cap, 0);
    bit_.assign(cap, 0);
    for (std::uint64_t i = 1; i < now_; ++i) {
      if (mark_[i]) add(i, 1);
    }
  }

  auto [it, cold] = last_.try_emplace(line, now_);
  if (cold) {
    ++block_.counts[kColdBucket];
  } else {
    const std::uint64_t t0 = it->second;
    // Distinct lines touched strictly between the previous touch and now:
    // every line's most recent position carries one mark, so the count is a
    // prefix-sum difference over (t0, now_ - 1].
    const std::uint64_t distance = prefix(now_ - 1) - prefix(t0);
    ++block_.counts[reuse_bucket(distance)];
    add(t0, static_cast<std::uint64_t>(-1));
    mark_[t0] = 0;
    it->second = now_;
  }
  add(now_, 1);
  mark_[now_] = 1;
  ++block_.counts[kReuseBuckets + static_cast<std::size_t>(level)];
}

void ReuseTracker::reset() {
  block_ = MavBlock{};
  last_.clear();
  if (now_ > 0) {
    std::memset(bit_.data(), 0, bit_.size() * sizeof(bit_[0]));
    std::memset(mark_.data(), 0, mark_.size() * sizeof(mark_[0]));
  }
  now_ = 0;
}

}  // namespace simprof::hw
