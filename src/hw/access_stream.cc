#include "hw/access_stream.h"

#include <cmath>

#include "support/assert.h"

namespace simprof::hw {
namespace {

LineAddr to_line(std::uint64_t byte_addr) { return byte_addr / kLineBytes; }

std::uint64_t region_lines(std::uint64_t bytes) {
  return (bytes + kLineBytes - 1) / kLineBytes;
}

}  // namespace

SequentialStream::SequentialStream(std::uint64_t base_addr,
                                   std::uint64_t bytes, bool write)
    : first_(to_line(base_addr)), lines_(region_lines(bytes)), write_(write) {}

bool SequentialStream::next(MemRef& out) {
  if (pos_ >= lines_) return false;
  out = MemRef{first_ + pos_, write_, /*prefetchable=*/true};
  ++pos_;
  return true;
}

RandomStream::RandomStream(std::uint64_t base_addr, std::uint64_t bytes,
                           std::uint64_t touches, Rng& rng, bool write,
                           double write_fraction)
    : first_(to_line(base_addr)),
      lines_(region_lines(bytes)),
      touches_(touches),
      rng_(&rng),
      write_(write),
      write_fraction_(write_fraction) {
  SIMPROF_EXPECTS(lines_ > 0, "empty region");
}

bool RandomStream::next(MemRef& out) {
  if (pos_ >= touches_) return false;
  ++pos_;
  const bool w = write_fraction_ >= 0.0 ? rng_->next_bool(write_fraction_)
                                        : write_;
  out = MemRef{first_ + rng_->next_below(lines_), w, /*prefetchable=*/false};
  return true;
}

ZipfStream::ZipfStream(std::uint64_t base_addr, std::uint64_t bytes,
                       std::uint64_t touches, double skew, Rng& rng,
                       bool write)
    : first_(to_line(base_addr)),
      lines_(region_lines(bytes)),
      touches_(touches),
      skew_(skew),
      rng_(&rng),
      write_(write) {
  SIMPROF_EXPECTS(lines_ > 0, "empty region");
  SIMPROF_EXPECTS(skew_ >= 0.0 && skew_ < 1.0,
                  "ZipfStream uses inverse-power sampling; skew in [0,1)");
}

bool ZipfStream::next(MemRef& out) {
  if (pos_ >= touches_) return false;
  ++pos_;
  // Approximate Zipf via inverse power transform of a uniform draw:
  // idx = floor(N · u^(1/(1-s))). Exact Zipf tables are too large for
  // multi-GB regions; this preserves the hot-head/long-tail shape.
  const double u = rng_->next_double();
  const double x = std::pow(u, 1.0 / (1.0 - skew_));
  auto idx = static_cast<std::uint64_t>(x * static_cast<double>(lines_));
  if (idx >= lines_) idx = lines_ - 1;
  out = MemRef{first_ + idx, write_, /*prefetchable=*/false};
  return true;
}

StridedStream::StridedStream(std::uint64_t base_addr, std::uint64_t bytes,
                             std::uint64_t stride_lines, bool write)
    : first_(to_line(base_addr)),
      stride_(stride_lines == 0 ? 1 : stride_lines),
      refs_((region_lines(bytes) + stride_ - 1) / stride_),
      write_(write) {}

bool StridedStream::next(MemRef& out) {
  if (pos_ >= refs_) return false;
  out = MemRef{first_ + pos_ * stride_, write_, /*prefetchable=*/true};
  ++pos_;
  return true;
}

std::uint64_t AddressSpace::allocate(std::uint64_t bytes) {
  const std::uint64_t base = next_;
  const std::uint64_t lines = region_lines(bytes == 0 ? 1 : bytes);
  next_ += lines * kLineBytes;
  return base;
}

}  // namespace simprof::hw
