#include "hw/access_stream.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace simprof::hw {
namespace {

LineAddr to_line(std::uint64_t byte_addr) { return byte_addr / kLineBytes; }

std::uint64_t region_lines(std::uint64_t bytes) {
  return (bytes + kLineBytes - 1) / kLineBytes;
}

/// Map a 64-bit hash to a uniform double in [0, 1) the same way
/// Rng::next_double does, so statistical shapes match the old stateful path.
double to_unit_double(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Salt separating a stream's "which line" hash lane from its "is it a
/// write" lane at the same position.
constexpr std::uint64_t kWriteLaneSalt = 0x77726974656c616eULL;

}  // namespace

SequentialStream::SequentialStream(std::uint64_t base_addr,
                                   std::uint64_t bytes, bool write)
    : first_(to_line(base_addr)), lines_(region_lines(bytes)), write_(write) {}

bool SequentialStream::next(MemRef& out) {
  if (pos_ >= lines_) return false;
  out = MemRef{first_ + pos_, write_, /*prefetchable=*/true};
  ++pos_;
  return true;
}

void SequentialStream::skip(std::uint64_t n) {
  pos_ += std::min(n, lines_ - pos_);
}

RandomStream::RandomStream(std::uint64_t base_addr, std::uint64_t bytes,
                           std::uint64_t touches, Rng& rng, bool write,
                           double write_fraction)
    : first_(to_line(base_addr)),
      lines_(region_lines(bytes)),
      touches_(touches),
      seed_(rng.next_u64()),
      write_(write),
      write_fraction_(write_fraction) {
  SIMPROF_EXPECTS(lines_ > 0, "empty region");
}

bool RandomStream::next(MemRef& out) {
  if (pos_ >= touches_) return false;
  // idx = floor(hash / 2^64 · N) via the 128-bit multiply-shift trick:
  // unbiased enough for traffic shaping and, unlike next_below's rejection
  // loop, a pure function of position.
  const std::uint64_t h = hash_at(seed_, pos_);
  const auto idx = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(h) * lines_) >> 64);
  const bool w =
      write_fraction_ >= 0.0
          ? to_unit_double(hash_at(seed_ ^ kWriteLaneSalt, pos_)) <
                write_fraction_
          : write_;
  ++pos_;
  out = MemRef{first_ + idx, w, /*prefetchable=*/false};
  return true;
}

void RandomStream::skip(std::uint64_t n) {
  pos_ += std::min(n, touches_ - pos_);
}

ZipfStream::ZipfStream(std::uint64_t base_addr, std::uint64_t bytes,
                       std::uint64_t touches, double skew, Rng& rng,
                       bool write)
    : first_(to_line(base_addr)),
      lines_(region_lines(bytes)),
      touches_(touches),
      skew_(skew),
      seed_(rng.next_u64()),
      write_(write) {
  SIMPROF_EXPECTS(lines_ > 0, "empty region");
  SIMPROF_EXPECTS(skew_ >= 0.0 && skew_ < 1.0,
                  "ZipfStream uses inverse-power sampling; skew in [0,1)");
}

bool ZipfStream::next(MemRef& out) {
  if (pos_ >= touches_) return false;
  // Approximate Zipf via inverse power transform of a uniform draw:
  // idx = floor(N · u^(1/(1-s))). Exact Zipf tables are too large for
  // multi-GB regions; this preserves the hot-head/long-tail shape.
  const double u = to_unit_double(hash_at(seed_, pos_));
  ++pos_;
  const double x = std::pow(u, 1.0 / (1.0 - skew_));
  auto idx = static_cast<std::uint64_t>(x * static_cast<double>(lines_));
  if (idx >= lines_) idx = lines_ - 1;
  out = MemRef{first_ + idx, write_, /*prefetchable=*/false};
  return true;
}

void ZipfStream::skip(std::uint64_t n) {
  pos_ += std::min(n, touches_ - pos_);
}

StridedStream::StridedStream(std::uint64_t base_addr, std::uint64_t bytes,
                             std::uint64_t stride_lines, bool write)
    : first_(to_line(base_addr)),
      stride_(stride_lines == 0 ? 1 : stride_lines),
      refs_((region_lines(bytes) + stride_ - 1) / stride_),
      write_(write) {}

bool StridedStream::next(MemRef& out) {
  if (pos_ >= refs_) return false;
  out = MemRef{first_ + pos_ * stride_, write_, /*prefetchable=*/true};
  ++pos_;
  return true;
}

void StridedStream::skip(std::uint64_t n) {
  pos_ += std::min(n, refs_ - pos_);
}

std::uint64_t AddressSpace::allocate(std::uint64_t bytes) {
  const std::uint64_t base = next_;
  const std::uint64_t lines = region_lines(bytes == 0 ? 1 : bytes);
  next_ += lines * kLineBytes;
  return base;
}

}  // namespace simprof::hw
