#include "hw/memory_system.h"

#include <cmath>

#include "support/assert.h"

namespace simprof::hw {

PmuCounters PmuCounters::delta_since(const PmuCounters& earlier) const {
  PmuCounters d;
  d.instructions = instructions - earlier.instructions;
  d.cycles = cycles - earlier.cycles;
  d.line_touches = line_touches - earlier.line_touches;
  d.l1_misses = l1_misses - earlier.l1_misses;
  d.l2_misses = l2_misses - earlier.l2_misses;
  d.llc_misses = llc_misses - earlier.llc_misses;
  d.migrations = migrations - earlier.migrations;
  return d;
}

MemorySystem::MemorySystem(const MemorySystemConfig& cfg) : cfg_(cfg) {
  SIMPROF_EXPECTS(cfg.num_cores > 0, "need at least one core");
  l1_.reserve(cfg.num_cores);
  l2_.reserve(cfg.num_cores);
  for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
    l1_.push_back(std::make_unique<Cache>(cfg.l1));
    l2_.push_back(std::make_unique<Cache>(cfg.l2));
  }
  llc_ = std::make_unique<Cache>(cfg.llc);
}

MemorySystem::AccessOutcome MemorySystem::access_outcome(std::uint32_t core,
                                                         const MemRef& ref) {
  SIMPROF_EXPECTS(core < l1_.size(), "core out of range");
  const CostModel& c = cfg_.cost;
  if (l1_[core]->access(ref.line)) return {c.l1_hit_cycles, AccessLevel::kL1};
  if (l2_[core]->access(ref.line)) return {c.l2_hit_cycles, AccessLevel::kL2};
  if (llc_->access(ref.line)) return {c.llc_hit_cycles, AccessLevel::kLlc};
  return ref.prefetchable
             ? AccessOutcome{c.dram_prefetched_cycles,
                             AccessLevel::kDramPrefetched}
             : AccessOutcome{c.dram_cycles, AccessLevel::kDram};
}

void MemorySystem::migrate(std::uint32_t core) {
  SIMPROF_EXPECTS(core < l1_.size(), "core out of range");
  l1_[core]->flush();
  l2_[core]->flush();
}

void MemorySystem::set_llc_pressure(std::uint32_t busy) {
  // Effective capacity shrinks with concurrency, but sub-linearly: co-running
  // threads overlap in time and share some footprint, so a strict 1/p
  // partition overstates the interference swing between full and straggler
  // waves. ways/sqrt(p) tracks measured shared-LLC behaviour far better.
  const double b = busy == 0 ? 1.0 : static_cast<double>(busy);
  const auto eff = static_cast<std::uint32_t>(
      static_cast<double>(cfg_.llc.ways) / std::sqrt(b));
  llc_->set_effective_ways(eff == 0 ? 1 : eff);
}

}  // namespace simprof::hw
