// Memory hierarchy + cycle cost model + PMU counters.
//
// Layout mirrors the paper's testbed class of machine (Core i7): per-core
// private L1D and L2, one LLC shared by all simulated cores. The shared LLC
// is where inter-thread interference ("phase interleaving" in Section
// III-B.1) comes from: the wave scheduler tells the memory system how many
// cores are concurrently busy and each core's effective LLC associativity is
// divided accordingly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/access_stream.h"
#include "hw/cache.h"
#include "hw/mav.h"

namespace simprof::hw {

/// Cycle cost model. Latencies are per line-touch; within-line hits are part
/// of base_cpi. Prefetchable DRAM misses pay the reduced prefetch penalty.
struct CostModel {
  double base_cpi = 0.40;           ///< issue-limited CPI with all-L1 hits
  double l1_hit_cycles = 1.0;       ///< extra cycles per simulated L1 hit
  double l2_hit_cycles = 12.0;
  double llc_hit_cycles = 38.0;
  double dram_cycles = 180.0;
  double dram_prefetched_cycles = 24.0;
  double clock_ghz = 2.0;           ///< virtual clock for SECOND intervals
};

/// perf_event-style counter block, one per simulated core/executor thread.
struct PmuCounters {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;  // accumulated as double internally, see Core
  std::uint64_t line_touches = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t migrations = 0;

  double cpi() const {
    return instructions == 0
               ? 0.0
               : static_cast<double>(cycles) / static_cast<double>(instructions);
  }
  double ipc() const {
    return cycles == 0
               ? 0.0
               : static_cast<double>(instructions) / static_cast<double>(cycles);
  }

  PmuCounters delta_since(const PmuCounters& earlier) const;
};

struct MemorySystemConfig {
  CacheConfig l1{32 * 1024, 8};
  CacheConfig l2{256 * 1024, 8};
  CacheConfig llc{8 * 1024 * 1024, 16};
  CostModel cost;
  std::uint32_t num_cores = 4;
};

/// The full hierarchy. Not thread-safe: the simulation is single-host-thread
/// and deterministic by design (cores are *simulated* concurrency).
class MemorySystem {
 public:
  explicit MemorySystem(const MemorySystemConfig& cfg);

  std::uint32_t num_cores() const { return static_cast<std::uint32_t>(l1_.size()); }
  const MemorySystemConfig& config() const { return cfg_; }

  /// Cycle cost of one reference plus which level served it (the MAV
  /// tracker's input; see hw/mav.h).
  struct AccessOutcome {
    double cycles = 0.0;
    AccessLevel level = AccessLevel::kL1;
  };

  /// Replay one reference for `core`; returns the cost and serving level.
  AccessOutcome access_outcome(std::uint32_t core, const MemRef& ref);

  /// Replay one reference for `core`; returns the cycle cost of the touch.
  double access(std::uint32_t core, const MemRef& ref) {
    return access_outcome(core, ref).cycles;
  }

  /// OS migrated the executor thread: its private caches go cold.
  void migrate(std::uint32_t core);

  /// `busy` cores are concurrently active → each gets llc_ways/busy ways.
  void set_llc_pressure(std::uint32_t busy);

  const Cache& l1(std::uint32_t core) const { return *l1_.at(core); }
  const Cache& l2(std::uint32_t core) const { return *l2_.at(core); }
  const Cache& llc() const { return *llc_; }

  /// Mutable access for checkpoint restore (core/checkpoint.cc).
  Cache& l1(std::uint32_t core) { return *l1_.at(core); }
  Cache& l2(std::uint32_t core) { return *l2_.at(core); }
  Cache& llc() { return *llc_; }

 private:
  MemorySystemConfig cfg_;
  std::vector<std::unique_ptr<Cache>> l1_;
  std::vector<std::unique_ptr<Cache>> l2_;
  std::unique_ptr<Cache> llc_;
};

}  // namespace simprof::hw
