#include "hw/cache.h"

#include <algorithm>

#include "support/serialize.h"

namespace simprof::hw {

Cache::Cache(const CacheConfig& cfg)
    : cfg_(cfg),
      sets_(cfg.num_sets()),
      effective_ways_(cfg.ways),
      ways_(sets_ * cfg.ways, kInvalid) {}

bool Cache::access(LineAddr line) {
  const std::size_t set = static_cast<std::size_t>(line % sets_);
  LineAddr* base = ways_.data() + set * cfg_.ways;

  // Search MRU→LRU; only the first effective_ways_ slots count as resident.
  for (std::uint32_t i = 0; i < cfg_.ways; ++i) {
    if (base[i] != line) continue;
    const bool hit = i < effective_ways_;
    // Move to MRU position.
    std::rotate(base, base + i, base + i + 1);
    if (hit) {
      ++stats_.hits;
    } else {
      ++stats_.misses;  // present but outside the pressured capacity
    }
    return hit;
  }
  // Miss: insert at MRU, shifting everything down (LRU way falls off).
  std::rotate(base, base + cfg_.ways - 1, base + cfg_.ways);
  base[0] = line;
  ++stats_.misses;
  return false;
}

void Cache::flush() { std::fill(ways_.begin(), ways_.end(), kInvalid); }

void Cache::save_state(BinaryWriter& w) const {
  w.u64(cfg_.size_bytes);
  w.u32(cfg_.ways);
  w.u32(effective_ways_);
  // Stats ride along: PMU counters read miss totals lazily from here, so a
  // restore must bring the counters' source of truth back too.
  w.u64(stats_.hits);
  w.u64(stats_.misses);
  w.vec_u64(ways_);
}

void Cache::load_state(BinaryReader& r) {
  const std::uint64_t size_bytes = r.u64();
  const std::uint32_t ways = r.u32();
  if (size_bytes != cfg_.size_bytes || ways != cfg_.ways) {
    throw SerializeError("corrupt archive: cache geometry mismatch");
  }
  const std::uint32_t eff = r.u32();
  if (eff < 1 || eff > cfg_.ways) {
    throw SerializeError("corrupt archive: effective ways out of range");
  }
  CacheStats stats;
  stats.hits = r.u64();
  stats.misses = r.u64();
  std::vector<LineAddr> tags = r.vec_u64();
  if (tags.size() != ways_.size()) {
    throw SerializeError("corrupt archive: cache tag array size mismatch");
  }
  effective_ways_ = eff;
  stats_ = stats;
  ways_ = std::move(tags);
}

}  // namespace simprof::hw
