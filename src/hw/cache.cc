#include "hw/cache.h"

#include <algorithm>

namespace simprof::hw {

Cache::Cache(const CacheConfig& cfg)
    : cfg_(cfg),
      sets_(cfg.num_sets()),
      effective_ways_(cfg.ways),
      ways_(sets_ * cfg.ways, kInvalid) {}

bool Cache::access(LineAddr line) {
  const std::size_t set = static_cast<std::size_t>(line % sets_);
  LineAddr* base = ways_.data() + set * cfg_.ways;

  // Search MRU→LRU; only the first effective_ways_ slots count as resident.
  for (std::uint32_t i = 0; i < cfg_.ways; ++i) {
    if (base[i] != line) continue;
    const bool hit = i < effective_ways_;
    // Move to MRU position.
    std::rotate(base, base + i, base + i + 1);
    if (hit) {
      ++stats_.hits;
    } else {
      ++stats_.misses;  // present but outside the pressured capacity
    }
    return hit;
  }
  // Miss: insert at MRU, shifting everything down (LRU way falls off).
  std::rotate(base, base + cfg_.ways - 1, base + cfg_.ways);
  base[0] = line;
  ++stats_.misses;
  return false;
}

void Cache::flush() { std::fill(ways_.begin(), ways_.end(), kInvalid); }

}  // namespace simprof::hw
