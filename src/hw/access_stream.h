// Access-pattern streams: the memory-behaviour vocabulary of the workload
// kernels.
//
// A stream yields line-granular references (one per distinct cache-line
// touch). Workload kernels describe their data-structure traffic with these
// streams — sequential scans over input splits, random probes into hash
// maps, Zipf-skewed probes (hot keys), strided column walks — and the memory
// system replays them through the cache hierarchy.
#pragma once

#include <cstdint>
#include <memory>

#include "hw/cache.h"
#include "support/rng.h"

namespace simprof::hw {

struct MemRef {
  LineAddr line = 0;
  bool write = false;
  /// Sequential/strided traffic is caught by the hardware prefetcher, so a
  /// DRAM miss on a prefetchable reference is charged a reduced penalty.
  bool prefetchable = false;
};

/// Pull-based reference generator. `next` returns false when exhausted.
///
/// Streams are position-addressable: `skip(n)` discards the next n
/// references in O(1) and leaves every later reference bit-identical to a
/// draw-by-draw walk. Random/Zipf streams make this possible by deriving
/// each reference from a counter-based hash of (stream seed, position)
/// instead of mutating a shared generator — the constructor consumes exactly
/// one draw from the parent Rng to capture the seed, so the parent's
/// evolution is the same whether the stream is drained or skipped. The
/// checkpoint fast-forward path in exec depends on this property.
class AccessStream {
 public:
  virtual ~AccessStream() = default;
  virtual bool next(MemRef& out) = 0;
  /// Total references this stream will produce (for cycle apportioning).
  virtual std::uint64_t total_refs() const = 0;
  /// Discard the next n references (capped at what remains) in O(1).
  virtual void skip(std::uint64_t n) = 0;
  /// References left before exhaustion.
  virtual std::uint64_t remaining() const = 0;
};

/// Consecutive lines over [base_addr, base_addr + bytes).
class SequentialStream final : public AccessStream {
 public:
  SequentialStream(std::uint64_t base_addr, std::uint64_t bytes,
                   bool write = false);
  bool next(MemRef& out) override;
  std::uint64_t total_refs() const override { return lines_; }
  void skip(std::uint64_t n) override;
  std::uint64_t remaining() const override { return lines_ - pos_; }

 private:
  LineAddr first_;
  std::uint64_t lines_;
  std::uint64_t pos_ = 0;
  bool write_;
};

/// `touches` uniformly random lines within [base_addr, base_addr + bytes).
class RandomStream final : public AccessStream {
 public:
  RandomStream(std::uint64_t base_addr, std::uint64_t bytes,
               std::uint64_t touches, Rng& rng, bool write = false,
               double write_fraction = -1.0);
  bool next(MemRef& out) override;
  std::uint64_t total_refs() const override { return touches_; }
  void skip(std::uint64_t n) override;
  std::uint64_t remaining() const override { return touches_ - pos_; }

 private:
  LineAddr first_;
  std::uint64_t lines_;
  std::uint64_t touches_;
  std::uint64_t pos_ = 0;
  std::uint64_t seed_;
  bool write_;
  double write_fraction_;
};

/// Zipf-skewed random lines (hot-key hash-map behaviour). The skew is applied
/// over line indices directly: low indices are hot.
class ZipfStream final : public AccessStream {
 public:
  ZipfStream(std::uint64_t base_addr, std::uint64_t bytes,
             std::uint64_t touches, double skew, Rng& rng,
             bool write = false);
  bool next(MemRef& out) override;
  std::uint64_t total_refs() const override { return touches_; }
  void skip(std::uint64_t n) override;
  std::uint64_t remaining() const override { return touches_ - pos_; }

 private:
  LineAddr first_;
  std::uint64_t lines_;
  std::uint64_t touches_;
  std::uint64_t pos_ = 0;
  double skew_;
  std::uint64_t seed_;
  bool write_;
};

/// Every `stride_lines`-th line over a region (column walks, pointer-free
/// gathers with regular structure — prefetchable).
class StridedStream final : public AccessStream {
 public:
  StridedStream(std::uint64_t base_addr, std::uint64_t bytes,
                std::uint64_t stride_lines, bool write = false);
  bool next(MemRef& out) override;
  std::uint64_t total_refs() const override { return refs_; }
  void skip(std::uint64_t n) override;
  std::uint64_t remaining() const override { return refs_ - pos_; }

 private:
  LineAddr first_;
  std::uint64_t stride_;
  std::uint64_t refs_;
  std::uint64_t pos_ = 0;
  bool write_;
};

/// Bump allocator handing out non-overlapping address regions for the
/// simulated data structures of one workload run.
class AddressSpace {
 public:
  /// Reserve `bytes` (rounded up to a line) and return the base address.
  std::uint64_t allocate(std::uint64_t bytes);

  std::uint64_t bytes_allocated() const { return next_; }

 private:
  std::uint64_t next_ = kLineBytes;  // keep 0 unused as a sentinel
};

}  // namespace simprof::hw
