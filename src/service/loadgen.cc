#include "service/loadgen.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "support/assert.h"

namespace simprof::service {

namespace {

using Clock = std::chrono::steady_clock;

struct ClientTally {
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  std::uint64_t stream_updates = 0;
  std::vector<double> latencies_ms;
};

/// One connection's closed loop: keep up to `inflight` requests outstanding,
/// sending the next as each response lands, until `total` were issued and
/// every outstanding one is answered.
ClientTally run_client(const LoadgenConfig& cfg, std::size_t client_index) {
  ClientTally tally;
  int fd = -1;
  try {
    fd = connect_unix(cfg.socket_path);
  } catch (const ContractViolation&) {
    tally.errors = cfg.requests_per_client;
    return tally;
  }

  std::unordered_map<std::uint64_t, Clock::time_point> outstanding;
  std::uint64_t next_id = 0;
  std::size_t sent = 0;

  const auto send_next = [&]() -> bool {
    const std::uint64_t id = ++next_id;
    const std::size_t req_index = client_index * cfg.requests_per_client + sent;
    ProfileRequest q;
    q.workload = cfg.workloads[req_index % cfg.workloads.size()];
    q.input = cfg.input;
    q.scale = cfg.scale;
    q.seed = cfg.vary_seed ? cfg.seed + req_index : cfg.seed;
    q.analyze = cfg.analyze ? 1 : 0;
    q.sample_n = cfg.sample_n;
    q.stream = cfg.stream ? 1 : 0;
    q.stream_retain = cfg.stream_retain;
    q.features = cfg.features;
    q.estimator = cfg.estimator;
    const auto payload = pack_message(MsgKind::kProfileRequest, id,
                                      [&](BinaryWriter& w) { q.write(w); });
    outstanding.emplace(id, Clock::now());
    ++sent;
    if (!write_frame(fd, payload)) {
      outstanding.erase(id);
      ++tally.errors;
      return false;
    }
    return true;
  };

  bool transport_ok = true;
  while (transport_ok && sent < cfg.requests_per_client &&
         outstanding.size() < cfg.inflight_per_client) {
    transport_ok = send_next();
  }

  std::string payload;
  while (transport_ok && !outstanding.empty()) {
    try {
      if (!read_frame(fd, payload)) break;
    } catch (const SerializeError&) {
      break;
    }
    std::istringstream is(payload);
    BinaryReader r(is);
    MessageHeader h;
    try {
      h = read_header(r);
    } catch (const SerializeError&) {
      break;
    }
    if (h.kind == MsgKind::kStreamUpdate) {
      ++tally.stream_updates;
      continue;
    }
    if (h.kind != MsgKind::kResponse) continue;
    const auto it = outstanding.find(h.request_id);
    if (it == outstanding.end()) continue;
    const auto status = static_cast<Status>(r.u32());
    if (status == Status::kOk) {
      ++tally.completed;
      tally.latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - it->second)
              .count());
    } else if (is_rejection(status)) {
      ++tally.rejected;
    } else {
      ++tally.errors;
    }
    outstanding.erase(it);
    if (sent < cfg.requests_per_client) transport_ok = send_next();
  }
  tally.errors += outstanding.size();  // unanswered at disconnect
  ::close(fd);
  return tally;
}

double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

LoadgenReport run_loadgen(const LoadgenConfig& cfg) {
  SIMPROF_EXPECTS(!cfg.workloads.empty(), "loadgen: empty workload mix");
  SIMPROF_EXPECTS(cfg.inflight_per_client >= 1, "loadgen: inflight must be >= 1");

  std::vector<ClientTally> tallies(cfg.clients);
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(cfg.clients);
  for (std::size_t c = 0; c < cfg.clients; ++c) {
    threads.emplace_back(
        [&, c] { tallies[c] = run_client(cfg, c); });
  }
  for (auto& t : threads) t.join();

  LoadgenReport report;
  report.elapsed_sec = std::chrono::duration<double>(Clock::now() - t0).count();
  for (auto& t : tallies) {
    report.completed += t.completed;
    report.rejected += t.rejected;
    report.errors += t.errors;
    report.stream_updates += t.stream_updates;
    report.latencies_ms.insert(report.latencies_ms.end(),
                               t.latencies_ms.begin(), t.latencies_ms.end());
  }
  std::sort(report.latencies_ms.begin(), report.latencies_ms.end());
  report.qps = report.elapsed_sec > 0.0
                   ? static_cast<double>(report.completed) / report.elapsed_sec
                   : 0.0;
  report.p50_ms = sorted_quantile(report.latencies_ms, 0.50);
  report.p90_ms = sorted_quantile(report.latencies_ms, 0.90);
  report.p99_ms = sorted_quantile(report.latencies_ms, 0.99);
  return report;
}

}  // namespace simprof::service
