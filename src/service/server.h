// The SimProf service daemon: a resident server that owns the lab cache and
// serves concurrent profile / sensitivity / measure requests over a Unix
// domain socket (protocol.h), so N clients share one warm process instead
// of paying CLI startup + cold caches per request.
//
// Thread architecture:
//
//   listener ──accept──▶ reader (one per connection)
//                           │ parse + validate + admission checks
//                           ▼
//                      request queue  ◀── typed rejections happen here:
//                           │             kOverQuota (client in-flight cap),
//                           ▼             kQueueFull, kShuttingDown
//   workers (max_concurrency threads, gated to probe.concurrency() tickets)
//           │ WorkloadLab::run_batch — concurrent identical configs collapse
//           │ to ONE oracle pass via the lab's single-flight (lab.batch_dedup)
//           ▼
//   probe thread: every probe_interval_ms feeds (completions/sec, tickets
//   exhausted?) to the ThroughputProbe (admission.h), which walks the
//   admitted ticket count to the knee of the measured saturation curve.
//
// Per-client quotas: at most client_max_inflight queued+running requests
// per connection, and streaming requests run their StreamingPhaseFormer
// with max_retained_units capped by stream_retain_cap — the per-client
// memory bound. Interim selections stream back as kStreamUpdate frames
// from the former's update hook, before the final response.
//
// Determinism: request execution is a pure function of the request (the
// lab cache key covers every parameter), so daemon results are bit-identical
// to the one-shot CLI for the same config+seed — enforced by
// tests/service_test.cc via the profile_bytes blob. Admission control only
// decides *when* a request runs, never what it computes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/lab.h"
#include "service/admission.h"
#include "service/protocol.h"

namespace simprof::service {

struct ServiceConfig {
  std::string socket_path;
  /// Base lab configuration (cache dir, unit size, cores). Per-request
  /// scale/seed override it; use_cache is forced on — the shared warm cache
  /// is the point of a resident daemon.
  core::LabConfig lab;
  AdmissionConfig admission;
  /// Pin the admitted concurrency to admission.initial_concurrency instead
  /// of probing (the bench's exhaustive-sweep mode).
  bool fixed_concurrency = false;
  /// Request queue capacity; arrivals beyond it get kQueueFull.
  std::size_t max_queue = 64;
  /// Per-connection cap on queued+running requests; beyond it, kOverQuota.
  std::size_t client_max_inflight = 8;
  /// Hard cap a streaming request's max_retained_units is clamped to (the
  /// per-client memory quota; 0 lets clients retain everything).
  std::size_t stream_retain_cap = 0;
  /// Threads each request's lab/analysis stages may use. 1 keeps requests
  /// independent (concurrency comes from admission tickets); >1 funnels
  /// concurrent requests through the shared pool's job queue.
  std::size_t request_threads = 1;
};

/// One probe-window observation, for the bench's convergence trace.
struct AdmissionTracePoint {
  double t_ms = 0.0;        ///< since server start
  std::size_t level = 0;    ///< admitted tickets after this window
  double throughput = 0.0;  ///< completions/sec observed in the window
  bool exhausted = false;
};

struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t rejected_quota = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;          ///< non-ok responses to accepted work
  std::uint64_t stream_updates = 0;
  std::size_t queue_depth = 0;
  std::size_t inflight = 0;
  std::size_t admission_level = 0;
  double uptime_sec = 0.0;
};

class ServiceServer {
 public:
  explicit ServiceServer(ServiceConfig cfg);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Bind the socket and spawn listener/worker/probe threads. Throws on
  /// bind failure.
  void start();

  /// Begin graceful shutdown: stop accepting connections, answer new
  /// requests with kShuttingDown, let queued + in-flight work drain. Safe
  /// to call from any thread (e.g. a signal-watcher); idempotent.
  void request_stop();

  /// Block until fully drained and every thread is joined. Idempotent.
  void wait();

  bool stopping() const { return stop_.load(std::memory_order_acquire); }

  ServerStats stats() const;
  std::vector<AdmissionTracePoint> admission_trace() const;
  const ServiceConfig& config() const { return cfg_; }

 private:
  struct Connection;
  using RequestBody =
      std::variant<ProfileRequest, SensitivityRequest, MeasureRequest>;
  struct QueuedRequest {
    std::shared_ptr<Connection> conn;
    MessageHeader header;
    RequestBody body;
    std::chrono::steady_clock::time_point enqueued;
  };

  void listener_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void worker_loop();
  void probe_loop();

  void handle_frame(const std::shared_ptr<Connection>& conn,
                    const std::string& payload);
  void admit(const std::shared_ptr<Connection>& conn,
             const MessageHeader& header, RequestBody body);
  void execute(QueuedRequest& req);
  void run_profile(QueuedRequest& req, const ProfileRequest& q);
  void run_sensitivity(QueuedRequest& req, const SensitivityRequest& q);
  void run_measure(QueuedRequest& req, const MeasureRequest& q);

  void reject(const std::shared_ptr<Connection>& conn, std::uint64_t request_id,
              Status status, const std::string& message);
  bool send_payload(const std::shared_ptr<Connection>& conn,
                    const std::string& payload);
  std::size_t admitted_level() const;
  core::WorkloadLab make_lab(double scale, std::uint64_t seed) const;

  ServiceConfig cfg_;
  int listen_fd_ = -1;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> joined_{false};
  std::chrono::steady_clock::time_point start_time_;

  ThroughputProbe probe_;

  mutable std::mutex mu_;  ///< guards queue_, active_, window flags
  std::condition_variable cv_;
  std::deque<QueuedRequest> queue_;
  std::size_t active_ = 0;
  std::uint64_t window_completions_ = 0;
  bool window_exhausted_ = false;

  std::thread listener_;
  std::vector<std::thread> workers_;
  std::thread prober_;
  std::condition_variable probe_cv_;  ///< interruptible probe sleep
  std::mutex probe_mu_;

  mutable std::mutex conns_mu_;
  struct ReaderSlot {
    std::thread thread;
    std::shared_ptr<Connection> conn;
  };
  std::vector<ReaderSlot> readers_;
  std::uint64_t next_conn_id_ = 0;

  mutable std::mutex trace_mu_;
  std::vector<AdmissionTracePoint> trace_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_quota_{0};
  std::atomic<std::uint64_t> rejected_queue_full_{0};
  std::atomic<std::uint64_t> rejected_shutdown_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> stream_updates_{0};
};

}  // namespace simprof::service
