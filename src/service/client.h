// Blocking client for the SimProf service daemon — one connection, one
// outstanding request at a time (the load generator drives its own
// pipelined connections directly on the protocol functions; this class is
// the simple call interface for tests and one-shot CLI use).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "service/protocol.h"

namespace simprof::service {

class ServiceClient {
 public:
  /// Connects and performs the kHello handshake; throws ContractViolation
  /// if the daemon is unreachable or answers garbage.
  explicit ServiceClient(const std::string& socket_path);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Final outcome of a request. `status != kOk` carries `message`; the
  /// typed result fields are only meaningful on kOk.
  struct ProfileReply {
    Status status = Status::kInternalError;
    std::string message;
    ProfileResult result;
  };
  struct SensitivityReply {
    Status status = Status::kInternalError;
    std::string message;
    SensitivityResult result;
  };
  struct MeasureReply {
    Status status = Status::kInternalError;
    std::string message;
    MeasureResultMsg result;
  };

  /// Send and block for the final response. Stream updates arriving for
  /// this request invoke `on_update` in arrival order before the reply.
  ProfileReply profile(
      const ProfileRequest& req,
      const std::function<void(const StreamUpdate&)>& on_update = {});
  SensitivityReply sensitivity(const SensitivityRequest& req);
  MeasureReply measure(const MeasureRequest& req);
  StatsResult stats();

 private:
  /// Sends `kind`+body, then reads frames until the matching kResponse.
  /// Returns (status, message) and leaves the result body in `result_body`.
  std::pair<Status, std::string> call(
      MsgKind kind, const std::function<void(BinaryWriter&)>& body,
      std::string& result_body,
      const std::function<void(const StreamUpdate&)>& on_update = {});

  int fd_ = -1;
  std::uint64_t next_request_id_ = 0;
};

}  // namespace simprof::service
