#include "service/client.h"

#include <unistd.h>

#include <sstream>

#include "support/assert.h"

namespace simprof::service {

ServiceClient::ServiceClient(const std::string& socket_path) {
  fd_ = connect_unix(socket_path);
  const std::uint64_t id = ++next_request_id_;
  if (!write_frame(fd_, pack_message(MsgKind::kHello, id))) {
    ::close(fd_);
    throw ContractViolation("service client: hello send failed");
  }
  std::string payload;
  if (!read_frame(fd_, payload)) {
    ::close(fd_);
    throw ContractViolation("service client: daemon closed during handshake");
  }
  std::istringstream is(payload);
  BinaryReader r(is);
  const MessageHeader h = read_header(r);
  if (h.kind != MsgKind::kHelloAck || h.request_id != id) {
    ::close(fd_);
    throw ContractViolation("service client: bad handshake reply");
  }
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::pair<Status, std::string> ServiceClient::call(
    MsgKind kind, const std::function<void(BinaryWriter&)>& body,
    std::string& result_body,
    const std::function<void(const StreamUpdate&)>& on_update) {
  const std::uint64_t id = ++next_request_id_;
  if (!write_frame(fd_, pack_message(kind, id, body))) {
    return {Status::kInternalError, "send failed: daemon gone"};
  }
  std::string payload;
  while (read_frame(fd_, payload)) {
    std::istringstream is(payload);
    BinaryReader r(is);
    const MessageHeader h = read_header(r);
    if (h.kind == MsgKind::kStreamUpdate && h.request_id == id) {
      const StreamUpdate u = StreamUpdate::read(r);
      if (on_update) on_update(u);
      continue;
    }
    if (h.kind != MsgKind::kResponse || h.request_id != id) continue;
    const auto status = static_cast<Status>(r.u32());
    std::string message = r.str();
    if (status == Status::kOk) {
      // Hand the remaining bytes to the typed reader.
      result_body = payload.substr(payload.size() - r.remaining());
    }
    return {status, std::move(message)};
  }
  return {Status::kInternalError, "daemon closed the connection"};
}

namespace {

template <typename Result>
Result parse_result(const std::string& body) {
  std::istringstream is(body);
  BinaryReader r(is);
  return Result::read(r);
}

}  // namespace

ServiceClient::ProfileReply ServiceClient::profile(
    const ProfileRequest& req,
    const std::function<void(const StreamUpdate&)>& on_update) {
  ProfileReply reply;
  std::string body;
  std::tie(reply.status, reply.message) =
      call(MsgKind::kProfileRequest,
           [&](BinaryWriter& w) { req.write(w); }, body, on_update);
  if (reply.status == Status::kOk) {
    reply.result = parse_result<ProfileResult>(body);
  }
  return reply;
}

ServiceClient::SensitivityReply ServiceClient::sensitivity(
    const SensitivityRequest& req) {
  SensitivityReply reply;
  std::string body;
  std::tie(reply.status, reply.message) =
      call(MsgKind::kSensitivityRequest,
           [&](BinaryWriter& w) { req.write(w); }, body);
  if (reply.status == Status::kOk) {
    reply.result = parse_result<SensitivityResult>(body);
  }
  return reply;
}

ServiceClient::MeasureReply ServiceClient::measure(const MeasureRequest& req) {
  MeasureReply reply;
  std::string body;
  std::tie(reply.status, reply.message) =
      call(MsgKind::kMeasureRequest,
           [&](BinaryWriter& w) { req.write(w); }, body);
  if (reply.status == Status::kOk) {
    reply.result = parse_result<MeasureResultMsg>(body);
  }
  return reply;
}

StatsResult ServiceClient::stats() {
  std::string body;
  const auto [status, message] = call(MsgKind::kStatsRequest, {}, body);
  SIMPROF_EXPECTS(status == Status::kOk,
                  "service client: stats request failed");
  return parse_result<StatsResult>(body);
}

}  // namespace simprof::service
