#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <optional>
#include <sstream>

#include "core/phase.h"
#include "core/sampling.h"
#include "core/sensitivity.h"
#include "core/streaming.h"
#include "features/feature_mode.h"
#include "obs/obs.h"
#include "support/assert.h"
#include "workloads/workloads.h"

namespace simprof::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

struct SvcMetrics {
  obs::Counter& accepted = obs::metrics().counter("svc.accepted");
  obs::Counter& queued = obs::metrics().counter("svc.queued");
  obs::Counter& rejected = obs::metrics().counter("svc.rejected");
  obs::Counter& rejected_quota = obs::metrics().counter("svc.rejected.quota");
  obs::Counter& rejected_queue_full =
      obs::metrics().counter("svc.rejected.queue_full");
  obs::Counter& rejected_shutdown =
      obs::metrics().counter("svc.rejected.shutdown");
  obs::Counter& bad_request = obs::metrics().counter("svc.bad_request");
  obs::Counter& completed = obs::metrics().counter("svc.completed");
  obs::Counter& stream_updates = obs::metrics().counter("svc.stream_updates");
  obs::QuantileHistogram& queue_wait_ms =
      obs::metrics().quantile_histogram("svc.queue_wait_ms");
  obs::QuantileHistogram& request_ms =
      obs::metrics().quantile_histogram("svc.request_ms");
  obs::Gauge& queue_depth = obs::metrics().gauge("svc.queue_depth");
  obs::Gauge& inflight = obs::metrics().gauge("svc.inflight");
  obs::Gauge& admission_level = obs::metrics().gauge("svc.admission_level");
};

SvcMetrics& svc_metrics() {
  static SvcMetrics m;
  return m;
}

}  // namespace

struct ServiceServer::Connection {
  int fd = -1;
  std::uint64_t id = 0;
  std::mutex write_mu;
  std::atomic<std::size_t> inflight{0};
  std::atomic<bool> dead{false};
};

ServiceServer::ServiceServer(ServiceConfig cfg)
    : cfg_(std::move(cfg)), probe_(cfg_.admission) {
  SIMPROF_EXPECTS(!cfg_.socket_path.empty(), "service: socket_path required");
  cfg_.lab.use_cache = true;
  cfg_.lab.threads = cfg_.request_threads;
}

ServiceServer::~ServiceServer() {
  request_stop();
  wait();
}

void ServiceServer::start() {
  SIMPROF_EXPECTS(!started_.exchange(true), "service: start() called twice");
  listen_fd_ = listen_unix(cfg_.socket_path);
  start_time_ = Clock::now();
  svc_metrics().admission_level.set(static_cast<double>(admitted_level()));
  SIMPROF_LOG(kInfo) << "svc: listening on " << cfg_.socket_path
                     << " workers=" << cfg_.admission.max_concurrency
                     << " tickets=" << admitted_level()
                     << (cfg_.fixed_concurrency ? " (fixed)" : " (probing)");
  workers_.reserve(cfg_.admission.max_concurrency);
  for (std::size_t i = 0; i < cfg_.admission.max_concurrency; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  prober_ = std::thread([this] { probe_loop(); });
  listener_ = std::thread([this] { listener_loop(); });
}

void ServiceServer::request_stop() {
  {
    // stop_ is flipped under mu_ so admit() (which checks it under the same
    // lock) can never enqueue after the last worker observed the drained
    // queue and exited.
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  }
  cv_.notify_all();
  probe_cv_.notify_all();
}

void ServiceServer::wait() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (joined_.exchange(true)) return;
  if (listener_.joinable()) listener_.join();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (prober_.joinable()) prober_.join();
  // Every queued request has been answered; now wake the readers (blocked
  // in recv) and join them.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& slot : readers_) {
      if (!slot.conn->dead.load()) ::shutdown(slot.conn->fd, SHUT_RDWR);
    }
  }
  for (auto& slot : readers_) {
    if (slot.thread.joinable()) slot.thread.join();
    ::close(slot.conn->fd);
  }
  readers_.clear();
  ::unlink(cfg_.socket_path.c_str());
  SIMPROF_LOG(kInfo) << "svc: drained and stopped; completed="
                     << completed_.load() << " rejected="
                     << (rejected_quota_.load() + rejected_queue_full_.load() +
                         rejected_shutdown_.load());
}

std::size_t ServiceServer::admitted_level() const {
  if (cfg_.fixed_concurrency) {
    return std::clamp(cfg_.admission.initial_concurrency,
                      cfg_.admission.min_concurrency,
                      cfg_.admission.max_concurrency);
  }
  return probe_.concurrency();
}

core::WorkloadLab ServiceServer::make_lab(double scale,
                                          std::uint64_t seed) const {
  core::LabConfig lc = cfg_.lab;
  lc.scale = scale;
  lc.seed = seed;
  lc.use_cache = true;
  lc.threads = cfg_.request_threads;
  return core::WorkloadLab(lc);
}

void ServiceServer::listener_loop() {
  for (;;) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (stop_.load(std::memory_order_acquire)) break;
    // Reap finished readers so a long-lived daemon doesn't accumulate one
    // joinable thread handle per historical connection.
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (auto it = readers_.begin(); it != readers_.end();) {
        if (it->conn->dead.load() && it->conn->inflight.load() == 0) {
          it->thread.join();
          ::close(it->conn->fd);
          it = readers_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (rc <= 0 || !(pfd.revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conn->id = ++next_conn_id_;
      readers_.push_back(
          {std::thread([this, conn] { reader_loop(conn); }), conn});
    }
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void ServiceServer::reader_loop(std::shared_ptr<Connection> conn) {
  std::string payload;
  try {
    while (read_frame(conn->fd, payload)) {
      handle_frame(conn, payload);
    }
  } catch (const SerializeError& e) {
    SIMPROF_LOG(kWarn) << "svc: dropping conn " << conn->id << ": " << e.what();
  }
  conn->dead.store(true);
}

void ServiceServer::handle_frame(const std::shared_ptr<Connection>& conn,
                                 const std::string& payload) {
  std::istringstream is(payload);
  BinaryReader r(is);
  MessageHeader h;
  try {
    h = read_header(r);
  } catch (const SerializeError& e) {
    svc_metrics().bad_request.increment();
    send_payload(conn, pack_response(0, Status::kBadRequest, e.what()));
    return;
  }
  switch (h.kind) {
    case MsgKind::kHello:
      send_payload(conn, pack_message(MsgKind::kHelloAck, h.request_id));
      return;
    case MsgKind::kStatsRequest: {
      const ServerStats s = stats();
      StatsResult out;
      out.accepted = s.accepted;
      out.rejected = s.rejected;
      out.completed = s.completed;
      out.queue_depth = s.queue_depth;
      out.inflight = s.inflight;
      out.admission_level = s.admission_level;
      send_payload(conn,
                   pack_response(h.request_id, Status::kOk, "",
                                 [&](BinaryWriter& w) { out.write(w); }));
      return;
    }
    case MsgKind::kProfileRequest:
    case MsgKind::kSensitivityRequest:
    case MsgKind::kMeasureRequest: {
      RequestBody body;
      try {
        if (h.kind == MsgKind::kProfileRequest) {
          body = ProfileRequest::read(r);
        } else if (h.kind == MsgKind::kSensitivityRequest) {
          body = SensitivityRequest::read(r);
        } else {
          body = MeasureRequest::read(r);
        }
      } catch (const SerializeError& e) {
        svc_metrics().bad_request.increment();
        send_payload(conn,
                     pack_response(h.request_id, Status::kBadRequest, e.what()));
        return;
      }
      admit(conn, h, std::move(body));
      return;
    }
    default:
      svc_metrics().bad_request.increment();
      send_payload(conn, pack_response(h.request_id, Status::kBadRequest,
                                       "unknown message kind"));
      return;
  }
}

void ServiceServer::reject(const std::shared_ptr<Connection>& conn,
                           std::uint64_t request_id, Status status,
                           const std::string& message) {
  auto& m = svc_metrics();
  m.rejected.increment();
  switch (status) {
    case Status::kOverQuota:
      m.rejected_quota.increment();
      rejected_quota_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::kQueueFull:
      m.rejected_queue_full.increment();
      rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Status::kShuttingDown:
      m.rejected_shutdown.increment();
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
  send_payload(conn, pack_response(request_id, status, message));
}

void ServiceServer::admit(const std::shared_ptr<Connection>& conn,
                          const MessageHeader& header, RequestBody body) {
  // Validate the request's workload names up front so a typo is a fast
  // typed rejection, not a queued request that fails mid-execution.
  try {
    std::visit(
        [](const auto& q) {
          using T = std::decay_t<decltype(q)>;
          workloads::workload(q.workload);
          if constexpr (std::is_same_v<T, SensitivityRequest>) {
            for (const auto& ref : q.references) workloads::workload(ref);
          }
        },
        body);
  } catch (const ContractViolation& e) {
    svc_metrics().bad_request.increment();
    send_payload(conn, pack_response(header.request_id,
                                     Status::kUnknownWorkload, e.what()));
    return;
  }

  // Per-client quota. Frames of one connection are handled serially by its
  // reader thread, so check-then-increment cannot race with itself.
  if (conn->inflight.load(std::memory_order_relaxed) >=
      cfg_.client_max_inflight) {
    reject(conn, header.request_id, Status::kOverQuota,
           "client in-flight quota (" +
               std::to_string(cfg_.client_max_inflight) + ") exceeded");
    return;
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_.load(std::memory_order_relaxed)) {
      lock.unlock();
      reject(conn, header.request_id, Status::kShuttingDown,
             "server is draining");
      return;
    }
    if (queue_.size() >= cfg_.max_queue) {
      lock.unlock();
      reject(conn, header.request_id, Status::kQueueFull,
             "request queue at capacity (" + std::to_string(cfg_.max_queue) +
                 ")");
      return;
    }
    queue_.push_back({conn, header, std::move(body), Clock::now()});
    conn->inflight.fetch_add(1, std::memory_order_relaxed);
    if (active_ >= admitted_level()) window_exhausted_ = true;
    svc_metrics().queue_depth.set(static_cast<double>(queue_.size()));
  }
  auto& m = svc_metrics();
  m.accepted.increment();
  m.queued.increment();
  accepted_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
}

void ServiceServer::worker_loop() {
  auto& m = svc_metrics();
  for (;;) {
    QueuedRequest req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        if (stop_.load(std::memory_order_relaxed) && queue_.empty()) {
          return true;
        }
        return !queue_.empty() && active_ < admitted_level();
      });
      if (queue_.empty()) return;  // stop_ && drained
      req = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
      if (!queue_.empty() && active_ >= admitted_level()) {
        window_exhausted_ = true;
      }
      m.queue_depth.set(static_cast<double>(queue_.size()));
      m.inflight.set(static_cast<double>(active_));
    }
    m.queue_wait_ms.observe(ms_since(req.enqueued));
    execute(req);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      ++window_completions_;
      m.inflight.set(static_cast<double>(active_));
    }
    cv_.notify_all();
  }
}

void ServiceServer::probe_loop() {
  auto window_start = Clock::now();
  std::unique_lock<std::mutex> plk(probe_mu_);
  for (;;) {
    probe_cv_.wait_for(
        plk, std::chrono::milliseconds(cfg_.admission.probe_interval_ms),
        [&] { return stop_.load(std::memory_order_acquire); });
    if (stop_.load(std::memory_order_acquire)) return;

    std::uint64_t completions = 0;
    bool exhausted = false;
    bool idle = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      completions = window_completions_;
      exhausted = window_exhausted_;
      window_completions_ = 0;
      window_exhausted_ = false;
      idle = completions == 0 && !exhausted && queue_.empty() && active_ == 0;
    }
    const double dt_sec =
        std::chrono::duration<double>(Clock::now() - window_start).count();
    window_start = Clock::now();
    if (idle || dt_sec <= 0.0) continue;  // an idle daemon holds its level

    const double throughput = static_cast<double>(completions) / dt_sec;
    if (!cfg_.fixed_concurrency) {
      probe_.on_probe(throughput, exhausted);
      cv_.notify_all();  // the admitted level may have moved
    }
    svc_metrics().admission_level.set(static_cast<double>(admitted_level()));
    {
      std::lock_guard<std::mutex> lock(trace_mu_);
      trace_.push_back(
          {ms_since(start_time_), admitted_level(), throughput, exhausted});
    }
  }
}

void ServiceServer::execute(QueuedRequest& req) {
  obs::ObsSpan span("svc.request");
  const auto exec_start = Clock::now();
  Status status = Status::kOk;
  std::string message;
  try {
    std::visit(
        [&](const auto& q) {
          using T = std::decay_t<decltype(q)>;
          if constexpr (std::is_same_v<T, ProfileRequest>) {
            run_profile(req, q);
          } else if constexpr (std::is_same_v<T, SensitivityRequest>) {
            run_sensitivity(req, q);
          } else {
            run_measure(req, q);
          }
        },
        req.body);
  } catch (const ContractViolation& e) {
    status = Status::kBadRequest;
    message = e.what();
  } catch (const std::exception& e) {
    status = Status::kInternalError;
    message = e.what();
  }
  if (status != Status::kOk) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    send_payload(req.conn, pack_response(req.header.request_id, status, message));
  } else {
    completed_.fetch_add(1, std::memory_order_relaxed);
    svc_metrics().completed.increment();
  }
  svc_metrics().request_ms.observe(
      std::chrono::duration<double, std::milli>(Clock::now() - exec_start)
          .count());
  req.conn->inflight.fetch_sub(1, std::memory_order_relaxed);
}

void ServiceServer::run_profile(QueuedRequest& req, const ProfileRequest& q) {
  // v2 analysis selectors. The lab cache key is mode-independent (profiles
  // always carry the MAV blocks), so distinct feature modes over the same
  // workload config still single-flight into one oracle pass — only the
  // analysis below differs per request.
  if (q.features > 2) {
    throw ContractViolation("profile request: unknown feature mode " +
                            std::to_string(q.features));
  }
  if (q.estimator > 1) {
    throw ContractViolation("profile request: unknown estimator " +
                            std::to_string(q.estimator));
  }
  const auto feature_mode = static_cast<features::FeatureMode>(q.features);
  const bool two_phase = q.estimator == 1;
  const auto stratified = [&](const core::ThreadProfile& p,
                              const core::PhaseModel& m, std::size_t n,
                              std::uint64_t seed) {
    return two_phase ? core::two_phase_sample(p, m, n, seed)
                     : core::simprof_sample(p, m, n, seed);
  };

  core::WorkloadLab lab = make_lab(q.scale, q.seed);
  core::BatchItem item;
  item.workload = q.workload;
  item.graph_input = q.input;
  item.seed = q.seed;
  auto runs = lab.run_batch({item});
  const core::ThreadProfile& profile = runs.front().profile;

  ProfileResult res;
  res.from_cache = runs.front().from_cache ? 1 : 0;
  res.units = profile.num_units();
  res.methods = profile.num_methods();
  res.oracle_cpi = profile.num_units() > 0 ? profile.oracle_cpi() : 0.0;
  if (q.want_profile_bytes) {
    std::ostringstream os;
    profile.save(os);
    res.profile_bytes = os.str();
  }

  res.features = q.features;
  res.estimator = q.estimator;

  if (q.analyze && profile.num_units() > 0) {
    core::PhaseFormationConfig fc;
    fc.features = feature_mode;
    fc.threads = cfg_.request_threads;
    core::PhaseModel model;
    const core::ThreadProfile* sample_profile = &profile;
    std::optional<core::StreamingPhaseFormer> former;
    if (q.stream) {
      core::StreamingConfig sc;
      sc.formation = fc;
      std::size_t retain = static_cast<std::size_t>(q.stream_retain);
      if (cfg_.stream_retain_cap > 0) {
        retain = retain == 0 ? cfg_.stream_retain_cap
                             : std::min(retain, cfg_.stream_retain_cap);
      }
      sc.max_retained_units = retain;
      former.emplace(sc);
      former->set_update_hook([&](const core::StreamingPhaseFormer& f) {
        StreamUpdate u;
        u.recluster = f.reclusters();
        u.units_ingested = f.units_ingested();
        u.units_retained = f.units_retained();
        u.phase_count = f.model().k;
        if (q.sample_n > 0 && f.units_retained() > 0) {
          const auto n = std::min<std::size_t>(
              static_cast<std::size_t>(q.sample_n), f.units_retained());
          const auto plan = stratified(f.profile(), f.model(), n, q.seed);
          u.estimated_cpi = plan.estimated_cpi;
          u.selected_units.reserve(plan.points.size());
          for (const auto& p : plan.points) {
            u.selected_units.push_back(f.profile().units[p.unit_index].unit_id);
          }
        }
        stream_updates_.fetch_add(1, std::memory_order_relaxed);
        svc_metrics().stream_updates.increment();
        send_payload(req.conn,
                     pack_message(MsgKind::kStreamUpdate, req.header.request_id,
                                  [&](BinaryWriter& w) { u.write(w); }));
      });
      former->ingest_range(profile, 0, profile.num_units());
      model = former->finalize();
      sample_profile = &former->profile();
    } else {
      model = core::form_phases(profile, fc);
    }
    res.phase_count = model.k;
    if (q.sample_n > 0 && sample_profile->num_units() > 0) {
      const auto n = std::min<std::size_t>(
          static_cast<std::size_t>(q.sample_n), sample_profile->num_units());
      const auto plan = stratified(*sample_profile, model, n, q.seed);
      res.estimated_cpi = plan.estimated_cpi;
      res.standard_error = plan.standard_error;
      res.selected_units.reserve(plan.points.size());
      res.weights.reserve(plan.points.size());
      for (const auto& p : plan.points) {
        res.selected_units.push_back(
            sample_profile->units[p.unit_index].unit_id);
        res.weights.push_back(p.weight);
      }
    }
  }

  send_payload(req.conn,
               pack_response(req.header.request_id, Status::kOk, "",
                             [&](BinaryWriter& w) { res.write(w); }));
}

void ServiceServer::run_sensitivity(QueuedRequest& req,
                                    const SensitivityRequest& q) {
  core::WorkloadLab lab = make_lab(q.scale, q.seed);
  std::vector<core::BatchItem> items;
  items.push_back({q.workload, q.input, q.seed});
  for (const auto& ref : q.references) items.push_back({ref, q.input, q.seed});
  auto runs = lab.run_batch(items);

  core::PhaseFormationConfig fc;
  fc.threads = cfg_.request_threads;
  const core::PhaseModel model = core::form_phases(runs.front().profile, fc);

  std::vector<const core::ThreadProfile*> refs;
  refs.reserve(q.references.size());
  for (std::size_t i = 1; i < runs.size(); ++i) refs.push_back(&runs[i].profile);
  const auto report =
      core::input_sensitivity_test(model, refs, q.references, q.threshold);

  SensitivityResult res;
  res.phases = report.phase_sensitive.size();
  res.sensitive = report.num_sensitive();
  send_payload(req.conn,
               pack_response(req.header.request_id, Status::kOk, "",
                             [&](BinaryWriter& w) { res.write(w); }));
}

void ServiceServer::run_measure(QueuedRequest& req, const MeasureRequest& q) {
  core::WorkloadLab lab = make_lab(q.scale, q.seed);
  const auto mr = lab.measure_units(q.workload, q.input, q.units);

  MeasureResultMsg res;
  res.used_checkpoints = mr.used_checkpoints ? 1 : 0;
  res.fallback = mr.fallback ? 1 : 0;
  res.checkpoints_restored = mr.checkpoints_restored;
  res.unit_ids.reserve(mr.records.size());
  res.cpis.reserve(mr.records.size());
  for (const auto& rec : mr.records) {
    res.unit_ids.push_back(rec.unit_id);
    res.cpis.push_back(rec.cpi());
  }
  send_payload(req.conn,
               pack_response(req.header.request_id, Status::kOk, "",
                             [&](BinaryWriter& w) { res.write(w); }));
}

bool ServiceServer::send_payload(const std::shared_ptr<Connection>& conn,
                                 const std::string& payload) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->dead.load(std::memory_order_relaxed)) return false;
  if (!write_frame(conn->fd, payload)) {
    conn->dead.store(true);
    ::shutdown(conn->fd, SHUT_RDWR);  // wake the reader so it can exit
    return false;
  }
  return true;
}

ServerStats ServiceServer::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_quota = rejected_quota_.load(std::memory_order_relaxed);
  s.rejected_queue_full = rejected_queue_full_.load(std::memory_order_relaxed);
  s.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
  s.rejected = s.rejected_quota + s.rejected_queue_full + s.rejected_shutdown;
  s.completed = completed_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.stream_updates = stream_updates_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queue_depth = queue_.size();
    s.inflight = active_;
  }
  s.admission_level = admitted_level();
  if (started_.load(std::memory_order_acquire)) {
    s.uptime_sec =
        std::chrono::duration<double>(Clock::now() - start_time_).count();
  }
  return s;
}

std::vector<AdmissionTracePoint> ServiceServer::admission_trace() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return trace_;
}

}  // namespace simprof::service
