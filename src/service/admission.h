// Throughput-probing admission control, modeled on MongoDB's execution
// control (`throughput_probing_simulator`, SNIPPETS.md snippet 1): instead
// of hand-configuring the daemon's concurrency (`--threads`), the admitted
// ticket count is *discovered* by hill-climbing on observed completions/sec.
//
// The controller is a three-state machine driven by fixed-length probe
// windows. Each window the server reports (throughput, tickets_exhausted):
//
//   kStable       Holding `stable` tickets. If requests waited with every
//                 ticket busy (exhausted), probe up by a step; otherwise,
//                 if above the floor, probe down a step to test whether the
//                 extra concurrency was buying anything.
//   kProbingUp    Ran one window at stable+step. Keep the higher level only
//                 if throughput improved by more than `sensitivity`
//                 (relative); otherwise chain into a down-probe — past the
//                 knee of the saturation curve more tickets add latency,
//                 not QPS, and under sustained saturation (tickets always
//                 exhausted) this chain is the only path that walks an
//                 over-provisioned level back down.
//   kProbingDown  Ran one window at stable−step. Keep the lower level
//                 unless throughput *dropped* by more than `sensitivity` —
//                 equal throughput at less concurrency is a win, and this
//                 is what walks the level back down to the knee after a
//                 burst.
//
// Accepted moves update the stable throughput baseline; while holding
// stable the baseline EWMA-tracks the workload so the controller adapts to
// drift. The step is multiplicative (step_multiple of the current level,
// floor 1 ticket), so convergence is O(log range) windows from any start.
//
// Determinism: the controller is pure state — on_probe(throughput,
// exhausted) → level — with no clock or RNG access, so unit tests drive it
// with synthetic saturation curves and assert convergence exactly.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace simprof::service {

struct AdmissionConfig {
  std::size_t min_concurrency = 1;
  std::size_t max_concurrency = 32;
  std::size_t initial_concurrency = 2;
  /// Probe step as a fraction of the current level (floor: 1 ticket).
  double step_multiple = 0.25;
  /// Relative throughput change required to accept an up-probe / reject a
  /// down-probe.
  double sensitivity = 0.05;
  /// Probe window length (used by the server's probe thread, not by the
  /// state machine itself).
  std::uint32_t probe_interval_ms = 200;
  /// EWMA weight of the newest stable-window throughput observation.
  double baseline_smoothing = 0.5;
};

class ThroughputProbe {
 public:
  enum class State { kStable, kProbingUp, kProbingDown };

  explicit ThroughputProbe(AdmissionConfig cfg);

  /// Currently admitted ticket count. Lock-free read for the dispatch path.
  std::size_t concurrency() const {
    return level_.load(std::memory_order_relaxed);
  }

  /// Feed one completed probe window: observed completions/sec and whether
  /// any request waited while every admitted ticket was busy. May change
  /// concurrency(). Single-writer (the server's probe thread).
  void on_probe(double throughput, bool tickets_exhausted);

  State state() const { return state_; }
  std::size_t stable_concurrency() const { return stable_; }
  double stable_throughput() const { return stable_throughput_; }
  std::uint64_t probes() const { return probes_; }

 private:
  std::size_t step_from(std::size_t level) const;
  void set_level(std::size_t level);

  AdmissionConfig cfg_;
  std::atomic<std::size_t> level_;
  std::size_t stable_;
  double stable_throughput_ = 0.0;
  bool has_baseline_ = false;
  State state_ = State::kStable;
  std::uint64_t probes_ = 0;
};

}  // namespace simprof::service
