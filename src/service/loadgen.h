// Closed-loop load generator for the service daemon: `clients` connections,
// each keeping up to `inflight_per_client` requests pipelined on its socket,
// cycling through a workload mix. Produces the saturation-curve raw
// material: completions, typed rejections, and client-observed latency
// quantiles (send → final response, including queueing).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.h"

namespace simprof::service {

struct LoadgenConfig {
  std::string socket_path;
  std::size_t clients = 4;
  std::size_t requests_per_client = 8;
  /// Pipelining depth per connection — offered load is roughly
  /// clients × inflight. Set above the server's client_max_inflight to
  /// exercise typed kOverQuota rejections.
  std::size_t inflight_per_client = 1;
  /// Round-robin workload mix (must be non-empty valid names).
  std::vector<std::string> workloads{"grep_sp"};
  std::string input = "Google";
  double scale = 0.05;
  std::uint64_t seed = 42;
  bool analyze = true;
  std::uint64_t sample_n = 8;
  bool stream = false;
  std::uint64_t stream_retain = 0;
  /// features::FeatureMode ordinal for phase formation (protocol v2).
  std::uint8_t features = 0;
  /// 0 = Neyman, 1 = two-phase stratified estimation (protocol v2).
  std::uint8_t estimator = 0;
  /// Vary the seed per request (seed + request index) so the sweep exercises
  /// distinct oracle passes; false keeps every request on one cache key,
  /// the single-flight stress mode.
  bool vary_seed = false;
};

struct LoadgenReport {
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;        ///< typed kOverQuota/kQueueFull/kShuttingDown
  std::uint64_t errors = 0;          ///< transport failures + error statuses
  std::uint64_t stream_updates = 0;
  double elapsed_sec = 0.0;
  double qps = 0.0;                  ///< completed / elapsed
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  std::vector<double> latencies_ms;  ///< per-completed-request, sorted
};

LoadgenReport run_loadgen(const LoadgenConfig& cfg);

}  // namespace simprof::service
