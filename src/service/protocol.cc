#include "service/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "support/assert.h"

namespace simprof::service {

std::string_view to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kOverQuota: return "over_quota";
    case Status::kQueueFull: return "queue_full";
    case Status::kShuttingDown: return "shutting_down";
    case Status::kBadRequest: return "bad_request";
    case Status::kUnknownWorkload: return "unknown_workload";
    case Status::kInternalError: return "internal_error";
  }
  return "unknown";
}

bool is_rejection(Status s) {
  return s == Status::kOverQuota || s == Status::kQueueFull ||
         s == Status::kShuttingDown;
}

void ProfileRequest::write(BinaryWriter& w) const {
  w.str(workload);
  w.str(input);
  w.f64(scale);
  w.u64(seed);
  w.u8(analyze);
  w.u64(sample_n);
  w.u8(want_profile_bytes);
  w.u8(stream);
  w.u64(stream_retain);
  w.u8(features);
  w.u8(estimator);
}

ProfileRequest ProfileRequest::read(BinaryReader& r) {
  ProfileRequest q;
  q.workload = r.str();
  q.input = r.str();
  q.scale = r.f64();
  q.seed = r.u64();
  q.analyze = r.u8();
  q.sample_n = r.u64();
  q.want_profile_bytes = r.u8();
  q.stream = r.u8();
  q.stream_retain = r.u64();
  q.features = r.u8();
  q.estimator = r.u8();
  return q;
}

void ProfileResult::write(BinaryWriter& w) const {
  w.u8(from_cache);
  w.u64(units);
  w.u64(methods);
  w.f64(oracle_cpi);
  w.u64(phase_count);
  w.f64(estimated_cpi);
  w.f64(standard_error);
  w.vec_u64(selected_units);
  w.vec_f64(weights);
  w.str(profile_bytes);
  w.u8(features);
  w.u8(estimator);
}

ProfileResult ProfileResult::read(BinaryReader& r) {
  ProfileResult v;
  v.from_cache = r.u8();
  v.units = r.u64();
  v.methods = r.u64();
  v.oracle_cpi = r.f64();
  v.phase_count = r.u64();
  v.estimated_cpi = r.f64();
  v.standard_error = r.f64();
  v.selected_units = r.vec_u64();
  v.weights = r.vec_f64();
  v.profile_bytes = r.str();
  v.features = r.u8();
  v.estimator = r.u8();
  return v;
}

void StreamUpdate::write(BinaryWriter& w) const {
  w.u64(recluster);
  w.u64(units_ingested);
  w.u64(units_retained);
  w.u64(phase_count);
  w.f64(estimated_cpi);
  w.vec_u64(selected_units);
}

StreamUpdate StreamUpdate::read(BinaryReader& r) {
  StreamUpdate v;
  v.recluster = r.u64();
  v.units_ingested = r.u64();
  v.units_retained = r.u64();
  v.phase_count = r.u64();
  v.estimated_cpi = r.f64();
  v.selected_units = r.vec_u64();
  return v;
}

void SensitivityRequest::write(BinaryWriter& w) const {
  w.str(workload);
  w.str(input);
  w.f64(scale);
  w.u64(seed);
  w.vec(references, [](BinaryWriter& w2, const std::string& s) { w2.str(s); });
  w.f64(threshold);
}

SensitivityRequest SensitivityRequest::read(BinaryReader& r) {
  SensitivityRequest q;
  q.workload = r.str();
  q.input = r.str();
  q.scale = r.f64();
  q.seed = r.u64();
  q.references =
      r.vec<std::string>([](BinaryReader& r2) { return r2.str(); });
  q.threshold = r.f64();
  return q;
}

void SensitivityResult::write(BinaryWriter& w) const {
  w.u64(phases);
  w.u64(sensitive);
}

SensitivityResult SensitivityResult::read(BinaryReader& r) {
  SensitivityResult v;
  v.phases = r.u64();
  v.sensitive = r.u64();
  return v;
}

void MeasureRequest::write(BinaryWriter& w) const {
  w.str(workload);
  w.str(input);
  w.f64(scale);
  w.u64(seed);
  w.vec_u64(units);
}

MeasureRequest MeasureRequest::read(BinaryReader& r) {
  MeasureRequest q;
  q.workload = r.str();
  q.input = r.str();
  q.scale = r.f64();
  q.seed = r.u64();
  q.units = r.vec_u64();
  return q;
}

void MeasureResultMsg::write(BinaryWriter& w) const {
  w.u8(used_checkpoints);
  w.u8(fallback);
  w.u64(checkpoints_restored);
  w.vec_u64(unit_ids);
  w.vec_f64(cpis);
}

MeasureResultMsg MeasureResultMsg::read(BinaryReader& r) {
  MeasureResultMsg v;
  v.used_checkpoints = r.u8();
  v.fallback = r.u8();
  v.checkpoints_restored = r.u64();
  v.unit_ids = r.vec_u64();
  v.cpis = r.vec_f64();
  return v;
}

void StatsResult::write(BinaryWriter& w) const {
  w.u64(accepted);
  w.u64(rejected);
  w.u64(completed);
  w.u64(queue_depth);
  w.u64(inflight);
  w.u64(admission_level);
}

StatsResult StatsResult::read(BinaryReader& r) {
  StatsResult v;
  v.accepted = r.u64();
  v.rejected = r.u64();
  v.completed = r.u64();
  v.queue_depth = r.u64();
  v.inflight = r.u64();
  v.admission_level = r.u64();
  return v;
}

std::string pack_message(MsgKind kind, std::uint64_t request_id,
                         const std::function<void(BinaryWriter&)>& body) {
  std::ostringstream os;
  BinaryWriter w(os);
  w.u32(kProtocolMagic);
  w.u32(kProtocolVersion);
  w.u32(static_cast<std::uint32_t>(kind));
  w.u64(request_id);
  if (body) body(w);
  return os.str();
}

std::string pack_response(std::uint64_t request_id, Status status,
                          const std::string& message,
                          const std::function<void(BinaryWriter&)>& result) {
  return pack_message(MsgKind::kResponse, request_id, [&](BinaryWriter& w) {
    w.u32(static_cast<std::uint32_t>(status));
    w.str(message);
    if (status == Status::kOk && result) result(w);
  });
}

MessageHeader read_header(BinaryReader& r) {
  if (r.u32() != kProtocolMagic) {
    throw SerializeError("service frame: bad magic");
  }
  const std::uint32_t version = r.u32();
  if (version != kProtocolVersion) {
    throw SerializeError("service frame: unsupported protocol version " +
                         std::to_string(version));
  }
  MessageHeader h;
  h.kind = static_cast<MsgKind>(r.u32());
  h.request_id = r.u64();
  return h;
}

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  SIMPROF_EXPECTS(path.size() < sizeof(addr.sun_path),
                  "unix socket path too long");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

int listen_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  SIMPROF_EXPECTS(fd >= 0, "socket() failed");
  ::unlink(path.c_str());
  sockaddr_un addr = make_addr(path);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw ContractViolation("bind(" + path + ") failed: " +
                            std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    throw ContractViolation("listen(" + path + ") failed: " +
                            std::strerror(err));
  }
  return fd;
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  SIMPROF_EXPECTS(fd >= 0, "socket() failed");
  sockaddr_un addr = make_addr(path);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw ContractViolation("connect(" + path + ") failed: " +
                            std::strerror(err));
  }
  return fd;
}

namespace {

bool send_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

/// 1 = got all bytes, 0 = clean EOF before the first byte, -1 = truncated.
int recv_all(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return got == 0 ? 0 : -1;
    }
    if (r == 0) return got == 0 ? 0 : -1;
    got += static_cast<std::size_t>(r);
  }
  return 1;
}

}  // namespace

bool write_frame(int fd, const std::string& payload) {
  std::uint64_t len = payload.size();
  if (!send_all(fd, &len, sizeof len)) return false;
  return send_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::string& payload) {
  std::uint64_t len = 0;
  const int r = recv_all(fd, &len, sizeof len);
  if (r == 0) return false;
  if (r < 0) throw SerializeError("service frame: truncated length prefix");
  if (len > kMaxFrameBytes) {
    throw SerializeError("service frame: oversized frame (" +
                         std::to_string(len) + " bytes)");
  }
  payload.resize(static_cast<std::size_t>(len));
  if (len > 0 && recv_all(fd, payload.data(), payload.size()) != 1) {
    throw SerializeError("service frame: truncated payload");
  }
  return true;
}

}  // namespace simprof::service
