#include "service/admission.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace simprof::service {

ThroughputProbe::ThroughputProbe(AdmissionConfig cfg) : cfg_(cfg) {
  SIMPROF_EXPECTS(cfg_.min_concurrency >= 1, "min_concurrency must be >= 1");
  SIMPROF_EXPECTS(cfg_.max_concurrency >= cfg_.min_concurrency,
                  "max_concurrency below min_concurrency");
  stable_ = std::clamp(cfg_.initial_concurrency, cfg_.min_concurrency,
                       cfg_.max_concurrency);
  level_.store(stable_, std::memory_order_relaxed);
}

std::size_t ThroughputProbe::step_from(std::size_t level) const {
  const auto step = static_cast<std::size_t>(
      std::lround(static_cast<double>(level) * cfg_.step_multiple));
  return std::max<std::size_t>(step, 1);
}

void ThroughputProbe::set_level(std::size_t level) {
  level_.store(std::clamp(level, cfg_.min_concurrency, cfg_.max_concurrency),
               std::memory_order_relaxed);
}

void ThroughputProbe::on_probe(double throughput, bool tickets_exhausted) {
  ++probes_;
  if (!std::isfinite(throughput) || throughput < 0.0) throughput = 0.0;

  switch (state_) {
    case State::kStable: {
      // Track the baseline while holding steady so drift in the workload
      // doesn't make future probe comparisons fire on stale numbers.
      if (!has_baseline_) {
        stable_throughput_ = throughput;
        has_baseline_ = true;
      } else {
        stable_throughput_ = cfg_.baseline_smoothing * throughput +
                             (1.0 - cfg_.baseline_smoothing) * stable_throughput_;
      }
      if (tickets_exhausted && stable_ < cfg_.max_concurrency) {
        set_level(stable_ + step_from(stable_));
        state_ = State::kProbingUp;
      } else if (stable_ > cfg_.min_concurrency &&
                 (!tickets_exhausted || stable_ == cfg_.max_concurrency)) {
        // Down-probe when there is idle capacity — or when pinned at the
        // ceiling, where it is the only exploration left (a saturated
        // daemon at max would otherwise never learn the knee is lower).
        set_level(stable_ - std::min(step_from(stable_), stable_ - 1));
        state_ = State::kProbingDown;
      }
      break;
    }
    case State::kProbingUp: {
      if (throughput > stable_throughput_ * (1.0 + cfg_.sensitivity)) {
        stable_ = concurrency();
        stable_throughput_ = throughput;
        state_ = State::kStable;
      } else if (stable_ > cfg_.min_concurrency) {
        // No gain past the knee. Chain straight into a down-probe: under
        // sustained saturation tickets are always exhausted, so the stable
        // branch alone would never test below — this chain is what walks an
        // over-provisioned level back down to the knee.
        set_level(stable_ - std::min(step_from(stable_), stable_ - 1));
        state_ = State::kProbingDown;
      } else {
        set_level(stable_);
        state_ = State::kStable;
      }
      break;
    }
    case State::kProbingDown: {
      if (throughput >= stable_throughput_ * (1.0 - cfg_.sensitivity)) {
        // Same throughput at less concurrency: the dropped tickets were
        // waste (we were past the knee). Keep the lower level.
        stable_ = concurrency();
        stable_throughput_ = throughput;
      } else {
        set_level(stable_);  // the tickets were load-bearing — revert
      }
      state_ = State::kStable;
      break;
    }
  }
}

}  // namespace simprof::service
