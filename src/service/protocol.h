// Wire protocol of the SimProf service daemon (`simprof serve`).
//
// Transport: a Unix-domain stream socket carrying length-prefixed frames —
// a u64 little-endian payload length followed by that many payload bytes.
// Each payload is a message encoded with support::serialize primitives:
//
//   u32 magic 'SPRC' | u32 version | u32 kind | u64 request_id | body…
//
// Requests flow client → server; the server answers every request with
// exactly one kResponse frame echoing the request_id (status + message +
// kind-specific result body on kOk). Streaming profile requests may emit
// any number of kStreamUpdate frames for the same request_id *before* the
// final kResponse — interim simulation-point selections from the
// StreamingPhaseFormer's update hook, so a client can start consuming
// selections while ingestion is still running.
//
// Robustness: frames are bounded (kMaxFrameBytes) and decoded with the
// bounded BinaryReader, so a malformed or hostile peer can make a read
// throw SerializeError but can never drive an unbounded allocation. The
// server answers an undecodable-but-framed request with a typed
// kBadRequest response instead of hanging or dying.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/serialize.h"

namespace simprof::service {

inline constexpr std::uint32_t kProtocolMagic = 0x43525053;  // "SPRC"
/// v2: ProfileRequest carries the feature mode + estimator selectors (and
/// ProfileResult echoes them), so a client can pin the analysis
/// configuration per request.
inline constexpr std::uint32_t kProtocolVersion = 2;
/// Frame payload cap — a profile blob for the largest lab run is well under
/// this; anything bigger is a corrupt or hostile length prefix.
inline constexpr std::uint64_t kMaxFrameBytes = 256ull << 20;

enum class MsgKind : std::uint32_t {
  kHello = 1,
  kHelloAck = 2,
  kProfileRequest = 3,
  kSensitivityRequest = 4,
  kMeasureRequest = 5,
  kStatsRequest = 6,
  kStreamUpdate = 7,
  kResponse = 8,
};

/// Typed outcome of a request. Everything except kOk is a *rejection or
/// failure the client can branch on* — over-quota callers get kOverQuota
/// back immediately, they are never left hanging.
enum class Status : std::uint32_t {
  kOk = 0,
  kOverQuota = 1,      ///< client exceeded its max in-flight quota
  kQueueFull = 2,      ///< server request queue at capacity
  kShuttingDown = 3,   ///< server is draining; retry elsewhere/later
  kBadRequest = 4,     ///< undecodable or semantically invalid request
  kUnknownWorkload = 5,
  kInternalError = 6,
};

std::string_view to_string(Status s);
bool is_rejection(Status s);

struct MessageHeader {
  MsgKind kind = MsgKind::kHello;
  std::uint64_t request_id = 0;
};

/// Profile request: run (workload, input, scale, seed) through the lab
/// (cached + single-flighted), optionally form phases and select `sample_n`
/// simulation points. `stream` routes analysis through a per-request
/// StreamingPhaseFormer whose `stream_retain` bounds retained units (the
/// per-client memory quota; 0 = retain all) and whose recluster hook sends
/// kStreamUpdate frames. `want_profile_bytes` returns the exact
/// ThreadProfile::save blob for bit-identity checks against the one-shot
/// CLI.
struct ProfileRequest {
  std::string workload;
  std::string input = "Google";
  double scale = 0.05;
  std::uint64_t seed = 42;
  std::uint8_t analyze = 1;
  std::uint64_t sample_n = 8;
  std::uint8_t want_profile_bytes = 0;
  std::uint8_t stream = 0;
  std::uint64_t stream_retain = 0;
  /// features::FeatureMode for phase formation (v2). The oracle pass and
  /// its cache key are mode-independent — distinct modes over the same
  /// workload config still dedup into one lab run; only the analysis
  /// differs.
  std::uint8_t features = 0;
  /// 0 = Neyman (simprof_sample), 1 = two-phase (two_phase_sample) (v2).
  std::uint8_t estimator = 0;

  void write(BinaryWriter& w) const;
  static ProfileRequest read(BinaryReader& r);
};

struct ProfileResult {
  std::uint8_t from_cache = 0;
  std::uint64_t units = 0;
  std::uint64_t methods = 0;
  double oracle_cpi = 0.0;
  std::uint64_t phase_count = 0;  ///< 0 when analyze was off
  double estimated_cpi = 0.0;
  double standard_error = 0.0;
  std::vector<std::uint64_t> selected_units;
  std::vector<double> weights;
  std::string profile_bytes;  ///< ThreadProfile::save blob (when requested)
  std::uint8_t features = 0;   ///< echo of the request's feature mode (v2)
  std::uint8_t estimator = 0;  ///< echo of the request's estimator (v2)

  void write(BinaryWriter& w) const;
  static ProfileResult read(BinaryReader& r);
};

/// Interim selection emitted after each recluster of a streaming profile
/// request, before the final response.
struct StreamUpdate {
  std::uint64_t recluster = 0;
  std::uint64_t units_ingested = 0;
  std::uint64_t units_retained = 0;
  std::uint64_t phase_count = 0;
  double estimated_cpi = 0.0;
  std::vector<std::uint64_t> selected_units;

  void write(BinaryWriter& w) const;
  static StreamUpdate read(BinaryReader& r);
};

/// Input-sensitivity request: train on `workload`, classify each reference
/// workload's profile onto the trained phases (Algorithm 1).
struct SensitivityRequest {
  std::string workload;
  std::string input = "Google";
  double scale = 0.05;
  std::uint64_t seed = 42;
  std::vector<std::string> references;
  double threshold = 0.10;

  void write(BinaryWriter& w) const;
  static SensitivityRequest read(BinaryReader& r);
};

struct SensitivityResult {
  std::uint64_t phases = 0;
  std::uint64_t sensitive = 0;

  void write(BinaryWriter& w) const;
  static SensitivityResult read(BinaryReader& r);
};

/// Measure a selected subset of sampling units (checkpoint fast path).
struct MeasureRequest {
  std::string workload;
  std::string input = "Google";
  double scale = 0.05;
  std::uint64_t seed = 42;
  std::vector<std::uint64_t> units;

  void write(BinaryWriter& w) const;
  static MeasureRequest read(BinaryReader& r);
};

struct MeasureResultMsg {
  std::uint8_t used_checkpoints = 0;
  std::uint8_t fallback = 0;
  std::uint64_t checkpoints_restored = 0;
  std::vector<std::uint64_t> unit_ids;
  std::vector<double> cpis;

  void write(BinaryWriter& w) const;
  static MeasureResultMsg read(BinaryReader& r);
};

/// Live server counters (kStatsRequest is answered inline, never queued).
struct StatsResult {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t inflight = 0;
  std::uint64_t admission_level = 0;

  void write(BinaryWriter& w) const;
  static StatsResult read(BinaryReader& r);
};

/// Serialize one message: header + body written by `body` (may be null for
/// body-less kinds like kHello/kStatsRequest).
std::string pack_message(MsgKind kind, std::uint64_t request_id,
                         const std::function<void(BinaryWriter&)>& body = {});

/// Response payload helper: header + status + message + (on kOk) result.
std::string pack_response(std::uint64_t request_id, Status status,
                          const std::string& message,
                          const std::function<void(BinaryWriter&)>& result = {});

/// Parse and validate the header; the reader is left positioned at the
/// body. Throws SerializeError on bad magic/version.
MessageHeader read_header(BinaryReader& r);

// ---- socket plumbing (all fds are plain blocking stream sockets) ----

/// Bind + listen on `path` (an existing socket file is unlinked first).
/// Returns the listening fd; throws ContractViolation on failure.
int listen_unix(const std::string& path);

/// Connect to the daemon at `path`; throws ContractViolation on failure.
int connect_unix(const std::string& path);

/// Write one length-prefixed frame (EINTR-safe, SIGPIPE-suppressed).
/// Returns false if the peer is gone.
bool write_frame(int fd, const std::string& payload);

/// Read one length-prefixed frame into `payload`. Returns false on clean
/// EOF before a length prefix; throws SerializeError on a truncated or
/// oversized frame.
bool read_frame(int fd, std::string& payload);

}  // namespace simprof::service
