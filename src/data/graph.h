// Compressed-sparse-row graph container for the graph-analytics workloads
// (Connected Components, PageRank) and the Kronecker synthesizer outputs.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace simprof::data {

using VertexId = std::uint32_t;

struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  Graph() = default;

  /// Build CSR from an edge list. Self-loops are kept; duplicate edges are
  /// removed. If `symmetrize` is set every edge is also inserted reversed
  /// (undirected view, needed by Connected Components).
  static Graph from_edges(VertexId num_vertices, std::vector<Edge> edges,
                          bool symmetrize);

  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  std::uint64_t num_edges() const { return neighbors_.size(); }

  std::span<const VertexId> neighbors(VertexId v) const;
  std::uint32_t out_degree(VertexId v) const;

  /// Modeled byte footprint (CSR arrays) for sizing simulated regions.
  std::uint64_t footprint_bytes() const {
    return offsets_.size() * sizeof(std::uint64_t) +
           neighbors_.size() * sizeof(VertexId);
  }

  std::span<const std::uint64_t> offsets() const { return offsets_; }
  std::span<const VertexId> edges_flat() const { return neighbors_; }

 private:
  std::vector<std::uint64_t> offsets_;  // num_vertices + 1
  std::vector<VertexId> neighbors_;
};

/// Ground-truth connected components by union-find (for tests and the CC
/// workloads' verification). Returns the component label of each vertex,
/// labels being the smallest vertex id in the component.
std::vector<VertexId> connected_components_ground_truth(const Graph& g);

}  // namespace simprof::data
