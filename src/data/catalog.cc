#include "data/catalog.h"

#include "support/assert.h"

namespace simprof::data {

std::vector<CatalogEntry> snap_catalog(std::uint32_t scale_override) {
  // Initiators: a controls hub concentration (web graphs high), b/c control
  // cross-links (social networks high), d spreads mass to the tail; `noise`
  // moves the degree distribution toward regular (road networks nearly
  // uniform, edge_factor ≈ 2 like real road graphs). Seeds differ so no two
  // inputs share an edge stream.
  // Edge factors are kept in a moderate band (8–18): the paper normalizes
  // its synthesized inputs to comparable volumes so that the sensitivity
  // study measures topology, not raw data size.
  std::vector<CatalogEntry> cat = {
      {"Google", "Web graph", true,
       {0.57, 0.19, 0.19, 0.05, 15, 14.0, 0.02, 101}},
      {"Facebook", "Social Network", false,
       {0.45, 0.25, 0.25, 0.05, 14, 18.0, 0.05, 102}},
      {"Flickr", "Online communities", false,
       {0.52, 0.22, 0.20, 0.06, 14, 16.0, 0.04, 103}},
      {"Wikipedia", "Online encyclopedia", false,
       {0.60, 0.18, 0.17, 0.05, 15, 12.0, 0.03, 104}},
      {"DBLP", "Computer science bibliography", false,
       {0.42, 0.24, 0.24, 0.10, 14, 10.0, 0.08, 105}},
      {"Stanford", "Web graph", false,
       {0.56, 0.20, 0.19, 0.05, 14, 14.0, 0.02, 106}},
      {"Amazon", "Product co-purchasing networks", false,
       {0.40, 0.23, 0.23, 0.14, 14, 9.0, 0.10, 107}},
      {"Road", "Road Networks", false,
       {0.30, 0.25, 0.25, 0.20, 15, 8.0, 0.35, 108}},
  };
  if (scale_override != 0) {
    for (auto& e : cat) e.kron.scale = scale_override;
  }
  return cat;
}

CatalogEntry catalog_entry(std::string_view name,
                           std::uint32_t scale_override) {
  for (auto& e : snap_catalog(scale_override)) {
    if (e.name == name) return e;
  }
  SIMPROF_EXPECTS(false, "unknown catalog input: " + std::string(name));
  return {};
}

}  // namespace simprof::data
