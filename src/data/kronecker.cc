#include "data/kronecker.h"

#include <cmath>
#include <future>
#include <map>
#include <mutex>
#include <tuple>

#include "obs/metrics.h"
#include "support/assert.h"

namespace simprof::data {

Graph kronecker_graph(const KroneckerConfig& cfg, bool symmetrize) {
  SIMPROF_EXPECTS(cfg.scale >= 1 && cfg.scale <= 30, "scale out of range");
  SIMPROF_EXPECTS(cfg.a > 0 && cfg.b >= 0 && cfg.c >= 0 && cfg.d >= 0,
                  "initiator probabilities must be non-negative");
  SIMPROF_EXPECTS(cfg.noise >= 0.0 && cfg.noise <= 0.5, "noise in [0, 0.5]");

  const double sum = cfg.a + cfg.b + cfg.c + cfg.d;
  const double pa = cfg.a / sum, pb = cfg.b / sum, pc = cfg.c / sum;

  const VertexId n = VertexId{1} << cfg.scale;
  const auto num_edges = static_cast<std::uint64_t>(
      cfg.edge_factor * static_cast<double>(n));

  Rng rng(cfg.seed);
  std::vector<Edge> edges;
  edges.reserve(num_edges);

  for (std::uint64_t e = 0; e < num_edges; ++e) {
    VertexId src = 0, dst = 0;
    for (std::uint32_t level = 0; level < cfg.scale; ++level) {
      // Blend the initiator toward uniform by `noise` at every level.
      const double qa = pa * (1.0 - 2.0 * cfg.noise) + 0.25 * 2.0 * cfg.noise;
      const double qb = pb * (1.0 - 2.0 * cfg.noise) + 0.25 * 2.0 * cfg.noise;
      const double qc = pc * (1.0 - 2.0 * cfg.noise) + 0.25 * 2.0 * cfg.noise;
      const double u = rng.next_double();
      std::uint32_t quad;
      if (u < qa) quad = 0;
      else if (u < qa + qb) quad = 1;
      else if (u < qa + qb + qc) quad = 2;
      else quad = 3;
      src = (src << 1) | (quad >> 1);
      dst = (dst << 1) | (quad & 1);
    }
    edges.push_back(Edge{src, dst});
  }
  return Graph::from_edges(n, std::move(edges), symmetrize);
}

std::shared_ptr<const Graph> kronecker_graph_shared(const KroneckerConfig& cfg,
                                                    bool symmetrize) {
  using Key = std::tuple<double, double, double, double, std::uint32_t, double,
                         double, std::uint64_t, bool>;
  using Future = std::shared_future<std::shared_ptr<const Graph>>;
  static std::mutex mu;
  static std::map<Key, Future> cache;
  static obs::Counter& shared = obs::metrics().counter("data.graph_shared");
  static obs::Counter& synths = obs::metrics().counter("data.graph_synth");

  const Key key{cfg.a,     cfg.b,    cfg.c,        cfg.d,    cfg.scale,
                cfg.edge_factor, cfg.noise, cfg.seed, symmetrize};
  std::promise<std::shared_ptr<const Graph>> promise;
  Future future;
  bool runner = false;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (auto it = cache.find(key); it != cache.end()) {
      shared.increment();
      future = it->second;
    } else {
      runner = true;
      future = cache.emplace(key, promise.get_future().share()).first->second;
    }
  }
  if (runner) {
    synths.increment();
    try {
      promise.set_value(
          std::make_shared<const Graph>(kronecker_graph(cfg, symmetrize)));
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mu);
      cache.erase(key);
    }
  }
  return future.get();
}

}  // namespace simprof::data
