// Stochastic Kronecker graph generation (Leskovec et al., JMLR 2010) — the
// paper synthesizes Kronecker graphs matching the connectivity of SNAP seed
// graphs (Table II / Section IV-E). Edges are sampled R-MAT style: for each
// edge, descend `scale` levels choosing a quadrant of the adjacency matrix
// with probabilities from the 2×2 initiator.
#pragma once

#include <cstdint>
#include <memory>

#include "data/graph.h"
#include "support/rng.h"

namespace simprof::data {

struct KroneckerConfig {
  /// 2×2 initiator probabilities (normalized internally).
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
  std::uint32_t scale = 14;      ///< 2^scale vertices
  double edge_factor = 16.0;     ///< edges ≈ edge_factor · vertices
  /// Per-level probability smoothing toward uniform (0 = pure Kronecker,
  /// 0.5 ≈ Erdős–Rényi). Differentiates e.g. road networks from web graphs.
  double noise = 0.0;
  std::uint64_t seed = 11;
};

/// Generate the edge list and build a CSR graph. Duplicate edges collapse
/// inside Graph::from_edges, so the realized edge count is slightly below
/// edge_factor·V for skewed initiators — the same behaviour as SNAP's
/// krongen.
Graph kronecker_graph(const KroneckerConfig& cfg, bool symmetrize);

/// Memoized generation (same contract as TextCorpus::synthesize_shared):
/// graphs are pure functions of (config, symmetrize) and immutable, so
/// repeated runs of one configuration — the checkpointed measure fast path,
/// batch mixes over one input — share a single instance. Single-flighted;
/// cached for the process lifetime.
std::shared_ptr<const Graph> kronecker_graph_shared(const KroneckerConfig& cfg,
                                                    bool symmetrize);

}  // namespace simprof::data
