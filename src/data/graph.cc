#include "data/graph.h"

#include <algorithm>
#include <numeric>

#include "support/assert.h"

namespace simprof::data {

Graph Graph::from_edges(VertexId num_vertices, std::vector<Edge> edges,
                        bool symmetrize) {
  if (symmetrize) {
    const std::size_t n = edges.size();
    edges.reserve(n * 2);
    for (std::size_t i = 0; i < n; ++i) {
      if (edges[i].src != edges[i].dst) {
        edges.push_back(Edge{edges[i].dst, edges[i].src});
      }
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  g.neighbors_.reserve(edges.size());
  for (const Edge& e : edges) {
    SIMPROF_EXPECTS(e.src < num_vertices && e.dst < num_vertices,
                    "edge endpoint out of range");
    ++g.offsets_[e.src + 1];
    g.neighbors_.push_back(e.dst);
  }
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());
  SIMPROF_ENSURES(g.offsets_.back() == g.neighbors_.size(),
                  "CSR construction mismatch");
  return g;
}

std::span<const VertexId> Graph::neighbors(VertexId v) const {
  SIMPROF_EXPECTS(v < num_vertices(), "vertex out of range");
  return {neighbors_.data() + offsets_[v],
          static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
}

std::uint32_t Graph::out_degree(VertexId v) const {
  SIMPROF_EXPECTS(v < num_vertices(), "vertex out of range");
  return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), VertexId{0});
  }
  VertexId find(VertexId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }
  void unite(VertexId a, VertexId b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);  // keep the smaller id as root
    parent_[b] = a;
  }

 private:
  std::vector<VertexId> parent_;
};

}  // namespace

std::vector<VertexId> connected_components_ground_truth(const Graph& g) {
  UnionFind uf(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) uf.unite(v, u);
  }
  std::vector<VertexId> labels(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) labels[v] = uf.find(v);
  return labels;
}

}  // namespace simprof::data
