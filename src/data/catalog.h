// The Table II input catalog: Kronecker stand-ins for the SNAP seed graphs.
//
// The paper downloads eight SNAP graphs, then synthesizes Kronecker graphs
// with matching connectivity. We cannot ship the SNAP data, so each catalog
// entry is a Kronecker parameterization whose initiator/edge-factor choices
// follow the published character of the seed graph (heavy-tailed web graphs,
// community-rich social networks, near-regular road networks, …). "Google"
// is the training input, the remaining seven are reference inputs — exactly
// the paper's split.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "data/kronecker.h"

namespace simprof::data {

struct CatalogEntry {
  std::string name;         ///< Table II input name
  std::string input_type;   ///< Table II "Input Type" column
  bool training = false;    ///< Google is the training input
  KroneckerConfig kron;     ///< synthesis parameters
};

/// All eight Table II inputs, in paper order. `scale_override`, when
/// non-zero, replaces each entry's vertex scale (tests use small graphs,
/// benches use the full scaled-down sizes).
std::vector<CatalogEntry> snap_catalog(std::uint32_t scale_override = 0);

/// Lookup by name (case-sensitive, e.g. "Google"). Aborts on unknown names.
CatalogEntry catalog_entry(std::string_view name,
                           std::uint32_t scale_override = 0);

}  // namespace simprof::data
