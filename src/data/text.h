// Synthetic text corpora — the BigDataBench data-synthesizer stand-in for
// the micro-benchmarks and NaiveBayes (Table I: "10G text", scaled here).
//
// Words are dense integer ids drawn from a Zipfian vocabulary; documents are
// variable-length word sequences. Byte sizes are modeled (word length is a
// deterministic function of the id) so the engines can size IO buffers and
// memory regions realistically without storing strings.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "support/rng.h"

namespace simprof::data {

using WordId = std::uint32_t;

struct TextConfig {
  std::uint64_t num_words = 1 << 22;   ///< total words in the corpus
  std::uint32_t vocabulary = 1 << 17;  ///< distinct words
  double zipf_skew = 1.05;             ///< word-frequency skew
  std::uint32_t mean_doc_words = 200;  ///< documents ≈ lines/records
  std::uint64_t seed = 7;
  /// Class label count for NaiveBayes corpora (labels shift the word
  /// distribution per class); 0 disables labels.
  std::uint32_t num_classes = 0;
};

class TextCorpus {
 public:
  /// Synthesize per config (deterministic in config.seed).
  static TextCorpus synthesize(const TextConfig& cfg);

  /// Memoized synthesis: a corpus is a pure function of its config and
  /// immutable once built, so repeated runs of the same configuration (the
  /// checkpointed measure fast path, run_batch mixes sharing an input)
  /// share one instance instead of re-synthesizing — at full scale the
  /// synthesis is seconds of work per run. Concurrent first requests for
  /// one config are single-flighted; the cache lives for the process.
  static std::shared_ptr<const TextCorpus> synthesize_shared(
      const TextConfig& cfg);

  std::span<const WordId> words() const { return words_; }
  /// doc_offsets()[i]..doc_offsets()[i+1] delimit document i in words().
  std::span<const std::uint64_t> doc_offsets() const { return doc_offsets_; }
  std::size_t num_docs() const { return doc_offsets_.size() - 1; }
  std::span<const WordId> doc(std::size_t i) const;

  /// Class label of document i (0 when the corpus is unlabeled).
  std::uint32_t label(std::size_t i) const;

  std::uint32_t vocabulary() const { return cfg_.vocabulary; }
  const TextConfig& config() const { return cfg_; }

  /// Modeled on-disk byte length of a word (id-deterministic, 3..12 chars
  /// plus separator).
  static std::uint32_t word_bytes(WordId w);

  /// Modeled total byte size of the corpus.
  std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  TextConfig cfg_;
  std::vector<WordId> words_;
  std::vector<std::uint64_t> doc_offsets_;
  std::vector<std::uint32_t> labels_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace simprof::data
