#include "data/text.h"

#include <algorithm>
#include <future>
#include <map>
#include <mutex>
#include <tuple>

#include "obs/metrics.h"
#include "support/assert.h"
#include "support/zipf.h"

namespace simprof::data {

TextCorpus TextCorpus::synthesize(const TextConfig& cfg) {
  SIMPROF_EXPECTS(cfg.num_words > 0, "empty corpus requested");
  SIMPROF_EXPECTS(cfg.vocabulary > 0, "empty vocabulary");
  SIMPROF_EXPECTS(cfg.mean_doc_words > 0, "documents must be non-empty");

  TextCorpus out;
  out.cfg_ = cfg;
  out.words_.reserve(cfg.num_words);
  out.doc_offsets_.push_back(0);

  Rng rng(cfg.seed);
  ZipfSampler zipf(cfg.vocabulary, cfg.zipf_skew);

  std::uint64_t produced = 0;
  while (produced < cfg.num_words) {
    // Document length ~ uniform in [mean/2, 3·mean/2].
    const std::uint64_t lo = cfg.mean_doc_words / 2 + 1;
    const std::uint64_t len = std::min<std::uint64_t>(
        cfg.num_words - produced, lo + rng.next_below(cfg.mean_doc_words));
    const std::uint32_t label =
        cfg.num_classes > 0
            ? static_cast<std::uint32_t>(rng.next_below(cfg.num_classes))
            : 0;
    for (std::uint64_t i = 0; i < len; ++i) {
      auto w = static_cast<WordId>(zipf.sample(rng));
      if (cfg.num_classes > 0) {
        // Shift one third of the draws into a class-specific vocabulary band
        // so classes are separable (NaiveBayes has signal to learn).
        if (rng.next_bool(1.0 / 3.0)) {
          const std::uint32_t band = cfg.vocabulary / cfg.num_classes;
          w = label * band + static_cast<WordId>(w % band);
        }
      }
      out.words_.push_back(w);
      out.total_bytes_ += word_bytes(w);
    }
    out.labels_.push_back(label);
    produced += len;
    out.doc_offsets_.push_back(produced);
  }
  SIMPROF_ENSURES(out.words_.size() == cfg.num_words, "word count mismatch");
  return out;
}

std::shared_ptr<const TextCorpus> TextCorpus::synthesize_shared(
    const TextConfig& cfg) {
  using Key = std::tuple<std::uint64_t, std::uint32_t, double, std::uint32_t,
                         std::uint64_t, std::uint32_t>;
  using Future = std::shared_future<std::shared_ptr<const TextCorpus>>;
  static std::mutex mu;
  static std::map<Key, Future> cache;
  static obs::Counter& shared = obs::metrics().counter("data.corpus_shared");
  static obs::Counter& synths = obs::metrics().counter("data.corpus_synth");

  const Key key{cfg.num_words, cfg.vocabulary, cfg.zipf_skew,
                cfg.mean_doc_words, cfg.seed, cfg.num_classes};
  std::promise<std::shared_ptr<const TextCorpus>> promise;
  Future future;
  bool runner = false;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (auto it = cache.find(key); it != cache.end()) {
      shared.increment();
      future = it->second;
    } else {
      runner = true;
      future = cache.emplace(key, promise.get_future().share())
                   .first->second;
    }
  }
  if (runner) {
    // Synthesize outside the lock so concurrent requests for *different*
    // configs proceed in parallel; waiters for this config block on the
    // future. A failed synthesis propagates to every waiter and is removed
    // so a later request can retry.
    synths.increment();
    try {
      promise.set_value(std::make_shared<const TextCorpus>(synthesize(cfg)));
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mu);
      cache.erase(key);
    }
  }
  return future.get();
}

std::span<const WordId> TextCorpus::doc(std::size_t i) const {
  SIMPROF_EXPECTS(i + 1 < doc_offsets_.size(), "document index out of range");
  return {words_.data() + doc_offsets_[i],
          static_cast<std::size_t>(doc_offsets_[i + 1] - doc_offsets_[i])};
}

std::uint32_t TextCorpus::label(std::size_t i) const {
  if (labels_.empty()) return 0;
  SIMPROF_EXPECTS(i < labels_.size(), "document index out of range");
  return labels_[i];
}

std::uint32_t TextCorpus::word_bytes(WordId w) {
  // Deterministic pseudo-length: hash the id into [3, 12], +1 separator.
  std::uint64_t z = (static_cast<std::uint64_t>(w) + 1) * 0x9e3779b97f4a7c15ULL;
  z ^= z >> 29;
  return 3 + static_cast<std::uint32_t>(z % 10) + 1;
}

}  // namespace simprof::data
