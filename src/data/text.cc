#include "data/text.h"

#include <algorithm>

#include "support/assert.h"
#include "support/zipf.h"

namespace simprof::data {

TextCorpus TextCorpus::synthesize(const TextConfig& cfg) {
  SIMPROF_EXPECTS(cfg.num_words > 0, "empty corpus requested");
  SIMPROF_EXPECTS(cfg.vocabulary > 0, "empty vocabulary");
  SIMPROF_EXPECTS(cfg.mean_doc_words > 0, "documents must be non-empty");

  TextCorpus out;
  out.cfg_ = cfg;
  out.words_.reserve(cfg.num_words);
  out.doc_offsets_.push_back(0);

  Rng rng(cfg.seed);
  ZipfSampler zipf(cfg.vocabulary, cfg.zipf_skew);

  std::uint64_t produced = 0;
  while (produced < cfg.num_words) {
    // Document length ~ uniform in [mean/2, 3·mean/2].
    const std::uint64_t lo = cfg.mean_doc_words / 2 + 1;
    const std::uint64_t len = std::min<std::uint64_t>(
        cfg.num_words - produced, lo + rng.next_below(cfg.mean_doc_words));
    const std::uint32_t label =
        cfg.num_classes > 0
            ? static_cast<std::uint32_t>(rng.next_below(cfg.num_classes))
            : 0;
    for (std::uint64_t i = 0; i < len; ++i) {
      auto w = static_cast<WordId>(zipf.sample(rng));
      if (cfg.num_classes > 0) {
        // Shift one third of the draws into a class-specific vocabulary band
        // so classes are separable (NaiveBayes has signal to learn).
        if (rng.next_bool(1.0 / 3.0)) {
          const std::uint32_t band = cfg.vocabulary / cfg.num_classes;
          w = label * band + static_cast<WordId>(w % band);
        }
      }
      out.words_.push_back(w);
      out.total_bytes_ += word_bytes(w);
    }
    out.labels_.push_back(label);
    produced += len;
    out.doc_offsets_.push_back(produced);
  }
  SIMPROF_ENSURES(out.words_.size() == cfg.num_words, "word count mismatch");
  return out;
}

std::span<const WordId> TextCorpus::doc(std::size_t i) const {
  SIMPROF_EXPECTS(i + 1 < doc_offsets_.size(), "document index out of range");
  return {words_.data() + doc_offsets_[i],
          static_cast<std::size_t>(doc_offsets_[i + 1] - doc_offsets_[i])};
}

std::uint32_t TextCorpus::label(std::size_t i) const {
  if (labels_.empty()) return 0;
  SIMPROF_EXPECTS(i < labels_.size(), "document index out of range");
  return labels_[i];
}

std::uint32_t TextCorpus::word_bytes(WordId w) {
  // Deterministic pseudo-length: hash the id into [3, 12], +1 separator.
  std::uint64_t z = (static_cast<std::uint64_t>(w) + 1) * 0x9e3779b97f4a7c15ULL;
  z ^= z >> 29;
  return 3 + static_cast<std::uint32_t>(z % 10) + 1;
}

}  // namespace simprof::data
