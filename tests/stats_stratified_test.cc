// Unit + property tests for the stratified-sampling mathematics: Neyman
// optimal allocation (Eq. 1), the stratified standard error (Eq. 4),
// confidence intervals (Eqs. 2–3) and the required-sample-size solver.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>

#include "stats/stratified.h"
#include "stats/two_phase.h"
#include "support/assert.h"
#include "support/rng.h"

namespace simprof::stats {
namespace {

std::size_t total(const std::vector<std::size_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::size_t{0});
}

TEST(OptimalAllocation, ProportionalToNhSigmaH) {
  // N_h σ_h products: 100·1, 100·3 → 1:3 split of 40 ⇒ 10 and 30.
  std::vector<Stratum> strata{{100, 1.0, 1.0}, {100, 3.0, 1.0}};
  const auto a = optimal_allocation(strata, 40);
  EXPECT_EQ(a[0], 10u);
  EXPECT_EQ(a[1], 30u);
}

TEST(OptimalAllocation, SumsToRequestedTotal) {
  std::vector<Stratum> strata{{50, 0.5, 1.0}, {200, 2.0, 1.0}, {10, 0.1, 1.0}};
  for (std::size_t n : {3UL, 10UL, 57UL, 123UL}) {
    const auto a = optimal_allocation(strata, n);
    EXPECT_EQ(total(a), std::min(n, std::size_t{260})) << "n=" << n;
  }
}

TEST(OptimalAllocation, NeverExceedsStratumPopulation) {
  std::vector<Stratum> strata{{5, 10.0, 1.0}, {100, 0.1, 1.0}};
  const auto a = optimal_allocation(strata, 50);
  EXPECT_LE(a[0], 5u);
  EXPECT_EQ(total(a), 50u);  // overflow was redistributed
}

TEST(OptimalAllocation, MinimumOnePerNonEmptyStratum) {
  std::vector<Stratum> strata{{1000, 5.0, 1.0}, {3, 0.0, 1.0}};
  const auto a = optimal_allocation(strata, 20);
  EXPECT_GE(a[1], 1u);  // zero-variance stratum still gets its floor
}

TEST(OptimalAllocation, AllZeroVarianceFallsBackToProportional) {
  std::vector<Stratum> strata{{300, 0.0, 1.0}, {100, 0.0, 1.0}};
  const auto a = optimal_allocation(strata, 40);
  EXPECT_EQ(a[0], 30u);
  EXPECT_EQ(a[1], 10u);
}

TEST(OptimalAllocation, EmptyStrataGetNothing) {
  std::vector<Stratum> strata{{0, 0.0, 0.0}, {10, 1.0, 1.0}};
  const auto a = optimal_allocation(strata, 5);
  EXPECT_EQ(a[0], 0u);
  EXPECT_EQ(a[1], 5u);
}

TEST(ProportionalAllocation, FollowsPopulations) {
  std::vector<Stratum> strata{{100, 9.0, 1.0}, {300, 0.0, 1.0}};
  const auto a = proportional_allocation(strata, 40);
  EXPECT_EQ(a[0], 10u);
  EXPECT_EQ(a[1], 30u);
}

TEST(StandardError, MatchesHandComputedTwoStrata) {
  // N = 100 (60/40), σ = 2 and 1, n_h = 6 and 4.
  std::vector<Stratum> strata{{60, 2.0, 1.0}, {40, 1.0, 1.0}};
  std::vector<std::size_t> n{6, 4};
  // SE = (1/N)·sqrt( Σ N_h²·(1−n_h/N_h)·s_h²/n_h )
  const double term0 = 60.0 * 60.0 * (1.0 - 6.0 / 60.0) * 4.0 / 6.0;
  const double term1 = 40.0 * 40.0 * (1.0 - 4.0 / 40.0) * 1.0 / 4.0;
  const double expected = std::sqrt(term0 + term1) / 100.0;
  EXPECT_NEAR(stratified_standard_error(strata, n), expected, 1e-12);
}

TEST(StandardError, FullCensusHasZeroError) {
  std::vector<Stratum> strata{{10, 3.0, 1.0}, {20, 1.0, 2.0}};
  std::vector<std::size_t> n{10, 20};
  EXPECT_NEAR(stratified_standard_error(strata, n), 0.0, 1e-12);
}

TEST(StandardError, MoreSamplesNeverWorse) {
  std::vector<Stratum> strata{{100, 2.0, 1.0}, {100, 1.0, 1.0}};
  double prev = 1e300;
  for (std::size_t n = 2; n <= 100; n += 7) {
    const auto alloc = optimal_allocation(strata, 2 * n);
    const double se = stratified_standard_error(strata, alloc);
    EXPECT_LE(se, prev + 1e-12);
    prev = se;
  }
}

TEST(PopulationMean, WeightedByStratumSize) {
  std::vector<Stratum> strata{{30, 0.0, 1.0}, {10, 0.0, 5.0}};
  EXPECT_DOUBLE_EQ(stratified_population_mean(strata), 2.0);
}

TEST(ConfidenceInterval, MarginIsZTimesSe) {
  const auto ci = confidence_interval(1.0, 0.02, kZ997);
  EXPECT_DOUBLE_EQ(ci.mean, 1.0);
  EXPECT_DOUBLE_EQ(ci.margin, 0.06);
  EXPECT_DOUBLE_EQ(ci.low(), 0.94);
  EXPECT_DOUBLE_EQ(ci.high(), 1.06);
}

TEST(RequiredSampleSize, TighterMarginNeedsMore) {
  std::vector<Stratum> strata{{500, 0.4, 1.0}, {500, 0.1, 0.8}};
  const auto n5 = required_sample_size(strata, 0.05, kZ997);
  const auto n2 = required_sample_size(strata, 0.02, kZ997);
  EXPECT_GT(n2, n5);
  EXPECT_LE(n2, 1000u);
}

TEST(RequiredSampleSize, ZeroVarianceNeedsOne) {
  std::vector<Stratum> strata{{100, 0.0, 1.0}};
  EXPECT_EQ(required_sample_size(strata, 0.05, kZ997), 1u);
}

TEST(RequiredSampleSize, AchievesTargetMargin) {
  // The computed n, optimally allocated, must actually satisfy z·SE ≤ r·μ.
  std::vector<Stratum> strata{{400, 0.5, 1.2}, {300, 0.2, 0.9},
                              {300, 0.05, 0.5}};
  const double mu = stratified_population_mean(strata);
  for (double r : {0.10, 0.05, 0.02}) {
    const auto n = required_sample_size(strata, r, kZ997);
    const auto alloc = optimal_allocation(strata, n);
    const double se = stratified_standard_error(strata, alloc);
    EXPECT_LE(kZ997 * se, r * mu * 1.12)
        << "margin " << r << " n=" << n;  // 12% slack for rounding/floors
  }
}

// --- Corrupt/degenerate-input regressions (see DESIGN.md §6d). The exact
// inputs below previously produced UB or NaN; keep them verbatim.

TEST(OptimalAllocation, TotalBeyondPopulationCapsAtPopulation) {
  std::vector<Stratum> strata{{5, 1.0, 1.0}, {7, 2.0, 1.0}};
  const auto a = optimal_allocation(strata, 1000);
  EXPECT_EQ(a[0], 5u);
  EXPECT_EQ(a[1], 7u);
}

TEST(OptimalAllocation, NonFiniteStddevTreatedAsZero) {
  // Regression: σ_h = NaN flowed into a static_cast<size_t>(NaN·total) —
  // undefined behavior — and σ_h = inf starved every other stratum.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<Stratum> strata{{100, nan, 1.0}, {100, 1.0, 1.0},
                              {100, inf, 1.0}, {100, -2.0, 1.0}};
  const auto a = optimal_allocation(strata, 40);
  EXPECT_EQ(total(a), 40u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LE(a[i], 100u) << "stratum " << i;
    EXPECT_GE(a[i], 1u) << "stratum " << i;  // min_per_stratum floor
  }
  // All weight lands on the one finite-positive-σ stratum beyond the floors.
  EXPECT_EQ(a[1], 37u);
}

TEST(OptimalAllocation, ZeroTotalStillFloorsNonEmptyStrata) {
  std::vector<Stratum> strata{{10, 1.0, 1.0}, {0, 1.0, 1.0}, {10, 1.0, 1.0}};
  const auto a = optimal_allocation(strata, 0);
  EXPECT_EQ(a[0], 1u);
  EXPECT_EQ(a[1], 0u);
  EXPECT_EQ(a[2], 1u);
}

TEST(StandardError, OverdrawnStratumClampsFpcToZero) {
  // Regression: n_h > N_h made the finite-population correction negative,
  // so the summed variance could go negative and sqrt() return NaN.
  std::vector<Stratum> strata{{4, 2.0, 1.0}};
  const std::vector<std::size_t> overdrawn{9};
  const double se = stratified_standard_error(strata, overdrawn);
  EXPECT_TRUE(std::isfinite(se));
  EXPECT_DOUBLE_EQ(se, 0.0);  // census (and then some) ⇒ no estimator error
}

TEST(StandardError, NonFiniteStddevContributesNothing) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<Stratum> strata{{100, nan, 1.0}, {100, 0.5, 1.0}};
  const std::vector<std::size_t> alloc{10, 10};
  const double se = stratified_standard_error(strata, alloc);
  EXPECT_TRUE(std::isfinite(se));
  std::vector<Stratum> clean{{100, 0.0, 1.0}, {100, 0.5, 1.0}};
  EXPECT_DOUBLE_EQ(se, stratified_standard_error(clean, alloc));
}

TEST(ConfidenceInterval, SingleUnitStrataStayFinite) {
  // A stratum with one sampled unit has undefined sample stddev upstream;
  // with the σ→0 convention the stratified CI must still be finite.
  std::vector<Stratum> strata{{1, 0.0, 2.0}, {50, 0.3, 1.0}};
  const auto alloc = optimal_allocation(strata, 10);
  const double se = stratified_standard_error(strata, alloc);
  const auto ci = confidence_interval(stratified_population_mean(strata), se,
                                      kZ997);
  EXPECT_TRUE(std::isfinite(ci.low()));
  EXPECT_TRUE(std::isfinite(ci.high()));
  EXPECT_GE(ci.high(), ci.low());
}

TEST(RequiredSampleSize, RejectsBadArguments) {
  std::vector<Stratum> strata{{10, 1.0, 1.0}};
  EXPECT_THROW(required_sample_size(strata, 0.0, kZ997), ContractViolation);
  EXPECT_THROW(required_sample_size(strata, 0.05, 0.0), ContractViolation);
}

// Property sweep over random stratifications: allocation is exact in total,
// within caps, and Neyman beats proportional allocation on standard error
// (that is the point of Eq. 1).
class AllocationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocationProperty, NeymanNoWorseThanProportional) {
  Rng rng(GetParam());
  const std::size_t h = 2 + rng.next_below(6);
  std::vector<Stratum> strata;
  std::size_t pop = 0;
  for (std::size_t i = 0; i < h; ++i) {
    Stratum s;
    s.population = 20 + rng.next_below(200);
    s.stddev = rng.next_double(0.0, 2.0);
    s.mean = rng.next_double(0.5, 2.0);
    pop += s.population;
    strata.push_back(s);
  }
  const std::size_t n = std::max<std::size_t>(h, pop / 10);
  const auto neyman = optimal_allocation(strata, n);
  const auto prop = proportional_allocation(strata, n);
  EXPECT_EQ(total(neyman), n);
  EXPECT_EQ(total(prop), n);
  for (std::size_t i = 0; i < h; ++i) {
    EXPECT_LE(neyman[i], strata[i].population);
  }
  const double se_neyman = stratified_standard_error(strata, neyman);
  const double se_prop = stratified_standard_error(strata, prop);
  // Floors introduce slight deviations from the textbook optimum; allow 5%.
  EXPECT_LE(se_neyman, se_prop * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocationProperty,
                         ::testing::Range<std::uint64_t>(100, 112));

TEST(TwoPhaseEstimate, MatchesHandComputedTwoStrata) {
  // Phase 1 classifies 4 units evenly (w′ = 0.5 each); phase 2 measures
  // {1,3} and {5,7}: ȳ_h = 2, 6 with s_h² = 2 each.
  //   ȳ_ds = 0.5·2 + 0.5·6 = 4
  //   V̂ = (0.25·2/2 + 0.25·2/2) + (1/4)(0.5·4 + 0.5·4) = 0.5 + 1.0 = 1.5
  std::vector<TwoPhaseStratum> strata{{2, 2, 2.0, std::sqrt(2.0)},
                                      {2, 2, 6.0, std::sqrt(2.0)}};
  const auto est = two_phase_estimate(strata, kZ997);
  EXPECT_DOUBLE_EQ(est.mean, 4.0);
  EXPECT_NEAR(est.variance, 1.5, 1e-12);
  EXPECT_NEAR(est.standard_error, std::sqrt(1.5), 1e-12);
  EXPECT_NEAR(est.ci.margin, kZ997 * std::sqrt(1.5), 1e-12);
  EXPECT_DOUBLE_EQ(est.ci.mean, 4.0);
}

TEST(TwoPhaseEstimate, KnownWeightsReduceToStratifiedMean) {
  // With zero weight noise possible only in the n′→∞ limit, the point
  // estimate still always equals the w′-weighted stratum means.
  std::vector<TwoPhaseStratum> strata{{30, 3, 1.0, 0.1},
                                      {10, 3, 2.0, 0.1}};
  const auto est = two_phase_estimate(strata, kZ997);
  EXPECT_DOUBLE_EQ(est.mean, 0.75 * 1.0 + 0.25 * 2.0);
}

TEST(TwoPhaseEstimate, DegenerateStrataSkippedAndRenormalized) {
  // Stratum 1 was never measured, stratum 2 never even classified; both are
  // skipped and the surviving weights renormalized, so the estimate is the
  // measured stratum's mean with a finite CI.
  std::vector<TwoPhaseStratum> strata{{8, 2, 1.5, 0.5},
                                      {4, 0, 0.0, 0.0},
                                      {0, 0, 0.0, 0.0}};
  const auto est = two_phase_estimate(strata, kZ997);
  EXPECT_DOUBLE_EQ(est.mean, 1.5);
  EXPECT_TRUE(std::isfinite(est.standard_error));
  EXPECT_TRUE(std::isfinite(est.ci.low()));
  EXPECT_TRUE(std::isfinite(est.ci.high()));
}

TEST(TwoPhaseEstimate, NothingMeasuredIsAllZero) {
  const auto est = two_phase_estimate({}, kZ997);
  EXPECT_EQ(est.mean, 0.0);
  EXPECT_EQ(est.variance, 0.0);
  EXPECT_EQ(est.standard_error, 0.0);
  const auto unmeasured =
      two_phase_estimate(std::vector<TwoPhaseStratum>{{5, 0, 0.0, 0.0}},
                         kZ997);
  EXPECT_EQ(unmeasured.mean, 0.0);
  EXPECT_EQ(unmeasured.variance, 0.0);
}

TEST(TwoPhaseEstimate, SingletonAndNonFiniteStddevContributeNothing) {
  // s_h = 0 for singleton measured strata and non-finite s_h treated as 0:
  // only the weight-noise term remains.
  std::vector<TwoPhaseStratum> strata{
      {2, 1, 1.0, 0.0},
      {2, 1, 3.0, std::numeric_limits<double>::quiet_NaN()}};
  const auto est = two_phase_estimate(strata, kZ997);
  EXPECT_DOUBLE_EQ(est.mean, 2.0);
  // Within-stratum term is 0; weight noise = (1/4)(0.5·1 + 0.5·1) = 0.25.
  EXPECT_NEAR(est.variance, 0.25, 1e-12);
}

TEST(TwoPhaseAllocation, NeymanStyleAgainstPhase1Counts) {
  // n′_h·σ_h products 100·1 : 100·3 → 1:3 split of 40, same closed form as
  // optimal_allocation with populations swapped for phase-1 counts.
  const std::vector<std::size_t> counts{100, 100};
  const std::vector<double> priors{1.0, 3.0};
  const auto a = two_phase_allocation(counts, priors, 40, 1);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], 10u);
  EXPECT_EQ(a[1], 30u);
}

TEST(TwoPhaseAllocation, CapsAtPhase1CountAndFloorsNonEmpty) {
  const std::vector<std::size_t> counts{3, 200, 0};
  const std::vector<double> priors{5.0, 0.1, 1.0};
  const auto a = two_phase_allocation(counts, priors, 50, 1);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_LE(a[0], 3u);          // cannot measure more than phase 1 saw
  EXPECT_GE(a[1], 1u);          // non-empty strata keep the floor
  EXPECT_EQ(a[2], 0u);          // empty strata get nothing
  EXPECT_EQ(total(a), 50u);
}

// Property sweep: the two-phase variance dominates the known-weights
// stratified variance (the weight-noise term is non-negative), and shrinks
// as the phase-1 sample grows.
class TwoPhaseProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoPhaseProperty, WeightNoiseNonNegativeAndShrinksWithPhase1) {
  Rng rng(GetParam());
  const std::size_t h = 2 + rng.next_below(5);
  std::vector<TwoPhaseStratum> small, big;
  for (std::size_t i = 0; i < h; ++i) {
    TwoPhaseStratum s;
    s.phase1_count = 5 + rng.next_below(40);
    s.sample_size = 2 + rng.next_below(3);
    s.sample_mean = rng.next_double(0.5, 3.0);
    s.sample_stddev = rng.next_double(0.0, 1.0);
    small.push_back(s);
    s.phase1_count *= 100;  // same shares, far larger phase-1 sample
    big.push_back(s);
  }
  const auto est_small = two_phase_estimate(small, kZ997);
  const auto est_big = two_phase_estimate(big, kZ997);
  // Identical weights → identical point estimates.
  EXPECT_DOUBLE_EQ(est_small.mean, est_big.mean);
  // Weight-noise term scales as 1/n′, so the bigger phase 1 can't be worse.
  EXPECT_LE(est_big.variance, est_small.variance + 1e-12);
  // And the two-phase variance is at least the within-stratum part alone.
  double within = 0.0;
  std::size_t nprime = 0;
  for (const auto& s : small) nprime += s.phase1_count;
  for (const auto& s : small) {
    const double w = static_cast<double>(s.phase1_count) /
                     static_cast<double>(nprime);
    within += w * w * s.sample_stddev * s.sample_stddev /
              static_cast<double>(s.sample_size);
  }
  EXPECT_GE(est_small.variance + 1e-12, within);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoPhaseProperty,
                         ::testing::Range<std::uint64_t>(500, 512));

}  // namespace
}  // namespace simprof::stats
