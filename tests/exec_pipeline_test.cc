// Unit tests for pipeline-interleaved charging (exec/pipeline.h): deferred
// work items, proportional round-robin flushing, frame prefixes, quota
// streams and the PipelineScope RAII driver.
#include <gtest/gtest.h>

#include <map>

#include "exec/cluster.h"
#include "exec/pipeline.h"
#include "test_util.h"

namespace simprof::exec {
namespace {

/// Records every snapshot's stack for mixture assertions.
class StackRecorder final : public ProfilingHook {
 public:
  void on_snapshot(std::span<const jvm::MethodId> stack) override {
    stacks.emplace_back(stack.begin(), stack.end());
  }
  void on_unit_boundary(const hw::PmuCounters&, const hw::MavBlock&) override {
  }
  std::vector<std::vector<jvm::MethodId>> stacks;
};

TEST(QuotaStream, ServesAtMostQuotaAndResumes) {
  hw::SequentialStream inner(0, 64 * 10);
  QuotaStream first(inner, 4);
  hw::MemRef r;
  int served = 0;
  while (first.next(r)) ++served;
  EXPECT_EQ(served, 4);
  // A second quota view continues where the inner stream left off.
  QuotaStream second(inner, 100);
  ASSERT_TRUE(second.next(r));
  EXPECT_EQ(r.line, 4u);
}

TEST(PipelineBatcher, EmptyItemsAreDropped) {
  PipelineBatcher b;
  b.add(1, 0, nullptr);
  EXPECT_TRUE(b.empty());
  b.add(1, 10, nullptr);
  EXPECT_EQ(b.size(), 1u);
}

TEST(PipelineBatcher, FlushChargesAllInstructionsAndRefs) {
  Cluster cluster(testing::tiny_cluster_config());
  auto& ctx = cluster.context(0);
  PipelineBatcher b;
  b.add(1, 30'000, std::make_unique<hw::SequentialStream>(0, 64 * 50));
  b.add(2, 70'000, nullptr);
  b.flush(ctx, 5'000);
  EXPECT_EQ(ctx.counters().instructions, 100'000u);
  EXPECT_EQ(ctx.counters().line_touches, 50u);
  EXPECT_TRUE(b.empty());
}

TEST(PipelineBatcher, ProportionalInterleavingMixesFrames) {
  // Two items with 3:1 instruction ratio; every sampling window must see
  // both frames, with the larger item ~3× as often.
  auto cfg = testing::tiny_cluster_config();
  Cluster cluster(cfg);
  StackRecorder recorder;
  cluster.set_profiling_hook(&recorder);
  auto& ctx = cluster.context(0);

  PipelineBatcher b;
  b.add(11, 600'000, nullptr);
  b.add(22, 200'000, nullptr);
  b.flush(ctx, 5'000);

  std::map<jvm::MethodId, int> leaf_counts;
  for (const auto& s : recorder.stacks) {
    ASSERT_EQ(s.size(), 1u);
    ++leaf_counts[s[0]];
  }
  ASSERT_EQ(recorder.stacks.size(), 80u);  // 800k instrs / 10k snapshots
  EXPECT_GT(leaf_counts[11], 2 * leaf_counts[22]);
  EXPECT_GT(leaf_counts[22], 10);  // the small item is seen throughout
  // Mixture, not blocks: the small item appears in the last quarter too.
  bool late_small = false;
  for (std::size_t i = recorder.stacks.size() * 3 / 4;
       i < recorder.stacks.size(); ++i) {
    late_small |= recorder.stacks[i][0] == 22;
  }
  EXPECT_TRUE(late_small);
}

TEST(PipelineBatcher, FramePrefixesNestConsumersAboveProducers) {
  Cluster cluster(testing::tiny_cluster_config());
  StackRecorder recorder;
  cluster.set_profiling_hook(&recorder);
  auto& ctx = cluster.context(0);

  PipelineBatcher b;
  b.push_frame(100);  // consumer
  b.add(200, 50'000, nullptr);  // producer item recorded under consumer
  b.pop_frame();
  b.add(100, 50'000, nullptr);  // consumer's own work
  b.flush(ctx, 5'000);

  bool saw_nested = false;
  for (const auto& s : recorder.stacks) {
    if (s.size() == 2) {
      EXPECT_EQ(s[0], 100u);
      EXPECT_EQ(s[1], 200u);
      saw_nested = true;
    }
  }
  EXPECT_TRUE(saw_nested);
  // The live stack is balanced after the flush.
  EXPECT_TRUE(ctx.stack().empty());
}

TEST(PipelineScope, AttachesAndFlushesOnFinish) {
  Cluster cluster(testing::tiny_cluster_config());
  auto& ctx = cluster.context(0);
  EXPECT_EQ(ctx.batcher(), nullptr);
  {
    PipelineScope scope(ctx);
    ASSERT_NE(ctx.batcher(), nullptr);
    ctx.batcher()->add(5, 12'000, nullptr);
    EXPECT_EQ(ctx.counters().instructions, 0u);  // deferred
    scope.finish();
    EXPECT_EQ(ctx.counters().instructions, 12'000u);
    EXPECT_EQ(ctx.batcher(), nullptr);
    scope.finish();  // idempotent
    EXPECT_EQ(ctx.counters().instructions, 12'000u);
  }
}

TEST(PipelineScope, DestructorFlushesAndRestoresPrevious) {
  Cluster cluster(testing::tiny_cluster_config());
  auto& ctx = cluster.context(0);
  PipelineScope outer(ctx);
  PipelineBatcher* outer_batcher = ctx.batcher();
  {
    PipelineScope inner(ctx);
    EXPECT_NE(ctx.batcher(), outer_batcher);
    ctx.batcher()->add(7, 8'000, nullptr);
  }  // destructor flushes
  EXPECT_EQ(ctx.counters().instructions, 8'000u);
  EXPECT_EQ(ctx.batcher(), outer_batcher);
}

TEST(PipelineBatcher, RefOnlyItemDrainsTraffic) {
  Cluster cluster(testing::tiny_cluster_config());
  auto& ctx = cluster.context(0);
  PipelineBatcher b;
  b.add(3, 0, std::make_unique<hw::SequentialStream>(0, 64 * 20));
  b.flush(ctx, 1'000);
  EXPECT_EQ(ctx.counters().line_touches, 20u);
}

TEST(PipelineBatcher, FlushRejectsZeroSlice) {
  Cluster cluster(testing::tiny_cluster_config());
  auto& ctx = cluster.context(0);
  PipelineBatcher b;
  b.add(1, 10, nullptr);
  EXPECT_THROW(b.flush(ctx, 0), ContractViolation);
}

}  // namespace
}  // namespace simprof::exec
