// Unit tests for the data synthesizers: Zipf text corpora, CSR graphs,
// Kronecker generation and the Table II catalog.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/catalog.h"
#include "data/graph.h"
#include "data/kronecker.h"
#include "data/text.h"
#include "support/assert.h"

namespace simprof::data {
namespace {

TextConfig tiny_text() {
  TextConfig cfg;
  cfg.num_words = 20'000;
  cfg.vocabulary = 5'000;
  cfg.mean_doc_words = 50;
  cfg.seed = 9;
  return cfg;
}

TEST(TextCorpus, ExactWordCountAndDocPartition) {
  const TextCorpus c = TextCorpus::synthesize(tiny_text());
  EXPECT_EQ(c.words().size(), 20'000u);
  std::uint64_t sum = 0;
  for (std::size_t d = 0; d < c.num_docs(); ++d) sum += c.doc(d).size();
  EXPECT_EQ(sum, 20'000u);
  EXPECT_GT(c.num_docs(), 100u);
}

TEST(TextCorpus, DeterministicPerSeed) {
  const TextCorpus a = TextCorpus::synthesize(tiny_text());
  const TextCorpus b = TextCorpus::synthesize(tiny_text());
  ASSERT_EQ(a.words().size(), b.words().size());
  for (std::size_t i = 0; i < a.words().size(); ++i) {
    ASSERT_EQ(a.words()[i], b.words()[i]) << "at " << i;
  }
  auto cfg = tiny_text();
  cfg.seed = 10;
  const TextCorpus c = TextCorpus::synthesize(cfg);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.words().size(); ++i) {
    diff += (a.words()[i] != c.words()[i]) ? 1 : 0;
  }
  EXPECT_GT(diff, 1000u);
}

TEST(TextCorpus, ZipfSkewMakesHotWords) {
  const TextCorpus c = TextCorpus::synthesize(tiny_text());
  std::map<WordId, std::size_t> counts;
  for (WordId w : c.words()) ++counts[w];
  // Word 0 (hottest rank) must appear far more often than vocabulary/2.
  EXPECT_GT(counts[0], counts[2500] * 10 + 10);
}

TEST(TextCorpus, LabelsOnlyWhenRequested) {
  const TextCorpus plain = TextCorpus::synthesize(tiny_text());
  EXPECT_EQ(plain.label(0), 0u);

  auto cfg = tiny_text();
  cfg.num_classes = 3;
  const TextCorpus labeled = TextCorpus::synthesize(cfg);
  std::set<std::uint32_t> seen;
  for (std::size_t d = 0; d < labeled.num_docs(); ++d) {
    seen.insert(labeled.label(d));
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(TextCorpus, WordBytesDeterministicAndBounded) {
  for (WordId w : {0u, 1u, 17u, 100'000u}) {
    const auto b = TextCorpus::word_bytes(w);
    EXPECT_EQ(b, TextCorpus::word_bytes(w));
    EXPECT_GE(b, 4u);
    EXPECT_LE(b, 13u);
  }
}

TEST(TextCorpus, TotalBytesIsSumOfWordBytes) {
  const TextCorpus c = TextCorpus::synthesize(tiny_text());
  std::uint64_t sum = 0;
  for (WordId w : c.words()) sum += TextCorpus::word_bytes(w);
  EXPECT_EQ(c.total_bytes(), sum);
}

TEST(Graph, CsrFromEdgesBasics) {
  std::vector<Edge> edges{{0, 1}, {0, 2}, {1, 2}, {2, 0}};
  const Graph g = Graph::from_edges(3, edges, /*symmetrize=*/false);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.neighbors(1).size(), 1u);
  EXPECT_EQ(g.neighbors(1)[0], 2u);
}

TEST(Graph, DuplicateEdgesCollapse) {
  std::vector<Edge> edges{{0, 1}, {0, 1}, {0, 1}};
  const Graph g = Graph::from_edges(2, edges, false);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, SymmetrizeAddsReverseEdges) {
  std::vector<Edge> edges{{0, 1}};
  const Graph g = Graph::from_edges(2, edges, /*symmetrize=*/true);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(1), 1u);
}

TEST(Graph, SelfLoopNotDuplicatedBySymmetrize) {
  std::vector<Edge> edges{{1, 1}};
  const Graph g = Graph::from_edges(2, edges, true);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, OutOfRangeEndpointThrows) {
  std::vector<Edge> edges{{0, 5}};
  EXPECT_THROW(Graph::from_edges(2, edges, false), ContractViolation);
}

TEST(Graph, UnionFindGroundTruth) {
  // Two components: {0,1,2} and {3,4}; vertex 5 isolated.
  std::vector<Edge> edges{{0, 1}, {1, 2}, {3, 4}};
  const Graph g = Graph::from_edges(6, edges, true);
  const auto labels = connected_components_ground_truth(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(labels[5], 5u);
  EXPECT_EQ(labels[0], 0u);  // smallest-id labeling
}

TEST(Kronecker, VertexCountMatchesScale) {
  KroneckerConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 8.0;
  const Graph g = kronecker_graph(cfg, false);
  EXPECT_EQ(g.num_vertices(), 256u);
  // Duplicates collapse, so realized edges are below the nominal count but
  // within a sane band.
  EXPECT_GT(g.num_edges(), 500u);
  EXPECT_LE(g.num_edges(), 2048u);
}

TEST(Kronecker, DeterministicPerSeed) {
  KroneckerConfig cfg;
  cfg.scale = 8;
  const Graph a = kronecker_graph(cfg, false);
  const Graph b = kronecker_graph(cfg, false);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  cfg.seed += 1;
  const Graph c = kronecker_graph(cfg, false);
  EXPECT_NE(a.num_edges(), c.num_edges());
}

TEST(Kronecker, SkewedInitiatorConcentratesDegree) {
  KroneckerConfig web;  // default initiator is web-like (high a)
  web.scale = 10;
  web.edge_factor = 8.0;
  const Graph g = kronecker_graph(web, false);
  // Hubs: the max out-degree should far exceed the mean.
  std::uint32_t max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.out_degree(v));
  }
  const double mean_deg =
      static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_GT(max_deg, 8 * mean_deg);
}

TEST(Kronecker, NoiseFlattensDegreeDistribution) {
  KroneckerConfig skewed;
  skewed.scale = 10;
  skewed.edge_factor = 8.0;
  KroneckerConfig road = skewed;
  road.a = 0.3;
  road.b = road.c = 0.25;
  road.d = 0.2;
  road.noise = 0.35;
  auto max_degree = [](const Graph& g) {
    std::uint32_t m = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      m = std::max(m, g.out_degree(v));
    }
    return m;
  };
  EXPECT_LT(max_degree(kronecker_graph(road, false)),
            max_degree(kronecker_graph(skewed, false)));
}

TEST(Kronecker, RejectsBadConfig) {
  KroneckerConfig cfg;
  cfg.scale = 0;
  EXPECT_THROW(kronecker_graph(cfg, false), ContractViolation);
  cfg = KroneckerConfig{};
  cfg.noise = 0.9;
  EXPECT_THROW(kronecker_graph(cfg, false), ContractViolation);
}

TEST(Catalog, HasAllEightTableTwoInputs) {
  const auto cat = snap_catalog();
  ASSERT_EQ(cat.size(), 8u);
  EXPECT_EQ(cat[0].name, "Google");
  EXPECT_TRUE(cat[0].training);
  std::size_t training = 0;
  for (const auto& e : cat) training += e.training ? 1 : 0;
  EXPECT_EQ(training, 1u);  // exactly one training input (the paper's split)
  std::set<std::uint64_t> seeds;
  for (const auto& e : cat) seeds.insert(e.kron.seed);
  EXPECT_EQ(seeds.size(), 8u);  // all inputs use distinct streams
}

TEST(Catalog, ScaleOverrideApplies) {
  const auto cat = snap_catalog(10);
  for (const auto& e : cat) EXPECT_EQ(e.kron.scale, 10u);
}

TEST(Catalog, LookupByNameAndUnknownThrows) {
  const auto e = catalog_entry("Road");
  EXPECT_EQ(e.input_type, "Road Networks");
  EXPECT_THROW(catalog_entry("NotAGraph"), ContractViolation);
}

TEST(Catalog, RoadIsSparserAndFlatterThanSocial) {
  const auto road = catalog_entry("Road", 10);
  const auto fb = catalog_entry("Facebook", 10);
  const Graph gr = kronecker_graph(road.kron, true);
  const Graph gf = kronecker_graph(fb.kron, true);
  EXPECT_LT(gr.num_edges(), gf.num_edges());
  // The topology differs far more than the volume: road networks are
  // near-regular while social networks have hubs.
  auto max_degree = [](const Graph& g) {
    std::uint32_t m = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      m = std::max(m, g.out_degree(v));
    }
    return m;
  };
  EXPECT_LT(max_degree(gr) * 2, max_degree(gf));
}

}  // namespace
}  // namespace simprof::data
