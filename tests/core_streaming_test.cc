// Streaming-vs-batch equivalence suite for the online phase former: in-order
// full ingestion is bit-identical to batch form_phases, shuffled arrival
// converges within tolerance, results are bit-identical across thread
// counts, and the retention cap bounds memory.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "core/phase.h"
#include "core/sampling.h"
#include "core/streaming.h"
#include "features/feature_mode.h"
#include "support/assert.h"
#include "support/rng.h"
#include "test_util.h"

namespace simprof::core {
namespace {

void expect_models_bit_identical(const PhaseModel& a, const PhaseModel& b) {
  ASSERT_EQ(a.k, b.k);
  EXPECT_EQ(a.feature_names, b.feature_names);
  EXPECT_EQ(a.feature_kinds, b.feature_kinds);
  ASSERT_EQ(a.centers.rows(), b.centers.rows());
  ASSERT_EQ(a.centers.cols(), b.centers.cols());
  for (std::size_t r = 0; r < a.centers.rows(); ++r) {
    for (std::size_t c = 0; c < a.centers.cols(); ++c) {
      EXPECT_EQ(a.centers.at(r, c), b.centers.at(r, c))
          << "center (" << r << "," << c << ") differs";
    }
  }
  EXPECT_EQ(a.labels, b.labels);
  ASSERT_EQ(a.silhouette_scores.size(), b.silhouette_scores.size());
  for (std::size_t i = 0; i < a.silhouette_scores.size(); ++i) {
    EXPECT_EQ(a.silhouette_scores[i], b.silhouette_scores[i]);
  }
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t h = 0; h < a.phases.size(); ++h) {
    EXPECT_EQ(a.phases[h].count, b.phases[h].count);
    EXPECT_EQ(a.phases[h].mean_cpi, b.phases[h].mean_cpi);
    EXPECT_EQ(a.phases[h].stddev_cpi, b.phases[h].stddev_cpi);
    EXPECT_EQ(a.phases[h].trimmed_stddev_cpi, b.phases[h].trimmed_stddev_cpi);
    EXPECT_EQ(a.phases[h].weight, b.phases[h].weight);
  }
  EXPECT_EQ(a.phase_types, b.phase_types);
  EXPECT_EQ(a.representative_units, b.representative_units);
}

ThreadProfile shuffled_copy(const ThreadProfile& p, std::uint64_t seed) {
  ThreadProfile s;
  s.method_names = p.method_names;
  s.method_kinds = p.method_kinds;
  s.units = p.units;
  Rng rng(seed);
  for (std::size_t i = s.units.size(); i > 1; --i) {
    std::swap(s.units[i - 1],
              s.units[static_cast<std::size_t>(rng.next_below(i))]);
  }
  return s;
}

TEST(StreamingPhaseFormer, InOrderFinalizeIsBitIdenticalToBatch) {
  const auto p = testing::synthetic_profile(
      {{70, 0.5, 0.02, 1}, {70, 2.0, 0.05, 2}, {70, 1.2, 0.03, 3}});
  StreamingPhaseFormer former{{}};
  former.ingest_range(p, 0, p.num_units());
  const PhaseModel streamed = former.finalize();
  const PhaseModel batch = form_phases(p);
  expect_models_bit_identical(streamed, batch);
  EXPECT_EQ(former.units_ingested(), p.num_units());
  EXPECT_EQ(former.units_retained(), p.num_units());
}

TEST(StreamingPhaseFormer, InOrderFinalizeMatchesBatchInEveryFeatureMode) {
  const auto p = testing::synthetic_profile(
      {{70, 0.5, 0.02, 1}, {70, 2.0, 0.05, 2}, {70, 1.2, 0.03, 3}});
  for (const auto mode :
       {features::FeatureMode::kFreq, features::FeatureMode::kMav,
        features::FeatureMode::kCombined}) {
    SCOPED_TRACE(features::to_string(mode));
    StreamingConfig scfg;
    scfg.formation.features = mode;
    StreamingPhaseFormer former{scfg};
    former.ingest_range(p, 0, p.num_units());
    const PhaseModel streamed = former.finalize();
    PhaseFormationConfig pcfg;
    pcfg.features = mode;
    expect_models_bit_identical(streamed, form_phases(p, pcfg));
    EXPECT_EQ(streamed.feature_mode, mode);
  }
}

TEST(StreamingPhaseFormer, ShuffledArrivalConvergesWithinTolerance) {
  const auto p = testing::synthetic_profile(
      {{80, 0.5, 0.02, 1}, {80, 2.0, 0.05, 2}});
  const PhaseModel batch = form_phases(p);

  const ThreadProfile shuffled = shuffled_copy(p, 0xABCDEF);
  StreamingPhaseFormer former{{}};
  former.ingest_range(shuffled, 0, shuffled.num_units());
  const PhaseModel streamed = former.finalize();

  // Same structure within tolerance: phase count within one, best
  // silhouette close, and the streamed model samples its profile about as
  // accurately as the batch model samples its own.
  EXPECT_LE(streamed.k > batch.k ? streamed.k - batch.k : batch.k - streamed.k,
            1u);
  const double best_b = *std::max_element(batch.silhouette_scores.begin(),
                                          batch.silhouette_scores.end());
  const double best_s = *std::max_element(streamed.silhouette_scores.begin(),
                                          streamed.silhouette_scores.end());
  EXPECT_NEAR(best_s, best_b, 0.15);

  const SamplePlan plan_b = simprof_sample(p, batch, 24, 99);
  const SamplePlan plan_s = simprof_sample(shuffled, streamed, 24, 99);
  EXPECT_LT(relative_error(plan_b, p), 0.05);
  EXPECT_LT(relative_error(plan_s, shuffled), 0.05);
}

TEST(StreamingPhaseFormer, SameArrivalOrderBitIdenticalAcrossThreadCounts) {
  const auto p = testing::synthetic_profile(
      {{60, 0.5, 0.02, 1}, {60, 2.0, 0.05, 2}, {60, 1.2, 0.03, 3}});
  StreamingConfig one;
  one.formation.threads = 1;
  StreamingConfig eight;
  eight.formation.threads = 8;

  StreamingPhaseFormer f1{one};
  StreamingPhaseFormer f8{eight};
  std::vector<std::size_t> labels1, labels8;
  for (std::size_t u = 0; u < p.num_units(); ++u) {
    labels1.push_back(f1.ingest(p, u));
    labels8.push_back(f8.ingest(p, u));
  }
  // Every live classification along the way must agree, not just the end
  // state — this covers the mini-batch refinement path too.
  EXPECT_EQ(labels1, labels8);
  expect_models_bit_identical(f1.finalize(), f8.finalize());
}

TEST(StreamingPhaseFormer, WarmupReturnsNoPhaseThenLabels) {
  const auto p = testing::synthetic_profile(
      {{30, 0.5, 0.02, 1}, {30, 2.0, 0.05, 2}});
  StreamingConfig cfg;
  cfg.warmup_units = 16;
  StreamingPhaseFormer former{cfg};
  for (std::size_t u = 0; u + 1 < cfg.warmup_units; ++u) {
    EXPECT_EQ(former.ingest(p, u), StreamingPhaseFormer::kNoPhase);
    EXPECT_FALSE(former.has_model());
  }
  const std::size_t first = former.ingest(p, cfg.warmup_units - 1);
  EXPECT_TRUE(former.has_model());
  EXPECT_LT(first, former.model().k);
  for (std::size_t u = cfg.warmup_units; u < p.num_units(); ++u) {
    EXPECT_LT(former.ingest(p, u), former.model().k);
  }
  ASSERT_EQ(former.live_labels().size(), former.units_retained());
}

TEST(StreamingPhaseFormer, UpdateHookFiresPerReclusterAndCanSampleLive) {
  const auto p = testing::synthetic_profile(
      {{90, 0.5, 0.02, 1}, {90, 2.0, 0.05, 2}});
  StreamingPhaseFormer former{{}};
  std::size_t fired = 0;
  former.set_update_hook([&](const StreamingPhaseFormer& f) {
    ++fired;
    EXPECT_GE(f.model().k, 1u);
    // The live-selection path the CLI uses: an interim stratified plan from
    // the partial profile, available before the run finishes.
    const std::size_t n = std::min<std::size_t>(8, f.units_retained());
    const SamplePlan plan = simprof_sample(f.profile(), f.model(), n, 7);
    EXPECT_GT(plan.sample_size(), 0u);
  });
  former.ingest_range(p, 0, p.num_units());
  EXPECT_GT(fired, 1u);  // warmup recluster plus geometric growth passes
  EXPECT_EQ(fired, former.reclusters());
  former.finalize();
  EXPECT_EQ(fired, former.reclusters());
}

TEST(StreamingPhaseFormer, RetentionCapBoundsMemoryAndStillForms) {
  const auto p = testing::synthetic_profile(
      {{150, 0.5, 0.02, 1}, {150, 2.0, 0.05, 2}});
  StreamingConfig cfg;
  cfg.max_retained_units = 50;
  StreamingPhaseFormer former{cfg};
  former.ingest_range(p, 0, p.num_units());
  const PhaseModel model = former.finalize();
  EXPECT_EQ(former.units_ingested(), p.num_units());
  EXPECT_EQ(former.units_retained(), cfg.max_retained_units);
  EXPECT_EQ(former.live_labels().size(), cfg.max_retained_units);
  EXPECT_GE(model.k, 1u);
  EXPECT_EQ(model.labels.size(), cfg.max_retained_units);
}

TEST(StreamingPhaseFormer, ManyConcurrentFormersEvictUnderQuotaIndependently) {
  // The daemon model: every in-flight streaming request owns its own former
  // and runs on its own thread, with max_retained_units as the per-client
  // memory quota. Run many concurrently (TSan coverage for shared-nothing
  // isolation) with distinct quotas, and check each evicted down to exactly
  // its own cap — no cross-talk between instances.
  const auto p = testing::synthetic_profile(
      {{120, 0.5, 0.02, 1}, {120, 2.0, 0.05, 2}});
  constexpr std::size_t kFormers = 8;
  std::vector<PhaseModel> models(kFormers);
  std::vector<std::size_t> retained(kFormers);
  std::vector<std::thread> threads;
  threads.reserve(kFormers);
  for (std::size_t i = 0; i < kFormers; ++i) {
    threads.emplace_back([&, i] {
      StreamingConfig cfg;
      // Half the formers use the shared pool (exercises its job queueing
      // under concurrency), half run inline.
      cfg.formation.threads = (i % 2 == 0) ? 1 : 2;
      cfg.max_retained_units = 40 + 4 * i;
      StreamingPhaseFormer former{cfg};
      former.ingest_range(p, 0, p.num_units());
      models[i] = former.finalize();
      retained[i] = former.units_retained();
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kFormers; ++i) {
    EXPECT_EQ(retained[i], 40 + 4 * i) << "former " << i;
    EXPECT_GE(models[i].k, 1u) << "former " << i;
    EXPECT_EQ(models[i].labels.size(), 40 + 4 * i) << "former " << i;
  }
  // Concurrency must not perturb results: a serial run with the same quota
  // is bit-identical to the concurrent one.
  for (const std::size_t i : {std::size_t{0}, kFormers - 1}) {
    StreamingConfig cfg;
    cfg.formation.threads = (i % 2 == 0) ? 1 : 2;
    cfg.max_retained_units = 40 + 4 * i;
    StreamingPhaseFormer serial{cfg};
    serial.ingest_range(p, 0, p.num_units());
    expect_models_bit_identical(serial.finalize(), models[i]);
  }
}

TEST(StreamingPhaseFormer, SmallStreamsFormWithoutAborting) {
  // Early-stream snapshots have fewer units than the k-sweep's max_k; the
  // sweep clamps instead of contract-aborting, for n = 1, 2 and k_max − 1.
  for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                              std::size_t{19}}) {
    const auto p = testing::synthetic_profile({{n, 1.0, 0.05, 1}});
    StreamingConfig cfg;
    cfg.warmup_units = 1;  // recluster from the first unit
    StreamingPhaseFormer former{cfg};
    former.ingest_range(p, 0, p.num_units());
    const PhaseModel model = former.finalize();
    EXPECT_GE(model.k, 1u);
    EXPECT_LE(model.k, n);
    EXPECT_EQ(model.labels.size(), n);
  }
}

TEST(StreamingPhaseFormer, ConflictingMethodTableIsRejected) {
  const auto p = testing::synthetic_profile({{20, 1.0, 0.05, 1}});
  auto q = p;
  q.method_names[1] = "something-else";
  StreamingPhaseFormer former{{}};
  former.ingest(p, 0);
  EXPECT_THROW(former.ingest(q, 0), ContractViolation);
}

TEST(StreamingPhaseFormer, FinalizeWithoutIngestIsRejected) {
  StreamingPhaseFormer former{{}};
  EXPECT_THROW(former.finalize(), ContractViolation);
}

}  // namespace
}  // namespace simprof::core
