// Tests for the Table I workload registry: every configuration runs at tiny
// scale, produces sampling units, validates its own functional invariants
// (the runners assert internally), and is deterministic per seed.
#include <gtest/gtest.h>

#include "core/profile.h"
#include "workloads/workloads.h"

namespace simprof::workloads {
namespace {

WorkloadParams tiny_params(std::uint64_t seed = 42) {
  WorkloadParams p;
  p.scale = 0.02;
  p.seed = seed;
  p.graph_scale_override = 11;
  p.max_iterations = 6;
  return p;
}

exec::ClusterConfig small_cluster() {
  exec::ClusterConfig cfg;
  cfg.memory.num_cores = 4;
  return cfg;
}

TEST(Registry, HasTwelveConfigsInPaperOrder) {
  const auto& all = all_workloads();
  ASSERT_EQ(all.size(), 12u);
  EXPECT_EQ(all[0].name, "sort_hp");
  EXPECT_EQ(all[1].name, "sort_sp");
  EXPECT_EQ(all[10].name, "rank_hp");
  EXPECT_EQ(all[11].name, "rank_sp");
  std::size_t spark = 0, graph = 0;
  for (const auto& w : all) {
    spark += w.framework == Framework::kSpark ? 1 : 0;
    graph += w.graph_workload ? 1 : 0;
    EXPECT_NE(w.run, nullptr);
  }
  EXPECT_EQ(spark, 6u);
  EXPECT_EQ(graph, 4u);
}

TEST(Registry, LookupByNameAndUnknownThrows) {
  EXPECT_EQ(workload("wc_sp").benchmark, "WordCount");
  EXPECT_EQ(workload("rank_hp").framework, Framework::kHadoop);
  EXPECT_THROW(workload("nope"), ContractViolation);
}

TEST(Registry, FrameworkNames) {
  EXPECT_EQ(to_string(Framework::kSpark), "spark");
  EXPECT_EQ(to_string(Framework::kHadoop), "hadoop");
}

TEST(TextScale, MonotonicAndClamped) {
  const auto small = detail::text_scale(0.001);
  const auto mid = detail::text_scale(0.5);
  const auto full = detail::text_scale(1.0);
  EXPECT_GE(small.num_words, 20'000u);
  EXPECT_LT(mid.num_words, full.num_words);
  EXPECT_LE(mid.vocabulary, full.vocabulary);
  EXPECT_THROW(detail::text_scale(0.0), ContractViolation);
}

// One parameterized smoke per workload: runs the real pipeline at tiny scale
// with the profiler attached — internal SIMPROF_ASSERTs validate functional
// correctness (word counts, sortedness, component labels, rank mass).
class WorkloadSmoke : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadSmoke, RunsAndProducesUnits) {
  const WorkloadInfo& info = workload(GetParam());
  exec::Cluster cluster(small_cluster());
  core::SamplingManager manager(cluster.methods());
  cluster.set_profiling_hook(&manager);

  const WorkloadResult res = info.run(cluster, tiny_params());
  EXPECT_GT(res.records_out, 0u);
  EXPECT_GT(manager.units_collected(), 0u);
  EXPECT_GT(manager.snapshots_collected(), manager.units_collected());
  if (info.graph_workload) EXPECT_GT(res.iterations, 0u);

  core::ThreadProfile profile = manager.take_profile();
  EXPECT_GT(profile.num_methods(), 5u);
  EXPECT_GT(profile.oracle_cpi(), 0.1);
  EXPECT_LT(profile.oracle_cpi(), 20.0);
}

TEST_P(WorkloadSmoke, DeterministicChecksumPerSeed) {
  const WorkloadInfo& info = workload(GetParam());
  auto run_once = [&](std::uint64_t seed) {
    exec::Cluster cluster(small_cluster());
    return info.run(cluster, tiny_params(seed));
  };
  const auto a = run_once(42);
  const auto b = run_once(42);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.records_out, b.records_out);
  const auto c = run_once(43);
  EXPECT_NE(a.checksum, c.checksum);  // different data → different digest
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, WorkloadSmoke,
                         ::testing::Values("sort_hp", "sort_sp", "wc_hp",
                                           "wc_sp", "grep_hp", "grep_sp",
                                           "bayes_hp", "bayes_sp", "cc_hp",
                                           "cc_sp", "rank_hp", "rank_sp"));

TEST(GraphInputs, DifferentCatalogEntriesChangeBehaviour) {
  const WorkloadInfo& info = workload("cc_sp");
  auto run_on = [&](const char* input) {
    exec::Cluster cluster(small_cluster());
    auto p = tiny_params();
    p.graph_input = input;
    return info.run(cluster, p);
  };
  const auto google = run_on("Google");
  const auto road = run_on("Road");
  EXPECT_NE(google.checksum, road.checksum);
}

}  // namespace
}  // namespace simprof::workloads
