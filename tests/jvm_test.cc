// Unit tests for the JVM substrate: method registry, call stacks, RAII
// frames and OpKind naming.
#include <gtest/gtest.h>

#include "jvm/call_stack.h"
#include "jvm/method.h"
#include "support/assert.h"

namespace simprof::jvm {
namespace {

TEST(MethodRegistry, InternIsIdempotent) {
  MethodRegistry reg;
  const auto a = reg.intern("a.B.c", OpKind::kMap);
  EXPECT_EQ(reg.intern("a.B.c", OpKind::kMap), a);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.name(a), "a.B.c");
  EXPECT_EQ(reg.kind(a), OpKind::kMap);
}

TEST(MethodRegistry, ConflictingKindThrows) {
  MethodRegistry reg;
  reg.intern("x.Y.z", OpKind::kSort);
  EXPECT_THROW(reg.intern("x.Y.z", OpKind::kIo), ContractViolation);
}

TEST(MethodRegistry, DenseIds) {
  MethodRegistry reg;
  EXPECT_EQ(reg.intern("m0", OpKind::kMap), 0u);
  EXPECT_EQ(reg.intern("m1", OpKind::kReduce), 1u);
  EXPECT_EQ(reg.intern("m2", OpKind::kIo), 2u);
}

TEST(MethodRegistry, UnknownIdThrows) {
  MethodRegistry reg;
  EXPECT_THROW(reg.kind(0), ContractViolation);
}

TEST(OpKind, NamesAreStable) {
  EXPECT_EQ(to_string(OpKind::kMap), "map");
  EXPECT_EQ(to_string(OpKind::kReduce), "reduce");
  EXPECT_EQ(to_string(OpKind::kSort), "sort");
  EXPECT_EQ(to_string(OpKind::kIo), "io");
  EXPECT_EQ(to_string(OpKind::kFramework), "framework");
  EXPECT_EQ(to_string(OpKind::kShuffle), "shuffle");
  EXPECT_EQ(to_string(OpKind::kCompute), "compute");
}

TEST(CallStack, PushPopTop) {
  CallStack s;
  EXPECT_TRUE(s.empty());
  s.push(3);
  s.push(7);
  EXPECT_EQ(s.depth(), 2u);
  EXPECT_EQ(s.top(), 7u);
  s.pop();
  EXPECT_EQ(s.top(), 3u);
}

TEST(CallStack, FramesAreOutermostFirst) {
  CallStack s;
  s.push(1);
  s.push(2);
  s.push(3);
  const auto f = s.frames();
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], 1u);
  EXPECT_EQ(f[2], 3u);
}

TEST(CallStack, UnderflowThrows) {
  CallStack s;
  EXPECT_THROW(s.pop(), ContractViolation);
  EXPECT_THROW(s.top(), ContractViolation);
}

TEST(MethodScope, RaiiBalancesStack) {
  CallStack s;
  {
    MethodScope outer(s, 10);
    EXPECT_EQ(s.depth(), 1u);
    {
      MethodScope inner(s, 20);
      EXPECT_EQ(s.depth(), 2u);
      EXPECT_EQ(s.top(), 20u);
    }
    EXPECT_EQ(s.depth(), 1u);
    EXPECT_EQ(s.top(), 10u);
  }
  EXPECT_TRUE(s.empty());
}

TEST(MethodScope, UnwindsOnException) {
  CallStack s;
  try {
    MethodScope outer(s, 1);
    MethodScope inner(s, 2);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace simprof::jvm
