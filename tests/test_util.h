// Shared helpers for the SimProf test suite: synthetic ThreadProfiles with
// controlled phase structure, and tiny cluster configurations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/profile.h"
#include "exec/cluster.h"
#include "hw/mav.h"
#include "support/rng.h"

namespace simprof::testing {

/// Description of one synthetic phase: `count` units whose CPI is drawn from
/// N(mean_cpi, stddev_cpi) and whose stacks are dominated by method
/// `dominant_method` (with a constant background of method 0).
struct SyntheticPhase {
  std::size_t count = 0;
  double mean_cpi = 1.0;
  double stddev_cpi = 0.0;
  jvm::MethodId dominant_method = 1;
};

/// Build a profile with interleaved units from the given phases. Method 0 is
/// a framework-ish method present in every unit; methods are named "m<i>".
inline core::ThreadProfile synthetic_profile(
    const std::vector<SyntheticPhase>& phases, std::uint64_t seed = 7,
    std::uint64_t unit_instrs = 1'000'000) {
  core::ThreadProfile p;
  jvm::MethodId max_method = 0;
  for (const auto& ph : phases) {
    max_method = std::max(max_method, ph.dominant_method);
  }
  for (jvm::MethodId m = 0; m <= max_method; ++m) {
    p.method_names.push_back("m" + std::to_string(m));
    p.method_kinds.push_back(m == 0 ? jvm::OpKind::kFramework
                                    : jvm::OpKind::kMap);
  }

  Rng rng(seed);
  // Interleave phases round-robin so phase membership is non-contiguous,
  // like real SimProf phases.
  std::vector<std::size_t> remaining(phases.size());
  for (std::size_t i = 0; i < phases.size(); ++i) {
    remaining[i] = phases[i].count;
  }
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t i = 0; i < phases.size(); ++i) {
      if (remaining[i] == 0) continue;
      --remaining[i];
      any = true;
      core::UnitRecord u;
      u.unit_id = p.units.size();
      double cpi = phases[i].mean_cpi +
                   phases[i].stddev_cpi * rng.next_gaussian();
      if (cpi < 0.05) cpi = 0.05;
      u.counters.instructions = unit_instrs;
      u.counters.cycles =
          static_cast<std::uint64_t>(cpi * static_cast<double>(unit_instrs));
      u.methods = {jvm::MethodId{0}, phases[i].dominant_method};
      u.counts = {10, 30};
      p.units.push_back(std::move(u));
    }
  }
  // Deterministic sparse MAV blocks so mav/combined feature modes have
  // signal. A separate Rng keeps the CPI/stack draws above bit-identical to
  // what freq-mode tests have always seen; kFreq features ignore MAV.
  Rng mav_rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  for (std::size_t i = 0; i < p.units.size(); ++i) {
    if (i % 7 == 6) continue;  // some units keep an all-zero MAV
    for (std::size_t b = 0; b < hw::kMavDim; ++b) {
      if (mav_rng.next_bool(0.4)) {
        p.units[i].mav.counts[b] = mav_rng.next_below(2048);
      }
    }
  }
  return p;
}

/// A small, fast cluster configuration for engine tests.
inline exec::ClusterConfig tiny_cluster_config(std::uint64_t seed = 42) {
  exec::ClusterConfig cfg;
  cfg.memory.num_cores = 2;
  cfg.unit_instrs = 100'000;
  cfg.snapshot_interval = 10'000;
  cfg.seed = seed;
  return cfg;
}

}  // namespace simprof::testing
