// Unit tests for descriptive statistics and the grouped-CoV summary used in
// the Figure 6 homogeneity analysis.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "support/assert.h"
#include "support/rng.h"

namespace simprof::stats {
namespace {

TEST(Descriptive, MeanOfKnownValues) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Descriptive, SampleVarianceMatchesHandComputation) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // population variance of this classic example is 4; sample variance 32/7.
  EXPECT_NEAR(population_variance(xs), 4.0, 1e-12);
  EXPECT_NEAR(sample_variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, VarianceDegenerateCases) {
  EXPECT_DOUBLE_EQ(sample_variance(std::vector<double>{5.0}), 0.0);
  EXPECT_DOUBLE_EQ(population_variance(std::vector<double>{}), 0.0);
}

TEST(Descriptive, CovOfConstantSeriesIsZero) {
  std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(xs), 0.0);
}

TEST(Descriptive, CovScaleInvariance) {
  std::vector<double> xs{1.0, 2.0, 3.0};
  std::vector<double> ys{10.0, 20.0, 30.0};
  EXPECT_NEAR(coefficient_of_variation(xs), coefficient_of_variation(ys),
              1e-12);
}

TEST(Descriptive, MinMax) {
  std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
}

TEST(Descriptive, PearsonPerfectAndAnti) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{2, 4, 6, 8};
  std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Descriptive, PearsonConstantSideIsZero) {
  std::vector<double> x{1, 1, 1};
  std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(GroupedCov, PerfectSeparationGivesZeroWeightedCov) {
  // Two groups, each internally constant but with different means: the
  // population CoV is high while every group CoV is zero — the ideal phase
  // formation of the paper's Figure 6 discussion.
  std::vector<double> values{1, 1, 1, 5, 5, 5};
  std::vector<std::size_t> labels{0, 0, 0, 1, 1, 1};
  const CovSummary s = grouped_cov(values, labels, 2);
  EXPECT_GT(s.population, 0.5);
  EXPECT_DOUBLE_EQ(s.weighted, 0.0);
  EXPECT_DOUBLE_EQ(s.maximum, 0.0);
}

TEST(GroupedCov, UselessGroupingKeepsWeightedCovHigh) {
  std::vector<double> values{1, 5, 1, 5, 1, 5};
  std::vector<std::size_t> labels{0, 0, 0, 1, 1, 1};  // mixes both levels
  const CovSummary s = grouped_cov(values, labels, 2);
  EXPECT_GT(s.weighted, 0.4 * s.population);
}

TEST(GroupedCov, WeightedIsCountWeightedAverage) {
  // Group 0 (4 units) CoV 0; group 1 (2 units) CoV c.
  std::vector<double> values{2, 2, 2, 2, 1, 3};
  std::vector<std::size_t> labels{0, 0, 0, 0, 1, 1};
  const CovSummary s = grouped_cov(values, labels, 2);
  const double c1 = coefficient_of_variation(std::vector<double>{1.0, 3.0});
  EXPECT_NEAR(s.weighted, c1 * 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(s.maximum, c1, 1e-12);
}

TEST(GroupedCov, EmptyGroupsIgnored) {
  std::vector<double> values{1, 2};
  std::vector<std::size_t> labels{0, 0};
  const CovSummary s = grouped_cov(values, labels, 3);
  EXPECT_GE(s.maximum, 0.0);
}

TEST(GroupedCov, MismatchedLengthsThrow) {
  std::vector<double> values{1, 2};
  std::vector<std::size_t> labels{0};
  EXPECT_THROW(grouped_cov(values, labels, 1), ContractViolation);
}

// Property sweep: weighted CoV never exceeds max CoV, and grouping by the
// true generator always lowers weighted CoV below population CoV.
class GroupedCovProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupedCovProperty, WeightedBelowPopulationForTrueGrouping) {
  Rng rng(GetParam());
  const std::size_t groups = 2 + rng.next_below(4);
  std::vector<double> values;
  std::vector<std::size_t> labels;
  for (std::size_t g = 0; g < groups; ++g) {
    const double mean = 0.5 + static_cast<double>(g) * 1.5;
    const std::size_t n = 20 + rng.next_below(30);
    for (std::size_t i = 0; i < n; ++i) {
      values.push_back(mean + 0.05 * rng.next_gaussian());
      labels.push_back(g);
    }
  }
  const CovSummary s = grouped_cov(values, labels, groups);
  EXPECT_LE(s.weighted, s.maximum + 1e-12);
  EXPECT_LT(s.weighted, s.population);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupedCovProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(RunningMoments, MatchesBatchStatistics) {
  Rng rng(17);
  std::vector<double> xs;
  RunningMoments rm;
  for (std::size_t i = 0; i < 500; ++i) {
    const double x = 1.0 + rng.next_gaussian();
    xs.push_back(x);
    rm.push(x);
  }
  EXPECT_EQ(rm.count(), xs.size());
  EXPECT_NEAR(rm.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rm.sample_stddev(), sample_stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rm.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(rm.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(RunningMoments, MergeEqualsSequentialPush) {
  Rng rng(19);
  RunningMoments all, left, right;
  for (std::size_t i = 0; i < 300; ++i) {
    const double x = rng.next_double() * 4.0 - 2.0;
    all.push(x);
    (i < 120 ? left : right).push(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.sample_variance(), all.sample_variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningMoments, DegenerateCounts) {
  RunningMoments rm;
  EXPECT_EQ(rm.count(), 0u);
  EXPECT_DOUBLE_EQ(rm.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rm.sample_variance(), 0.0);  // n < 2 → defined zero
  rm.push(3.5);
  EXPECT_DOUBLE_EQ(rm.mean(), 3.5);
  EXPECT_DOUBLE_EQ(rm.sample_variance(), 0.0);
  EXPECT_DOUBLE_EQ(rm.min(), 3.5);
  EXPECT_DOUBLE_EQ(rm.max(), 3.5);

  // Merging an empty accumulator in either direction is a no-op.
  RunningMoments empty;
  rm.merge(empty);
  EXPECT_EQ(rm.count(), 1u);
  empty.merge(rm);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.5);
}

}  // namespace
}  // namespace simprof::stats
