// Unit tests for the input-sensitivity machinery (Section III-D /
// Algorithm 1): unit classification onto training centers, the Eq. 6
// mean/stddev 10% rule, and report accumulation across references.
#include <gtest/gtest.h>

#include "core/sensitivity.h"
#include "support/assert.h"
#include "test_util.h"

namespace simprof::core {
namespace {

using testing::SyntheticPhase;
using testing::synthetic_profile;

TEST(ClassifyUnits, SelfClassificationMatchesTrainingLabels) {
  auto p = synthetic_profile({{40, 0.5, 0.05, 1}, {40, 2.0, 0.1, 2}});
  const auto model = form_phases(p);
  const auto labels = classify_units(model, p);
  ASSERT_EQ(labels.size(), model.labels.size());
  EXPECT_EQ(labels, model.labels);
}

TEST(ClassifyUnits, MatchesByNameAcrossDifferentMethodTables) {
  auto train = synthetic_profile({{30, 0.5, 0.0, 1}, {30, 2.0, 0.0, 2}});
  const auto model = form_phases(train);

  // Reference profile with the same method *names* but permuted ids.
  ThreadProfile ref;
  ref.method_names = {"m2", "m0", "m1"};  // permutation of the training table
  ref.method_kinds = {jvm::OpKind::kMap, jvm::OpKind::kFramework,
                      jvm::OpKind::kMap};
  for (int i = 0; i < 10; ++i) {
    UnitRecord u;
    u.unit_id = static_cast<std::uint64_t>(i);
    u.counters.instructions = 1'000'000;
    u.counters.cycles = 500'000;
    // Dominated by "m2" (local id 0) + background "m0" (local id 1).
    u.methods = {0, 1};
    u.counts = {30, 10};
    ref.units.push_back(std::move(u));
  }
  const auto labels = classify_units(model, ref);
  // All reference units look like the training phase dominated by "m2".
  std::size_t m2_phase = labels[0];
  for (auto l : labels) EXPECT_EQ(l, m2_phase);
  // And that phase must be the one whose training units carried m2.
  for (std::size_t u = 0; u < train.num_units(); ++u) {
    if (train.units[u].methods[1] == 2) {
      EXPECT_EQ(model.labels[u], m2_phase);
    }
  }
}

TEST(PhaseSensitivity, IdenticalInputIsInsensitive) {
  auto p = synthetic_profile({{50, 0.8, 0.05, 1}, {50, 1.8, 0.05, 2}});
  const auto model = form_phases(p);
  const auto per_phase = phase_sensitivity_test(model, p);
  for (const auto& s : per_phase) {
    EXPECT_FALSE(s.sensitive);
    EXPECT_LT(s.mean_delta, 0.01);
  }
}

TEST(PhaseSensitivity, ShiftedMeanTripsTheTenPercentRule) {
  auto train = synthetic_profile({{60, 1.0, 0.02, 1}, {60, 2.0, 0.02, 2}});
  const auto model = form_phases(train);
  // Reference: same stacks, phase-1 units 30% slower.
  auto ref = synthetic_profile({{60, 1.0, 0.02, 1}, {60, 2.6, 0.02, 2}});
  const auto per_phase = phase_sensitivity_test(model, ref);
  int sensitive = 0;
  for (const auto& s : per_phase) sensitive += s.sensitive ? 1 : 0;
  EXPECT_EQ(sensitive, 1);
}

TEST(PhaseSensitivity, StddevShiftAloneAlsoTrips) {
  auto train = synthetic_profile({{200, 1.0, 0.05, 1}}, 5);
  const auto model = form_phases(train);
  auto ref = synthetic_profile({{200, 1.0, 0.50, 1}}, 6);
  const auto per_phase = phase_sensitivity_test(model, ref);
  ASSERT_EQ(per_phase.size(), 1u);
  EXPECT_TRUE(per_phase[0].sensitive);
  EXPECT_LT(per_phase[0].mean_delta, 0.10);  // mean was unchanged
  EXPECT_GT(per_phase[0].stddev_delta, 0.10);
}

TEST(PhaseSensitivity, ThresholdIsConfigurable) {
  auto train = synthetic_profile({{100, 1.0, 0.0, 1}});
  const auto model = form_phases(train);
  auto ref = synthetic_profile({{100, 1.05, 0.0, 1}});  // 5% shift
  EXPECT_FALSE(phase_sensitivity_test(model, ref, 0.10)[0].sensitive);
  EXPECT_TRUE(phase_sensitivity_test(model, ref, 0.02)[0].sensitive);
}

TEST(PhaseSensitivity, MissingPhaseInReferenceNotSensitive) {
  auto train = synthetic_profile({{40, 0.5, 0.0, 1}, {40, 2.0, 0.0, 2}});
  const auto model = form_phases(train);
  // Reference exercises only the method-1 phase.
  auto ref = synthetic_profile({{40, 0.5, 0.0, 1}});
  const auto per_phase = phase_sensitivity_test(model, ref);
  int with_refs = 0;
  for (const auto& s : per_phase) {
    if (s.ref_count == 0) {
      EXPECT_FALSE(s.sensitive);
    } else {
      ++with_refs;
    }
  }
  EXPECT_EQ(with_refs, 1);
}

TEST(Report, AccumulatesAcrossReferences) {
  // Algorithm 1: a phase is sensitive if ANY reference trips it.
  auto train = synthetic_profile({{60, 1.0, 0.02, 1}, {60, 2.0, 0.02, 2}});
  const auto model = form_phases(train);
  auto ref_same = synthetic_profile({{60, 1.0, 0.02, 1}, {60, 2.0, 0.02, 2}});
  auto ref_shift = synthetic_profile({{60, 1.4, 0.02, 1}, {60, 2.0, 0.02, 2}});
  const auto report = input_sensitivity_test(
      model, {&ref_same, &ref_shift}, {"same", "shifted"});
  EXPECT_EQ(report.num_sensitive(), 1u);
  EXPECT_EQ(report.num_insensitive(), 1u);
  ASSERT_EQ(report.per_reference.size(), 2u);
  EXPECT_EQ(report.reference_names[1], "shifted");
}

TEST(Report, SensitivePointFraction) {
  auto train = synthetic_profile({{80, 1.0, 0.3, 1}, {20, 2.0, 0.3, 2}}, 3);
  const auto model = form_phases(train);
  auto ref = synthetic_profile({{80, 1.6, 0.3, 1}, {20, 2.0, 0.3, 2}}, 4);
  const auto report = input_sensitivity_test(model, {&ref}, {"ref"});
  const auto plan = simprof_sample(train, model, 20, 9);

  const double frac = report.sensitive_point_fraction(plan);
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
  // Only the large phase moved; the fraction equals the share of plan
  // points that landed in it.
  std::size_t in_sensitive = 0;
  for (const auto& pt : plan.points) {
    if (report.phase_sensitive[pt.phase]) ++in_sensitive;
  }
  EXPECT_NEAR(frac,
              static_cast<double>(in_sensitive) /
                  static_cast<double>(plan.points.size()),
              1e-12);
}

TEST(Report, MismatchedNamesThrow) {
  auto train = synthetic_profile({{10, 1.0, 0.0, 1}});
  const auto model = form_phases(train);
  auto ref = synthetic_profile({{10, 1.0, 0.0, 1}});
  EXPECT_THROW(input_sensitivity_test(model, {&ref}, {"a", "b"}),
               ContractViolation);
  EXPECT_THROW(input_sensitivity_test(model, {nullptr}, {"a"}),
               ContractViolation);
}

}  // namespace
}  // namespace simprof::core
