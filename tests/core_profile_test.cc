// Unit tests for thread profiling: snapshot histogram accumulation, unit
// records, self-contained method tables and serialization.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>

#include "core/profile.h"
#include "support/assert.h"
#include "support/serialize.h"
#include "test_util.h"

namespace simprof::core {
namespace {

TEST(SamplingManager, AccumulatesSnapshotsIntoUnitHistograms) {
  jvm::MethodRegistry reg;
  const auto a = reg.intern("m.A", jvm::OpKind::kMap);
  const auto b = reg.intern("m.B", jvm::OpKind::kReduce);

  SamplingManager mgr(reg);
  const std::vector<jvm::MethodId> s1{a};
  const std::vector<jvm::MethodId> s2{a, b};
  mgr.on_snapshot(s1);
  mgr.on_snapshot(s2);
  mgr.on_snapshot(s2);
  hw::PmuCounters delta;
  delta.instructions = 1000;
  delta.cycles = 1500;
  mgr.on_unit_boundary(delta, {});

  ThreadProfile p = mgr.take_profile();
  ASSERT_EQ(p.num_units(), 1u);
  const UnitRecord& u = p.units[0];
  ASSERT_EQ(u.methods.size(), 2u);
  EXPECT_EQ(u.methods[0], a);
  EXPECT_EQ(u.counts[0], 3u);  // a appeared in all three snapshots
  EXPECT_EQ(u.counts[1], 2u);
  EXPECT_DOUBLE_EQ(u.cpi(), 1.5);
}

TEST(SamplingManager, HistogramResetsBetweenUnits) {
  jvm::MethodRegistry reg;
  const auto a = reg.intern("m.A", jvm::OpKind::kMap);
  SamplingManager mgr(reg);
  const std::vector<jvm::MethodId> s{a};
  mgr.on_snapshot(s);
  mgr.on_unit_boundary({}, {});
  mgr.on_snapshot(s);
  mgr.on_snapshot(s);
  mgr.on_unit_boundary({}, {});
  ThreadProfile p = mgr.take_profile();
  ASSERT_EQ(p.num_units(), 2u);
  EXPECT_EQ(p.units[0].counts[0], 1u);
  EXPECT_EQ(p.units[1].counts[0], 2u);
  EXPECT_EQ(p.units[1].unit_id, 1u);
}

TEST(SamplingManager, RecursiveFramesCountPerAppearance) {
  jvm::MethodRegistry reg;
  const auto a = reg.intern("m.Rec", jvm::OpKind::kCompute);
  SamplingManager mgr(reg);
  const std::vector<jvm::MethodId> deep{a, a, a};
  mgr.on_snapshot(deep);
  mgr.on_unit_boundary({}, {});
  ThreadProfile p = mgr.take_profile();
  EXPECT_EQ(p.units[0].counts[0], 3u);
}

TEST(ThreadProfile, OracleCpiIsUnweightedUnitMean) {
  // Paper: oracle CPI is the average of the per-unit CPIs.
  auto p = testing::synthetic_profile({{2, 1.0, 0.0, 1}, {2, 3.0, 0.0, 2}});
  EXPECT_NEAR(p.oracle_cpi(), 2.0, 1e-9);
  EXPECT_EQ(p.cpis().size(), 4u);
}

TEST(ThreadProfile, TotalsSumUnits) {
  auto p = testing::synthetic_profile({{3, 1.0, 0.0, 1}}, 7, 1000);
  EXPECT_EQ(p.total_instructions(), 3000u);
  EXPECT_EQ(p.total_cycles(), 3000u);
}

TEST(ThreadProfile, SaveLoadRoundTrip) {
  auto p = testing::synthetic_profile({{5, 1.2, 0.3, 1}, {4, 0.7, 0.1, 2}});
  p.units[0].counters.llc_misses = 99;
  std::stringstream buf;
  p.save(buf);
  const ThreadProfile q = ThreadProfile::load(buf);
  ASSERT_EQ(q.num_units(), p.num_units());
  ASSERT_EQ(q.num_methods(), p.num_methods());
  EXPECT_EQ(q.method_names, p.method_names);
  for (std::size_t i = 0; i < p.num_units(); ++i) {
    EXPECT_EQ(q.units[i].counters.cycles, p.units[i].counters.cycles);
    EXPECT_EQ(q.units[i].methods, p.units[i].methods);
    EXPECT_EQ(q.units[i].counts, p.units[i].counts);
  }
  EXPECT_EQ(q.units[0].counters.llc_misses, 99u);
}

TEST(ThreadProfile, LoadRejectsGarbage) {
  std::stringstream buf("this is not a profile at all, sorry");
  EXPECT_THROW(ThreadProfile::load(buf), ContractViolation);
}

TEST(ThreadProfile, LoadRejectsTruncated) {
  auto p = testing::synthetic_profile({{3, 1.0, 0.0, 1}});
  std::stringstream buf;
  p.save(buf);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream cut(bytes);
  EXPECT_THROW(ThreadProfile::load(cut), ContractViolation);
}

// --- Corrupt-input regressions (see DESIGN.md §6d). Archive layout v3:
// bytes [0,4) magic "SPRF", [4,8) version u32, [8,16) method count u64.

namespace {
std::string serialized(const ThreadProfile& p) {
  std::stringstream buf;
  p.save(buf);
  return buf.str();
}
}  // namespace

TEST(ThreadProfile, LoadRejectsGarbageWithTypedError) {
  std::stringstream buf("XXXX not a profile, but comfortably long enough");
  EXPECT_THROW(ThreadProfile::load(buf), SerializeError);
}

TEST(ThreadProfile, LoadRejectsVersionSkew) {
  auto bytes = serialized(testing::synthetic_profile({{3, 1.0, 0.0, 1}}));
  bytes[4] = static_cast<char>(bytes[4] + 1);
  std::stringstream skewed(bytes);
  EXPECT_THROW(ThreadProfile::load(skewed), SerializeError);
}

TEST(ThreadProfile, LoadRejectsInflatedMethodCountPrefix) {
  // Regression: an untrusted u64 count used to drive reserve() directly,
  // so a single flipped high bit meant a multi-gigabyte allocation.
  auto bytes = serialized(testing::synthetic_profile({{3, 1.0, 0.0, 1}}));
  const std::uint64_t huge = 1ULL << 40;
  std::memcpy(bytes.data() + 8, &huge, sizeof huge);
  std::stringstream inflated(bytes);
  EXPECT_THROW(ThreadProfile::load(inflated), SerializeError);
}

TEST(ThreadProfile, LoadRejectsInvalidKindByte) {
  ThreadProfile p;
  p.method_names = {"m"};
  p.method_kinds = {jvm::OpKind::kMap};
  auto bytes = serialized(p);
  // Method entry: u64 name length at 16, 'm' at 24, kind byte at 25.
  bytes[25] = '\x2a';
  std::stringstream bad(bytes);
  EXPECT_THROW(ThreadProfile::load(bad), SerializeError);
}

TEST(ThreadProfile, LoadRejectsOutOfRangeMethodId) {
  ThreadProfile p;
  p.method_names = {"m"};
  p.method_kinds = {jvm::OpKind::kMap};
  UnitRecord u;
  u.counters.instructions = 10;
  u.methods = {7};  // only method id 0 exists
  u.counts = {1};
  p.units.push_back(u);
  std::stringstream buf(serialized(p));
  EXPECT_THROW(ThreadProfile::load(buf), SerializeError);
}

TEST(ThreadProfile, LoadRejectsUnsortedUnitMethodIds) {
  ThreadProfile p;
  p.method_names = {"a", "b"};
  p.method_kinds = {jvm::OpKind::kMap, jvm::OpKind::kReduce};
  UnitRecord u;
  u.counters.instructions = 10;
  u.methods = {1, 0};  // histogram ids must be strictly increasing
  u.counts = {1, 1};
  p.units.push_back(u);
  std::stringstream buf(serialized(p));
  EXPECT_THROW(ThreadProfile::load(buf), SerializeError);
}

TEST(SyntheticProfile, InterleavesPhases) {
  auto p = testing::synthetic_profile({{3, 1.0, 0.0, 1}, {3, 2.0, 0.0, 2}});
  ASSERT_EQ(p.num_units(), 6u);
  // Round-robin interleave: units alternate dominant methods.
  EXPECT_EQ(p.units[0].methods[1], 1u);
  EXPECT_EQ(p.units[1].methods[1], 2u);
  EXPECT_EQ(p.units[2].methods[1], 1u);
}

}  // namespace
}  // namespace simprof::core
