// Observability layer tests: log gating/format, sharded metric merge
// determinism, histogram bucket edges, trace-JSON well-formedness (parsed
// by a mini JSON validator in-test), and the zero-perturbation contract —
// the pipeline's results are bit-identical with tracing on vs off.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/lab.h"
#include "core/phase.h"
#include "core/sampling.h"
#include "obs/obs.h"
#include "test_util.h"

namespace simprof::obs {
namespace {

// ---------------------------------------------------------------------------
// Mini JSON validator: recursive descent over the full value grammar.
// Accepts exactly one value followed by whitespace. Enough to assert that
// the trace / metrics emitters produce well-formed JSON without a library.

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool json_well_formed(std::string_view text) {
  return JsonValidator(text).valid();
}

TEST(JsonValidatorTest, SanityChecks) {
  EXPECT_TRUE(json_well_formed(R"({"a": [1, 2.5, -3e4], "b": "x\n", "c": {}})"));
  EXPECT_TRUE(json_well_formed("[]"));
  EXPECT_FALSE(json_well_formed(R"({"a": })"));
  EXPECT_FALSE(json_well_formed(R"({"a": 1,})"));
  EXPECT_FALSE(json_well_formed(R"("unterminated)"));
  EXPECT_FALSE(json_well_formed("{} trailing"));
}

// ---------------------------------------------------------------------------
// Logging.

/// Restores level + sink on scope exit so tests can't leak configuration.
class LogGuard {
 public:
  LogGuard() : saved_(log_level()) {}
  ~LogGuard() {
    set_log_sink(nullptr);
    set_log_level(saved_);
  }

 private:
  LogLevel saved_;
};

TEST(LogTest, ParseLevelNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(to_string(LogLevel::kWarn), "warn");
}

TEST(LogTest, LevelGating) {
  LogGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
}

TEST(LogTest, SuppressedMessageDoesNotEvaluateStream) {
  LogGuard guard;
  set_log_level(LogLevel::kWarn);
  int evaluations = 0;
  auto touch = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  SIMPROF_LOG(kDebug) << touch();
  EXPECT_EQ(evaluations, 0);
  SIMPROF_LOG(kError) << touch();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogTest, LineFormatAndSinkRedirect) {
  LogGuard guard;
  std::ostringstream sink;
  set_log_sink(&sink);
  set_log_level(LogLevel::kInfo);

  SIMPROF_LOG(kDebug) << "hidden";
  SIMPROF_LOG(kInfo) << "cache hit path=" << 42;

  const std::string out = sink.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("cache hit path=42"), std::string::npos);
  // Header: "[+S.mmms LEVEL rR/tT] " — check the stable pieces.
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find("info"), std::string::npos);
  EXPECT_NE(out.find(" r0/t"), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

// ---------------------------------------------------------------------------
// Metrics.

TEST(MetricsTest, CounterMergeDeterministicAcrossThreadCounts) {
  Counter& c = metrics().counter("test.merge_determinism");
  constexpr std::uint64_t kPerThread = 10'000;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const std::uint64_t before = c.value();
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&c] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(3);
      });
    }
    for (auto& t : pool) t.join();
    // The merged delta is exact for any thread count / interleaving.
    EXPECT_EQ(c.value() - before, threads * kPerThread * 3);
  }
}

TEST(MetricsTest, HistogramBucketEdges) {
  Histogram& h = metrics().histogram("test.bucket_edges", {1.0, 2.0, 4.0});
  ASSERT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 4.0}));
  const auto before = h.bucket_counts();
  ASSERT_EQ(before.size(), 4u);  // 3 bounds + overflow

  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (v <= bound is inclusive)
  h.observe(1.5);   // bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(4.001); // overflow
  h.observe(1e9);   // overflow

  const auto after = h.bucket_counts();
  EXPECT_EQ(after[0] - before[0], 2u);
  EXPECT_EQ(after[1] - before[1], 2u);
  EXPECT_EQ(after[2] - before[2], 1u);
  EXPECT_EQ(after[3] - before[3], 2u);
  EXPECT_EQ(h.count(), after[0] + after[1] + after[2] + after[3]);
}

TEST(MetricsTest, HistogramMergeDeterministicAcrossThreadCounts) {
  Histogram& h = metrics().histogram("test.hist_merge", {10.0, 100.0});
  constexpr std::uint64_t kPerThread = 5'000;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const auto before = h.bucket_counts();
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&h] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          h.observe(static_cast<double>(i % 3) * 60.0);  // 0, 60, 120
        }
      });
    }
    for (auto& t : pool) t.join();
    const auto after = h.bucket_counts();
    // i%3==0 → bucket 0; ==1 → bucket 1; ==2 → overflow. kPerThread divides
    // evenly by 3? 5000 % 3 = 2, so counts are 1667/1667/1666 per thread.
    EXPECT_EQ(after[0] - before[0], threads * 1667u);
    EXPECT_EQ(after[1] - before[1], threads * 1667u);
    EXPECT_EQ(after[2] - before[2], threads * 1666u);
  }
}

TEST(MetricsTest, HistogramRejectsNonIncreasingBounds) {
  EXPECT_THROW(metrics().histogram("test.bad_bounds_eq", {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(metrics().histogram("test.bad_bounds_dec", {2.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(metrics().histogram("test.bad_bounds_empty", {}),
               std::invalid_argument);
}

TEST(MetricsTest, HandlesAreStable) {
  Counter& a = metrics().counter("test.stable_handle");
  Counter& b = metrics().counter("test.stable_handle");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = metrics().histogram("test.stable_hist", {1.0, 2.0});
  Histogram& h2 = metrics().histogram("test.stable_hist", {9.0});  // ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge& g = metrics().gauge("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.75);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(MetricsTest, JsonSnapshotWellFormed) {
  metrics().counter("test.json \"quoted\\name").increment();
  metrics().gauge("test.json_gauge").set(0.5);
  metrics().histogram("test.json_hist", {1.0, 10.0}).observe(3.0);
  const std::string json = metrics().to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("test.json_hist"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracing.

/// Stops + clears the trace buffer on scope exit.
struct TraceGuard {
  TraceGuard() { clear_trace(); }
  ~TraceGuard() {
    stop_tracing();
    clear_trace();
  }
};

TEST(TraceTest, DisabledEmittersBufferNothing) {
  TraceGuard guard;
  ASSERT_FALSE(trace_enabled());
  {
    ObsSpan span("should_not_appear", {{"x", 1}});
    trace_instant("nor_this");
    trace_virtual_span("virtual_off", 0, 100, 0);
  }
  const std::string json = trace_to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_EQ(json.find("should_not_appear"), std::string::npos);
  EXPECT_EQ(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(TraceTest, ChromeTraceJsonWellFormedAndComplete) {
  TraceGuard guard;
  start_tracing();
  ASSERT_TRUE(trace_enabled());
  {
    ObsSpan outer("outer", {{"count", std::uint64_t{7}},
                            {"ratio", 0.5},
                            {"hit", true},
                            {"path", "a\"b\\c\n"}});
    ObsSpan inner("inner");
    trace_instant("tick", {{"n", -3}});
  }
  trace_virtual_span("stage/task", 2'000, 6'000, 1, {{"task", 0}});
  trace_virtual_instant("migration", 4'000, 1, {{"instructions", 123}});
  stop_tracing();

  const std::string json = trace_to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;

  // Chrome trace-event envelope plus both timelines' metadata.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("wall-clock"), std::string::npos);
  EXPECT_NE(json.find("virtual-clock"), std::string::npos);

  // Every emitted event is present; the string arg survived escaping.
  for (const char* name :
       {"outer", "inner", "tick", "stage/task", "migration"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  EXPECT_NE(json.find("a\\\"b\\\\c\\n"), std::string::npos);

  // The virtual span lands at cycles / (GHz * 1000) microseconds: start
  // 2000 cycles @ 2 GHz = 1 µs, duration 4000 cycles = 2 µs.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
}

TEST(TraceTest, WriteTraceRoundTrip) {
  TraceGuard guard;
  start_tracing();
  { ObsSpan span("file_span"); }
  stop_tracing();

  const auto path = std::filesystem::temp_directory_path() /
                    ("simprof_obs_trace_" + std::to_string(::getpid()) +
                     ".json");
  ASSERT_TRUE(write_trace(path.string()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), trace_to_json());
  EXPECT_TRUE(json_well_formed(buf.str()));
  std::filesystem::remove(path);
}

TEST(TraceTest, ClearDropsBufferedEvents) {
  TraceGuard guard;
  start_tracing();
  { ObsSpan span("ephemeral"); }
  stop_tracing();
  ASSERT_NE(trace_to_json().find("ephemeral"), std::string::npos);
  clear_trace();
  EXPECT_EQ(trace_to_json().find("ephemeral"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Zero-perturbation: results are bit-identical with tracing on vs off.

core::ThreadProfile bit_identity_profile() {
  using simprof::testing::SyntheticPhase;
  return simprof::testing::synthetic_profile(
      {SyntheticPhase{120, 1.0, 0.05, jvm::MethodId{1}},
       SyntheticPhase{80, 2.5, 0.2, jvm::MethodId{2}},
       SyntheticPhase{40, 4.0, 0.1, jvm::MethodId{3}}});
}

void expect_same_model(const core::PhaseModel& x, const core::PhaseModel& y) {
  ASSERT_EQ(x.k, y.k);
  EXPECT_EQ(x.labels, y.labels);
  EXPECT_EQ(x.feature_names, y.feature_names);
  ASSERT_EQ(x.centers.rows(), y.centers.rows());
  ASSERT_EQ(x.centers.cols(), y.centers.cols());
  for (std::size_t r = 0; r < x.centers.rows(); ++r) {
    for (std::size_t c = 0; c < x.centers.cols(); ++c) {
      EXPECT_EQ(x.centers.at(r, c), y.centers.at(r, c));  // bitwise, no EPS
    }
  }
  EXPECT_EQ(x.representative_units, y.representative_units);
}

void expect_same_plan(const core::SamplePlan& x, const core::SamplePlan& y) {
  ASSERT_EQ(x.points.size(), y.points.size());
  for (std::size_t i = 0; i < x.points.size(); ++i) {
    EXPECT_EQ(x.points[i].unit_index, y.points[i].unit_index);
    EXPECT_EQ(x.points[i].phase, y.points[i].phase);
    EXPECT_EQ(x.points[i].weight, y.points[i].weight);
  }
  EXPECT_EQ(x.allocation, y.allocation);
  EXPECT_EQ(x.estimated_cpi, y.estimated_cpi);
  EXPECT_EQ(x.standard_error, y.standard_error);
}

TEST(BitIdentityTest, PhaseFormationAndSamplingUnperturbedByTracing) {
  const auto profile = bit_identity_profile();

  // Baseline: tracing off, logging quiet.
  LogGuard log_guard;
  std::ostringstream sink;
  set_log_sink(&sink);
  ASSERT_FALSE(trace_enabled());
  const auto model_off = core::form_phases(profile);
  const auto plan_off = core::simprof_sample(profile, model_off, 25, 7);

  // Same pipeline with tracing armed and verbose logging.
  TraceGuard trace_guard;
  set_log_level(LogLevel::kTrace);
  start_tracing();
  const auto model_on = core::form_phases(profile);
  const auto plan_on = core::simprof_sample(profile, model_on, 25, 7);
  stop_tracing();

  expect_same_model(model_off, model_on);
  expect_same_plan(plan_off, plan_on);

  // The traced run actually produced span events for the instrumented path.
  const std::string json = trace_to_json();
  EXPECT_NE(json.find("phase.form_phases"), std::string::npos);
  EXPECT_NE(json.find("choose_k"), std::string::npos);
  EXPECT_NE(json.find("sample.simprof"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Lab cache provenance through the obs layer.

class ScratchDir {
 public:
  ScratchDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("simprof_obs_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  const char* c_str() const { return path_.c_str(); }

 private:
  std::filesystem::path path_;
};

TEST(LabProvenanceTest, CacheHitAndMissRecordedInMetricsAndRun) {
  LogGuard log_guard;
  std::ostringstream sink;
  set_log_sink(&sink);

  ScratchDir dir;
  core::LabConfig cfg;
  cfg.scale = 0.05;
  cfg.graph_scale_override = 12;
  cfg.cache_dir = dir.c_str();

  Counter& hits = metrics().counter("lab.cache_hits");
  Counter& misses = metrics().counter("lab.cache_misses");
  const std::uint64_t hits0 = hits.value();
  const std::uint64_t misses0 = misses.value();

  core::WorkloadLab lab(cfg);
  const auto first = lab.run("wc_sp");
  EXPECT_FALSE(first.from_cache);
  EXPECT_FALSE(first.cache_path.empty());
  EXPECT_EQ(misses.value() - misses0, 1u);
  EXPECT_EQ(hits.value() - hits0, 0u);
  EXPECT_NE(sink.str().find("cache miss"), std::string::npos);

  const auto second = lab.run("wc_sp");
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.cache_path, first.cache_path);
  EXPECT_EQ(hits.value() - hits0, 1u);
  EXPECT_EQ(misses.value() - misses0, 1u);
  EXPECT_NE(sink.str().find("cache hit"), std::string::npos);

  // The cached reload is bit-identical to the fresh profile.
  ASSERT_EQ(first.profile.num_units(), second.profile.num_units());
  for (std::size_t u = 0; u < first.profile.num_units(); ++u) {
    const auto& a = first.profile.units[u];
    const auto& b = second.profile.units[u];
    EXPECT_EQ(a.unit_id, b.unit_id);
    EXPECT_EQ(a.counters.instructions, b.counters.instructions);
    EXPECT_EQ(a.counters.cycles, b.counters.cycles);
    EXPECT_EQ(a.methods, b.methods);
    EXPECT_EQ(a.counts, b.counts);
  }
}

}  // namespace
}  // namespace simprof::obs
