// Observability layer tests: log gating/format, sharded metric merge
// determinism, histogram bucket edges, trace-JSON well-formedness (parsed
// by a mini JSON validator in-test), and the zero-perturbation contract —
// the pipeline's results are bit-identical with tracing on vs off.
#include <gtest/gtest.h>

#include <bit>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "core/lab.h"
#include "core/phase.h"
#include "core/sampling.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "support/thread_pool.h"
#include "test_util.h"

namespace simprof::obs {
namespace {

// ---------------------------------------------------------------------------
// Mini JSON validator: recursive descent over the full value grammar.
// Accepts exactly one value followed by whitespace. Enough to assert that
// the trace / metrics emitters produce well-formed JSON without a library.

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool json_well_formed(std::string_view text) {
  return JsonValidator(text).valid();
}

TEST(JsonValidatorTest, SanityChecks) {
  EXPECT_TRUE(json_well_formed(R"({"a": [1, 2.5, -3e4], "b": "x\n", "c": {}})"));
  EXPECT_TRUE(json_well_formed("[]"));
  EXPECT_FALSE(json_well_formed(R"({"a": })"));
  EXPECT_FALSE(json_well_formed(R"({"a": 1,})"));
  EXPECT_FALSE(json_well_formed(R"("unterminated)"));
  EXPECT_FALSE(json_well_formed("{} trailing"));
}

// ---------------------------------------------------------------------------
// Logging.

/// Restores level + sink on scope exit so tests can't leak configuration.
class LogGuard {
 public:
  LogGuard() : saved_(log_level()) {}
  ~LogGuard() {
    set_log_sink(nullptr);
    set_log_level(saved_);
  }

 private:
  LogLevel saved_;
};

TEST(LogTest, ParseLevelNames) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(to_string(LogLevel::kWarn), "warn");
}

TEST(LogTest, LevelGating) {
  LogGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
}

TEST(LogTest, SuppressedMessageDoesNotEvaluateStream) {
  LogGuard guard;
  set_log_level(LogLevel::kWarn);
  int evaluations = 0;
  auto touch = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  SIMPROF_LOG(kDebug) << touch();
  EXPECT_EQ(evaluations, 0);
  SIMPROF_LOG(kError) << touch();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogTest, LineFormatAndSinkRedirect) {
  LogGuard guard;
  std::ostringstream sink;
  set_log_sink(&sink);
  set_log_level(LogLevel::kInfo);

  SIMPROF_LOG(kDebug) << "hidden";
  SIMPROF_LOG(kInfo) << "cache hit path=" << 42;

  const std::string out = sink.str();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("cache hit path=42"), std::string::npos);
  // Header: "[+S.mmms LEVEL rR/tT] " — check the stable pieces.
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find("info"), std::string::npos);
  EXPECT_NE(out.find(" r0/t"), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

// ---------------------------------------------------------------------------
// Metrics.

TEST(MetricsTest, CounterMergeDeterministicAcrossThreadCounts) {
  Counter& c = metrics().counter("test.merge_determinism");
  constexpr std::uint64_t kPerThread = 10'000;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const std::uint64_t before = c.value();
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&c] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(3);
      });
    }
    for (auto& t : pool) t.join();
    // The merged delta is exact for any thread count / interleaving.
    EXPECT_EQ(c.value() - before, threads * kPerThread * 3);
  }
}

TEST(MetricsTest, HistogramBucketEdges) {
  Histogram& h = metrics().histogram("test.bucket_edges", {1.0, 2.0, 4.0});
  ASSERT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 4.0}));
  const auto before = h.bucket_counts();
  ASSERT_EQ(before.size(), 4u);  // 3 bounds + overflow

  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (v <= bound is inclusive)
  h.observe(1.5);   // bucket 1
  h.observe(2.0);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(4.001); // overflow
  h.observe(1e9);   // overflow

  const auto after = h.bucket_counts();
  EXPECT_EQ(after[0] - before[0], 2u);
  EXPECT_EQ(after[1] - before[1], 2u);
  EXPECT_EQ(after[2] - before[2], 1u);
  EXPECT_EQ(after[3] - before[3], 2u);
  EXPECT_EQ(h.count(), after[0] + after[1] + after[2] + after[3]);
}

TEST(MetricsTest, HistogramMergeDeterministicAcrossThreadCounts) {
  Histogram& h = metrics().histogram("test.hist_merge", {10.0, 100.0});
  constexpr std::uint64_t kPerThread = 5'000;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const auto before = h.bucket_counts();
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&h] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          h.observe(static_cast<double>(i % 3) * 60.0);  // 0, 60, 120
        }
      });
    }
    for (auto& t : pool) t.join();
    const auto after = h.bucket_counts();
    // i%3==0 → bucket 0; ==1 → bucket 1; ==2 → overflow. kPerThread divides
    // evenly by 3? 5000 % 3 = 2, so counts are 1667/1667/1666 per thread.
    EXPECT_EQ(after[0] - before[0], threads * 1667u);
    EXPECT_EQ(after[1] - before[1], threads * 1667u);
    EXPECT_EQ(after[2] - before[2], threads * 1666u);
  }
}

TEST(MetricsTest, HistogramRejectsNonIncreasingBounds) {
  EXPECT_THROW(metrics().histogram("test.bad_bounds_eq", {1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(metrics().histogram("test.bad_bounds_dec", {2.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(metrics().histogram("test.bad_bounds_empty", {}),
               std::invalid_argument);
}

TEST(MetricsTest, HandlesAreStable) {
  Counter& a = metrics().counter("test.stable_handle");
  Counter& b = metrics().counter("test.stable_handle");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = metrics().histogram("test.stable_hist", {1.0, 2.0});
  Histogram& h2 = metrics().histogram("test.stable_hist", {9.0});  // ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge& g = metrics().gauge("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.75);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(MetricsTest, JsonSnapshotWellFormed) {
  metrics().counter("test.json \"quoted\\name").increment();
  metrics().gauge("test.json_gauge").set(0.5);
  metrics().histogram("test.json_hist", {1.0, 10.0}).observe(3.0);
  const std::string json = metrics().to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("test.json_hist"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tracing.

/// Stops + clears the trace buffer on scope exit.
struct TraceGuard {
  TraceGuard() { clear_trace(); }
  ~TraceGuard() {
    stop_tracing();
    clear_trace();
  }
};

TEST(TraceTest, DisabledEmittersBufferNothing) {
  TraceGuard guard;
  ASSERT_FALSE(trace_enabled());
  {
    ObsSpan span("should_not_appear", {{"x", 1}});
    trace_instant("nor_this");
    trace_virtual_span("virtual_off", 0, 100, 0);
  }
  const std::string json = trace_to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_EQ(json.find("should_not_appear"), std::string::npos);
  EXPECT_EQ(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(TraceTest, ChromeTraceJsonWellFormedAndComplete) {
  TraceGuard guard;
  start_tracing();
  ASSERT_TRUE(trace_enabled());
  {
    ObsSpan outer("outer", {{"count", std::uint64_t{7}},
                            {"ratio", 0.5},
                            {"hit", true},
                            {"path", "a\"b\\c\n"}});
    ObsSpan inner("inner");
    trace_instant("tick", {{"n", -3}});
  }
  trace_virtual_span("stage/task", 2'000, 6'000, 1, {{"task", 0}});
  trace_virtual_instant("migration", 4'000, 1, {{"instructions", 123}});
  stop_tracing();

  const std::string json = trace_to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;

  // Chrome trace-event envelope plus both timelines' metadata.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("wall-clock"), std::string::npos);
  EXPECT_NE(json.find("virtual-clock"), std::string::npos);

  // Every emitted event is present; the string arg survived escaping.
  for (const char* name :
       {"outer", "inner", "tick", "stage/task", "migration"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  EXPECT_NE(json.find("a\\\"b\\\\c\\n"), std::string::npos);

  // The virtual span lands at cycles / (GHz * 1000) microseconds: start
  // 2000 cycles @ 2 GHz = 1 µs, duration 4000 cycles = 2 µs.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
}

TEST(TraceTest, WriteTraceRoundTrip) {
  TraceGuard guard;
  start_tracing();
  { ObsSpan span("file_span"); }
  stop_tracing();

  const auto path = std::filesystem::temp_directory_path() /
                    ("simprof_obs_trace_" + std::to_string(::getpid()) +
                     ".json");
  ASSERT_TRUE(write_trace(path.string()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), trace_to_json());
  EXPECT_TRUE(json_well_formed(buf.str()));
  std::filesystem::remove(path);
}

TEST(TraceTest, ClearDropsBufferedEvents) {
  TraceGuard guard;
  start_tracing();
  { ObsSpan span("ephemeral"); }
  stop_tracing();
  ASSERT_NE(trace_to_json().find("ephemeral"), std::string::npos);
  clear_trace();
  EXPECT_EQ(trace_to_json().find("ephemeral"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Zero-perturbation: results are bit-identical with tracing on vs off.

core::ThreadProfile bit_identity_profile() {
  using simprof::testing::SyntheticPhase;
  return simprof::testing::synthetic_profile(
      {SyntheticPhase{120, 1.0, 0.05, jvm::MethodId{1}},
       SyntheticPhase{80, 2.5, 0.2, jvm::MethodId{2}},
       SyntheticPhase{40, 4.0, 0.1, jvm::MethodId{3}}});
}

void expect_same_model(const core::PhaseModel& x, const core::PhaseModel& y) {
  ASSERT_EQ(x.k, y.k);
  EXPECT_EQ(x.labels, y.labels);
  EXPECT_EQ(x.feature_names, y.feature_names);
  ASSERT_EQ(x.centers.rows(), y.centers.rows());
  ASSERT_EQ(x.centers.cols(), y.centers.cols());
  for (std::size_t r = 0; r < x.centers.rows(); ++r) {
    for (std::size_t c = 0; c < x.centers.cols(); ++c) {
      EXPECT_EQ(x.centers.at(r, c), y.centers.at(r, c));  // bitwise, no EPS
    }
  }
  EXPECT_EQ(x.representative_units, y.representative_units);
}

void expect_same_plan(const core::SamplePlan& x, const core::SamplePlan& y) {
  ASSERT_EQ(x.points.size(), y.points.size());
  for (std::size_t i = 0; i < x.points.size(); ++i) {
    EXPECT_EQ(x.points[i].unit_index, y.points[i].unit_index);
    EXPECT_EQ(x.points[i].phase, y.points[i].phase);
    EXPECT_EQ(x.points[i].weight, y.points[i].weight);
  }
  EXPECT_EQ(x.allocation, y.allocation);
  EXPECT_EQ(x.estimated_cpi, y.estimated_cpi);
  EXPECT_EQ(x.standard_error, y.standard_error);
}

TEST(BitIdentityTest, PhaseFormationAndSamplingUnperturbedByTracing) {
  const auto profile = bit_identity_profile();

  // Baseline: tracing off, logging quiet.
  LogGuard log_guard;
  std::ostringstream sink;
  set_log_sink(&sink);
  ASSERT_FALSE(trace_enabled());
  const auto model_off = core::form_phases(profile);
  const auto plan_off = core::simprof_sample(profile, model_off, 25, 7);

  // Same pipeline with tracing armed and verbose logging.
  TraceGuard trace_guard;
  set_log_level(LogLevel::kTrace);
  start_tracing();
  const auto model_on = core::form_phases(profile);
  const auto plan_on = core::simprof_sample(profile, model_on, 25, 7);
  stop_tracing();

  expect_same_model(model_off, model_on);
  expect_same_plan(plan_off, plan_on);

  // The traced run actually produced span events for the instrumented path.
  const std::string json = trace_to_json();
  EXPECT_NE(json.find("phase.form_phases"), std::string::npos);
  EXPECT_NE(json.find("choose_k"), std::string::npos);
  EXPECT_NE(json.find("sample.simprof"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Lab cache provenance through the obs layer.

class ScratchDir {
 public:
  ScratchDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("simprof_obs_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  const char* c_str() const { return path_.c_str(); }

 private:
  std::filesystem::path path_;
};

TEST(LabProvenanceTest, CacheHitAndMissRecordedInMetricsAndRun) {
  LogGuard log_guard;
  std::ostringstream sink;
  set_log_sink(&sink);

  ScratchDir dir;
  core::LabConfig cfg;
  cfg.scale = 0.05;
  cfg.graph_scale_override = 12;
  cfg.cache_dir = dir.c_str();

  Counter& hits = metrics().counter("lab.cache_hits");
  Counter& misses = metrics().counter("lab.cache_misses");
  const std::uint64_t hits0 = hits.value();
  const std::uint64_t misses0 = misses.value();

  core::WorkloadLab lab(cfg);
  const auto first = lab.run("wc_sp");
  EXPECT_FALSE(first.from_cache);
  EXPECT_FALSE(first.cache_path.empty());
  EXPECT_EQ(misses.value() - misses0, 1u);
  EXPECT_EQ(hits.value() - hits0, 0u);
  EXPECT_NE(sink.str().find("cache miss"), std::string::npos);

  const auto second = lab.run("wc_sp");
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.cache_path, first.cache_path);
  EXPECT_EQ(hits.value() - hits0, 1u);
  EXPECT_EQ(misses.value() - misses0, 1u);
  EXPECT_NE(sink.str().find("cache hit"), std::string::npos);

  // The cached reload is bit-identical to the fresh profile.
  ASSERT_EQ(first.profile.num_units(), second.profile.num_units());
  for (std::size_t u = 0; u < first.profile.num_units(); ++u) {
    const auto& a = first.profile.units[u];
    const auto& b = second.profile.units[u];
    EXPECT_EQ(a.unit_id, b.unit_id);
    EXPECT_EQ(a.counters.instructions, b.counters.instructions);
    EXPECT_EQ(a.counters.cycles, b.counters.cycles);
    EXPECT_EQ(a.methods, b.methods);
    EXPECT_EQ(a.counts, b.counts);
  }
}

// ---------------------------------------------------------------------------
// QuantileHistogram: bucket edges, exactness guarantees, and the merge
// determinism contract (bit-identical for any thread count / interleaving).

std::uint64_t dbits(double v) { return std::bit_cast<std::uint64_t>(v); }

TEST(QuantileHistogramTest, EmptyReportsZeros) {
  QuantileHistogram& h = metrics().quantile_histogram("test.qh_empty");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.nonfinite(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(QuantileHistogramTest, SingleSampleReportsItselfExactly) {
  QuantileHistogram& h = metrics().quantile_histogram("test.qh_single");
  h.observe(3.7);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 3.7);
  EXPECT_DOUBLE_EQ(h.max(), 3.7);
  // The bucket upper bound is clamped into [min, max], so every quantile of
  // a one-sample histogram is the sample itself.
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 3.7) << "q=" << q;
  }
}

TEST(QuantileHistogramTest, BucketIndexEdges) {
  using QH = QuantileHistogram;
  // ≤ 0 and below-range values land in the underflow bucket.
  EXPECT_EQ(QH::bucket_index(0.0), 0u);
  EXPECT_EQ(QH::bucket_index(-1.0), 0u);
  EXPECT_EQ(QH::bucket_index(std::ldexp(1.0, QH::kMinExp - 1)), 0u);
  // The range opens at 2^kMinExp (bucket 1) and overflows at 2^kMaxExp.
  EXPECT_EQ(QH::bucket_index(std::ldexp(1.0, QH::kMinExp)), 1u);
  EXPECT_EQ(QH::bucket_index(std::ldexp(1.0, QH::kMaxExp)), QH::kBuckets - 1);
  EXPECT_EQ(QH::bucket_index(std::numeric_limits<double>::infinity()),
            QH::kBuckets - 1);
  EXPECT_EQ(
      QH::bucket_index(std::nextafter(std::ldexp(1.0, QH::kMaxExp), 0.0)),
      QH::kBuckets - 2);

  // Sandwich invariant over the log-linear range: every value lies inside
  // its bucket's [lower, upper) and the index is monotone in the value.
  std::size_t prev = 0;
  for (const double v :
       {1e-5, 0.001, 0.5, 1.0, 1.0625, 3.7, 64.0, 1e6, 1e12}) {
    const std::size_t idx = QH::bucket_index(v);
    ASSERT_GT(idx, 0u) << v;
    ASSERT_LT(idx, QH::kBuckets - 1) << v;
    EXPECT_LT(v, QH::bucket_upper_bound(idx)) << v;
    EXPECT_GE(v, QH::bucket_upper_bound(idx - 1)) << v;
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(QuantileHistogramTest, QuantileWithinRelativeBucketResolution) {
  QuantileHistogram& h = metrics().quantile_histogram("test.qh_resolution");
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // Nearest-rank reports the rank-th sample's bucket upper bound, so the
  // estimate overshoots the exact quantile by at most one sub-bucket.
  const std::pair<double, double> cases[] = {
      {0.5, 500.0}, {0.9, 900.0}, {0.99, 990.0}};
  for (const auto& [q, exact] : cases) {
    const double est = h.quantile(q);
    EXPECT_GE(est, exact) << "q=" << q;
    EXPECT_LE((est - exact) / exact,
              1.0 / QuantileHistogram::kSubBuckets + 1e-9)
        << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);  // p100 clamps to the true max
}

TEST(QuantileHistogramTest, NanIsCountedNotBucketed) {
  QuantileHistogram& h = metrics().quantile_histogram("test.qh_nan");
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.nonfinite(), 2u);
  EXPECT_EQ(h.count(), 0u);
  h.observe(2.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

/// The shared observation multiset for the merge-determinism test:
/// deterministic values spanning ~30 octaves with repeats.
double qh_sample_value(std::size_t i) {
  return std::ldexp(1.0 + static_cast<double>(i % 1000) / 1024.0,
                    static_cast<int>(i % 30) - 10);
}

TEST(QuantileHistogramTest, MergeDeterministicAcrossThreadCountsAndOrders) {
  constexpr std::size_t kN = 48'000;
  // Reference: one thread, ascending observation order.
  QuantileHistogram& ref = metrics().quantile_histogram("test.qh_merge_ref");
  for (std::size_t i = 0; i < kN; ++i) ref.observe(qh_sample_value(i));
  const auto ref_counts = ref.bucket_counts();

  for (const std::size_t threads : {2u, 4u, 8u}) {
    QuantileHistogram& h = metrics().quantile_histogram(
        "test.qh_merge_t" + std::to_string(threads));
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      // Interleaved slices land on different shards per run; odd workers
      // walk their slice backwards so the interleaving differs from the
      // reference in every way the merge must be insensitive to.
      pool.emplace_back([&h, t, threads] {
        if (t % 2 == 0) {
          for (std::size_t i = t; i < kN; i += threads) {
            h.observe(qh_sample_value(i));
          }
        } else {
          std::size_t i = t + threads * ((kN - 1 - t) / threads);
          while (true) {
            h.observe(qh_sample_value(i));
            if (i == t) break;
            i -= threads;
          }
        }
      });
    }
    for (auto& th : pool) th.join();

    EXPECT_EQ(h.bucket_counts(), ref_counts) << threads << " threads";
    EXPECT_EQ(h.count(), ref.count());
    // min/max and every quantile are bit-identical, not merely close.
    EXPECT_EQ(dbits(h.min()), dbits(ref.min()));
    EXPECT_EQ(dbits(h.max()), dbits(ref.max()));
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
      EXPECT_EQ(dbits(h.quantile(q)), dbits(ref.quantile(q)))
          << threads << " threads, q=" << q;
    }
  }
}

TEST(MetricsTest, QuantileHistogramInJsonSnapshot) {
  metrics().quantile_histogram("test.qh_json").observe(5.0);
  const std::string json = metrics().to_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"quantile_histograms\""), std::string::npos);
  EXPECT_NE(json.find("test.qh_json"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON emission: non-finite accounting and byte-level escaping.

TEST(JsonTest, NonFiniteNumbersCountedAndEmittedAsZero) {
  LogGuard guard;  // the one-shot warn line goes to the sink, not stderr
  std::ostringstream sink;
  set_log_sink(&sink);
  Counter& c = metrics().counter("obs.json_nonfinite");
  const std::uint64_t before = c.value();
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(c.value() - before, 3u);
  EXPECT_EQ(json_number(2.5), "2.5");
  EXPECT_EQ(c.value() - before, 3u);  // finite values don't count
}

TEST(JsonTest, QuoteEscapesControlBytesAndPassesHighBytesThrough) {
  EXPECT_EQ(json_quote("a\"b\\c\n\t\r"), "\"a\\\"b\\\\c\\n\\t\\r\"");
  EXPECT_EQ(json_quote(std::string_view("\x01\x02\x1f", 3)),
            "\"\\u0001\\u0002\\u001f\"");
  // UTF-8 multi-byte sequences (bytes ≥ 0x80) pass through byte-for-byte,
  // and DEL (0x7f) is legal unescaped JSON.
  EXPECT_EQ(json_quote("caf\xc3\xa9 \xe2\x9c\x93"),
            "\"caf\xc3\xa9 \xe2\x9c\x93\"");
  EXPECT_EQ(json_quote("\x7f"), "\"\x7f\"");
  // An embedded NUL is escaped, not truncated.
  EXPECT_EQ(json_quote(std::string_view("a\0b", 3)), "\"a\\u0000b\"");
  EXPECT_TRUE(json_well_formed(json_quote(std::string_view("\x00\x1b\xff", 3))));
}

// ---------------------------------------------------------------------------
// Span rollup: self/inclusive aggregation and the thread-count contract.

TEST(SpanRollupTest, SelfTimeCountsAndPoolExclusion) {
  TraceGuard guard;
  start_tracing();
  // Virtual spans make the arithmetic exact: µs = cycles / 2000 at 2 GHz.
  trace_virtual_span("stage", 0, 8'000, 1);          // 4 µs, nests the task
  trace_virtual_span("stage/task", 2'000, 6'000, 1); // 2 µs inside span 1
  trace_virtual_span("stage", 10'000, 14'000, 1);    // 2 µs, leaf
  trace_virtual_span("pool.parallel_for", 0, 2'000, 2);  // must be excluded
  stop_tracing();

  const auto rows = span_rollup();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "stage");
  EXPECT_TRUE(rows[0].virtual_timeline);
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_DOUBLE_EQ(rows[0].total_us, 6.0);
  EXPECT_DOUBLE_EQ(rows[0].self_us, 4.0);  // 6 µs minus the nested 2 µs
  EXPECT_DOUBLE_EQ(rows[0].max_us, 4.0);
  EXPECT_EQ(rows[1].name, "stage/task");
  EXPECT_EQ(rows[1].count, 1u);
  EXPECT_DOUBLE_EQ(rows[1].total_us, 2.0);
  EXPECT_DOUBLE_EQ(rows[1].self_us, 2.0);
}

TEST(SpanRollupTest, NameCountIdenticalAcrossThreadCounts) {
  LogGuard log_guard;
  std::ostringstream sink;
  set_log_sink(&sink);
  const auto profile = bit_identity_profile();
  const std::size_t saved = support::default_thread_count();

  const auto collect = [&profile](std::size_t threads) {
    support::set_default_thread_count(threads);
    TraceGuard guard;
    start_tracing();
    const auto model = core::form_phases(profile);
    core::simprof_sample(profile, model, 25, 7);
    stop_tracing();
    std::vector<std::tuple<bool, std::string, std::uint64_t>> out;
    for (const auto& row : span_rollup()) {
      out.emplace_back(row.virtual_timeline, row.name, row.count);
    }
    return out;
  };

  const auto serial = collect(1);
  const auto parallel4 = collect(4);
  support::set_default_thread_count(saved);

  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel4);
  // Scheduling internals are excluded from the rollup by contract.
  for (const auto& [virt, name, count] : parallel4) {
    EXPECT_NE(name.rfind("pool.", 0), 0u) << name;
  }
}

// ---------------------------------------------------------------------------
// Run ledger: manifest round-trip through the report parser.

/// Resets the process-global run ledger on scope exit.
struct LedgerGuard {
  LedgerGuard() { ledger().reset(); }
  ~LedgerGuard() { ledger().reset(); }
};

TEST(RunLedgerTest, ManifestRoundTripsThroughParser) {
  LedgerGuard guard;
  ledger().begin("simprof-test", "unit", {"--flag", "1"});
  ledger().set_config("seed", "42");
  ledger().set_config("workload", "grep_sp");
  ledger().set_quality("silhouette", 0.625);
  ledger().set_schema("cache", core::kLabCacheSchema);
  ledger().set_exit_code(3);

  const std::string doc = ledger().to_json();
  EXPECT_TRUE(json_well_formed(doc)) << doc;
  const auto parsed = parse_json(doc);
  ASSERT_TRUE(parsed.has_value());

  EXPECT_EQ(parsed->string_or("schema", ""), "simprof.manifest/1");
  EXPECT_EQ(parsed->string_or("tool", ""), "simprof-test");
  EXPECT_EQ(parsed->string_or("verb", ""), "unit");
  EXPECT_DOUBLE_EQ(parsed->number_or("exit_code", -1.0), 3.0);
  EXPECT_GE(parsed->number_or("duration_ms", -1.0), 0.0);

  const JsonValue* args = parsed->find("args");
  ASSERT_NE(args, nullptr);
  ASSERT_EQ(args->as_array().size(), 2u);
  EXPECT_EQ(args->as_array()[0].as_string(), "--flag");

  const JsonValue* build = parsed->find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_FALSE(build->string_or("git_sha", "").empty());
  EXPECT_FALSE(build->string_or("build_type", "").empty());
  EXPECT_DOUBLE_EQ(build->number_or("cache_schema", 0.0),
                   static_cast<double>(core::kLabCacheSchema));

  const JsonValue* config = parsed->find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->string_or("seed", ""), "42");
  EXPECT_EQ(config->string_or("workload", ""), "grep_sp");

  const JsonValue* quality = parsed->find("quality");
  ASSERT_NE(quality, nullptr);
  EXPECT_DOUBLE_EQ(quality->number_or("silhouette", 0.0), 0.625);

  // The full metrics snapshot and the rollup ride along.
  const JsonValue* metrics_obj = parsed->find("metrics");
  ASSERT_NE(metrics_obj, nullptr);
  EXPECT_NE(metrics_obj->find("counters"), nullptr);
  const JsonValue* rollup = parsed->find("span_rollup");
  ASSERT_NE(rollup, nullptr);
  EXPECT_EQ(rollup->type(), JsonValue::Type::kArray);
  const JsonValue* ckpt = parsed->find("checkpoint");
  ASSERT_NE(ckpt, nullptr);
  EXPECT_NE(ckpt->find("cold_fallbacks"), nullptr);
  EXPECT_NE(ckpt->find("pruned_dirs"), nullptr);
}

TEST(RunLedgerTest, WriteHonorsOutputPathAndDisable) {
  LogGuard log_guard;
  std::ostringstream sink;
  set_log_sink(&sink);
  LedgerGuard guard;
  ScratchDir dir;

  ledger().begin("simprof-test", "unit", {});
  const std::string path = std::string(dir.c_str()) + "/nested/m.json";
  ledger().set_output_path(path);
  EXPECT_TRUE(ledger().enabled());
  ASSERT_TRUE(ledger().write());  // creates the parent directory
  const auto parsed = load_json_file(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->string_or("schema", ""), "simprof.manifest/1");

  ledger().reset();
  ledger().begin("simprof-test", "unit", {});
  ledger().disable();
  EXPECT_FALSE(ledger().enabled());
  EXPECT_FALSE(ledger().write());
}

// ---------------------------------------------------------------------------
// The report JSON parser.

TEST(JsonParserTest, ParsesScalarsStringsAndNesting) {
  const auto v = parse_json(
      R"({"a": [1, -2.5e3, true, null], "s": "hA\n", "o": {"k": "v"}})");
  ASSERT_TRUE(v.has_value());
  const JsonValue* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 4u);
  EXPECT_DOUBLE_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), -2500.0);
  EXPECT_TRUE(a->as_array()[2].as_bool());
  EXPECT_TRUE(a->as_array()[3].is_null());
  EXPECT_EQ(v->string_or("s", ""), "hA\n");
  const JsonValue* o = v->find("o");
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->string_or("k", ""), "v");
  EXPECT_DOUBLE_EQ(v->number_or("missing", 7.5), 7.5);
  EXPECT_EQ(v->string_or("missing", "fb"), "fb");
  EXPECT_EQ(v->find("missing"), nullptr);

  // \uXXXX escapes decode to UTF-8 bytes; raw UTF-8 passes through.
  const auto unicode = parse_json(R"(["caf\u00e9", "café"])");
  ASSERT_TRUE(unicode.has_value());
  EXPECT_EQ(unicode->as_array()[0].as_string(), "caf\xc3\xa9");
  EXPECT_EQ(unicode->as_array()[1].as_string(), "caf\xc3\xa9");
}

TEST(JsonParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(parse_json(""));
  EXPECT_FALSE(parse_json("{\"a\": }"));
  EXPECT_FALSE(parse_json("[1, 2] trailing"));
  EXPECT_FALSE(parse_json("\"unterminated"));
  EXPECT_FALSE(parse_json("{\"a\" 1}"));
  EXPECT_FALSE(parse_json("{\"a\": 1,}"));
  // The depth cap rejects pathological nesting instead of recursing off
  // the stack; sane nesting is fine.
  EXPECT_FALSE(parse_json(std::string(80, '[') + std::string(80, ']')));
  EXPECT_TRUE(parse_json(std::string(40, '[') + std::string(40, ']')));
}

// ---------------------------------------------------------------------------
// Manifest diffing and regression gating.

/// A minimal manifest document with the fields the differ gates on.
std::string manifest_fixture(double started_ms, double duration_ms,
                             double silhouette = 0.8,
                             double err_frac = 0.02, double phase_count = 4,
                             double cold_fallbacks = 0, double nonfinite = 0,
                             double p50 = 100.0, double p99 = 200.0,
                             double mystery = 1.0) {
  std::ostringstream os;
  os << R"({"schema": "simprof.manifest/1", "verb": "profile", )"
     << R"("started_unix_ms": )" << started_ms << R"(, "duration_ms": )"
     << duration_ms << R"(, "exit_code": 0, )"
     << R"("build": {"git_sha": "abc123def456"}, )"
     << R"("quality": {"silhouette": )" << silhouette
     << R"(, "sampling_error_frac": )" << err_frac << R"(, "phase_count": )"
     << phase_count << R"(, "mystery_metric": )" << mystery
     << R"(}, "checkpoint": {"cold_fallbacks": )" << cold_fallbacks
     << R"(}, "metrics": {"counters": {"obs.json_nonfinite": )" << nonfinite
     << R"(}, "quantile_histograms": {"lab.run_ms": {"p50": )" << p50
     << R"(, "p99": )" << p99 << "}}}}";
  return os.str();
}

JsonValue parsed_fixture(const std::string& text) {
  auto v = parse_json(text);
  EXPECT_TRUE(v.has_value()) << text;
  return v ? *v : JsonValue{};
}

bool has_regression(const RunReport& r, std::string_view metric) {
  for (const ReportFinding& f : r.findings) {
    if (f.kind == ReportFinding::Kind::kRegression && f.metric == metric) {
      return true;
    }
  }
  return false;
}

TEST(ReportDiffTest, IdenticalManifestsProduceNoFindings) {
  const JsonValue base = parsed_fixture(manifest_fixture(1000, 100));
  const JsonValue cur = parsed_fixture(manifest_fixture(2000, 100));
  const RunReport r = diff_manifests(base, cur, {}, "base", "cur");
  EXPECT_EQ(r.regressions(), 0u);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_FALSE(r.to_markdown().empty());
  EXPECT_TRUE(json_well_formed(r.to_json())) << r.to_json();
}

TEST(ReportDiffTest, LatencyGateRespectsRelativeAndAbsoluteFloors) {
  const JsonValue base = parsed_fixture(manifest_fixture(1000, 100));

  // +100% and +100 ms: regression.
  RunReport r = diff_manifests(
      base, parsed_fixture(manifest_fixture(2000, 200)), {}, "b", "c");
  EXPECT_EQ(r.regressions(), 1u);
  EXPECT_TRUE(has_regression(r, "duration_ms"));
  EXPECT_NE(r.to_markdown().find("duration_ms"), std::string::npos);

  // +4 ms is under the 5 ms absolute floor.
  r = diff_manifests(base, parsed_fixture(manifest_fixture(2000, 104)), {},
                     "b", "c");
  EXPECT_EQ(r.regressions(), 0u);

  // A micro-run doubling (2 → 4 ms) stays under the floor too.
  r = diff_manifests(parsed_fixture(manifest_fixture(1000, 2)),
                     parsed_fixture(manifest_fixture(2000, 4)), {}, "b", "c");
  EXPECT_EQ(r.regressions(), 0u);

  // A big drop is reported as an improvement, not a regression.
  r = diff_manifests(base, parsed_fixture(manifest_fixture(2000, 40)), {},
                     "b", "c");
  EXPECT_EQ(r.regressions(), 0u);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].kind, ReportFinding::Kind::kImprovement);
}

TEST(ReportDiffTest, QualityGateIsDirectionAware) {
  const JsonValue base = parsed_fixture(manifest_fixture(1000, 100));

  // silhouette: higher is better, -25% is a regression.
  RunReport r = diff_manifests(
      base, parsed_fixture(manifest_fixture(2000, 100, 0.6)), {}, "b", "c");
  EXPECT_TRUE(has_regression(r, "quality.silhouette"));

  // sampling_error_frac: lower is better, growth is a regression.
  r = diff_manifests(base,
                     parsed_fixture(manifest_fixture(2000, 100, 0.8, 0.05)),
                     {}, "b", "c");
  EXPECT_TRUE(has_regression(r, "quality.sampling_error_frac"));

  // silhouette improving is an improvement finding, zero regressions.
  r = diff_manifests(base,
                     parsed_fixture(manifest_fixture(2000, 100, 0.95)), {},
                     "b", "c");
  EXPECT_EQ(r.regressions(), 0u);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings[0].kind, ReportFinding::Kind::kImprovement);

  // A metric with no known gating direction only informs.
  r = diff_manifests(
      base,
      parsed_fixture(manifest_fixture(2000, 100, 0.8, 0.02, 4, 0, 0, 100.0,
                                      200.0, 9.0)),
      {}, "b", "c");
  EXPECT_EQ(r.regressions(), 0u);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].kind, ReportFinding::Kind::kInfo);
  EXPECT_EQ(r.findings[0].metric, "quality.mystery_metric");
}

TEST(ReportDiffTest, PhaseDriftAndHealthCountersRegress) {
  const JsonValue base = parsed_fixture(manifest_fixture(1000, 100));
  const JsonValue cur = parsed_fixture(
      manifest_fixture(2000, 100, 0.8, 0.02, /*phase_count=*/5,
                       /*cold_fallbacks=*/2, /*nonfinite=*/1));
  const RunReport r = diff_manifests(base, cur, {}, "b", "c");
  EXPECT_EQ(r.regressions(), 3u);
  EXPECT_TRUE(has_regression(r, "quality.phase_count"));
  EXPECT_TRUE(has_regression(r, "checkpoint.cold_fallbacks"));
  EXPECT_TRUE(has_regression(r, "obs.json_nonfinite"));
  // Regressions sort ahead of everything else in the findings list.
  EXPECT_EQ(r.findings[0].kind, ReportFinding::Kind::kRegression);
}

TEST(ReportDiffTest, QuantileHistogramPercentilesAreGated) {
  const JsonValue base = parsed_fixture(manifest_fixture(1000, 100));
  // p50 doubles (regression); p99 +5% sits inside the noise floor.
  const JsonValue cur = parsed_fixture(manifest_fixture(
      2000, 100, 0.8, 0.02, 4, 0, 0, /*p50=*/200.0, /*p99=*/210.0));
  const RunReport r = diff_manifests(base, cur, {}, "b", "c");
  EXPECT_EQ(r.regressions(), 1u);
  EXPECT_TRUE(has_regression(r, "lab.run_ms.p50"));
}

/// Manifest fixture for the service-side quality figures, with the
/// work-count denominator optionally omitted.
std::string service_manifest_fixture(double started_ms, double requests,
                                     double qps, double p99,
                                     bool include_requests = true) {
  std::ostringstream os;
  os << R"({"schema": "simprof.manifest/1", "verb": "serve", )"
     << R"("started_unix_ms": )" << started_ms
     << R"(, "duration_ms": 50, "exit_code": 0, "quality": {)";
  if (include_requests) os << R"("service_requests": )" << requests << ", ";
  os << R"("service_qps": )" << qps << R"(, "service_p99_ms": )" << p99
     << "}}";
  return os.str();
}

TEST(ReportDiffTest, EmptyDenominatorIsExplicitRegression) {
  const JsonValue base =
      parsed_fixture(service_manifest_fixture(1000, 12, 50.0, 240.0));

  // Zero requests served: the quality figures were computed over nothing.
  RunReport r = diff_manifests(
      base, parsed_fixture(service_manifest_fixture(2000, 0, 0.0, 0.0)), {},
      "b", "c");
  EXPECT_TRUE(has_regression(r, "quality.service_requests"));

  // Even zero-vs-zero regresses — two do-nothing runs must not gate green.
  r = diff_manifests(
      parsed_fixture(service_manifest_fixture(1000, 0, 0.0, 0.0)),
      parsed_fixture(service_manifest_fixture(2000, 0, 0.0, 0.0)), {}, "b",
      "c");
  EXPECT_TRUE(has_regression(r, "quality.service_requests"));

  // The denominator vanishing from the current manifest is equally blind.
  r = diff_manifests(base,
                     parsed_fixture(service_manifest_fixture(
                         2000, 0, 50.0, 240.0, /*include_requests=*/false)),
                     {}, "b", "c");
  EXPECT_TRUE(has_regression(r, "quality.service_requests"));

  // A healthy pair with the same counts gates clean.
  r = diff_manifests(
      base, parsed_fixture(service_manifest_fixture(2000, 12, 50.0, 240.0)),
      {}, "b", "c");
  EXPECT_EQ(r.regressions(), 0u);
}

TEST(ReportDiffTest, ServiceQualityFiguresAreDirectionAware) {
  const JsonValue base =
      parsed_fixture(service_manifest_fixture(1000, 12, 50.0, 240.0));

  // Throughput collapse: higher is better, so the drop regresses.
  RunReport r = diff_manifests(
      base, parsed_fixture(service_manifest_fixture(2000, 12, 30.0, 240.0)),
      {}, "b", "c");
  EXPECT_TRUE(has_regression(r, "quality.service_qps"));

  // Tail latency growth: lower is better.
  r = diff_manifests(
      base, parsed_fixture(service_manifest_fixture(2000, 12, 50.0, 400.0)),
      {}, "b", "c");
  EXPECT_TRUE(has_regression(r, "quality.service_p99_ms"));
}

TEST(ReportDirectoryTest, GatesNewestAgainstPrevious) {
  LogGuard log_guard;
  std::ostringstream sink;
  set_log_sink(&sink);
  ScratchDir dir;
  std::filesystem::create_directories(dir.c_str());
  const auto put = [&dir](const char* name, const std::string& body) {
    std::ofstream(std::string(dir.c_str()) + "/" + name) << body;
  };
  put("a.json", manifest_fixture(1000, 100));
  put("b.json", manifest_fixture(2000, 100));
  put("c.json", manifest_fixture(3000, 400));  // regresses vs b.json
  put("junk.json", "{not json");               // ignored: unparseable
  put("other.json", R"({"schema": "other/1"})");  // ignored: wrong schema

  const auto report = report_directory(dir.c_str(), {});
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->manifest_count, 3u);
  EXPECT_GE(report->gate.regressions(), 1u);
  EXPECT_EQ(report->gate.base_label, "b.json");
  EXPECT_EQ(report->gate.current_label, "c.json");
  EXPECT_NE(report->series_md.find("3 manifests"), std::string::npos);
  EXPECT_NE(report->series_md.find("a.json"), std::string::npos);

  // Fewer than two manifests: no report.
  const std::string lonely = std::string(dir.c_str()) + "/lonely";
  std::filesystem::create_directories(lonely);
  std::ofstream(lonely + "/only.json") << manifest_fixture(1000, 100);
  EXPECT_FALSE(report_directory(lonely, {}).has_value());
}

// ---------------------------------------------------------------------------
// Heartbeat / flight recorder.

TEST(HeartbeatTest, FlightRecordJsonContainsOpenSpans) {
  TraceGuard guard;
  start_tracing();
  ObsSpan span("live_span");
  const std::string doc = flight_record_json();
  EXPECT_TRUE(json_well_formed(doc)) << doc;
  EXPECT_NE(doc.find("simprof.flightrec/1"), std::string::npos);
  EXPECT_NE(doc.find("live_span"), std::string::npos);
  EXPECT_NE(doc.find("\"metrics\""), std::string::npos);
}

TEST(HeartbeatTest, ThreadServesFlightRecordsAndBeats) {
  LogGuard log_guard;
  std::ostringstream sink;
  set_log_sink(&sink);
  set_log_level(LogLevel::kInfo);

  ScratchDir dir;
  std::filesystem::create_directories(dir.c_str());
  const std::string path = std::string(dir.c_str()) + "/flightrec.json";

  ASSERT_FALSE(heartbeat_running());
  HeartbeatConfig cfg;
  cfg.period_s = 0.01;  // clamped to the 0.1 s internal minimum
  cfg.flightrec_path = path;
  cfg.install_sigusr1 = false;  // keep signals out of the test binary
  start_heartbeat(cfg);
  EXPECT_TRUE(heartbeat_running());
  start_heartbeat(cfg);  // no-op when already running

  metrics().counter("progress.units").add(5);
  request_flight_record();
  bool written = false;
  for (int i = 0; i < 100 && !written; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    written = std::filesystem::exists(path);
  }
  stop_heartbeat();  // joins, so reading the sink below is race-free
  EXPECT_FALSE(heartbeat_running());
  stop_heartbeat();  // safe when stopped

  ASSERT_TRUE(written);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(json_well_formed(buf.str())) << buf.str();
  EXPECT_NE(buf.str().find("simprof.flightrec/1"), std::string::npos);
  // At least one progress beat was logged alongside the flight record.
  EXPECT_NE(sink.str().find("heartbeat:"), std::string::npos);
  EXPECT_NE(sink.str().find("units/s"), std::string::npos);
}

}  // namespace
}  // namespace simprof::obs
