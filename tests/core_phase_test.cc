// Unit tests for phase formation: feature vectorization, regression-based
// feature selection, k choice, per-phase stats, CoV summary and phase typing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/phase.h"
#include "support/assert.h"
#include "test_util.h"

namespace simprof::core {
namespace {

TEST(FeatureMatrix, RowNormalizedMethodFrequencies) {
  auto p = testing::synthetic_profile({{1, 1.0, 0.0, 1}});
  const auto m = build_feature_matrix(p);
  ASSERT_EQ(m.rows(), 1u);
  ASSERT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.25);  // framework method: 10 of 40
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.75);  // dominant method: 30 of 40
}

TEST(FormPhases, SeparatesTwoDistinctPhases) {
  auto p = testing::synthetic_profile(
      {{40, 0.5, 0.02, 1}, {40, 2.0, 0.05, 2}});
  const PhaseModel model = form_phases(p);
  EXPECT_EQ(model.k, 2u);
  // All units dominated by method 1 share a label, likewise method 2.
  const std::size_t l0 = model.labels[0];
  for (std::size_t u = 0; u < p.num_units(); ++u) {
    if (p.units[u].methods[1] == 1) {
      EXPECT_EQ(model.labels[u], l0);
    } else {
      EXPECT_NE(model.labels[u], l0);
    }
  }
  // Phase stats reflect the construction.
  double means[2] = {model.phases[0].mean_cpi, model.phases[1].mean_cpi};
  std::sort(means, means + 2);
  EXPECT_NEAR(means[0], 0.5, 0.05);
  EXPECT_NEAR(means[1], 2.0, 0.10);
  EXPECT_EQ(model.phases[0].count + model.phases[1].count, 80u);
  EXPECT_NEAR(model.phases[0].weight + model.phases[1].weight, 1.0, 1e-12);
}

TEST(FormPhases, UniformProfileCollapsesToOnePhase) {
  auto p = testing::synthetic_profile({{60, 1.0, 0.05, 1}});
  const PhaseModel model = form_phases(p);
  EXPECT_EQ(model.k, 1u);
}

TEST(FormPhases, MaxKTwentyByDefault) {
  std::vector<testing::SyntheticPhase> phases;
  for (jvm::MethodId m = 1; m <= 30; ++m) {
    phases.push_back({8, 0.3 + 0.11 * m, 0.01, m});
  }
  auto p = testing::synthetic_profile(phases);
  const PhaseModel model = form_phases(p);
  EXPECT_LE(model.k, 20u);
  EXPECT_EQ(model.silhouette_scores.size(), 20u);
}

TEST(FormPhases, TopKFeatureLimitRespected) {
  auto p = testing::synthetic_profile({{30, 0.5, 0.01, 1},
                                       {30, 1.5, 0.01, 2},
                                       {30, 2.5, 0.01, 3}});
  PhaseFormationConfig cfg;
  cfg.top_k_features = 2;
  const PhaseModel model = form_phases(p, cfg);
  EXPECT_LE(model.feature_names.size(), 2u);
}

TEST(FormPhases, EmptyProfileThrows) {
  ThreadProfile p;
  EXPECT_THROW(form_phases(p), ContractViolation);
}

TEST(FormPhases, RepresentativeUnitsBelongToTheirPhase) {
  auto p = testing::synthetic_profile({{25, 0.5, 0.05, 1}, {25, 2.0, 0.1, 2}});
  const PhaseModel model = form_phases(p);
  for (std::size_t h = 0; h < model.k; ++h) {
    EXPECT_EQ(model.labels[model.representative_units[h]], h);
  }
}

TEST(FormPhases, PhaseTypingUsesDominantNonFrameworkKind) {
  // Build a profile whose dominant method kinds differ per phase.
  ThreadProfile p;
  p.method_names = {"framework.Thread.run", "app.Mapper.map",
                    "app.Sorter.sort"};
  p.method_kinds = {jvm::OpKind::kFramework, jvm::OpKind::kMap,
                    jvm::OpKind::kSort};
  Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    UnitRecord u;
    u.unit_id = p.units.size();
    const bool sort_unit = (i % 2) == 0;
    const double cpi = sort_unit ? 1.8 + 0.02 * rng.next_gaussian()
                                 : 0.6 + 0.02 * rng.next_gaussian();
    u.counters.instructions = 1'000'000;
    u.counters.cycles = static_cast<std::uint64_t>(cpi * 1e6);
    u.methods = {0, sort_unit ? jvm::MethodId{2} : jvm::MethodId{1}};
    u.counts = {10, 30};
    p.units.push_back(std::move(u));
  }
  const PhaseModel model = form_phases(p);
  ASSERT_EQ(model.k, 2u);
  std::set<jvm::OpKind> kinds(model.phase_types.begin(),
                              model.phase_types.end());
  EXPECT_TRUE(kinds.contains(jvm::OpKind::kMap));
  EXPECT_TRUE(kinds.contains(jvm::OpKind::kSort));
}

TEST(CovSummary, WeightedBelowPopulationForSeparatedPhases) {
  auto p = testing::synthetic_profile(
      {{50, 0.5, 0.02, 1}, {50, 2.5, 0.02, 2}});
  const PhaseModel model = form_phases(p);
  const auto cov = cov_summary(p, model);
  EXPECT_GT(cov.population, 0.4);
  EXPECT_LT(cov.weighted, 0.2 * cov.population);
  EXPECT_LE(cov.weighted, cov.maximum + 1e-12);
}

TEST(VectorizeUnit, MatchesByMethodNameAndNormalizes) {
  auto p = testing::synthetic_profile({{10, 1.0, 0.0, 1}, {10, 2.0, 0.0, 2}});
  const PhaseModel model = form_phases(p);
  const auto v = vectorize_unit(model, p, 0);
  ASSERT_EQ(v.size(), model.feature_names.size());
  double sum = 0.0;
  for (double x : v) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(VectorizeUnit, UnknownMethodsIgnored) {
  auto train = testing::synthetic_profile({{10, 1.0, 0.0, 1}});
  const PhaseModel model = form_phases(train);
  // A reference profile with a totally different method table.
  ThreadProfile ref;
  ref.method_names = {"other.M.x"};
  ref.method_kinds = {jvm::OpKind::kMap};
  UnitRecord u;
  u.counters.instructions = 100;
  u.counters.cycles = 100;
  u.methods = {0};
  u.counts = {5};
  ref.units.push_back(u);
  const auto v = vectorize_unit(model, ref, 0);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(PhaseStatsFor, HandlesEmptyPhases) {
  auto p = testing::synthetic_profile({{4, 1.0, 0.0, 1}});
  std::vector<std::size_t> labels(4, 0);
  const auto stats = phase_stats_for(p, labels, 3);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].count, 4u);
  EXPECT_EQ(stats[1].count, 0u);
  EXPECT_DOUBLE_EQ(stats[1].weight, 0.0);
}

TEST(PhaseStatsFor, LabelOutOfRangeThrows) {
  auto p = testing::synthetic_profile({{2, 1.0, 0.0, 1}});
  std::vector<std::size_t> labels{0, 5};
  EXPECT_THROW(phase_stats_for(p, labels, 2), ContractViolation);
}

TEST(FormPhases, TinyProfilesClampTheKSweep) {
  // Regression: profiles with fewer units than the default k sweep's max_k
  // (n = 1, 2 and max_k − 1) must form a defined model, not abort.
  for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                              std::size_t{19}}) {
    auto p = testing::synthetic_profile({{n, 1.0, 0.05, 1}});
    const PhaseModel model = form_phases(p);
    EXPECT_GE(model.k, 1u) << "n=" << n;
    EXPECT_LE(model.k, n) << "n=" << n;
    EXPECT_EQ(model.labels.size(), n);
    EXPECT_EQ(model.phases.size(), model.k);
    ASSERT_EQ(model.representative_units.size(), model.k);
    for (std::size_t u : model.representative_units) EXPECT_LT(u, n);
  }
}

TEST(TrimmedTailCount, ExplicitPolicy) {
  // Below the floor: nothing trimmed. At and above: never zero, ≈5%/tail.
  EXPECT_EQ(trimmed_tail_count(0), 0u);
  EXPECT_EQ(trimmed_tail_count(kTrimFloorUnits - 1), 0u);
  EXPECT_EQ(trimmed_tail_count(kTrimFloorUnits), 1u);
  EXPECT_EQ(trimmed_tail_count(19), 1u);
  EXPECT_EQ(trimmed_tail_count(20), 1u);
  EXPECT_EQ(trimmed_tail_count(40), 2u);
  EXPECT_EQ(trimmed_tail_count(100), 5u);
}

/// A two-method profile whose unit CPIs are exactly `cpis` — the fixture
/// for pinning trimmed-deviation and Eq. 6 merge behaviour.
ThreadProfile profile_from_cpis(const std::vector<double>& cpis) {
  ThreadProfile p;
  p.method_names = {"m0", "m1"};
  p.method_kinds = {jvm::OpKind::kFramework, jvm::OpKind::kMap};
  for (std::size_t i = 0; i < cpis.size(); ++i) {
    UnitRecord u;
    u.unit_id = i;
    u.counters.instructions = 1'000'000;
    u.counters.cycles = static_cast<std::uint64_t>(cpis[i] * 1'000'000.0);
    u.methods = {jvm::MethodId{0}, jvm::MethodId{1}};
    u.counts = {10, 30};
    p.units.push_back(std::move(u));
  }
  return p;
}

TEST(PhaseStatsFor, SmallPhaseTrimsAtLeastOnePerTailAtTheFloor) {
  // Exactly kTrimFloorUnits units, one outlier: the trim must drop one per
  // tail, so the trimmed deviation collapses to 0 while the raw σ does not.
  std::vector<double> cpis(kTrimFloorUnits, 1.0);
  cpis.back() = 2.0;
  const auto p = profile_from_cpis(cpis);
  const auto stats =
      phase_stats_for(p, std::vector<std::size_t>(cpis.size(), 0), 1);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_GT(stats[0].stddev_cpi, 0.1);
  EXPECT_DOUBLE_EQ(stats[0].trimmed_stddev_cpi, 0.0);

  // One unit below the floor the trim is zero and trimmed == raw exactly.
  cpis.pop_back();
  const auto q = profile_from_cpis(cpis);
  const auto small =
      phase_stats_for(q, std::vector<std::size_t>(cpis.size(), 0), 1);
  EXPECT_DOUBLE_EQ(small[0].trimmed_stddev_cpi, small[0].stddev_cpi);
}

TEST(MergeEquivalentPhases, SmallPhaseOutlierDoesNotBlockEq6Merge) {
  // Two performance-identical strata of 20 units each; phase 0 carries one
  // scheduling-outlier unit that inflates its *raw* σ far beyond the 10%
  // equivalence band. The Eq. 6 comparison runs on the trimmed deviation,
  // so the phases still merge (the raw comparison used to keep them apart
  // and over-stratify the sample).
  std::vector<double> cpis;
  std::vector<std::size_t> labels;
  for (std::size_t i = 0; i < 20; ++i) {
    cpis.push_back(i + 1 == 20 ? 2.0 : 1.0);  // one outlier in phase 0
    labels.push_back(0);
  }
  for (std::size_t i = 0; i < 20; ++i) {
    cpis.push_back(i % 2 == 0 ? 0.98 : 1.02);
    labels.push_back(1);
  }
  const auto p = profile_from_cpis(cpis);

  PhaseModel model;
  model.k = 2;
  model.labels = labels;
  model.centers = stats::Matrix(2, 1);
  model.centers.at(0, 0) = 0.0;
  model.centers.at(1, 0) = 1.0;
  model.phases = phase_stats_for(p, labels, 2);

  // Precondition: the raw deviations genuinely disagree beyond threshold —
  // otherwise this fixture would pass under the old buggy comparison too.
  const double raw0 = model.phases[0].stddev_cpi;
  const double raw1 = model.phases[1].stddev_cpi;
  ASSERT_GT(std::abs(raw0 - raw1), 0.10 * std::max(raw0, raw1));

  merge_equivalent_phases(model, p, 0.10);
  EXPECT_EQ(model.k, 1u);
  EXPECT_EQ(model.phases.size(), 1u);
  EXPECT_EQ(model.phases[0].count, 40u);
  for (std::size_t l : model.labels) EXPECT_EQ(l, 0u);
}

}  // namespace
}  // namespace simprof::core
