// Unit tests for phase formation: feature vectorization, regression-based
// feature selection, k choice, per-phase stats, CoV summary and phase typing.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/phase.h"
#include "support/assert.h"
#include "test_util.h"

namespace simprof::core {
namespace {

TEST(FeatureMatrix, RowNormalizedMethodFrequencies) {
  auto p = testing::synthetic_profile({{1, 1.0, 0.0, 1}});
  const auto m = build_feature_matrix(p);
  ASSERT_EQ(m.rows(), 1u);
  ASSERT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.25);  // framework method: 10 of 40
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.75);  // dominant method: 30 of 40
}

TEST(FormPhases, SeparatesTwoDistinctPhases) {
  auto p = testing::synthetic_profile(
      {{40, 0.5, 0.02, 1}, {40, 2.0, 0.05, 2}});
  const PhaseModel model = form_phases(p);
  EXPECT_EQ(model.k, 2u);
  // All units dominated by method 1 share a label, likewise method 2.
  const std::size_t l0 = model.labels[0];
  for (std::size_t u = 0; u < p.num_units(); ++u) {
    if (p.units[u].methods[1] == 1) {
      EXPECT_EQ(model.labels[u], l0);
    } else {
      EXPECT_NE(model.labels[u], l0);
    }
  }
  // Phase stats reflect the construction.
  double means[2] = {model.phases[0].mean_cpi, model.phases[1].mean_cpi};
  std::sort(means, means + 2);
  EXPECT_NEAR(means[0], 0.5, 0.05);
  EXPECT_NEAR(means[1], 2.0, 0.10);
  EXPECT_EQ(model.phases[0].count + model.phases[1].count, 80u);
  EXPECT_NEAR(model.phases[0].weight + model.phases[1].weight, 1.0, 1e-12);
}

TEST(FormPhases, UniformProfileCollapsesToOnePhase) {
  auto p = testing::synthetic_profile({{60, 1.0, 0.05, 1}});
  const PhaseModel model = form_phases(p);
  EXPECT_EQ(model.k, 1u);
}

TEST(FormPhases, MaxKTwentyByDefault) {
  std::vector<testing::SyntheticPhase> phases;
  for (jvm::MethodId m = 1; m <= 30; ++m) {
    phases.push_back({8, 0.3 + 0.11 * m, 0.01, m});
  }
  auto p = testing::synthetic_profile(phases);
  const PhaseModel model = form_phases(p);
  EXPECT_LE(model.k, 20u);
  EXPECT_EQ(model.silhouette_scores.size(), 20u);
}

TEST(FormPhases, TopKFeatureLimitRespected) {
  auto p = testing::synthetic_profile({{30, 0.5, 0.01, 1},
                                       {30, 1.5, 0.01, 2},
                                       {30, 2.5, 0.01, 3}});
  PhaseFormationConfig cfg;
  cfg.top_k_features = 2;
  const PhaseModel model = form_phases(p, cfg);
  EXPECT_LE(model.feature_names.size(), 2u);
}

TEST(FormPhases, EmptyProfileThrows) {
  ThreadProfile p;
  EXPECT_THROW(form_phases(p), ContractViolation);
}

TEST(FormPhases, RepresentativeUnitsBelongToTheirPhase) {
  auto p = testing::synthetic_profile({{25, 0.5, 0.05, 1}, {25, 2.0, 0.1, 2}});
  const PhaseModel model = form_phases(p);
  for (std::size_t h = 0; h < model.k; ++h) {
    EXPECT_EQ(model.labels[model.representative_units[h]], h);
  }
}

TEST(FormPhases, PhaseTypingUsesDominantNonFrameworkKind) {
  // Build a profile whose dominant method kinds differ per phase.
  ThreadProfile p;
  p.method_names = {"framework.Thread.run", "app.Mapper.map",
                    "app.Sorter.sort"};
  p.method_kinds = {jvm::OpKind::kFramework, jvm::OpKind::kMap,
                    jvm::OpKind::kSort};
  Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    UnitRecord u;
    u.unit_id = p.units.size();
    const bool sort_unit = (i % 2) == 0;
    const double cpi = sort_unit ? 1.8 + 0.02 * rng.next_gaussian()
                                 : 0.6 + 0.02 * rng.next_gaussian();
    u.counters.instructions = 1'000'000;
    u.counters.cycles = static_cast<std::uint64_t>(cpi * 1e6);
    u.methods = {0, sort_unit ? jvm::MethodId{2} : jvm::MethodId{1}};
    u.counts = {10, 30};
    p.units.push_back(std::move(u));
  }
  const PhaseModel model = form_phases(p);
  ASSERT_EQ(model.k, 2u);
  std::set<jvm::OpKind> kinds(model.phase_types.begin(),
                              model.phase_types.end());
  EXPECT_TRUE(kinds.contains(jvm::OpKind::kMap));
  EXPECT_TRUE(kinds.contains(jvm::OpKind::kSort));
}

TEST(CovSummary, WeightedBelowPopulationForSeparatedPhases) {
  auto p = testing::synthetic_profile(
      {{50, 0.5, 0.02, 1}, {50, 2.5, 0.02, 2}});
  const PhaseModel model = form_phases(p);
  const auto cov = cov_summary(p, model);
  EXPECT_GT(cov.population, 0.4);
  EXPECT_LT(cov.weighted, 0.2 * cov.population);
  EXPECT_LE(cov.weighted, cov.maximum + 1e-12);
}

TEST(VectorizeUnit, MatchesByMethodNameAndNormalizes) {
  auto p = testing::synthetic_profile({{10, 1.0, 0.0, 1}, {10, 2.0, 0.0, 2}});
  const PhaseModel model = form_phases(p);
  const auto v = vectorize_unit(model, p, 0);
  ASSERT_EQ(v.size(), model.feature_names.size());
  double sum = 0.0;
  for (double x : v) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(VectorizeUnit, UnknownMethodsIgnored) {
  auto train = testing::synthetic_profile({{10, 1.0, 0.0, 1}});
  const PhaseModel model = form_phases(train);
  // A reference profile with a totally different method table.
  ThreadProfile ref;
  ref.method_names = {"other.M.x"};
  ref.method_kinds = {jvm::OpKind::kMap};
  UnitRecord u;
  u.counters.instructions = 100;
  u.counters.cycles = 100;
  u.methods = {0};
  u.counts = {5};
  ref.units.push_back(u);
  const auto v = vectorize_unit(model, ref, 0);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(PhaseStatsFor, HandlesEmptyPhases) {
  auto p = testing::synthetic_profile({{4, 1.0, 0.0, 1}});
  std::vector<std::size_t> labels(4, 0);
  const auto stats = phase_stats_for(p, labels, 3);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].count, 4u);
  EXPECT_EQ(stats[1].count, 0u);
  EXPECT_DOUBLE_EQ(stats[1].weight, 0.0);
}

TEST(PhaseStatsFor, LabelOutOfRangeThrows) {
  auto p = testing::synthetic_profile({{2, 1.0, 0.0, 1}});
  std::vector<std::size_t> labels{0, 5};
  EXPECT_THROW(phase_stats_for(p, labels, 2), ContractViolation);
}

}  // namespace
}  // namespace simprof::core
