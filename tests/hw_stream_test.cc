// Unit tests for the access-pattern streams and the address-space allocator.
#include <gtest/gtest.h>

#include <set>

#include "hw/access_stream.h"
#include "support/assert.h"
#include "support/rng.h"

namespace simprof::hw {
namespace {

TEST(SequentialStream, EmitsOneRefPerLine) {
  SequentialStream s(/*base=*/128, /*bytes=*/256);
  MemRef r;
  std::vector<LineAddr> lines;
  while (s.next(r)) {
    lines.push_back(r.line);
    EXPECT_TRUE(r.prefetchable);
    EXPECT_FALSE(r.write);
  }
  EXPECT_EQ(lines, (std::vector<LineAddr>{2, 3, 4, 5}));
  EXPECT_EQ(s.total_refs(), 4u);
}

TEST(SequentialStream, PartialLineRoundsUp) {
  SequentialStream s(0, 65);
  EXPECT_EQ(s.total_refs(), 2u);
}

TEST(SequentialStream, WriteFlagPropagates) {
  SequentialStream s(0, 64, /*write=*/true);
  MemRef r;
  ASSERT_TRUE(s.next(r));
  EXPECT_TRUE(r.write);
}

TEST(RandomStream, StaysInRegionAndCounts) {
  Rng rng(5);
  RandomStream s(/*base=*/6400, /*bytes=*/64 * 100, /*touches=*/500, rng);
  MemRef r;
  std::size_t n = 0;
  while (s.next(r)) {
    ++n;
    EXPECT_GE(r.line, 100u);
    EXPECT_LT(r.line, 200u);
    EXPECT_FALSE(r.prefetchable);
  }
  EXPECT_EQ(n, 500u);
}

TEST(RandomStream, WriteFractionMixesReadsAndWrites) {
  Rng rng(9);
  RandomStream s(0, 64 * 16, 400, rng, false, /*write_fraction=*/0.5);
  MemRef r;
  int writes = 0;
  while (s.next(r)) writes += r.write ? 1 : 0;
  EXPECT_GT(writes, 120);
  EXPECT_LT(writes, 280);
}

TEST(RandomStream, CoversTheRegion) {
  Rng rng(11);
  RandomStream s(0, 64 * 32, 2000, rng);
  MemRef r;
  std::set<LineAddr> seen;
  while (s.next(r)) seen.insert(r.line);
  EXPECT_GT(seen.size(), 28u);  // nearly all 32 lines touched
}

TEST(ZipfStream, HeadIsHotterThanTail) {
  Rng rng(13);
  ZipfStream s(0, 64 * 1000, 20000, /*skew=*/0.8, rng);
  MemRef r;
  std::size_t head = 0, tail = 0;
  while (s.next(r)) {
    if (r.line < 100) ++head;        // first 10% of the region
    if (r.line >= 900) ++tail;       // last 10%
  }
  EXPECT_GT(head, 3 * tail);
}

TEST(ZipfStream, ZeroSkewIsRoughlyUniform) {
  Rng rng(17);
  ZipfStream s(0, 64 * 100, 20000, 0.0, rng);
  MemRef r;
  std::size_t head = 0;
  while (s.next(r)) head += (r.line < 50) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(head) / 20000.0, 0.5, 0.03);
}

TEST(ZipfStream, RejectsSkewOutsideRange) {
  Rng rng(1);
  EXPECT_THROW(ZipfStream(0, 64, 1, 1.0, rng), ContractViolation);
  EXPECT_THROW(ZipfStream(0, 64, 1, -0.1, rng), ContractViolation);
}

TEST(StridedStream, HitsEveryNthLine) {
  StridedStream s(0, 64 * 10, /*stride_lines=*/3);
  MemRef r;
  std::vector<LineAddr> lines;
  while (s.next(r)) lines.push_back(r.line);
  EXPECT_EQ(lines, (std::vector<LineAddr>{0, 3, 6, 9}));
}

TEST(StridedStream, ZeroStrideTreatedAsOne) {
  StridedStream s(0, 64 * 3, 0);
  EXPECT_EQ(s.total_refs(), 3u);
}

TEST(AddressSpace, AllocationsDoNotOverlap) {
  AddressSpace space;
  const auto a = space.allocate(100);
  const auto b = space.allocate(1);
  const auto c = space.allocate(4096);
  EXPECT_LT(a, b);
  EXPECT_GE(b, a + 100);
  EXPECT_GE(c, b + 1);
  // Line-aligned regions never share a cache line.
  EXPECT_NE(a / kLineBytes, b / kLineBytes);
  EXPECT_NE(b / kLineBytes, c / kLineBytes);
}

TEST(AddressSpace, ZeroByteAllocationStillDistinct) {
  AddressSpace space;
  const auto a = space.allocate(0);
  const auto b = space.allocate(0);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace simprof::hw
