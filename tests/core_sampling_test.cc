// Unit + property tests for phase sampling and the four techniques of
// Section IV-B: SimProf (stratified), SRS, SECOND and CODE.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/sampling.h"
#include "support/assert.h"
#include "test_util.h"

namespace simprof::core {
namespace {

PhaseModel model_of(const ThreadProfile& p) { return form_phases(p); }

TEST(SimProfSample, AllocationFollowsNeyman) {
  // Phase A: high variance; phase B: zero variance → nearly all points to A.
  auto p = testing::synthetic_profile(
      {{100, 1.0, 0.4, 1}, {100, 3.0, 0.001, 2}});
  const auto model = model_of(p);
  ASSERT_EQ(model.k, 2u);
  const auto plan = simprof_sample(p, model, 20, 1);
  EXPECT_EQ(plan.sample_size(), 20u);
  const std::size_t high_var_phase =
      model.phases[0].stddev_cpi > model.phases[1].stddev_cpi ? 0 : 1;
  EXPECT_GE(plan.allocation[high_var_phase], 17u);
  EXPECT_GE(plan.allocation[1 - high_var_phase], 1u);  // floor of one
}

TEST(SimProfSample, PointsBelongToTheirPhaseAndAreUnique) {
  auto p = testing::synthetic_profile({{50, 0.5, 0.1, 1}, {50, 2.0, 0.2, 2}});
  const auto model = model_of(p);
  const auto plan = simprof_sample(p, model, 16, 2);
  std::set<std::size_t> seen;
  for (const auto& pt : plan.points) {
    EXPECT_EQ(model.labels[pt.unit_index], pt.phase);
    EXPECT_TRUE(seen.insert(pt.unit_index).second) << "duplicate unit";
  }
}

TEST(SimProfSample, WeightsSumToOne) {
  auto p = testing::synthetic_profile({{60, 1.0, 0.3, 1}, {40, 2.0, 0.2, 2}});
  const auto model = model_of(p);
  const auto plan = simprof_sample(p, model, 12, 3);
  double sum = 0.0;
  for (const auto& pt : plan.points) sum += pt.weight;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(SimProfSample, FullCensusIsExact) {
  auto p = testing::synthetic_profile({{30, 0.8, 0.2, 1}, {30, 1.9, 0.3, 2}});
  const auto model = model_of(p);
  const auto plan = simprof_sample(p, model, 60, 4);
  EXPECT_NEAR(plan.estimated_cpi, p.oracle_cpi(), 1e-9);
  EXPECT_NEAR(plan.standard_error, 0.0, 1e-12);
}

TEST(SimProfSample, HomogeneousPhasesGiveExactEstimate) {
  auto p = testing::synthetic_profile({{50, 0.5, 0.0, 1}, {50, 2.0, 0.0, 2}});
  const auto model = model_of(p);
  const auto plan = simprof_sample(p, model, 4, 5);
  EXPECT_NEAR(plan.estimated_cpi, p.oracle_cpi(), 1e-9);
  EXPECT_NEAR(relative_error(plan, p), 0.0, 1e-9);
}

TEST(SimProfSample, CiCoversOracleAtReasonableRate) {
  // 99.7% CI should cover the oracle in the vast majority of draws.
  auto p = testing::synthetic_profile(
      {{150, 0.8, 0.25, 1}, {100, 2.2, 0.45, 2}}, 11);
  const auto model = model_of(p);
  const double oracle = p.oracle_cpi();
  int covered = 0;
  constexpr int kDraws = 40;
  for (int seed = 0; seed < kDraws; ++seed) {
    const auto plan = simprof_sample(p, model, 25, seed);
    if (oracle >= plan.ci.low() && oracle <= plan.ci.high()) ++covered;
  }
  EXPECT_GE(covered, kDraws - 2);
}

TEST(SimProfSample, RejectsForeignModel) {
  auto p = testing::synthetic_profile({{10, 1.0, 0.1, 1}});
  auto q = testing::synthetic_profile({{20, 1.0, 0.1, 1}});
  const auto model = model_of(p);
  EXPECT_THROW(simprof_sample(q, model, 5, 1), ContractViolation);
}

TEST(SrsSample, UniformWeightsAndClampedSize) {
  auto p = testing::synthetic_profile({{10, 1.0, 0.2, 1}});
  const auto plan = srs_sample(p, 50, 7);
  EXPECT_EQ(plan.sample_size(), 10u);  // clamped to population
  for (const auto& pt : plan.points) EXPECT_NEAR(pt.weight, 0.1, 1e-12);
  EXPECT_NEAR(plan.estimated_cpi, p.oracle_cpi(), 1e-9);  // census
}

TEST(SrsSample, DeterministicPerSeed) {
  auto p = testing::synthetic_profile({{200, 1.0, 0.3, 1}}, 13);
  const auto a = srs_sample(p, 20, 99);
  const auto b = srs_sample(p, 20, 99);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].unit_index, b.points[i].unit_index);
  }
  const auto c = srs_sample(p, 20, 100);
  bool different = false;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    different |= a.points[i].unit_index != c.points[i].unit_index;
  }
  EXPECT_TRUE(different);
}

TEST(SecondSample, WindowIsContiguousAndCycleBounded) {
  auto p = testing::synthetic_profile({{300, 1.0, 0.0, 1}}, 17, 1'000'000);
  // Each unit: 1M cycles. 0.01 virtual seconds at 2 GHz = 20M cycles → 20
  // units starting after 10% warmup (unit 30).
  const auto plan = second_sample(p, 0.01, 2.0);
  ASSERT_EQ(plan.sample_size(), 20u);
  EXPECT_EQ(plan.points.front().unit_index, 30u);
  for (std::size_t i = 1; i < plan.points.size(); ++i) {
    EXPECT_EQ(plan.points[i].unit_index,
              plan.points[i - 1].unit_index + 1);
  }
}

TEST(SecondSample, MissesLateStagesByConstruction) {
  // Two temporally separated stages: SECOND's window sits in the first one
  // and badly misestimates — the paper's core criticism of SECOND.
  ThreadProfile p;
  p.method_names = {"m0", "m1"};
  p.method_kinds = {jvm::OpKind::kFramework, jvm::OpKind::kMap};
  for (int i = 0; i < 200; ++i) {
    UnitRecord u;
    u.unit_id = static_cast<std::uint64_t>(i);
    const double cpi = i < 150 ? 0.5 : 3.0;  // late reduce stage is slow
    u.counters.instructions = 1'000'000;
    u.counters.cycles = static_cast<std::uint64_t>(cpi * 1e6);
    u.methods = {0};
    u.counts = {10};
    p.units.push_back(std::move(u));
  }
  const auto plan = second_sample(p, 0.01, 2.0);  // ~30 units from unit 20
  EXPECT_LT(plan.points.back().unit_index, 150u);
  EXPECT_GT(relative_error(plan, p), 0.3);
}

TEST(CodeSample, OnePointPerNonEmptyPhaseWeightedByPhase) {
  auto p = testing::synthetic_profile({{80, 0.5, 0.0, 1}, {20, 2.0, 0.0, 2}});
  const auto model = model_of(p);
  const auto plan = code_sample(p, model);
  ASSERT_EQ(plan.sample_size(), model.k);
  double wsum = 0.0;
  for (const auto& pt : plan.points) wsum += pt.weight;
  EXPECT_NEAR(wsum, 1.0, 1e-12);
  // Homogeneous phases: CODE is exact.
  EXPECT_NEAR(plan.estimated_cpi, p.oracle_cpi(), 1e-9);
}

TEST(CodeSample, SuffersOnHeterogeneousPhases) {
  // One phase with huge CPI spread but a single code signature: CODE's
  // single representative cannot capture the mean reliably; SimProf with a
  // healthy allocation gets closer on average (Section V's key claim).
  auto p = testing::synthetic_profile({{400, 1.5, 0.9, 1}}, 23);
  const auto model = model_of(p);
  const auto code = code_sample(p, model);
  double simprof_total = 0.0;
  constexpr int kDraws = 15;
  for (int s = 0; s < kDraws; ++s) {
    simprof_total += relative_error(simprof_sample(p, model, 40, s), p);
  }
  EXPECT_LT(simprof_total / kDraws, relative_error(code, p) + 0.05);
}

TEST(RequiredSampleSize, MatchesStratifiedMathOnModel) {
  auto p = testing::synthetic_profile(
      {{200, 1.0, 0.3, 1}, {100, 2.0, 0.1, 2}}, 29);
  const auto model = model_of(p);
  const auto n5 = required_sample_size(model, 0.05);
  const auto n2 = required_sample_size(model, 0.02);
  EXPECT_GE(n2, n5);
  EXPECT_LE(n2, p.num_units());
  // The returned size, allocated and sampled, should meet the margin.
  const auto plan = simprof_sample(p, model, n5, 31);
  EXPECT_LE(stats::kZ997 * plan.standard_error,
            0.05 * p.oracle_cpi() * 1.15);
}

TEST(TechniqueNames, Stable) {
  EXPECT_EQ(to_string(SamplingTechnique::kSimProf), "SimProf");
  EXPECT_EQ(to_string(SamplingTechnique::kSrs), "SRS");
  EXPECT_EQ(to_string(SamplingTechnique::kSecond), "SECOND");
  EXPECT_EQ(to_string(SamplingTechnique::kCode), "CODE");
  EXPECT_EQ(to_string(SamplingTechnique::kSystematic), "SYSTEMATIC");
  EXPECT_EQ(to_string(SamplingTechnique::kSimProfSystematic), "SimProf+SYS");
}

TEST(SystematicSample, EvenStrideUniqueUnits) {
  auto p = testing::synthetic_profile({{120, 1.0, 0.2, 1}}, 37);
  const auto plan = systematic_sample(p, 12, 5);
  ASSERT_EQ(plan.sample_size(), 12u);
  // Picks are strictly increasing with stride ≈ 10.
  for (std::size_t i = 1; i < plan.points.size(); ++i) {
    const auto gap = plan.points[i].unit_index - plan.points[i - 1].unit_index;
    EXPECT_GE(gap, 9u);
    EXPECT_LE(gap, 11u);
  }
  double wsum = 0.0;
  for (const auto& pt : plan.points) wsum += pt.weight;
  EXPECT_NEAR(wsum, 1.0, 1e-12);
}

TEST(SystematicSample, CensusWhenSampleCoversPopulation) {
  auto p = testing::synthetic_profile({{15, 1.3, 0.1, 1}}, 41);
  const auto plan = systematic_sample(p, 50, 1);
  EXPECT_EQ(plan.sample_size(), 15u);
  EXPECT_NEAR(plan.estimated_cpi, p.oracle_cpi(), 1e-9);
}

TEST(SystematicSample, AliasesWithPeriodicStructure) {
  // The classic hazard of systematic designs: a profile strictly
  // alternating fast/slow units sampled with an even stride picks a single
  // parity — a wildly wrong estimate. (This is why SimProf stratifies
  // first: within a phase the sequence no longer carries the period.)
  auto p = testing::synthetic_profile({{100, 0.5, 0.0, 1}, {100, 2.0, 0.0, 2}},
                                      43);
  const auto plan = systematic_sample(p, 20, 9);  // stride 10, even
  EXPECT_GT(relative_error(plan, p), 0.3);
  // Stratified+systematic is immune: each phase is internally uniform here.
  const auto model = model_of(p);
  if (model.k == 2) {
    const auto strat = simprof_systematic_sample(p, model, 20, 9);
    EXPECT_LT(relative_error(strat, p), 0.02);
  }
}

TEST(SimProfSystematic, AllocationMatchesNeymanAndEstimatesWell) {
  auto p = testing::synthetic_profile(
      {{120, 1.0, 0.4, 1}, {120, 3.0, 0.01, 2}}, 47);
  const auto model = model_of(p);
  if (model.k < 2) GTEST_SKIP() << "clustering collapsed";
  const auto plan = simprof_systematic_sample(p, model, 24, 3);
  EXPECT_EQ(plan.sample_size(), 24u);
  // High-variance phase receives the bulk of the allocation.
  const std::size_t hv =
      model.phases[0].stddev_cpi > model.phases[1].stddev_cpi ? 0 : 1;
  EXPECT_GT(plan.allocation[hv], plan.allocation[1 - hv]);
  // Points belong to their phases; estimate is sane.
  for (const auto& pt : plan.points) {
    EXPECT_EQ(model.labels[pt.unit_index], pt.phase);
  }
  EXPECT_LT(relative_error(plan, p), 0.12);
}

TEST(SimProfSystematic, WithinPhasePicksAreSpread) {
  auto p = testing::synthetic_profile({{200, 1.0, 0.3, 1}}, 53);
  const auto model = model_of(p);
  const auto plan = simprof_systematic_sample(p, model, 10, 7);
  // Single phase: the 10 picks should span the run, not cluster.
  std::size_t lo = p.num_units(), hi = 0;
  for (const auto& pt : plan.points) {
    lo = std::min(lo, pt.unit_index);
    hi = std::max(hi, pt.unit_index);
  }
  EXPECT_LT(lo, p.num_units() / 5);
  EXPECT_GT(hi, p.num_units() * 4 / 5);
}

// Property: across random two-phase profiles, the stratified estimator is
// (a) unbiased in expectation and (b) lower-variance than SRS at equal n.
class StratifiedVsSrs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StratifiedVsSrs, LowerErrorThanSrsAtEqualSampleSize) {
  Rng rng(GetParam());
  auto p = testing::synthetic_profile(
      {{120 + rng.next_below(100), 0.5 + rng.next_double(), 0.05, 1},
       {120 + rng.next_below(100), 1.5 + rng.next_double(), 0.3, 2}},
      GetParam());
  const auto model = model_of(p);
  if (model.k < 2) GTEST_SKIP() << "clustering collapsed";
  double strat_err = 0.0, srs_err = 0.0;
  constexpr int kDraws = 12;
  for (int s = 0; s < kDraws; ++s) {
    strat_err += relative_error(simprof_sample(p, model, 15, s), p);
    srs_err += relative_error(srs_sample(p, 15, s), p);
  }
  EXPECT_LE(strat_err, srs_err + 0.03 * kDraws);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StratifiedVsSrs,
                         ::testing::Values(201, 202, 203, 204, 205, 206));

}  // namespace
}  // namespace simprof::core
