// Functional tests for the MiniSpark RDD layer: lazy lineage, shuffle
// semantics, and exact results for the Figure 1 WordCount program shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "data/text.h"
#include "minispark/rdd.h"
#include "test_util.h"

namespace simprof::spark {
namespace {

using data::TextCorpus;
using data::WordId;

data::TextConfig tiny_text(std::uint64_t seed = 3) {
  data::TextConfig cfg;
  cfg.num_words = 6'000;
  cfg.vocabulary = 400;
  cfg.mean_doc_words = 40;
  cfg.seed = seed;
  return cfg;
}

class SparkTest : public ::testing::Test {
 protected:
  SparkTest()
      : cluster_(testing::tiny_cluster_config()),
        corpus_(TextCorpus::synthesize(tiny_text())),
        sc_(cluster_) {}

  exec::Cluster cluster_;
  TextCorpus corpus_;
  SparkContext sc_;
};

TEST_F(SparkTest, ParallelizeCollectRoundTrip) {
  auto rdd = std::make_shared<ParallelizeRDD<int>>(
      sc_, std::vector<std::vector<int>>{{1, 2}, {3}, {4, 5}}, 4.0, "ints");
  EXPECT_EQ(rdd->num_partitions(), 3u);
  EXPECT_EQ(collect(RddPtr<int>(rdd)), (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST_F(SparkTest, MapAndFilterSemantics) {
  auto src = std::make_shared<ParallelizeRDD<int>>(
      sc_, std::vector<std::vector<int>>{{1, 2, 3, 4, 5, 6}}, 4.0, "ints");
  auto doubled = map<int>(src, "test.Double.map", jvm::OpKind::kMap, {},
                          [](const int& x) { return 2 * x; });
  auto big = filter(doubled, "test.Big.filter", jvm::OpKind::kMap, {},
                    [](const int& x) { return x > 6; });
  EXPECT_EQ(collect(big), (std::vector<int>{8, 10, 12}));
}

TEST_F(SparkTest, FlatMapExpandsElements) {
  auto src = std::make_shared<ParallelizeRDD<int>>(
      sc_, std::vector<std::vector<int>>{{2, 3}}, 4.0, "ints");
  auto rep = flat_map<int>(src, "test.Repeat.flatMap", jvm::OpKind::kMap, {},
                           [](const int& x, std::vector<int>& out) {
                             for (int i = 0; i < x; ++i) out.push_back(x);
                           });
  EXPECT_EQ(collect(rep), (std::vector<int>{2, 2, 3, 3, 3}));
}

TEST_F(SparkTest, WordCountMatchesReferenceCounts) {
  // The Figure 1 program: textFile → flatMap → map → reduceByKey.
  auto lines = std::make_shared<TextFileRDD>(sc_, corpus_, 5);
  auto words = flat_map<WordId>(
      lines, "wc.tokenize", jvm::OpKind::kMap, {},
      [this](const std::uint64_t& doc, std::vector<WordId>& out) {
        const auto ws = corpus_.doc(doc);
        out.insert(out.end(), ws.begin(), ws.end());
      });
  auto pairs = map<std::pair<WordId, std::uint64_t>>(
      words, "wc.toPair", jvm::OpKind::kMap, {}, [](const WordId& w) {
        return std::make_pair(w, std::uint64_t{1});
      });
  auto counts = reduce_by_key(
      pairs, [](const std::uint64_t& a, const std::uint64_t& b) { return a + b; },
      4, OpCost{});
  const auto result = collect(counts);

  std::map<WordId, std::uint64_t> reference;
  for (WordId w : corpus_.words()) ++reference[w];
  std::map<WordId, std::uint64_t> got(result.begin(), result.end());
  EXPECT_EQ(got, reference);
}

TEST_F(SparkTest, ReduceByKeyWithoutMapSideCombineSameResult) {
  auto src = std::make_shared<ParallelizeRDD<std::pair<WordId, std::uint64_t>>>(
      sc_,
      std::vector<std::vector<std::pair<WordId, std::uint64_t>>>{
          {{1, 1}, {2, 1}, {1, 1}}, {{2, 1}, {3, 5}}},
      8.0, "pairs");
  auto no_combine = std::make_shared<ReduceByKeyRDD<WordId, std::uint64_t>>(
      RddPtr<std::pair<WordId, std::uint64_t>>(src),
      [](const std::uint64_t& a, const std::uint64_t& b) { return a + b; }, 3,
      OpCost{}, [](const WordId& k) { return std::uint64_t{k}; },
      /*map_side_combine=*/false);
  auto result = collect(
      std::static_pointer_cast<RDD<std::pair<WordId, std::uint64_t>>>(
          no_combine));
  std::map<WordId, std::uint64_t> got(result.begin(), result.end());
  EXPECT_EQ(got, (std::map<WordId, std::uint64_t>{{1, 2}, {2, 2}, {3, 5}}));
}

TEST_F(SparkTest, SortByKeyGloballySorted) {
  auto lines = std::make_shared<TextFileRDD>(sc_, corpus_, 4);
  auto pairs = flat_map<std::pair<WordId, std::uint32_t>>(
      lines, "sort.toPairs", jvm::OpKind::kMap, {},
      [this](const std::uint64_t& doc,
             std::vector<std::pair<WordId, std::uint32_t>>& out) {
        for (WordId w : corpus_.doc(doc)) out.emplace_back(w, 1u);
      });
  const double vocab = corpus_.vocabulary();
  auto sorted = sort_by_key(
      pairs, [vocab](const WordId& w) { return w / vocab; }, 4, OpCost{});
  const auto out = collect(sorted);
  ASSERT_EQ(out.size(), corpus_.words().size());
  for (std::size_t i = 1; i < out.size(); ++i) {
    ASSERT_LE(out[i - 1].first, out[i].first) << "at " << i;
  }
}

TEST_F(SparkTest, StagesSplitAtShuffleBoundaries) {
  auto src = std::make_shared<ParallelizeRDD<std::pair<WordId, std::uint64_t>>>(
      sc_,
      std::vector<std::vector<std::pair<WordId, std::uint64_t>>>{{{1, 1}}},
      8.0, "pairs");
  auto reduced = reduce_by_key(
      src, [](const std::uint64_t& a, const std::uint64_t& b) { return a + b; },
      2, OpCost{});
  EXPECT_EQ(sc_.stages_run(), 0u);  // lazy until an action
  collect(reduced);
  EXPECT_EQ(sc_.stages_run(), 2u);  // shuffle-map stage + result stage
  collect(reduced);
  EXPECT_EQ(sc_.stages_run(), 3u);  // shuffle reused, only result re-runs
}

TEST_F(SparkTest, SaveAsTextFileCountsRecords) {
  auto src = std::make_shared<ParallelizeRDD<int>>(
      sc_, std::vector<std::vector<int>>{{1, 2, 3}, {4}}, 4.0, "ints");
  EXPECT_EQ(save_as_text_file(RddPtr<int>(src), 10.0), 4u);
}

TEST_F(SparkTest, TextFileSplitsCoverAllDocsOnce) {
  auto lines = std::make_shared<TextFileRDD>(sc_, corpus_, 7);
  auto docs = collect(RddPtr<std::uint64_t>(lines));
  std::sort(docs.begin(), docs.end());
  ASSERT_EQ(docs.size(), corpus_.num_docs());
  for (std::size_t i = 0; i < docs.size(); ++i) EXPECT_EQ(docs[i], i);
  std::uint64_t bytes = 0;
  for (std::size_t p = 0; p < lines->num_partitions(); ++p) {
    bytes += lines->split_bytes(p);
  }
  EXPECT_EQ(bytes, corpus_.total_bytes());
}

TEST_F(SparkTest, UnionConcatenatesPartitions) {
  auto a = std::make_shared<ParallelizeRDD<int>>(
      sc_, std::vector<std::vector<int>>{{1, 2}}, 4.0, "a");
  auto b = std::make_shared<ParallelizeRDD<int>>(
      sc_, std::vector<std::vector<int>>{{3}, {4, 5}}, 4.0, "b");
  auto u = union_rdds(a, b);
  EXPECT_EQ(u->num_partitions(), 3u);
  EXPECT_EQ(collect(u), (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST_F(SparkTest, UnionAcrossContextsRejected) {
  exec::Cluster other_cluster(testing::tiny_cluster_config());
  SparkContext other(other_cluster);
  auto a = std::make_shared<ParallelizeRDD<int>>(
      sc_, std::vector<std::vector<int>>{{1}}, 4.0, "a");
  auto b = std::make_shared<ParallelizeRDD<int>>(
      other, std::vector<std::vector<int>>{{2}}, 4.0, "b");
  EXPECT_THROW(union_rdds(a, b), ContractViolation);
}

TEST_F(SparkTest, DistinctRemovesDuplicates) {
  auto src = std::make_shared<ParallelizeRDD<data::WordId>>(
      sc_,
      std::vector<std::vector<data::WordId>>{{1, 2, 2, 3}, {3, 3, 4}}, 4.0,
      "dups");
  auto d = distinct(src, 3);
  auto out = collect(d);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<data::WordId>{1, 2, 3, 4}));
}

TEST_F(SparkTest, CountMatchesCollectSize) {
  auto lines = std::make_shared<TextFileRDD>(sc_, corpus_, 3);
  auto words = flat_map<WordId>(
      lines, "wc.tokenize", jvm::OpKind::kMap, {},
      [this](const std::uint64_t& doc, std::vector<WordId>& out) {
        const auto ws = corpus_.doc(doc);
        out.insert(out.end(), ws.begin(), ws.end());
      });
  EXPECT_EQ(count(words), corpus_.words().size());
}

TEST_F(SparkTest, GroupByKeyCollectsAllValues) {
  using P = std::pair<WordId, std::uint64_t>;
  auto src = std::make_shared<ParallelizeRDD<P>>(
      sc_,
      std::vector<std::vector<P>>{{{1, 10}, {2, 20}}, {{1, 11}, {1, 12}}},
      8.0, "pairs");
  auto grouped = group_by_key(src, 2);
  auto out = collect(grouped);
  std::map<WordId, std::vector<std::uint64_t>> got;
  for (auto& [k, vs] : out) {
    std::sort(vs.begin(), vs.end());
    got[k] = vs;
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[1], (std::vector<std::uint64_t>{10, 11, 12}));
  EXPECT_EQ(got[2], (std::vector<std::uint64_t>{20}));
}

TEST_F(SparkTest, JoinProducesInnerCrossProduct) {
  using PA = std::pair<WordId, std::uint64_t>;
  using PB = std::pair<WordId, std::uint32_t>;
  auto left = std::make_shared<ParallelizeRDD<PA>>(
      sc_, std::vector<std::vector<PA>>{{{1, 100}, {2, 200}, {1, 101}}}, 8.0,
      "left");
  auto right = std::make_shared<ParallelizeRDD<PB>>(
      sc_, std::vector<std::vector<PB>>{{{1, 7}, {3, 9}}}, 8.0, "right");
  auto joined = join(left, right, 2);
  auto out = collect(joined);
  // Key 1 joins twice (two left values × one right), 2 and 3 drop.
  ASSERT_EQ(out.size(), 2u);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.first < b.second.first;
  });
  EXPECT_EQ(out[0].first, 1u);
  EXPECT_EQ(out[0].second.first, 100u);
  EXPECT_EQ(out[0].second.second, 7u);
  EXPECT_EQ(out[1].second.first, 101u);
  EXPECT_EQ(out[1].second.second, 7u);
}

TEST_F(SparkTest, PipelinedComputeChargesSimulatedWork) {
  auto lines = std::make_shared<TextFileRDD>(sc_, corpus_, 3);
  auto words = flat_map<WordId>(
      lines, "wc.tokenize", jvm::OpKind::kMap,
      OpCost{.instrs_per_element = 100},
      [this](const std::uint64_t& doc, std::vector<WordId>& out) {
        const auto ws = corpus_.doc(doc);
        out.insert(out.end(), ws.begin(), ws.end());
      });
  collect(words);
  // The profiled core ran at least one task: instructions and line touches
  // were charged through the cache model.
  const auto& pmu = cluster_.context(0).counters();
  EXPECT_GT(pmu.instructions, 10'000u);
  EXPECT_GT(pmu.line_touches, 100u);
}

}  // namespace
}  // namespace simprof::spark
